// quicsand_top — terminal dashboard for a running monitor/flood_lab
// admin endpoint. Polls /metrics.json and /tsdb/query and renders live
// per-second rates, sparkline history, latency quantiles (the p50/p99
// gauges bridged from every LatencyHistogram), and recent alerts — `top` for
// the telescope pipeline, no browser required.
//
//   ./quicsand_top HOST:PORT [--interval SECONDS] [--frames N]
//                  [--series NAME ...] [--window SECONDS] [--no-clear]
//
//   --interval S   refresh cadence (default 2)
//   --frames N     render N frames then exit (0 = until ^C); smoke
//                  tests run --frames 1 to capture one deterministic-
//                  shape frame
//   --series NAME  counter/gauge to track (repeatable; default: the
//                  live capture + detector headline set, falling back
//                  to whatever /tsdb/series advertises)
//   --window S     sparkline history window (default 60)
//   --no-clear     append frames instead of redrawing in place
//
// Speaks just enough HTTP/1.1 over a blocking socket and scans just
// enough JSON to avoid any client library; everything it needs is the
// admin server's deterministic output shape (columns [t_us, min, max,
// sum, count, last]).
#include <arpa/inet.h>
#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/parse.hpp"
#include "util/time.hpp"

using namespace quicsand;

namespace {

/// One blocking HTTP/1.1 GET; returns the body, or nullopt on any
/// connect/read error (the caller renders a "endpoint away" frame).
std::optional<std::string> http_get(const std::string& host,
                                    std::uint16_t port,
                                    const std::string& target) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &resolved) != 0) {
    return std::nullopt;
  }
  int fd = -1;
  for (addrinfo* it = resolved; it != nullptr; it = it->ai_next) {
    fd = ::socket(it->ai_family, it->ai_socktype, it->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, it->ai_addr, it->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(resolved);
  if (fd < 0) return std::nullopt;

  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const auto n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char chunk[4096];
  while (true) {
    const auto n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return std::nullopt;
  if (response.rfind("HTTP/1.1 200", 0) != 0) return std::nullopt;
  return response.substr(header_end + 4);
}

/// Scan `"key": <number>` out of a flat JSON object (the /metrics.json
/// shape); good enough without a parser because the server's output is
/// deterministic and unnested for counters/gauges.
std::optional<double> scan_number(const std::string& json,
                                  const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto at = json.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const char* begin = json.c_str() + at + needle.size();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  return value;
}

struct QueryPoint {
  std::int64_t t_us = 0;
  std::int64_t last = 0;
};

/// Pull the [t_us, ..., last] columns out of a /tsdb/query "points"
/// array: rows are fixed-shape [t,min,max,sum,count,last].
std::vector<QueryPoint> scan_points(const std::string& json) {
  std::vector<QueryPoint> points;
  const auto array_at = json.find("\"points\": [");
  if (array_at == std::string::npos) return points;
  std::size_t pos = array_at + std::strlen("\"points\": [");
  while (true) {
    const auto row_start = json.find('[', pos);
    if (row_start == std::string::npos) break;
    const auto row_end = json.find(']', row_start);
    if (row_end == std::string::npos) break;
    // Stop at the end of the points array: the next structural char
    // after the previous row decides (',' continues, ']' terminates).
    const auto between = json.substr(pos, row_start - pos);
    if (between.find(']') != std::string::npos) break;
    const std::string row =
        json.substr(row_start + 1, row_end - row_start - 1);
    std::vector<std::int64_t> cells;
    std::istringstream cells_in(row);
    std::string cell;
    while (std::getline(cells_in, cell, ',')) {
      if (const auto parsed = util::parse_i64(
              cell.substr(cell.find_first_not_of(' ')))) {
        cells.push_back(*parsed);
      }
    }
    if (cells.size() >= 6) points.push_back({cells[0], cells[5]});
    pos = row_end + 1;
  }
  return points;
}

/// Annotation lines ("kind"/"victim"/"peak_pps") from a /tsdb/query
/// response, rendered one alert per line.
std::vector<std::string> scan_annotations(const std::string& json) {
  std::vector<std::string> alerts;
  // The top-level response also has a "kind" (the series kind): only
  // scan past the annotations array so it is never mistaken for one.
  std::size_t pos = json.find("\"annotations\": [");
  if (pos == std::string::npos) return alerts;
  while ((pos = json.find("\"kind\": \"", pos)) != std::string::npos) {
    pos += std::strlen("\"kind\": \"");
    const auto kind_end = json.find('"', pos);
    if (kind_end == std::string::npos) break;
    std::string line = json.substr(pos, kind_end - pos);
    const auto victim_at = json.find("\"victim\": \"", pos);
    if (victim_at != std::string::npos) {
      const auto victim_start = victim_at + std::strlen("\"victim\": \"");
      const auto victim_end = json.find('"', victim_start);
      if (victim_end != std::string::npos) {
        line += "  victim " +
                json.substr(victim_start, victim_end - victim_start);
      }
    }
    if (const auto pps = scan_number(json.substr(pos), "peak_pps")) {
      std::ostringstream out;
      out.precision(0);
      out << std::fixed << "  " << *pps << " pps";
      line += out.str();
    }
    alerts.push_back(line);
    pos = kind_end;
  }
  return alerts;
}

/// Eight-level unicode sparkline over per-second deltas (counters keep
/// rising; the interesting shape is the derivative).
std::string sparkline(const std::vector<QueryPoint>& points) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (points.size() < 2) return "(gathering)";
  std::vector<double> rates;
  rates.reserve(points.size() - 1);
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double dt_s =
        static_cast<double>(points[i].t_us - points[i - 1].t_us) / 1e6;
    const double delta =
        static_cast<double>(points[i].last - points[i - 1].last);
    rates.push_back(dt_s > 0 ? std::max(0.0, delta / dt_s) : 0.0);
  }
  const double peak = *std::max_element(rates.begin(), rates.end());
  std::string out;
  for (const double rate : rates) {
    const auto level =
        peak > 0 ? static_cast<std::size_t>(rate / peak * 7.0) : 0;
    out += kLevels[std::min<std::size_t>(level, 7)];
  }
  std::ostringstream tail;
  tail.precision(1);
  tail << std::fixed << "  " << rates.back() << "/s (peak "
       << peak << ")";
  return out + tail.str();
}

/// Latest `last` cell of one series over the window — how the latency
/// quantile gauges (.p50/.p99 bridged from LatencyHistograms by the
/// sampler) are read back: the newest sample IS the current quantile.
std::optional<std::int64_t> latest_value(
    const std::string& host, std::uint16_t port, const std::string& series,
    std::int64_t from_us) {  // lint:allow(naked-int64-time-param)
  const auto body =
      http_get(host, port,
               "/tsdb/query?series=" + series +
                   "&from=" + std::to_string(from_us) + "&step=0");
  if (!body) return std::nullopt;
  const auto points = scan_points(*body);
  if (points.empty()) return std::nullopt;
  return points.back().last;
}

/// Newest sample timestamp across the catalog, so queries can ask for
/// just the trailing window (keeping the server on its finest tier).
std::int64_t scan_newest_us(const std::string& json) {
  std::int64_t newest = 0;
  std::size_t pos = 0;
  while ((pos = json.find("\"last_us\": ", pos)) != std::string::npos) {
    pos += std::strlen("\"last_us\": ");
    // Scanning inside a larger buffer: a partial read is the point
    // here, util::parse_* would demand the number end the string.
    char* end = nullptr;  // lint:allow(parse-functions)
    const auto value = std::strtoll(json.c_str() + pos, &end, 10);
    newest = std::max<std::int64_t>(newest, value);
  }
  return newest;
}

/// Series names from /tsdb/series (the fallback when no --series given
/// and none of the defaults exist on this endpoint).
std::vector<std::string> scan_series_names(const std::string& json) {
  std::vector<std::string> names;
  std::size_t pos = 0;
  while ((pos = json.find("\"name\": \"", pos)) != std::string::npos) {
    pos += std::strlen("\"name\": \"");
    const auto end = json.find('"', pos);
    if (end == std::string::npos) break;
    names.push_back(json.substr(pos, end - pos));
    pos = end;
  }
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<util::HostPort> endpoint;
  double interval_s = 2.0;
  std::uint64_t frames = 0;  // 0 = until ^C
  std::uint64_t window_s = 60;
  bool clear = true;
  std::vector<std::string> requested;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--interval") {
      interval_s = util::require_f64("--interval", value());
    } else if (arg == "--frames") {
      frames = util::require_u64("--frames", value());
    } else if (arg == "--window") {
      window_s = util::require_u64("--window", value());
    } else if (arg == "--series") {
      requested.emplace_back(value());
    } else if (arg == "--no-clear") {
      clear = false;
    } else if (!arg.empty() && arg[0] != '-' && !endpoint) {
      endpoint = util::require_host_port("HOST:PORT", arg.c_str());
    } else {
      std::cerr << "usage: quicsand_top HOST:PORT [--interval SECONDS]"
                   " [--frames N] [--series NAME ...]"
                   " [--window SECONDS] [--no-clear]\n";
      return 2;
    }
  }
  if (!endpoint) {
    std::cerr << "usage: quicsand_top HOST:PORT [--interval SECONDS]"
                 " [--frames N] [--series NAME ...] [--window SECONDS]"
                 " [--no-clear]\n";
    return 2;
  }

  // The headline set when the user picks nothing: live-capture health
  // plus detector activity, pruned below to what the endpoint retains.
  std::vector<std::string> defaults = {
      "live.received_packets", "live.delivered_packets", "live.dropped_ring",
      "live.dropped_kernel",   "online.records",         "online.alerts",
      "monitor.packets",       "tsdb.samples"};

  std::uint64_t frame = 0;
  int failures_in_a_row = 0;
  while (frames == 0 || frame < frames) {
    ++frame;

    const auto series_body =
        http_get(endpoint->host, endpoint->port, "/tsdb/series");
    std::vector<std::string> available;
    if (series_body) available = scan_series_names(*series_body);

    std::vector<std::string> tracked;
    for (const auto& name : requested.empty() ? defaults : requested) {
      if (std::find(available.begin(), available.end(), name) !=
          available.end()) {
        tracked.push_back(name);
      }
    }
    if (tracked.empty() && requested.empty()) {
      // Nothing from the headline set: show whatever exists (bounded,
      // the terminal is only so tall).
      for (const auto& name : available) {
        tracked.push_back(name);
        if (tracked.size() >= 8) break;
      }
    }

    if (clear) std::cout << "\033[H\033[2J";
    std::cout << "quicsand_top — http://" << endpoint->host << ":"
              << endpoint->port << "  frame " << frame << "\n";

    if (!series_body) {
      ++failures_in_a_row;
      std::cout << "  endpoint unreachable ("
                << failures_in_a_row << " attempt(s))\n";
      if (frames != 0 && frame >= frames) return 1;
      std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
      continue;
    }
    failures_in_a_row = 0;

    const auto metrics_body =
        http_get(endpoint->host, endpoint->port, "/metrics.json");

    // Ask for just the trailing window, anchored at the newest sample
    // the catalog advertises: the server then answers from its finest
    // tier instead of escalating to cover ancient history.
    const std::int64_t newest_us = scan_newest_us(*series_body);
    const std::int64_t from_us = std::max<std::int64_t>(
        0, newest_us - static_cast<std::int64_t>(window_s) * 1000000);

    std::vector<std::string> alerts;
    for (const auto& name : tracked) {
      const auto body = http_get(
          endpoint->host, endpoint->port,
          "/tsdb/query?series=" + name +
              "&from=" + std::to_string(from_us) + "&step=0");
      std::cout << "  " << name;
      for (std::size_t pad = name.size(); pad < 22; ++pad) std::cout << ' ';
      if (!body) {
        std::cout << " (query failed)\n";
        continue;
      }
      auto points = scan_points(*body);
      const std::size_t max_points = window_s;  // finest tier is 1 s
      if (points.size() > max_points) {
        points.erase(points.begin(),
                     points.end() - static_cast<std::ptrdiff_t>(max_points));
      }
      std::cout << " " << sparkline(points);
      if (metrics_body) {
        if (const auto total = scan_number(*metrics_body, name)) {
          std::cout << "  total " << static_cast<std::int64_t>(*total);
        }
      }
      std::cout << "\n";
      if (alerts.empty()) alerts = scan_annotations(*body);
    }

    // Latency quantiles: every LatencyHistogram the sampler bridges
    // exports <base>.p50/.p90/.p99 gauge series; pair them up into a
    // p50/p99 column per base (live.latency.e2e_us, detect latency...).
    std::vector<std::string> latency_bases;
    for (const auto& name : available) {
      if (name.size() > 4 && name.rfind(".p50") == name.size() - 4) {
        latency_bases.push_back(name.substr(0, name.size() - 4));
      }
    }
    if (!latency_bases.empty()) {
      std::cout << "  latency quantiles (us):\n";
      std::size_t rows = 0;
      for (const auto& base : latency_bases) {
        if (++rows > 12) break;  // the terminal is only so tall
        std::cout << "    " << base;
        for (std::size_t pad = base.size(); pad < 28; ++pad) {
          std::cout << ' ';
        }
        const auto p50 = latest_value(endpoint->host, endpoint->port,
                                      base + ".p50", from_us);
        const auto p99 = latest_value(endpoint->host, endpoint->port,
                                      base + ".p99", from_us);
        if (p50) std::cout << " p50 " << *p50;
        if (p99) std::cout << "  p99 " << *p99;
        if (!p50 && !p99) std::cout << " (no samples in window)";
        std::cout << "\n";
      }
    }

    std::cout << "  alerts:\n";
    if (alerts.empty()) {
      std::cout << "    (none in window)\n";
    } else {
      std::size_t shown = 0;
      for (auto it = alerts.rbegin(); it != alerts.rend() && shown < 5;
           ++it, ++shown) {
        std::cout << "    " << *it << "\n";
      }
    }
    std::cout.flush();

    if (frames != 0 && frame >= frames) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
  }
  return 0;
}
