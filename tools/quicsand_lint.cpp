// quicsand_lint — the repo-specific static checker.
//
// Usage:
//   quicsand_lint [--fix] [--report FILE] [--list-rules] PATH...
//
// Each PATH is a file or a directory (searched recursively for
// .cpp/.hpp/.cc/.h). Directories skip `lint_fixtures/` and build trees;
// naming a file explicitly always lints it, which is how the fixture
// tests drive the tool. Exits 0 when clean, 1 when findings remain,
// 2 on usage errors.
//
// `--fix` applies the mechanical fixes in place (currently: inserting
// parentheses for the time-literal-parens rule) and then reports
// whatever is left. `--report` writes the machine-readable JSON the CI
// job uploads as an artifact.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace fs = std::filesystem;
using quicsand::lint::Finding;
using quicsand::lint::LintResult;

namespace {

bool lintable_extension(const fs::path& path) {
  const auto ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

bool skipped_directory_entry(const fs::path& path) {
  const std::string text = path.generic_string();
  return text.find("lint_fixtures") != std::string::npos ||
         text.find("/build") != std::string::npos ||
         text.find("CMakeFiles") != std::string::npos;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool fix = false;
  std::string report_path;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fix") {
      fix = true;
    } else if (arg == "--report") {
      if (i + 1 >= argc) {
        std::cerr << "quicsand_lint: --report needs a file argument\n";
        return 2;
      }
      report_path = argv[++i];
    } else if (arg == "--list-rules") {
      const auto rules = quicsand::lint::default_rules();
      std::vector<std::string> names;
      for (const auto& rule : rules.banned) {
        if (std::find(names.begin(), names.end(), rule.name) == names.end()) {
          names.push_back(rule.name);
        }
      }
      for (const auto& name : names) std::cout << name << "\n";
      std::cout << quicsand::lint::kRuleMixedUnits << "\n"
                << quicsand::lint::kRuleInt64TimeParam << "\n"
                << quicsand::lint::kRuleTimestampDoubleCast << "\n"
                << quicsand::lint::kRuleRawStdMutex << "\n"
                << quicsand::lint::kRuleLayering << "\n"
                << quicsand::lint::kRuleMutableStatic << "\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "quicsand_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "usage: quicsand_lint [--fix] [--report FILE] PATH...\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const auto& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (const auto& entry :
           fs::recursive_directory_iterator(input, ec)) {
        if (!entry.is_regular_file()) continue;
        if (!lintable_extension(entry.path())) continue;
        if (skipped_directory_entry(entry.path())) continue;
        files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(input, ec)) {
      files.push_back(input);
    } else {
      std::cerr << "quicsand_lint: no such file or directory: "
                << input.string() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  const auto rules = quicsand::lint::default_rules();
  std::vector<Finding> findings;
  std::size_t suppressed = 0;
  std::size_t fixed_files = 0;
  for (const auto& file : files) {
    const std::string path = file.generic_string();
    std::string source = read_file(file);
    LintResult result = quicsand::lint::lint_source(path, source, rules);
    if (fix && !result.fixes.empty()) {
      const std::string patched =
          quicsand::lint::apply_edits(source, std::move(result.fixes));
      if (patched != source) {
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        out << patched;
        ++fixed_files;
        // Re-lint the patched buffer so the report reflects the result.
        result = quicsand::lint::lint_source(path, patched, rules);
      }
    }
    suppressed += result.suppressed;
    for (auto& finding : result.findings) {
      findings.push_back(std::move(finding));
    }
  }

  for (const auto& finding : findings) {
    std::cout << quicsand::lint::finding_to_text(finding) << "\n";
  }
  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::trunc);
    out << quicsand::lint::findings_to_json(findings, files.size(),
                                            suppressed);
  }
  std::cerr << "quicsand_lint: " << files.size() << " files, "
            << findings.size() << " findings, " << suppressed
            << " suppressed";
  if (fix) std::cerr << ", " << fixed_files << " files fixed";
  std::cerr << "\n";
  return findings.empty() ? 0 : 1;
}
