# Empty compiler generated dependencies file for quic_retry_test.
# This may be replaced when dependencies are built.
