file(REMOVE_RECURSE
  "CMakeFiles/quic_retry_test.dir/quic_retry_test.cpp.o"
  "CMakeFiles/quic_retry_test.dir/quic_retry_test.cpp.o.d"
  "quic_retry_test"
  "quic_retry_test.pdb"
  "quic_retry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_retry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
