file(REMOVE_RECURSE
  "CMakeFiles/quic_frames_tls_test.dir/quic_frames_tls_test.cpp.o"
  "CMakeFiles/quic_frames_tls_test.dir/quic_frames_tls_test.cpp.o.d"
  "quic_frames_tls_test"
  "quic_frames_tls_test.pdb"
  "quic_frames_tls_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_frames_tls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
