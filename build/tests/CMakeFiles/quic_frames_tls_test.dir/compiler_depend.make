# Empty compiler generated dependencies file for quic_frames_tls_test.
# This may be replaced when dependencies are built.
