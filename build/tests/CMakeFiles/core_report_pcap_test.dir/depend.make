# Empty dependencies file for core_report_pcap_test.
# This may be replaced when dependencies are built.
