# Empty dependencies file for property_net_test.
# This may be replaced when dependencies are built.
