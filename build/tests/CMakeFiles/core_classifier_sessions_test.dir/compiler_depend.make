# Empty compiler generated dependencies file for core_classifier_sessions_test.
# This may be replaced when dependencies are built.
