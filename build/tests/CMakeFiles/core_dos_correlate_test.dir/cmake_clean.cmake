file(REMOVE_RECURSE
  "CMakeFiles/core_dos_correlate_test.dir/core_dos_correlate_test.cpp.o"
  "CMakeFiles/core_dos_correlate_test.dir/core_dos_correlate_test.cpp.o.d"
  "core_dos_correlate_test"
  "core_dos_correlate_test.pdb"
  "core_dos_correlate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dos_correlate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
