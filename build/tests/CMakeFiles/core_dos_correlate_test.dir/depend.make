# Empty dependencies file for core_dos_correlate_test.
# This may be replaced when dependencies are built.
