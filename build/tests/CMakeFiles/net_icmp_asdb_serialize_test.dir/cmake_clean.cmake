file(REMOVE_RECURSE
  "CMakeFiles/net_icmp_asdb_serialize_test.dir/net_icmp_asdb_serialize_test.cpp.o"
  "CMakeFiles/net_icmp_asdb_serialize_test.dir/net_icmp_asdb_serialize_test.cpp.o.d"
  "net_icmp_asdb_serialize_test"
  "net_icmp_asdb_serialize_test.pdb"
  "net_icmp_asdb_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_icmp_asdb_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
