# Empty dependencies file for net_icmp_asdb_serialize_test.
# This may be replaced when dependencies are built.
