file(REMOVE_RECURSE
  "CMakeFiles/net_ip_test.dir/net_ip_test.cpp.o"
  "CMakeFiles/net_ip_test.dir/net_ip_test.cpp.o.d"
  "net_ip_test"
  "net_ip_test.pdb"
  "net_ip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_ip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
