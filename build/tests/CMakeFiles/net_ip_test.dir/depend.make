# Empty dependencies file for net_ip_test.
# This may be replaced when dependencies are built.
