file(REMOVE_RECURSE
  "CMakeFiles/quic_dissector_test.dir/quic_dissector_test.cpp.o"
  "CMakeFiles/quic_dissector_test.dir/quic_dissector_test.cpp.o.d"
  "quic_dissector_test"
  "quic_dissector_test.pdb"
  "quic_dissector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_dissector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
