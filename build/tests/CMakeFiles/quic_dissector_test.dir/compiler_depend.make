# Empty compiler generated dependencies file for quic_dissector_test.
# This may be replaced when dependencies are built.
