file(REMOVE_RECURSE
  "CMakeFiles/threat_scanner_test.dir/threat_scanner_test.cpp.o"
  "CMakeFiles/threat_scanner_test.dir/threat_scanner_test.cpp.o.d"
  "threat_scanner_test"
  "threat_scanner_test.pdb"
  "threat_scanner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threat_scanner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
