# Empty dependencies file for threat_scanner_test.
# This may be replaced when dependencies are built.
