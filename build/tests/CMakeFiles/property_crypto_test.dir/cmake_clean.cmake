file(REMOVE_RECURSE
  "CMakeFiles/property_crypto_test.dir/property_crypto_test.cpp.o"
  "CMakeFiles/property_crypto_test.dir/property_crypto_test.cpp.o.d"
  "property_crypto_test"
  "property_crypto_test.pdb"
  "property_crypto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_crypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
