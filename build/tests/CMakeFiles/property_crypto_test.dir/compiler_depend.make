# Empty compiler generated dependencies file for property_crypto_test.
# This may be replaced when dependencies are built.
