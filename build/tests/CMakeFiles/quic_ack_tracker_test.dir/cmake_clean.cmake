file(REMOVE_RECURSE
  "CMakeFiles/quic_ack_tracker_test.dir/quic_ack_tracker_test.cpp.o"
  "CMakeFiles/quic_ack_tracker_test.dir/quic_ack_tracker_test.cpp.o.d"
  "quic_ack_tracker_test"
  "quic_ack_tracker_test.pdb"
  "quic_ack_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_ack_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
