# Empty compiler generated dependencies file for quic_ack_tracker_test.
# This may be replaced when dependencies are built.
