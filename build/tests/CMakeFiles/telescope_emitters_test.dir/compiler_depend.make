# Empty compiler generated dependencies file for telescope_emitters_test.
# This may be replaced when dependencies are built.
