file(REMOVE_RECURSE
  "CMakeFiles/telescope_emitters_test.dir/telescope_emitters_test.cpp.o"
  "CMakeFiles/telescope_emitters_test.dir/telescope_emitters_test.cpp.o.d"
  "telescope_emitters_test"
  "telescope_emitters_test.pdb"
  "telescope_emitters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telescope_emitters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
