# Empty dependencies file for quic_varint_version_test.
# This may be replaced when dependencies are built.
