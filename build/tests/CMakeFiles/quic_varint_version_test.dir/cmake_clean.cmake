file(REMOVE_RECURSE
  "CMakeFiles/quic_varint_version_test.dir/quic_varint_version_test.cpp.o"
  "CMakeFiles/quic_varint_version_test.dir/quic_varint_version_test.cpp.o.d"
  "quic_varint_version_test"
  "quic_varint_version_test.pdb"
  "quic_varint_version_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_varint_version_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
