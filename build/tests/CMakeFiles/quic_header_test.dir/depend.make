# Empty dependencies file for quic_header_test.
# This may be replaced when dependencies are built.
