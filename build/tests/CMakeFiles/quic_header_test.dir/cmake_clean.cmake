file(REMOVE_RECURSE
  "CMakeFiles/quic_header_test.dir/quic_header_test.cpp.o"
  "CMakeFiles/quic_header_test.dir/quic_header_test.cpp.o.d"
  "quic_header_test"
  "quic_header_test.pdb"
  "quic_header_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_header_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
