file(REMOVE_RECURSE
  "CMakeFiles/quic_gquic_test.dir/quic_gquic_test.cpp.o"
  "CMakeFiles/quic_gquic_test.dir/quic_gquic_test.cpp.o.d"
  "quic_gquic_test"
  "quic_gquic_test.pdb"
  "quic_gquic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_gquic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
