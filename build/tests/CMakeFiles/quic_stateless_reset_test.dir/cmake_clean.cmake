file(REMOVE_RECURSE
  "CMakeFiles/quic_stateless_reset_test.dir/quic_stateless_reset_test.cpp.o"
  "CMakeFiles/quic_stateless_reset_test.dir/quic_stateless_reset_test.cpp.o.d"
  "quic_stateless_reset_test"
  "quic_stateless_reset_test.pdb"
  "quic_stateless_reset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_stateless_reset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
