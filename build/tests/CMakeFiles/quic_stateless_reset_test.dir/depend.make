# Empty dependencies file for quic_stateless_reset_test.
# This may be replaced when dependencies are built.
