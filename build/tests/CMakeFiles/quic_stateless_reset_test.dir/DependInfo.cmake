
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/quic_stateless_reset_test.cpp" "tests/CMakeFiles/quic_stateless_reset_test.dir/quic_stateless_reset_test.cpp.o" "gcc" "tests/CMakeFiles/quic_stateless_reset_test.dir/quic_stateless_reset_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quic/CMakeFiles/quicsand_quic.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/quicsand_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/quicsand_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/quicsand_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
