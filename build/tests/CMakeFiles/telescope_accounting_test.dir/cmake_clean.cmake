file(REMOVE_RECURSE
  "CMakeFiles/telescope_accounting_test.dir/telescope_accounting_test.cpp.o"
  "CMakeFiles/telescope_accounting_test.dir/telescope_accounting_test.cpp.o.d"
  "telescope_accounting_test"
  "telescope_accounting_test.pdb"
  "telescope_accounting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telescope_accounting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
