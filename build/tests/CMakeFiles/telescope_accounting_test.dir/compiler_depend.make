# Empty compiler generated dependencies file for telescope_accounting_test.
# This may be replaced when dependencies are built.
