# Empty dependencies file for quic_aead_test.
# This may be replaced when dependencies are built.
