file(REMOVE_RECURSE
  "CMakeFiles/quic_aead_test.dir/quic_aead_test.cpp.o"
  "CMakeFiles/quic_aead_test.dir/quic_aead_test.cpp.o.d"
  "quic_aead_test"
  "quic_aead_test.pdb"
  "quic_aead_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_aead_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
