file(REMOVE_RECURSE
  "CMakeFiles/quic_packets_test.dir/quic_packets_test.cpp.o"
  "CMakeFiles/quic_packets_test.dir/quic_packets_test.cpp.o.d"
  "quic_packets_test"
  "quic_packets_test.pdb"
  "quic_packets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_packets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
