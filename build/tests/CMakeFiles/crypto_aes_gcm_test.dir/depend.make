# Empty dependencies file for crypto_aes_gcm_test.
# This may be replaced when dependencies are built.
