file(REMOVE_RECURSE
  "CMakeFiles/property_quic_test.dir/property_quic_test.cpp.o"
  "CMakeFiles/property_quic_test.dir/property_quic_test.cpp.o.d"
  "property_quic_test"
  "property_quic_test.pdb"
  "property_quic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_quic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
