# Empty dependencies file for property_quic_test.
# This may be replaced when dependencies are built.
