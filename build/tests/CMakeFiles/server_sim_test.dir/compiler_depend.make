# Empty compiler generated dependencies file for server_sim_test.
# This may be replaced when dependencies are built.
