# Empty dependencies file for net_pcapng_test.
# This may be replaced when dependencies are built.
