file(REMOVE_RECURSE
  "CMakeFiles/net_pcapng_test.dir/net_pcapng_test.cpp.o"
  "CMakeFiles/net_pcapng_test.dir/net_pcapng_test.cpp.o.d"
  "net_pcapng_test"
  "net_pcapng_test.pdb"
  "net_pcapng_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_pcapng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
