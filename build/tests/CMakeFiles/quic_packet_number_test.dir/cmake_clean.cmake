file(REMOVE_RECURSE
  "CMakeFiles/quic_packet_number_test.dir/quic_packet_number_test.cpp.o"
  "CMakeFiles/quic_packet_number_test.dir/quic_packet_number_test.cpp.o.d"
  "quic_packet_number_test"
  "quic_packet_number_test.pdb"
  "quic_packet_number_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_packet_number_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
