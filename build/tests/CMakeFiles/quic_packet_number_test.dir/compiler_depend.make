# Empty compiler generated dependencies file for quic_packet_number_test.
# This may be replaced when dependencies are built.
