file(REMOVE_RECURSE
  "CMakeFiles/quic_transport_params_test.dir/quic_transport_params_test.cpp.o"
  "CMakeFiles/quic_transport_params_test.dir/quic_transport_params_test.cpp.o.d"
  "quic_transport_params_test"
  "quic_transport_params_test.pdb"
  "quic_transport_params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_transport_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
