# Empty dependencies file for quic_transport_params_test.
# This may be replaced when dependencies are built.
