# Empty compiler generated dependencies file for quicsand_threat.
# This may be replaced when dependencies are built.
