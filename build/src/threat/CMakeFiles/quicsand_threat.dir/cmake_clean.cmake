file(REMOVE_RECURSE
  "CMakeFiles/quicsand_threat.dir/intel.cpp.o"
  "CMakeFiles/quicsand_threat.dir/intel.cpp.o.d"
  "libquicsand_threat.a"
  "libquicsand_threat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quicsand_threat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
