file(REMOVE_RECURSE
  "libquicsand_threat.a"
)
