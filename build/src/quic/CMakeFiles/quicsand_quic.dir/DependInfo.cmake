
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quic/ack_tracker.cpp" "src/quic/CMakeFiles/quicsand_quic.dir/ack_tracker.cpp.o" "gcc" "src/quic/CMakeFiles/quicsand_quic.dir/ack_tracker.cpp.o.d"
  "/root/repo/src/quic/connection_id.cpp" "src/quic/CMakeFiles/quicsand_quic.dir/connection_id.cpp.o" "gcc" "src/quic/CMakeFiles/quicsand_quic.dir/connection_id.cpp.o.d"
  "/root/repo/src/quic/dissector.cpp" "src/quic/CMakeFiles/quicsand_quic.dir/dissector.cpp.o" "gcc" "src/quic/CMakeFiles/quicsand_quic.dir/dissector.cpp.o.d"
  "/root/repo/src/quic/frames.cpp" "src/quic/CMakeFiles/quicsand_quic.dir/frames.cpp.o" "gcc" "src/quic/CMakeFiles/quicsand_quic.dir/frames.cpp.o.d"
  "/root/repo/src/quic/gquic.cpp" "src/quic/CMakeFiles/quicsand_quic.dir/gquic.cpp.o" "gcc" "src/quic/CMakeFiles/quicsand_quic.dir/gquic.cpp.o.d"
  "/root/repo/src/quic/header.cpp" "src/quic/CMakeFiles/quicsand_quic.dir/header.cpp.o" "gcc" "src/quic/CMakeFiles/quicsand_quic.dir/header.cpp.o.d"
  "/root/repo/src/quic/initial_aead.cpp" "src/quic/CMakeFiles/quicsand_quic.dir/initial_aead.cpp.o" "gcc" "src/quic/CMakeFiles/quicsand_quic.dir/initial_aead.cpp.o.d"
  "/root/repo/src/quic/packet_number.cpp" "src/quic/CMakeFiles/quicsand_quic.dir/packet_number.cpp.o" "gcc" "src/quic/CMakeFiles/quicsand_quic.dir/packet_number.cpp.o.d"
  "/root/repo/src/quic/packets.cpp" "src/quic/CMakeFiles/quicsand_quic.dir/packets.cpp.o" "gcc" "src/quic/CMakeFiles/quicsand_quic.dir/packets.cpp.o.d"
  "/root/repo/src/quic/retry.cpp" "src/quic/CMakeFiles/quicsand_quic.dir/retry.cpp.o" "gcc" "src/quic/CMakeFiles/quicsand_quic.dir/retry.cpp.o.d"
  "/root/repo/src/quic/stateless_reset.cpp" "src/quic/CMakeFiles/quicsand_quic.dir/stateless_reset.cpp.o" "gcc" "src/quic/CMakeFiles/quicsand_quic.dir/stateless_reset.cpp.o.d"
  "/root/repo/src/quic/tls_messages.cpp" "src/quic/CMakeFiles/quicsand_quic.dir/tls_messages.cpp.o" "gcc" "src/quic/CMakeFiles/quicsand_quic.dir/tls_messages.cpp.o.d"
  "/root/repo/src/quic/transport_params.cpp" "src/quic/CMakeFiles/quicsand_quic.dir/transport_params.cpp.o" "gcc" "src/quic/CMakeFiles/quicsand_quic.dir/transport_params.cpp.o.d"
  "/root/repo/src/quic/varint.cpp" "src/quic/CMakeFiles/quicsand_quic.dir/varint.cpp.o" "gcc" "src/quic/CMakeFiles/quicsand_quic.dir/varint.cpp.o.d"
  "/root/repo/src/quic/version.cpp" "src/quic/CMakeFiles/quicsand_quic.dir/version.cpp.o" "gcc" "src/quic/CMakeFiles/quicsand_quic.dir/version.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/quicsand_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/quicsand_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/quicsand_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
