# Empty compiler generated dependencies file for quicsand_quic.
# This may be replaced when dependencies are built.
