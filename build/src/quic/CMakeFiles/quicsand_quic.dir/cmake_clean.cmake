file(REMOVE_RECURSE
  "CMakeFiles/quicsand_quic.dir/ack_tracker.cpp.o"
  "CMakeFiles/quicsand_quic.dir/ack_tracker.cpp.o.d"
  "CMakeFiles/quicsand_quic.dir/connection_id.cpp.o"
  "CMakeFiles/quicsand_quic.dir/connection_id.cpp.o.d"
  "CMakeFiles/quicsand_quic.dir/dissector.cpp.o"
  "CMakeFiles/quicsand_quic.dir/dissector.cpp.o.d"
  "CMakeFiles/quicsand_quic.dir/frames.cpp.o"
  "CMakeFiles/quicsand_quic.dir/frames.cpp.o.d"
  "CMakeFiles/quicsand_quic.dir/gquic.cpp.o"
  "CMakeFiles/quicsand_quic.dir/gquic.cpp.o.d"
  "CMakeFiles/quicsand_quic.dir/header.cpp.o"
  "CMakeFiles/quicsand_quic.dir/header.cpp.o.d"
  "CMakeFiles/quicsand_quic.dir/initial_aead.cpp.o"
  "CMakeFiles/quicsand_quic.dir/initial_aead.cpp.o.d"
  "CMakeFiles/quicsand_quic.dir/packet_number.cpp.o"
  "CMakeFiles/quicsand_quic.dir/packet_number.cpp.o.d"
  "CMakeFiles/quicsand_quic.dir/packets.cpp.o"
  "CMakeFiles/quicsand_quic.dir/packets.cpp.o.d"
  "CMakeFiles/quicsand_quic.dir/retry.cpp.o"
  "CMakeFiles/quicsand_quic.dir/retry.cpp.o.d"
  "CMakeFiles/quicsand_quic.dir/stateless_reset.cpp.o"
  "CMakeFiles/quicsand_quic.dir/stateless_reset.cpp.o.d"
  "CMakeFiles/quicsand_quic.dir/tls_messages.cpp.o"
  "CMakeFiles/quicsand_quic.dir/tls_messages.cpp.o.d"
  "CMakeFiles/quicsand_quic.dir/transport_params.cpp.o"
  "CMakeFiles/quicsand_quic.dir/transport_params.cpp.o.d"
  "CMakeFiles/quicsand_quic.dir/varint.cpp.o"
  "CMakeFiles/quicsand_quic.dir/varint.cpp.o.d"
  "CMakeFiles/quicsand_quic.dir/version.cpp.o"
  "CMakeFiles/quicsand_quic.dir/version.cpp.o.d"
  "libquicsand_quic.a"
  "libquicsand_quic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quicsand_quic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
