file(REMOVE_RECURSE
  "libquicsand_quic.a"
)
