
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scanner/deployment.cpp" "src/scanner/CMakeFiles/quicsand_scanner.dir/deployment.cpp.o" "gcc" "src/scanner/CMakeFiles/quicsand_scanner.dir/deployment.cpp.o.d"
  "/root/repo/src/scanner/retry_prober.cpp" "src/scanner/CMakeFiles/quicsand_scanner.dir/retry_prober.cpp.o" "gcc" "src/scanner/CMakeFiles/quicsand_scanner.dir/retry_prober.cpp.o.d"
  "/root/repo/src/scanner/zmap.cpp" "src/scanner/CMakeFiles/quicsand_scanner.dir/zmap.cpp.o" "gcc" "src/scanner/CMakeFiles/quicsand_scanner.dir/zmap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asdb/CMakeFiles/quicsand_asdb.dir/DependInfo.cmake"
  "/root/repo/build/src/quic/CMakeFiles/quicsand_quic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/quicsand_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/quicsand_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/quicsand_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
