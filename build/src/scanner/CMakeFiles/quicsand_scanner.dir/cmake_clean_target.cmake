file(REMOVE_RECURSE
  "libquicsand_scanner.a"
)
