file(REMOVE_RECURSE
  "CMakeFiles/quicsand_scanner.dir/deployment.cpp.o"
  "CMakeFiles/quicsand_scanner.dir/deployment.cpp.o.d"
  "CMakeFiles/quicsand_scanner.dir/retry_prober.cpp.o"
  "CMakeFiles/quicsand_scanner.dir/retry_prober.cpp.o.d"
  "CMakeFiles/quicsand_scanner.dir/zmap.cpp.o"
  "CMakeFiles/quicsand_scanner.dir/zmap.cpp.o.d"
  "libquicsand_scanner.a"
  "libquicsand_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quicsand_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
