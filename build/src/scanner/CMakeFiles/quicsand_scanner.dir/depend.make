# Empty dependencies file for quicsand_scanner.
# This may be replaced when dependencies are built.
