file(REMOVE_RECURSE
  "CMakeFiles/quicsand_core.dir/classifier.cpp.o"
  "CMakeFiles/quicsand_core.dir/classifier.cpp.o.d"
  "CMakeFiles/quicsand_core.dir/correlate.cpp.o"
  "CMakeFiles/quicsand_core.dir/correlate.cpp.o.d"
  "CMakeFiles/quicsand_core.dir/dos.cpp.o"
  "CMakeFiles/quicsand_core.dir/dos.cpp.o.d"
  "CMakeFiles/quicsand_core.dir/online.cpp.o"
  "CMakeFiles/quicsand_core.dir/online.cpp.o.d"
  "CMakeFiles/quicsand_core.dir/pipeline.cpp.o"
  "CMakeFiles/quicsand_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/quicsand_core.dir/report.cpp.o"
  "CMakeFiles/quicsand_core.dir/report.cpp.o.d"
  "CMakeFiles/quicsand_core.dir/sessions.cpp.o"
  "CMakeFiles/quicsand_core.dir/sessions.cpp.o.d"
  "CMakeFiles/quicsand_core.dir/victims.cpp.o"
  "CMakeFiles/quicsand_core.dir/victims.cpp.o.d"
  "libquicsand_core.a"
  "libquicsand_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quicsand_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
