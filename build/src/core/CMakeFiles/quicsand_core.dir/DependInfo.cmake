
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classifier.cpp" "src/core/CMakeFiles/quicsand_core.dir/classifier.cpp.o" "gcc" "src/core/CMakeFiles/quicsand_core.dir/classifier.cpp.o.d"
  "/root/repo/src/core/correlate.cpp" "src/core/CMakeFiles/quicsand_core.dir/correlate.cpp.o" "gcc" "src/core/CMakeFiles/quicsand_core.dir/correlate.cpp.o.d"
  "/root/repo/src/core/dos.cpp" "src/core/CMakeFiles/quicsand_core.dir/dos.cpp.o" "gcc" "src/core/CMakeFiles/quicsand_core.dir/dos.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/quicsand_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/quicsand_core.dir/online.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/quicsand_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/quicsand_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/quicsand_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/quicsand_core.dir/report.cpp.o.d"
  "/root/repo/src/core/sessions.cpp" "src/core/CMakeFiles/quicsand_core.dir/sessions.cpp.o" "gcc" "src/core/CMakeFiles/quicsand_core.dir/sessions.cpp.o.d"
  "/root/repo/src/core/victims.cpp" "src/core/CMakeFiles/quicsand_core.dir/victims.cpp.o" "gcc" "src/core/CMakeFiles/quicsand_core.dir/victims.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asdb/CMakeFiles/quicsand_asdb.dir/DependInfo.cmake"
  "/root/repo/build/src/quic/CMakeFiles/quicsand_quic.dir/DependInfo.cmake"
  "/root/repo/build/src/scanner/CMakeFiles/quicsand_scanner.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/quicsand_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/quicsand_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/quicsand_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
