# Empty dependencies file for quicsand_core.
# This may be replaced when dependencies are built.
