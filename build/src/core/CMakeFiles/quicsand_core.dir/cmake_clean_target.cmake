file(REMOVE_RECURSE
  "libquicsand_core.a"
)
