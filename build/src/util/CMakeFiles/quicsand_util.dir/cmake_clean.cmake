file(REMOVE_RECURSE
  "CMakeFiles/quicsand_util.dir/bytes.cpp.o"
  "CMakeFiles/quicsand_util.dir/bytes.cpp.o.d"
  "CMakeFiles/quicsand_util.dir/stats.cpp.o"
  "CMakeFiles/quicsand_util.dir/stats.cpp.o.d"
  "CMakeFiles/quicsand_util.dir/table.cpp.o"
  "CMakeFiles/quicsand_util.dir/table.cpp.o.d"
  "CMakeFiles/quicsand_util.dir/time.cpp.o"
  "CMakeFiles/quicsand_util.dir/time.cpp.o.d"
  "libquicsand_util.a"
  "libquicsand_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quicsand_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
