file(REMOVE_RECURSE
  "libquicsand_util.a"
)
