# Empty dependencies file for quicsand_util.
# This may be replaced when dependencies are built.
