file(REMOVE_RECURSE
  "CMakeFiles/quicsand_net.dir/headers.cpp.o"
  "CMakeFiles/quicsand_net.dir/headers.cpp.o.d"
  "CMakeFiles/quicsand_net.dir/ip.cpp.o"
  "CMakeFiles/quicsand_net.dir/ip.cpp.o.d"
  "CMakeFiles/quicsand_net.dir/pcap.cpp.o"
  "CMakeFiles/quicsand_net.dir/pcap.cpp.o.d"
  "CMakeFiles/quicsand_net.dir/pcapng.cpp.o"
  "CMakeFiles/quicsand_net.dir/pcapng.cpp.o.d"
  "libquicsand_net.a"
  "libquicsand_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quicsand_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
