# Empty dependencies file for quicsand_net.
# This may be replaced when dependencies are built.
