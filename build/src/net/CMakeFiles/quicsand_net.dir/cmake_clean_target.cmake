file(REMOVE_RECURSE
  "libquicsand_net.a"
)
