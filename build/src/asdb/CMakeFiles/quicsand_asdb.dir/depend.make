# Empty dependencies file for quicsand_asdb.
# This may be replaced when dependencies are built.
