file(REMOVE_RECURSE
  "CMakeFiles/quicsand_asdb.dir/registry.cpp.o"
  "CMakeFiles/quicsand_asdb.dir/registry.cpp.o.d"
  "CMakeFiles/quicsand_asdb.dir/serialize.cpp.o"
  "CMakeFiles/quicsand_asdb.dir/serialize.cpp.o.d"
  "libquicsand_asdb.a"
  "libquicsand_asdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quicsand_asdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
