file(REMOVE_RECURSE
  "libquicsand_asdb.a"
)
