# Empty compiler generated dependencies file for quicsand_crypto.
# This may be replaced when dependencies are built.
