file(REMOVE_RECURSE
  "CMakeFiles/quicsand_crypto.dir/aes128.cpp.o"
  "CMakeFiles/quicsand_crypto.dir/aes128.cpp.o.d"
  "CMakeFiles/quicsand_crypto.dir/gcm.cpp.o"
  "CMakeFiles/quicsand_crypto.dir/gcm.cpp.o.d"
  "CMakeFiles/quicsand_crypto.dir/hkdf.cpp.o"
  "CMakeFiles/quicsand_crypto.dir/hkdf.cpp.o.d"
  "CMakeFiles/quicsand_crypto.dir/hmac.cpp.o"
  "CMakeFiles/quicsand_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/quicsand_crypto.dir/sha256.cpp.o"
  "CMakeFiles/quicsand_crypto.dir/sha256.cpp.o.d"
  "libquicsand_crypto.a"
  "libquicsand_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quicsand_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
