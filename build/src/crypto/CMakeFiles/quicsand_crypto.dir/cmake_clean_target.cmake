file(REMOVE_RECURSE
  "libquicsand_crypto.a"
)
