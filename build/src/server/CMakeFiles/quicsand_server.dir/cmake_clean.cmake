file(REMOVE_RECURSE
  "CMakeFiles/quicsand_server.dir/experiment.cpp.o"
  "CMakeFiles/quicsand_server.dir/experiment.cpp.o.d"
  "CMakeFiles/quicsand_server.dir/replay.cpp.o"
  "CMakeFiles/quicsand_server.dir/replay.cpp.o.d"
  "CMakeFiles/quicsand_server.dir/sim.cpp.o"
  "CMakeFiles/quicsand_server.dir/sim.cpp.o.d"
  "libquicsand_server.a"
  "libquicsand_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quicsand_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
