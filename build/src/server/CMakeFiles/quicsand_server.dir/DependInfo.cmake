
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/experiment.cpp" "src/server/CMakeFiles/quicsand_server.dir/experiment.cpp.o" "gcc" "src/server/CMakeFiles/quicsand_server.dir/experiment.cpp.o.d"
  "/root/repo/src/server/replay.cpp" "src/server/CMakeFiles/quicsand_server.dir/replay.cpp.o" "gcc" "src/server/CMakeFiles/quicsand_server.dir/replay.cpp.o.d"
  "/root/repo/src/server/sim.cpp" "src/server/CMakeFiles/quicsand_server.dir/sim.cpp.o" "gcc" "src/server/CMakeFiles/quicsand_server.dir/sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quic/CMakeFiles/quicsand_quic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/quicsand_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/quicsand_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/quicsand_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
