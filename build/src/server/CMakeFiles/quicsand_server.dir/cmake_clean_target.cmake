file(REMOVE_RECURSE
  "libquicsand_server.a"
)
