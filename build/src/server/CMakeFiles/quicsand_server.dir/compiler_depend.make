# Empty compiler generated dependencies file for quicsand_server.
# This may be replaced when dependencies are built.
