# Empty dependencies file for quicsand_telescope.
# This may be replaced when dependencies are built.
