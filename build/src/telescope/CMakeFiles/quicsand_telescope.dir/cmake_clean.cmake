file(REMOVE_RECURSE
  "CMakeFiles/quicsand_telescope.dir/attack_schedule.cpp.o"
  "CMakeFiles/quicsand_telescope.dir/attack_schedule.cpp.o.d"
  "CMakeFiles/quicsand_telescope.dir/emitters.cpp.o"
  "CMakeFiles/quicsand_telescope.dir/emitters.cpp.o.d"
  "CMakeFiles/quicsand_telescope.dir/generator.cpp.o"
  "CMakeFiles/quicsand_telescope.dir/generator.cpp.o.d"
  "CMakeFiles/quicsand_telescope.dir/scenario.cpp.o"
  "CMakeFiles/quicsand_telescope.dir/scenario.cpp.o.d"
  "libquicsand_telescope.a"
  "libquicsand_telescope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quicsand_telescope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
