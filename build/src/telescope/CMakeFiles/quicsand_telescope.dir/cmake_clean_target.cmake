file(REMOVE_RECURSE
  "libquicsand_telescope.a"
)
