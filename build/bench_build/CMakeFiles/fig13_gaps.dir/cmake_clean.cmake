file(REMOVE_RECURSE
  "../bench/fig13_gaps"
  "../bench/fig13_gaps.pdb"
  "CMakeFiles/fig13_gaps.dir/fig13_gaps.cpp.o"
  "CMakeFiles/fig13_gaps.dir/fig13_gaps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_gaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
