# Empty compiler generated dependencies file for fig13_gaps.
# This may be replaced when dependencies are built.
