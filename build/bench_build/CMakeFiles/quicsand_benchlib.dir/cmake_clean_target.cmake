file(REMOVE_RECURSE
  "libquicsand_benchlib.a"
)
