file(REMOVE_RECURSE
  "CMakeFiles/quicsand_benchlib.dir/bench_common.cpp.o"
  "CMakeFiles/quicsand_benchlib.dir/bench_common.cpp.o.d"
  "libquicsand_benchlib.a"
  "libquicsand_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quicsand_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
