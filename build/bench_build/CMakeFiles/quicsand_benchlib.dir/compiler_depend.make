# Empty compiler generated dependencies file for quicsand_benchlib.
# This may be replaced when dependencies are built.
