# Empty compiler generated dependencies file for fig09_provider_properties.
# This may be replaced when dependencies are built.
