file(REMOVE_RECURSE
  "../bench/fig09_provider_properties"
  "../bench/fig09_provider_properties.pdb"
  "CMakeFiles/fig09_provider_properties.dir/fig09_provider_properties.cpp.o"
  "CMakeFiles/fig09_provider_properties.dir/fig09_provider_properties.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_provider_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
