# Empty dependencies file for fig07_duration_intensity.
# This may be replaced when dependencies are built.
