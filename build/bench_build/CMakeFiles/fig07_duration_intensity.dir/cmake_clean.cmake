file(REMOVE_RECURSE
  "../bench/fig07_duration_intensity"
  "../bench/fig07_duration_intensity.pdb"
  "CMakeFiles/fig07_duration_intensity.dir/fig07_duration_intensity.cpp.o"
  "CMakeFiles/fig07_duration_intensity.dir/fig07_duration_intensity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_duration_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
