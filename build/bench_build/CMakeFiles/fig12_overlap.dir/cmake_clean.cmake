file(REMOVE_RECURSE
  "../bench/fig12_overlap"
  "../bench/fig12_overlap.pdb"
  "CMakeFiles/fig12_overlap.dir/fig12_overlap.cpp.o"
  "CMakeFiles/fig12_overlap.dir/fig12_overlap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
