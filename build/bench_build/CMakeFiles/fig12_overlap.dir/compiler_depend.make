# Empty compiler generated dependencies file for fig12_overlap.
# This may be replaced when dependencies are built.
