# Empty dependencies file for fig06_attacks_per_victim.
# This may be replaced when dependencies are built.
