file(REMOVE_RECURSE
  "../bench/fig06_attacks_per_victim"
  "../bench/fig06_attacks_per_victim.pdb"
  "CMakeFiles/fig06_attacks_per_victim.dir/fig06_attacks_per_victim.cpp.o"
  "CMakeFiles/fig06_attacks_per_victim.dir/fig06_attacks_per_victim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_attacks_per_victim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
