# Empty compiler generated dependencies file for fig03_requests_responses.
# This may be replaced when dependencies are built.
