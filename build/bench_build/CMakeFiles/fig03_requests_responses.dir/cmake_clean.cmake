file(REMOVE_RECURSE
  "../bench/fig03_requests_responses"
  "../bench/fig03_requests_responses.pdb"
  "CMakeFiles/fig03_requests_responses.dir/fig03_requests_responses.cpp.o"
  "CMakeFiles/fig03_requests_responses.dir/fig03_requests_responses.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_requests_responses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
