# Empty compiler generated dependencies file for fig02_research_bias.
# This may be replaced when dependencies are built.
