file(REMOVE_RECURSE
  "../bench/fig02_research_bias"
  "../bench/fig02_research_bias.pdb"
  "CMakeFiles/fig02_research_bias.dir/fig02_research_bias.cpp.o"
  "CMakeFiles/fig02_research_bias.dir/fig02_research_bias.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_research_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
