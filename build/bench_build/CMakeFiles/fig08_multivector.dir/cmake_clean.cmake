file(REMOVE_RECURSE
  "../bench/fig08_multivector"
  "../bench/fig08_multivector.pdb"
  "CMakeFiles/fig08_multivector.dir/fig08_multivector.cpp.o"
  "CMakeFiles/fig08_multivector.dir/fig08_multivector.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_multivector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
