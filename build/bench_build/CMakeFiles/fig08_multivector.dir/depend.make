# Empty dependencies file for fig08_multivector.
# This may be replaced when dependencies are built.
