# Empty compiler generated dependencies file for fig11_example_victim.
# This may be replaced when dependencies are built.
