file(REMOVE_RECURSE
  "../bench/fig11_example_victim"
  "../bench/fig11_example_victim.pdb"
  "CMakeFiles/fig11_example_victim.dir/fig11_example_victim.cpp.o"
  "CMakeFiles/fig11_example_victim.dir/fig11_example_victim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_example_victim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
