# Empty compiler generated dependencies file for fig05_network_types.
# This may be replaced when dependencies are built.
