file(REMOVE_RECURSE
  "../bench/fig05_network_types"
  "../bench/fig05_network_types.pdb"
  "CMakeFiles/fig05_network_types.dir/fig05_network_types.cpp.o"
  "CMakeFiles/fig05_network_types.dir/fig05_network_types.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_network_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
