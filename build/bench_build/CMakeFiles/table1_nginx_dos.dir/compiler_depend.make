# Empty compiler generated dependencies file for table1_nginx_dos.
# This may be replaced when dependencies are built.
