file(REMOVE_RECURSE
  "../bench/table1_nginx_dos"
  "../bench/table1_nginx_dos.pdb"
  "CMakeFiles/table1_nginx_dos.dir/table1_nginx_dos.cpp.o"
  "CMakeFiles/table1_nginx_dos.dir/table1_nginx_dos.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_nginx_dos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
