# Empty compiler generated dependencies file for fig04_timeout_knee.
# This may be replaced when dependencies are built.
