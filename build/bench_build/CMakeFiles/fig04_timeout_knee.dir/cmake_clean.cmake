file(REMOVE_RECURSE
  "../bench/fig04_timeout_knee"
  "../bench/fig04_timeout_knee.pdb"
  "CMakeFiles/fig04_timeout_knee.dir/fig04_timeout_knee.cpp.o"
  "CMakeFiles/fig04_timeout_knee.dir/fig04_timeout_knee.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_timeout_knee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
