# Empty dependencies file for dissect.
# This may be replaced when dependencies are built.
