file(REMOVE_RECURSE
  "CMakeFiles/dissect.dir/dissect.cpp.o"
  "CMakeFiles/dissect.dir/dissect.cpp.o.d"
  "dissect"
  "dissect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dissect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
