file(REMOVE_RECURSE
  "CMakeFiles/flood_lab.dir/flood_lab.cpp.o"
  "CMakeFiles/flood_lab.dir/flood_lab.cpp.o.d"
  "flood_lab"
  "flood_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flood_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
