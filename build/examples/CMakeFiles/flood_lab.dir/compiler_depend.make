# Empty compiler generated dependencies file for flood_lab.
# This may be replaced when dependencies are built.
