# Empty dependencies file for scan_survey.
# This may be replaced when dependencies are built.
