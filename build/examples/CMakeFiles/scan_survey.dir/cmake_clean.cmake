file(REMOVE_RECURSE
  "CMakeFiles/scan_survey.dir/scan_survey.cpp.o"
  "CMakeFiles/scan_survey.dir/scan_survey.cpp.o.d"
  "scan_survey"
  "scan_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
