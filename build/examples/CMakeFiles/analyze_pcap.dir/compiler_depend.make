# Empty compiler generated dependencies file for analyze_pcap.
# This may be replaced when dependencies are built.
