# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "3")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scan_survey "/root/repo/build/examples/scan_survey" "--probes" "4")
set_tests_properties(example_scan_survey PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_flood_lab "/root/repo/build/examples/flood_lab" "--pps" "500" "--packets" "20000" "--retry")
set_tests_properties(example_flood_lab PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dissect "/root/repo/build/examples/dissect" "--sample" "retry")
set_tests_properties(example_dissect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_monitor "/root/repo/build/examples/monitor" "--days" "1" "--seed" "5")
set_tests_properties(example_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_analyze_pcap_roundtrip "sh" "-c" "/root/repo/build/examples/analyze_pcap --emit quicsand_smoke.pcap --days 1           && /root/repo/build/examples/analyze_pcap --in quicsand_smoke.pcap --days 1           && rm quicsand_smoke.pcap")
set_tests_properties(example_analyze_pcap_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
