// Stateless Reset (RFC 9000 §10.3).
//
// A server that lost (or never had) state for a connection ID answers
// with a packet that is indistinguishable from a short-header packet
// except for its trailing 16-byte token, which the peer can recognize
// because the token is a PRF of the connection ID under a static key.
// The flood victims in our scenarios emit these when an attacker reuses
// a 5-tuple the server already dropped.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "quic/connection_id.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace quicsand::quic {

class StatelessResetter {
 public:
  static constexpr std::size_t kTokenSize = 16;
  /// Smallest useful reset: 1 header byte + 4 random + 16 token
  /// (RFC 9000 recommends at least 21 bytes and randomized sizes).
  static constexpr std::size_t kMinPacketSize = 21;

  using Token = std::array<std::uint8_t, kTokenSize>;

  /// `static_key` is the endpoint's long-lived reset key.
  explicit StatelessResetter(std::span<const std::uint8_t> static_key);

  /// Deterministic token for a connection ID (HMAC of the CID).
  [[nodiscard]] Token token_for(const ConnectionId& cid) const;

  /// Build a reset packet of `size` bytes for `cid`: short-header form,
  /// random body, trailing token.
  [[nodiscard]] std::vector<std::uint8_t> build(const ConnectionId& cid,
                                                util::Rng& rng,
                                                std::size_t size = 41) const;

  /// Allocation-free variant appending the same bytes to a caller-owned
  /// writer; build() delegates here.
  void build_into(util::ByteWriter& out, const ConnectionId& cid,
                  util::Rng& rng, std::size_t size = 41) const;

  /// True if `datagram` ends with the token for `cid` — how a client
  /// that chose `cid` detects the reset.
  [[nodiscard]] bool is_reset_for(std::span<const std::uint8_t> datagram,
                                  const ConnectionId& cid) const;

 private:
  std::vector<std::uint8_t> key_;
};

}  // namespace quicsand::quic
