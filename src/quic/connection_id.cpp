#include "quic/connection_id.hpp"

#include "util/bytes.hpp"

namespace quicsand::quic {

std::string ConnectionId::to_hex() const { return util::to_hex(bytes()); }

}  // namespace quicsand::quic
