#include "quic/dissector.hpp"

#include "quic/frames.hpp"
#include "quic/gquic.hpp"
#include "quic/initial_aead.hpp"
#include "quic/tls_messages.hpp"
#include "quic/version.hpp"

namespace quicsand::quic {

namespace {

constexpr std::size_t kMinShortHeaderPacket = 21;  // 1 + min CID + sample

QuicPacketKind kind_of(PacketType type) {
  switch (type) {
    case PacketType::kInitial:
      return QuicPacketKind::kInitial;
    case PacketType::kZeroRtt:
      return QuicPacketKind::kZeroRtt;
    case PacketType::kHandshake:
      return QuicPacketKind::kHandshake;
    case PacketType::kRetry:
      return QuicPacketKind::kRetry;
  }
  return QuicPacketKind::kShort;
}

/// Try to open an Initial packet in both directions and look for a
/// ClientHello, mirroring the paper's §6 validation.
InitialDirection classify_initial(std::span<const std::uint8_t> payload,
                                  const LongHeaderView& view) {
  if (salt_generation(view.version) == SaltGeneration::kNone) {
    return InitialDirection::kUndecryptable;
  }
  // A client Initial is protected with keys derived from its own DCID.
  const auto client_keys =
      derive_initial_keys(view.version, view.dcid, Perspective::kClient);
  if (auto opened = open_long_header_packet(client_keys, payload, view)) {
    if (auto frames = parse_frames(opened->payload)) {
      for (const auto& frame : *frames) {
        if (const auto* crypto = std::get_if<CryptoFrame>(&frame)) {
          if (is_client_hello(crypto->data)) {
            return InitialDirection::kClientHello;
          }
        }
      }
    }
    return InitialDirection::kServerResponse;  // decrypts, but no CH
  }
  // A server Initial reply is keyed on the *original* client DCID, which
  // an observer who missed the request cannot know.
  const auto server_keys =
      derive_initial_keys(view.version, view.dcid, Perspective::kServer);
  if (open_long_header_packet(server_keys, payload, view)) {
    return InitialDirection::kServerResponse;
  }
  return InitialDirection::kUndecryptable;
}

}  // namespace

const char* quic_packet_kind_name(QuicPacketKind kind) {
  switch (kind) {
    case QuicPacketKind::kInitial:
      return "initial";
    case QuicPacketKind::kZeroRtt:
      return "0rtt";
    case QuicPacketKind::kHandshake:
      return "handshake";
    case QuicPacketKind::kRetry:
      return "retry";
    case QuicPacketKind::kVersionNegotiation:
      return "version-negotiation";
    case QuicPacketKind::kShort:
      return "short";
    case QuicPacketKind::kGquic:
      return "gquic";
  }
  return "?";
}

DissectResult dissect_udp_payload(std::span<const std::uint8_t> payload,
                                  const DissectOptions& options) {
  DissectResult result;
  if (payload.empty()) {
    result.reject_reason = "empty";
    return result;
  }

  const std::uint8_t first = payload[0];
  if (!is_long_header_byte(first)) {
    // Short header: the only observable structure is the fixed bit and a
    // plausible minimum size (1-RTT packets carry >= 20 bytes of CID +
    // sample material).
    if (has_fixed_bit(first) && payload.size() >= kMinShortHeaderPacket) {
      DissectedPacket pkt;
      pkt.kind = QuicPacketKind::kShort;
      pkt.size = payload.size();
      result.is_quic = true;
      result.packets.push_back(pkt);
      return result;
    }
    // Legacy gQUIC (Q043-style public header): no fixed bit; the flags
    // byte selects connection id / version / packet number length. This
    // is how Google's Q0xx server responses appear on the wire.
    if (const auto gquic = parse_gquic_packet(payload)) {
      DissectedPacket pkt;
      pkt.kind = QuicPacketKind::kGquic;
      pkt.version = gquic->version;
      pkt.dcid = gquic->connection_id;
      pkt.size = payload.size();
      result.is_quic = true;
      result.packets.push_back(pkt);
      return result;
    }
    result.reject_reason = has_fixed_bit(first)
                               ? "short-header-too-small"
                               : "short-header-without-fixed-bit";
    return result;
  }

  // Long header form. gQUIC uses the same top bit in some versions;
  // check the version field family first.
  if (payload.size() >= 5) {
    const std::uint32_t version =
        (std::uint32_t{payload[1]} << 24) | (std::uint32_t{payload[2]} << 16) |
        (std::uint32_t{payload[3]} << 8) | std::uint32_t{payload[4]};
    if (version_family(version) == VersionFamily::kGquic) {
      DissectedPacket pkt;
      pkt.kind = QuicPacketKind::kGquic;
      pkt.version = version;
      pkt.size = payload.size();
      result.is_quic = true;
      result.packets.push_back(pkt);
      return result;
    }
    if (version_family(version) == VersionFamily::kUnknown &&
        !is_grease_version(version)) {
      result.reject_reason = "unknown-version";
      return result;
    }
  }

  // Walk coalesced long-header packets.
  std::size_t offset = 0;
  while (offset < payload.size()) {
    // Trailing zero padding after a coalesced packet is allowed.
    if (payload[offset] == 0x00) {
      bool all_zero = true;
      for (std::size_t i = offset; i < payload.size(); ++i) {
        if (payload[i] != 0) {
          all_zero = false;
          break;
        }
      }
      if (all_zero && !result.packets.empty()) break;
    }
    if (!is_long_header_byte(payload[offset])) {
      // A short-header packet may terminate a coalesced datagram.
      if (!result.packets.empty() && has_fixed_bit(payload[offset])) {
        DissectedPacket pkt;
        pkt.kind = QuicPacketKind::kShort;
        pkt.size = payload.size() - offset;
        result.packets.push_back(pkt);
        break;
      }
      result.reject_reason = "bad-coalesced-packet";
      result.packets.clear();
      return result;
    }
    ParseError error{};
    const auto view = parse_long_header(payload, offset, &error);
    if (!view) {
      result.reject_reason = parse_error_name(error);
      result.packets.clear();
      return result;
    }
    DissectedPacket pkt;
    pkt.kind = view->is_version_negotiation()
                   ? QuicPacketKind::kVersionNegotiation
                   : kind_of(view->type);
    pkt.version = view->version;
    pkt.dcid = view->dcid;
    pkt.scid = view->scid;
    pkt.token_length = view->token_length;
    pkt.size = view->packet_end - offset;
    if (pkt.kind == QuicPacketKind::kInitial && options.decrypt_initials) {
      pkt.direction = classify_initial(payload, *view);
    }
    result.packets.push_back(pkt);
    offset = view->packet_end;
  }

  result.is_quic = !result.packets.empty();
  if (!result.is_quic && result.reject_reason.empty()) {
    result.reject_reason = "no-packets";
  }
  return result;
}

}  // namespace quicsand::quic
