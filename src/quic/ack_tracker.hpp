// Received-packet tracking and ACK frame construction (RFC 9000 §13.2).
//
// Maintains the set of received packet numbers as disjoint ranges and
// renders them in the ACK frame's descending gap/length encoding. Used
// by endpoints that answer handshake flights; also a building block for
// consumers replaying real captures through the library.
#pragma once

#include <cstdint>
#include <map>

#include "quic/frames.hpp"

namespace quicsand::quic {

class AckTracker {
 public:
  /// Record a received packet number; duplicates are detected and
  /// ignored. Returns false when `pn` was already present.
  bool on_packet(std::uint64_t pn);

  [[nodiscard]] bool contains(std::uint64_t pn) const;
  [[nodiscard]] bool empty() const { return ranges_.empty(); }
  /// Largest packet number seen; empty() must be false.
  [[nodiscard]] std::uint64_t largest() const;
  /// Number of distinct packet numbers tracked.
  [[nodiscard]] std::uint64_t packet_count() const { return count_; }
  /// Number of disjoint ranges (ACK frame size driver).
  [[nodiscard]] std::size_t range_count() const { return ranges_.size(); }

  /// Build the ACK frame describing everything received. `max_ranges`
  /// bounds frame size by dropping the oldest ranges, as real stacks do.
  [[nodiscard]] AckFrame build_ack(std::uint64_t ack_delay,
                                   std::size_t max_ranges = 32) const;

  /// Apply an ACK frame to a fresh tracker (the inverse of build_ack);
  /// useful for tests and for interpreting captured ACKs.
  static AckTracker from_ack(const AckFrame& frame);

 private:
  // start -> end (inclusive), disjoint and non-adjacent.
  std::map<std::uint64_t, std::uint64_t> ranges_;
  std::uint64_t count_ = 0;
};

}  // namespace quicsand::quic
