#include "quic/ack_tracker.hpp"

#include <stdexcept>

namespace quicsand::quic {

bool AckTracker::on_packet(std::uint64_t pn) {
  if (contains(pn)) return false;
  ++count_;

  // Find the neighbours to merge with.
  auto next = ranges_.lower_bound(pn);
  const bool merge_next = next != ranges_.end() && next->first == pn + 1;
  auto prev = next == ranges_.begin() ? ranges_.end() : std::prev(next);
  const bool merge_prev =
      prev != ranges_.end() && prev->second + 1 == pn;

  if (merge_prev && merge_next) {
    prev->second = next->second;
    ranges_.erase(next);
  } else if (merge_prev) {
    prev->second = pn;
  } else if (merge_next) {
    const auto end = next->second;
    ranges_.erase(next);
    ranges_.emplace(pn, end);
  } else {
    ranges_.emplace(pn, pn);
  }
  return true;
}

bool AckTracker::contains(std::uint64_t pn) const {
  auto it = ranges_.upper_bound(pn);
  if (it == ranges_.begin()) return false;
  --it;
  return pn >= it->first && pn <= it->second;
}

std::uint64_t AckTracker::largest() const {
  if (ranges_.empty()) throw std::logic_error("AckTracker: empty");
  return ranges_.rbegin()->second;
}

AckFrame AckTracker::build_ack(std::uint64_t ack_delay,
                               std::size_t max_ranges) const {
  if (ranges_.empty()) throw std::logic_error("AckTracker: empty");
  AckFrame frame;
  frame.ack_delay = ack_delay;

  auto it = ranges_.rbegin();
  frame.largest_acknowledged = it->second;
  frame.first_range = it->second - it->first;
  std::uint64_t prev_start = it->first;
  ++it;
  for (; it != ranges_.rend() && frame.ranges.size() + 1 < max_ranges;
       ++it) {
    // Gap: packets between this range's end and the previous range's
    // start, minus-2 encoded (RFC 9000 §19.3.1).
    const std::uint64_t gap = prev_start - it->second - 2;
    const std::uint64_t length = it->second - it->first;
    frame.ranges.emplace_back(gap, length);
    prev_start = it->first;
  }
  return frame;
}

AckTracker AckTracker::from_ack(const AckFrame& frame) {
  AckTracker tracker;
  std::uint64_t end = frame.largest_acknowledged;
  if (frame.first_range > end) {
    throw std::invalid_argument("from_ack: first range underflows");
  }
  std::uint64_t start = end - frame.first_range;
  for (std::uint64_t pn = start; pn <= end && pn >= start; ++pn) {
    tracker.on_packet(pn);
  }
  for (const auto& [gap, length] : frame.ranges) {
    // next_end = start - gap - 2 (inverse of the encoder above).
    if (start < gap + 2) {
      throw std::invalid_argument("from_ack: gap underflows");
    }
    end = start - gap - 2;
    if (length > end) {
      throw std::invalid_argument("from_ack: range underflows");
    }
    start = end - length;
    for (std::uint64_t pn = start; pn <= end; ++pn) tracker.on_packet(pn);
  }
  return tracker;
}

}  // namespace quicsand::quic
