// QUIC connection IDs (RFC 9000 §5.1): 0..20 opaque bytes.
//
// The paper counts distinct SCIDs in backscatter to estimate how much
// state the attacked server allocated (Figure 9), so ConnectionId must be
// cheap to hash and compare. It is a fixed inline array plus a length.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>

namespace quicsand::quic {

class ConnectionId {
 public:
  static constexpr std::size_t kMaxSize = 20;

  ConnectionId() = default;

  explicit ConnectionId(std::span<const std::uint8_t> bytes) {
    if (bytes.size() > kMaxSize) {
      throw std::invalid_argument("ConnectionId: longer than 20 bytes");
    }
    length_ = static_cast<std::uint8_t>(bytes.size());
    // Zero-length CIDs are valid and may carry bytes.data() == nullptr,
    // which memcpy forbids even for size 0.
    // lint:allow(raw-memcpy): bounded copy into the inline buffer
    if (length_ > 0) std::memcpy(data_.data(), bytes.data(), bytes.size());
  }

  [[nodiscard]] std::size_t size() const { return length_; }
  [[nodiscard]] bool empty() const { return length_ == 0; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {data_.data(), length_};
  }

  [[nodiscard]] std::string to_hex() const;

  friend bool operator==(const ConnectionId& a, const ConnectionId& b) {
    return a.length_ == b.length_ &&
           std::memcmp(a.data_.data(), b.data_.data(), a.length_) == 0;
  }

  friend auto operator<=>(const ConnectionId& a, const ConnectionId& b) {
    const int c = std::memcmp(a.data_.data(), b.data_.data(),
                              std::min(a.length_, b.length_));
    if (c != 0) return c <=> 0;
    return a.length_ <=> b.length_;
  }

  /// FNV-1a over the contents; stable across runs.
  [[nodiscard]] std::size_t hash() const {
    std::size_t h = 14695981039346656037ULL;
    for (std::size_t i = 0; i < length_; ++i) {
      h = (h ^ data_[i]) * 1099511628211ULL;
    }
    return h;
  }

 private:
  std::array<std::uint8_t, kMaxSize> data_{};
  std::uint8_t length_ = 0;
};

}  // namespace quicsand::quic

template <>
struct std::hash<quicsand::quic::ConnectionId> {
  std::size_t operator()(const quicsand::quic::ConnectionId& id) const noexcept {
    return id.hash();
  }
};
