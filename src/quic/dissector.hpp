// Heuristic QUIC dissector — our stand-in for the Wireshark payload
// dissectors the paper uses to validate port-based classification (§4.1).
//
// Given a UDP payload, it decides whether the bytes are plausibly QUIC,
// and if so enumerates the (possibly coalesced) packets with the fields
// an on-path observer can read: type, version, DCID, SCID, token and
// payload lengths. Optionally it attempts to remove Initial protection
// ("deep" mode) to classify the direction of an Initial — this is how the
// analysis implements the paper's §6 check that backscatter Initials do
// not contain an unencrypted TLS Client Hello.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "quic/connection_id.hpp"
#include "quic/header.hpp"

namespace quicsand::quic {

enum class QuicPacketKind : std::uint8_t {
  kInitial,
  kZeroRtt,
  kHandshake,
  kRetry,
  kVersionNegotiation,
  kShort,   ///< 1-RTT packet; DCID length unknown to an observer
  kGquic,   ///< legacy gQUIC framing (not further dissected)
};

const char* quic_packet_kind_name(QuicPacketKind kind);

/// Result of deep (decrypting) inspection of an Initial packet.
enum class InitialDirection : std::uint8_t {
  kNotAttempted,
  kClientHello,    ///< decrypted with client keys, carries a ClientHello
  kServerResponse, ///< decrypts with server keys (SCID-routed reply)
  kUndecryptable,  ///< neither key works: response to an unseen Initial
};

struct DissectedPacket {
  QuicPacketKind kind = QuicPacketKind::kShort;
  std::uint32_t version = 0;
  ConnectionId dcid;
  ConnectionId scid;  ///< long headers only
  std::size_t token_length = 0;
  std::size_t size = 0;  ///< bytes of this QUIC packet on the wire
  InitialDirection direction = InitialDirection::kNotAttempted;
};

struct DissectResult {
  bool is_quic = false;
  std::vector<DissectedPacket> packets;
  std::string reject_reason;  ///< filled when !is_quic
};

struct DissectOptions {
  /// Attempt Initial decryption to classify packet direction. Costs two
  /// key derivations + AEAD per Initial; off for bulk classification.
  bool decrypt_initials = false;
};

DissectResult dissect_udp_payload(std::span<const std::uint8_t> payload,
                                  const DissectOptions& options = {});

}  // namespace quicsand::quic
