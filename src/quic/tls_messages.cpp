#include "quic/tls_messages.hpp"

#include <array>

#include "quic/transport_params.hpp"

#include "util/bytes.hpp"

namespace quicsand::quic {

using util::ByteReader;
using util::ByteWriter;

namespace {

constexpr std::uint16_t kTls12 = 0x0303;
constexpr std::uint16_t kTls13 = 0x0304;
constexpr std::uint16_t kCipherAes128GcmSha256 = 0x1301;
constexpr std::uint16_t kCipherAes256GcmSha384 = 0x1302;
constexpr std::uint16_t kCipherChacha20 = 0x1303;
constexpr std::uint16_t kGroupX25519 = 0x001d;

constexpr std::uint16_t kExtServerName = 0;
constexpr std::uint16_t kExtSupportedGroups = 10;
constexpr std::uint16_t kExtSignatureAlgorithms = 13;
constexpr std::uint16_t kExtAlpn = 16;
constexpr std::uint16_t kExtSupportedVersions = 43;
constexpr std::uint16_t kExtKeyShare = 51;
constexpr std::uint16_t kExtQuicTransportParams = 0x0039;

/// Writes an extension header and returns the offset of its 2-byte
/// length field for later patching.
std::size_t begin_extension(ByteWriter& w, std::uint16_t type) {
  w.write_u16(type);
  const std::size_t len_offset = w.size();
  w.write_u16(0);
  return len_offset;
}

void end_extension(ByteWriter& w, std::size_t len_offset) {
  w.patch_be(len_offset, w.size() - len_offset - 2, 2);
}

/// Begin a handshake message (type + 24-bit length placeholder); returns
/// the offset of the length field for end_message().
std::size_t begin_message(ByteWriter& w, TlsHandshakeType type) {
  w.write_u8(static_cast<std::uint8_t>(type));
  const std::size_t len_offset = w.size();
  w.write_u24(0);
  return len_offset;
}

void end_message(ByteWriter& w, std::size_t len_offset) {
  w.patch_be(len_offset, w.size() - len_offset - 3, 3);
}

/// Draw 32 random bytes into the writer without a heap allocation
/// (byte-identical to write_bytes(rng.bytes(32))).
void write_random32(ByteWriter& w, util::Rng& rng) {
  std::array<std::uint8_t, 32> tmp;
  rng.fill(tmp);
  w.write_bytes(tmp);
}

}  // namespace

std::vector<std::uint8_t> build_client_hello(std::string_view sni,
                                             util::Rng& rng) {
  ByteWriter w(320);
  build_client_hello_into(w, sni, rng);
  return w.take();
}

void build_client_hello_into(ByteWriter& b, std::string_view sni,
                             util::Rng& rng) {
  const std::size_t message_len_offset =
      begin_message(b, TlsHandshakeType::kClientHello);
  b.write_u16(kTls12);  // legacy_version
  write_random32(b, rng);  // random
  b.write_u8(32);  // legacy_session_id (middlebox compatibility)
  write_random32(b, rng);
  b.write_u16(6);  // cipher_suites length
  b.write_u16(kCipherAes128GcmSha256);
  b.write_u16(kCipherAes256GcmSha384);
  b.write_u16(kCipherChacha20);
  b.write_u8(1);  // legacy_compression_methods
  b.write_u8(0);

  const std::size_t ext_block_len_offset = b.size();
  b.write_u16(0);  // extensions length, patched below

  if (!sni.empty()) {
    const std::size_t ext = begin_extension(b, kExtServerName);
    b.write_u16(static_cast<std::uint16_t>(sni.size() + 3));  // list length
    b.write_u8(0);  // name_type host_name
    b.write_u16(static_cast<std::uint16_t>(sni.size()));
    b.write_bytes({reinterpret_cast<const std::uint8_t*>(sni.data()),
                   sni.size()});
    end_extension(b, ext);
  }
  {
    const std::size_t ext = begin_extension(b, kExtSupportedGroups);
    b.write_u16(2);
    b.write_u16(kGroupX25519);
    end_extension(b, ext);
  }
  {
    const std::size_t ext = begin_extension(b, kExtSignatureAlgorithms);
    b.write_u16(6);
    b.write_u16(0x0403);  // ecdsa_secp256r1_sha256
    b.write_u16(0x0804);  // rsa_pss_rsae_sha256
    b.write_u16(0x0401);  // rsa_pkcs1_sha256
    end_extension(b, ext);
  }
  {
    const std::size_t ext = begin_extension(b, kExtAlpn);
    const std::string_view h3 = "h3";
    const std::string_view h3_29 = "h3-29";
    b.write_u16(static_cast<std::uint16_t>(1 + h3.size() + 1 + h3_29.size()));
    b.write_u8(static_cast<std::uint8_t>(h3.size()));
    b.write_bytes({reinterpret_cast<const std::uint8_t*>(h3.data()),
                   h3.size()});
    b.write_u8(static_cast<std::uint8_t>(h3_29.size()));
    b.write_bytes({reinterpret_cast<const std::uint8_t*>(h3_29.data()),
                   h3_29.size()});
    end_extension(b, ext);
  }
  {
    const std::size_t ext = begin_extension(b, kExtSupportedVersions);
    b.write_u8(2);
    b.write_u16(kTls13);
    end_extension(b, ext);
  }
  {
    const std::size_t ext = begin_extension(b, kExtKeyShare);
    b.write_u16(4 + 32);  // client_shares length
    b.write_u16(kGroupX25519);
    b.write_u16(32);
    write_random32(b, rng);  // simulated public key
    end_extension(b, ext);
  }
  {
    const std::size_t ext = begin_extension(b, kExtQuicTransportParams);
    // The full RFC 9000 §18 parameter set a typical client advertises;
    // the SCID is random here (the CRYPTO payload is what matters).
    std::array<std::uint8_t, 8> scid_bytes;
    rng.fill(scid_bytes);
    encode_transport_parameters_into(
        b, TransportParameters::typical_client(ConnectionId(scid_bytes)));
    end_extension(b, ext);
  }

  b.patch_be(ext_block_len_offset, b.size() - ext_block_len_offset - 2, 2);
  end_message(b, message_len_offset);
}

std::vector<std::uint8_t> build_server_hello(util::Rng& rng) {
  ByteWriter w(128);
  build_server_hello_into(w, rng);
  return w.take();
}

void build_server_hello_into(ByteWriter& b, util::Rng& rng) {
  const std::size_t message_len_offset =
      begin_message(b, TlsHandshakeType::kServerHello);
  b.write_u16(kTls12);
  write_random32(b, rng);  // random
  b.write_u8(32);
  write_random32(b, rng);  // echoed legacy_session_id
  b.write_u16(kCipherAes128GcmSha256);
  b.write_u8(0);  // legacy_compression_method

  const std::size_t ext_block_len_offset = b.size();
  b.write_u16(0);
  {
    const std::size_t ext = begin_extension(b, kExtSupportedVersions);
    b.write_u16(kTls13);
    end_extension(b, ext);
  }
  {
    const std::size_t ext = begin_extension(b, kExtKeyShare);
    b.write_u16(kGroupX25519);
    b.write_u16(32);
    write_random32(b, rng);
    end_extension(b, ext);
  }
  b.patch_be(ext_block_len_offset, b.size() - ext_block_len_offset - 2, 2);
  end_message(b, message_len_offset);
}

std::optional<TlsMessageInfo> parse_tls_message(
    std::span<const std::uint8_t> data) {
  try {
    ByteReader r(data);
    const std::uint8_t type = r.read_u8();
    const std::uint32_t body_length = r.read_u24();
    if (type != static_cast<std::uint8_t>(TlsHandshakeType::kClientHello) &&
        type != static_cast<std::uint8_t>(TlsHandshakeType::kServerHello) &&
        type != static_cast<std::uint8_t>(
                    TlsHandshakeType::kEncryptedExtensions) &&
        type != static_cast<std::uint8_t>(TlsHandshakeType::kCertificate) &&
        type != static_cast<std::uint8_t>(
                    TlsHandshakeType::kCertificateVerify) &&
        type != static_cast<std::uint8_t>(TlsHandshakeType::kFinished)) {
      return std::nullopt;
    }
    if (body_length > data.size() - 4) return std::nullopt;

    TlsMessageInfo info{static_cast<TlsHandshakeType>(type), body_length,
                        std::nullopt};
    if (info.type != TlsHandshakeType::kClientHello) return info;

    // Walk the ClientHello to the extension block to extract the SNI.
    r.skip(2);   // legacy_version
    r.skip(32);  // random
    const std::uint8_t session_len = r.read_u8();
    r.skip(session_len);
    const std::uint16_t ciphers_len = r.read_u16().to_host();
    r.skip(ciphers_len);
    const std::uint8_t compression_len = r.read_u8();
    r.skip(compression_len);
    if (r.remaining() < 2) return info;
    const std::uint16_t ext_block_len = r.read_u16().to_host();
    if (ext_block_len > r.remaining()) return std::nullopt;
    ByteReader exts(r.read_bytes(ext_block_len));
    while (exts.remaining() >= 4) {
      const std::uint16_t ext_type = exts.read_u16().to_host();
      const std::uint16_t ext_len = exts.read_u16().to_host();
      if (ext_len > exts.remaining()) return std::nullopt;
      if (ext_type == kExtServerName && ext_len >= 5) {
        ByteReader sni(exts.read_bytes(ext_len));
        sni.skip(2);  // list length
        sni.skip(1);  // name type
        const std::uint16_t name_len = sni.read_u16().to_host();
        if (name_len <= sni.remaining()) {
          const auto name = sni.read_bytes(name_len);
          info.sni = std::string(name.begin(), name.end());
        }
      } else {
        exts.skip(ext_len);
      }
    }
    return info;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

bool is_client_hello(std::span<const std::uint8_t> data) {
  const auto info = parse_tls_message(data);
  return info.has_value() && info->type == TlsHandshakeType::kClientHello;
}

}  // namespace quicsand::quic
