// QUIC Initial packet protection (RFC 9001 §5).
//
// Initial packets are protected with keys every on-path observer can
// derive from the client's Destination Connection ID and a version
// specific salt: AEAD_AES_128_GCM for the payload plus AES-based header
// protection over the first byte and the packet number.
//
// The same machinery is reused for the *simulated* Handshake packet
// space (see derive_handshake_keys_simulated): real Handshake keys come
// out of the TLS 1.3 key schedule, which would require a full TLS stack;
// we instead derive them deterministically from the connection's initial
// DCID with distinct labels. The wire image (header layout, AEAD
// expansion, header protection) is identical, which is all the telescope
// side of the paper can observe anyway. Documented in DESIGN.md.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "quic/connection_id.hpp"
#include "quic/header.hpp"
#include "quic/version.hpp"

namespace quicsand::quic {

enum class Perspective { kClient, kServer };

struct PacketKeys {
  std::array<std::uint8_t, 16> key{};
  std::array<std::uint8_t, 12> iv{};
  std::array<std::uint8_t, 16> hp{};
};

/// Derive the Initial keys for one direction (RFC 9001 §5.2). Throws for
/// versions without an RFC 9001 schedule (gQUIC, unknown).
PacketKeys derive_initial_keys(std::uint32_t version, const ConnectionId& dcid,
                               Perspective perspective);

/// Simulated Handshake-space keys (see file comment).
PacketKeys derive_handshake_keys_simulated(std::uint32_t version,
                                           const ConnectionId& dcid,
                                           Perspective perspective);

/// Build a fully protected long-header packet: encode `hdr`, encrypt
/// `payload` and apply header protection. Returns the complete packet
/// bytes (one QUIC packet, ready to be a UDP payload or coalesced).
std::vector<std::uint8_t> seal_long_header_packet(
    const PacketKeys& keys, const LongHeader& hdr,
    std::span<const std::uint8_t> payload);

struct OpenedPacket {
  std::uint64_t packet_number = 0;
  std::vector<std::uint8_t> payload;
};

/// Remove header and packet protection from the packet described by
/// `view` inside `datagram`. Returns nullopt if the keys do not match
/// (wrong direction, wrong DCID, corrupted packet).
std::optional<OpenedPacket> open_long_header_packet(
    const PacketKeys& keys, std::span<const std::uint8_t> datagram,
    const LongHeaderView& view);

}  // namespace quicsand::quic
