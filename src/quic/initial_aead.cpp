#include "quic/initial_aead.hpp"

#include <cstring>
#include <stdexcept>

#include "crypto/aes128.hpp"
#include "crypto/gcm.hpp"
#include "crypto/hkdf.hpp"

namespace quicsand::quic {

namespace {

PacketKeys keys_from_secret(std::span<const std::uint8_t> secret) {
  PacketKeys keys;
  const auto key = crypto::hkdf_expand_label(secret, "quic key", {}, 16);
  const auto iv = crypto::hkdf_expand_label(secret, "quic iv", {}, 12);
  const auto hp = crypto::hkdf_expand_label(secret, "quic hp", {}, 16);
  // lint:allow(raw-memcpy): fixed-size key material splits
  std::memcpy(keys.key.data(), key.data(), 16);
  std::memcpy(keys.iv.data(), iv.data(), 12);   // lint:allow(raw-memcpy)
  std::memcpy(keys.hp.data(), hp.data(), 16);   // lint:allow(raw-memcpy)
  return keys;
}

PacketKeys derive_keys(std::uint32_t version, const ConnectionId& dcid,
                       Perspective perspective, const char* client_label,
                       const char* server_label) {
  const auto generation = salt_generation(version);
  if (generation == SaltGeneration::kNone) {
    throw std::invalid_argument(
        "derive_keys: no RFC 9001 schedule for version " +
        version_name(version));
  }
  const auto secret =
      crypto::hkdf_extract(initial_salt(generation), dcid.bytes());
  const char* label =
      perspective == Perspective::kClient ? client_label : server_label;
  const auto dir_secret = crypto::hkdf_expand_label(secret, label, {}, 32);
  return keys_from_secret(dir_secret);
}

/// Nonce = IV xor left-padded packet number (RFC 9001 §5.3).
std::array<std::uint8_t, 12> make_nonce(const PacketKeys& keys,
                                        std::uint64_t packet_number) {
  auto nonce = keys.iv;
  for (int i = 0; i < 8; ++i) {
    nonce[11 - static_cast<std::size_t>(i)] ^=
        static_cast<std::uint8_t>(packet_number >> (8 * i));
  }
  return nonce;
}

}  // namespace

PacketKeys derive_initial_keys(std::uint32_t version, const ConnectionId& dcid,
                               Perspective perspective) {
  return derive_keys(version, dcid, perspective, "client in", "server in");
}

PacketKeys derive_handshake_keys_simulated(std::uint32_t version,
                                           const ConnectionId& dcid,
                                           Perspective perspective) {
  // Substitution: distinct labels keep the two packet spaces
  // cryptographically separated, like the real TLS schedule would.
  return derive_keys(version, dcid, perspective, "client hs sim",
                     "server hs sim");
}

std::vector<std::uint8_t> seal_long_header_packet(
    const PacketKeys& keys, const LongHeader& hdr,
    std::span<const std::uint8_t> payload) {
  EncodedHeader encoded = encode_long_header(hdr);
  const std::size_t pn_len =
      static_cast<std::size_t>(hdr.packet_number_length);
  const std::size_t total_length =
      pn_len + payload.size() + crypto::AesGcm::kTagSize;
  if (total_length > 16383) {
    throw std::invalid_argument("seal: payload too large for 2-byte length");
  }
  // Patch the Length varint (2-byte encoding: 0x4000 | value).
  util::ByteWriter header_writer;
  header_writer.write_bytes(encoded.bytes);
  header_writer.patch_be(encoded.length_offset, 0x4000 | total_length, 2);
  std::vector<std::uint8_t> packet = header_writer.take();

  // AEAD over the payload, header as AAD.
  const auto nonce = make_nonce(keys, hdr.packet_number);
  crypto::AesGcm aead(keys.key);
  const auto sealed = aead.seal(nonce, packet, payload);
  packet.insert(packet.end(), sealed.begin(), sealed.end());

  // Header protection (RFC 9001 §5.4): sample 16 bytes of ciphertext
  // starting 4 bytes after the start of the PN field.
  const std::size_t sample_offset = encoded.pn_offset + 4;
  crypto::Aes128 hp(keys.hp);
  const auto mask =
      hp.encrypt_block({packet.data() + sample_offset, 16});
  packet[0] ^= static_cast<std::uint8_t>(mask[0] & 0x0f);
  for (std::size_t i = 0; i < pn_len; ++i) {
    packet[encoded.pn_offset + i] ^= mask[1 + i];
  }
  return packet;
}

std::optional<OpenedPacket> open_long_header_packet(
    const PacketKeys& keys, std::span<const std::uint8_t> datagram,
    const LongHeaderView& view) {
  if (view.is_version_negotiation() || view.type == PacketType::kRetry) {
    return std::nullopt;
  }
  if (view.packet_end > datagram.size() ||
      view.pn_offset + 4 + 16 > view.packet_end ||
      view.packet_start >= view.pn_offset) {
    return std::nullopt;
  }
  // Copy this packet so we can unmask in place.
  std::vector<std::uint8_t> packet(
      datagram.begin() + static_cast<std::ptrdiff_t>(view.packet_start),
      datagram.begin() + static_cast<std::ptrdiff_t>(view.packet_end));
  const std::size_t pn_offset = view.pn_offset - view.packet_start;

  // Remove header protection.
  crypto::Aes128 hp(keys.hp);
  if (pn_offset + 4 + 16 > packet.size()) return std::nullopt;
  const auto mask = hp.encrypt_block({packet.data() + pn_offset + 4, 16});
  packet[0] ^= static_cast<std::uint8_t>(mask[0] & 0x0f);
  const std::size_t pn_len = static_cast<std::size_t>(packet[0] & 0x03) + 1;
  std::uint64_t pn = 0;
  for (std::size_t i = 0; i < pn_len; ++i) {
    packet[pn_offset + i] ^= mask[1 + i];
    pn = (pn << 8) | packet[pn_offset + i];
  }
  // (No PN reconstruction against a largest-acked: Initial flights are
  // low-numbered, and the simulator never wraps the truncated space.)

  const std::size_t payload_offset = pn_offset + pn_len;
  if (payload_offset > packet.size()) return std::nullopt;
  const auto nonce = make_nonce(keys, pn);
  crypto::AesGcm aead(keys.key);
  auto plaintext =
      aead.open(nonce, {packet.data(), payload_offset},
                {packet.data() + payload_offset,
                 packet.size() - payload_offset});
  if (!plaintext) return std::nullopt;
  OpenedPacket out;
  out.packet_number = pn;
  out.payload = *std::move(plaintext);
  return out;
}

}  // namespace quicsand::quic
