#include "quic/gquic.hpp"

#include <stdexcept>

#include "util/bytes.hpp"

namespace quicsand::quic {

namespace {

int pn_length_from_flags(std::uint8_t flags) {
  switch ((flags >> 4) & 0x03) {
    case 0:
      return 1;
    case 1:
      return 2;
    case 2:
      return 4;
    default:
      return 6;
  }
}

std::uint8_t pn_flags_from_length(int length) {
  switch (length) {
    case 1:
      return 0 << 4;
    case 2:
      return 1 << 4;
    case 4:
      return 2 << 4;
    case 6:
      return 3 << 4;
    default:
      throw std::invalid_argument("gquic: bad packet number length");
  }
}

}  // namespace

std::vector<std::uint8_t> build_gquic_packet(
    const ConnectionId& connection_id, std::uint32_t version,
    std::uint64_t packet_number, std::span<const std::uint8_t> payload) {
  util::ByteWriter w(16 + payload.size());
  build_gquic_packet_into(w, connection_id, version, packet_number, payload);
  return w.take();
}

void build_gquic_packet_into(
    util::ByteWriter& w, const ConnectionId& connection_id,
    std::uint32_t version, std::uint64_t packet_number,
    std::span<const std::uint8_t> payload) {
  if (!connection_id.empty() && connection_id.size() != 8) {
    throw std::invalid_argument("gquic: connection id must be 8 bytes");
  }
  // Pick the smallest packet number encoding.
  int pn_length = 1;
  if (packet_number > 0xffffffffffffULL) {
    throw std::invalid_argument("gquic: packet number too large");
  }
  if (packet_number > 0xffffffff) {
    pn_length = 6;
  } else if (packet_number > 0xffff) {
    pn_length = 4;
  } else if (packet_number > 0xff) {
    pn_length = 2;
  }

  std::uint8_t flags = pn_flags_from_length(pn_length);
  if (!connection_id.empty()) flags |= GquicPublicFlags::kConnectionId;
  if (version != 0) flags |= GquicPublicFlags::kVersion;
  w.write_u8(flags);
  if (!connection_id.empty()) w.write_bytes(connection_id.bytes());
  if (version != 0) w.write_u32(version);
  for (int i = pn_length - 1; i >= 0; --i) {
    w.write_u8(static_cast<std::uint8_t>(packet_number >> (8 * i)));
  }
  w.write_bytes(payload);
}

std::optional<GquicPacketView> parse_gquic_packet(
    std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    const std::uint8_t flags = r.read_u8();
    // The long-header form bit is never set in a Q043 public header; the
    // multipath bit was never deployed.
    if (flags & 0x80) return std::nullopt;
    if (flags & GquicPublicFlags::kMultipath) return std::nullopt;

    // Heuristic tightening: standalone server/reset packets without a
    // connection id are indistinguishable from arbitrary bytes, so the
    // dissector only accepts public headers that carry one (the
    // overwhelmingly common configuration, and what Wireshark keys on).
    if (!(flags & GquicPublicFlags::kConnectionId)) return std::nullopt;

    GquicPacketView view;
    view.is_reset = (flags & GquicPublicFlags::kReset) != 0;
    view.connection_id = ConnectionId(r.read_bytes(8));
    if (flags & GquicPublicFlags::kVersion) {
      view.has_version = true;
      view.version = r.read_u32().to_host();
      // gQUIC versions are ASCII 'Q' + digits.
      if ((view.version >> 24) != 'Q') return std::nullopt;
    }
    if (view.is_reset) {
      // Public reset: rest of the packet is a tagged message (opaque).
      view.header_size = r.position();
      view.payload_size = r.remaining();
      return view;
    }
    view.packet_number_length = pn_length_from_flags(flags);
    std::uint64_t pn = 0;
    for (int i = 0; i < view.packet_number_length; ++i) {
      pn = (pn << 8) | r.read_u8();
    }
    view.packet_number = pn;
    view.header_size = r.position();
    view.payload_size = r.remaining();
    // A data packet always carries an authentication hash + frames.
    if (view.payload_size < 12) return std::nullopt;
    return view;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> build_gquic_server_response(
    const ConnectionId& connection_id, std::uint64_t packet_number,
    std::size_t payload_size, util::Rng& rng) {
  util::ByteWriter w;
  build_gquic_server_response_into(w, connection_id, packet_number,
                                   payload_size, rng);
  return w.take();
}

void build_gquic_server_response_into(util::ByteWriter& w,
                                      const ConnectionId& connection_id,
                                      std::uint64_t packet_number,
                                      std::size_t payload_size,
                                      util::Rng& rng) {
  // Server packets omit the version; payload (message auth hash + frame
  // data, encrypted at Q050) is opaque on the wire. The random payload is
  // drawn with the same fill sequence as the vector-returning builder.
  const std::size_t n = std::max<std::size_t>(payload_size, 12);
  build_gquic_packet_into(w, connection_id, 0, packet_number, {});
  rng.fill(w.append_uninitialized(n));
}

}  // namespace quicsand::quic
