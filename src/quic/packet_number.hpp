// Packet number encoding/decoding (RFC 9000 §17.1 and Appendix A).
//
// QUIC sends only the least-significant 8..32 bits of a packet number;
// the receiver reconstructs the full 62-bit value relative to the largest
// packet number it has processed. The simulator's handshake flights never
// wrap the truncated space, but a correct codec matters for any consumer
// that feeds real captures through the library.
#pragma once

#include <cstdint>

namespace quicsand::quic {

/// Number of bytes needed to encode `full_pn` such that a receiver that
/// has acknowledged `largest_acked` can recover it (RFC 9000 A.2).
/// `largest_acked == -1` (no packet acknowledged yet) forces enough bytes
/// for the full value. Returns 1..4.
int packet_number_length(std::uint64_t full_pn, std::int64_t largest_acked);

/// Recover the full packet number from `truncated_pn` of
/// `pn_nbits` bits, given the largest processed packet number
/// (RFC 9000 A.3). `largest == -1` means nothing processed yet.
std::uint64_t decode_packet_number(std::uint64_t largest,
                                   std::uint64_t truncated_pn, int pn_nbits);

}  // namespace quicsand::quic
