#include "quic/stateless_reset.hpp"

#include <cstring>
#include <stdexcept>

#include "crypto/hmac.hpp"

namespace quicsand::quic {

StatelessResetter::StatelessResetter(std::span<const std::uint8_t> static_key)
    : key_(static_key.begin(), static_key.end()) {
  if (key_.empty()) {
    throw std::invalid_argument("StatelessResetter: empty key");
  }
}

StatelessResetter::Token StatelessResetter::token_for(
    const ConnectionId& cid) const {
  const auto mac = crypto::hmac_sha256(key_, cid.bytes());
  Token token;
  // lint:allow(raw-memcpy): fixed-size MAC truncation
  std::memcpy(token.data(), mac.data(), kTokenSize);
  return token;
}

std::vector<std::uint8_t> StatelessResetter::build(const ConnectionId& cid,
                                                   util::Rng& rng,
                                                   std::size_t size) const {
  util::ByteWriter out(size);
  build_into(out, cid, rng, size);
  return out.take();
}

void StatelessResetter::build_into(util::ByteWriter& out,
                                   const ConnectionId& cid, util::Rng& rng,
                                   std::size_t size) const {
  if (size < kMinPacketSize) {
    throw std::invalid_argument("StatelessResetter: packet too small");
  }
  const std::size_t base = out.size();
  rng.fill(out.append_uninitialized(size));
  auto packet = out.mutable_view().subspan(base, size);
  // Short-header form with the fixed bit, like any 1-RTT packet.
  packet[0] = static_cast<std::uint8_t>((packet[0] & 0x3f) | 0x40);
  const auto token = token_for(cid);
  // lint:allow(raw-memcpy): token trailer at a bounds-checked offset
  std::memcpy(packet.data() + size - kTokenSize, token.data(), kTokenSize);
}

bool StatelessResetter::is_reset_for(std::span<const std::uint8_t> datagram,
                                     const ConnectionId& cid) const {
  if (datagram.size() < kMinPacketSize) return false;
  const auto token = token_for(cid);
  // Constant-time trailing comparison.
  std::uint8_t diff = 0;
  const auto* tail = datagram.data() + datagram.size() - kTokenSize;
  for (std::size_t i = 0; i < kTokenSize; ++i) {
    diff |= static_cast<std::uint8_t>(tail[i] ^ token[i]);
  }
  return diff == 0;
}

}  // namespace quicsand::quic
