#include "quic/varint.hpp"

#include <stdexcept>

namespace quicsand::quic {

std::size_t varint_size(std::uint64_t value) {
  if (value < (1ULL << 6)) return 1;
  if (value < (1ULL << 14)) return 2;
  if (value < (1ULL << 30)) return 4;
  if (value <= kVarintMax) return 8;
  throw std::invalid_argument("varint_size: value exceeds 2^62-1");
}

void write_varint(util::ByteWriter& w, std::uint64_t value) {
  write_varint_with_size(w, value, varint_size(value));
}

void write_varint_with_size(util::ByteWriter& w, std::uint64_t value,
                            std::size_t size) {
  if (size < varint_size(value)) {
    throw std::invalid_argument("write_varint_with_size: size too small");
  }
  switch (size) {
    case 1:
      w.write_u8(static_cast<std::uint8_t>(value));
      break;
    case 2:
      w.write_u16(static_cast<std::uint16_t>(value | 0x4000));
      break;
    case 4:
      w.write_u32(static_cast<std::uint32_t>(value | 0x80000000u));
      break;
    case 8:
      w.write_u64(value | 0xc000000000000000ULL);
      break;
    default:
      throw std::invalid_argument("write_varint_with_size: bad size");
  }
}

std::uint64_t read_varint(util::ByteReader& r) {
  const std::uint8_t first = r.read_u8();
  const int prefix = first >> 6;
  std::uint64_t value = first & 0x3f;
  const int extra = (1 << prefix) - 1;
  for (int i = 0; i < extra; ++i) {
    value = (value << 8) | r.read_u8();
  }
  return value;
}

}  // namespace quicsand::quic
