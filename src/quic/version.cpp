#include "quic/version.hpp"

#include <array>
#include <cstdio>
#include <stdexcept>

namespace quicsand::quic {

namespace {

// RFC 9001 §5.2 and the corresponding draft revisions.
constexpr std::array<std::uint8_t, 20> kSaltV1 = {
    0x38, 0x76, 0x2c, 0xf7, 0xf5, 0x59, 0x34, 0xb3, 0x4d, 0x17,
    0x9a, 0xe6, 0xa4, 0xc8, 0x0c, 0xad, 0xcc, 0xbb, 0x7f, 0x0a};
constexpr std::array<std::uint8_t, 20> kSaltDraft29 = {
    0xaf, 0xbf, 0xec, 0x28, 0x99, 0x93, 0xd2, 0x4c, 0x9e, 0x97,
    0x86, 0xf1, 0x9c, 0x61, 0x11, 0xe0, 0x43, 0x90, 0xa8, 0x99};
constexpr std::array<std::uint8_t, 20> kSaltDraft23 = {
    0xc3, 0xee, 0xf7, 0x12, 0xc7, 0x2e, 0xbb, 0x5a, 0x11, 0xa7,
    0xd2, 0x43, 0x2b, 0xb4, 0x63, 0x65, 0xbe, 0xf9, 0xf5, 0x02};

}  // namespace

VersionFamily version_family(std::uint32_t version) {
  if (version == 0) return VersionFamily::kNegotiation;
  // gQUIC encodes versions as ASCII 'Q' followed by three digits.
  if ((version >> 24) == 'Q') return VersionFamily::kGquic;
  if (version == static_cast<std::uint32_t>(Version::kV1) ||
      (version & 0xffffff00) == 0xff000000 ||
      (version & 0xffffff00) == 0xfaceb000 || is_grease_version(version)) {
    return VersionFamily::kIetf;
  }
  return VersionFamily::kUnknown;
}

SaltGeneration salt_generation(std::uint32_t version) {
  switch (static_cast<Version>(version)) {
    case Version::kV1:
      return SaltGeneration::kV1;
    case Version::kDraft29:
    case Version::kDraft32:
      return SaltGeneration::kDraft29_32;
    case Version::kDraft27:
    case Version::kMvfstDraft22:
    case Version::kMvfstDraft27:
      return SaltGeneration::kDraft23_28;
    default:
      break;
  }
  if ((version & 0xffffff00) == 0xff000000) {
    const std::uint32_t draft = version & 0xff;
    if (draft >= 29) return SaltGeneration::kDraft29_32;
    if (draft >= 23) return SaltGeneration::kDraft23_28;
  }
  return SaltGeneration::kNone;
}

std::span<const std::uint8_t> initial_salt(SaltGeneration generation) {
  switch (generation) {
    case SaltGeneration::kV1:
      return kSaltV1;
    case SaltGeneration::kDraft29_32:
      return kSaltDraft29;
    case SaltGeneration::kDraft23_28:
      return kSaltDraft23;
    case SaltGeneration::kNone:
      break;
  }
  throw std::invalid_argument("initial_salt: no salt for this version");
}

bool is_known_version(std::uint32_t version) {
  switch (static_cast<Version>(version)) {
    case Version::kNegotiation:
    case Version::kV1:
    case Version::kDraft27:
    case Version::kDraft29:
    case Version::kDraft32:
    case Version::kMvfstDraft22:
    case Version::kMvfstDraft27:
    case Version::kGquicQ043:
    case Version::kGquicQ046:
    case Version::kGquicQ050:
      return true;
  }
  // All draft versions are recognized generically.
  return (version & 0xffffff00) == 0xff000000;
}

std::string version_name(std::uint32_t version) {
  switch (static_cast<Version>(version)) {
    case Version::kNegotiation:
      return "negotiation";
    case Version::kV1:
      return "v1";
    case Version::kMvfstDraft22:
      return "mvfst-draft-22";
    case Version::kMvfstDraft27:
      return "mvfst-draft-27";
    case Version::kGquicQ043:
      return "Q043";
    case Version::kGquicQ046:
      return "Q046";
    case Version::kGquicQ050:
      return "Q050";
    default:
      break;
  }
  if ((version & 0xffffff00) == 0xff000000) {
    return "draft-" + std::to_string(version & 0xff);
  }
  std::array<char, 16> buf{};
  std::snprintf(buf.data(), buf.size(), "0x%08x", version);
  return buf.data();
}

}  // namespace quicsand::quic
