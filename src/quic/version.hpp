// QUIC version registry.
//
// The paper observes a mix of IETF draft versions (draft-29 on Google
// infrastructure), Facebook's mvfst variants (mvfst-draft-27), QUIC v1,
// and legacy gQUIC. Each IETF-style version selects an Initial salt
// generation for the RFC 9001 key schedule.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace quicsand::quic {

enum class Version : std::uint32_t {
  kNegotiation = 0x00000000,
  kV1 = 0x00000001,
  kDraft27 = 0xff00001b,
  kDraft29 = 0xff00001d,
  kDraft32 = 0xff000020,
  kMvfstDraft22 = 0xfaceb001,
  kMvfstDraft27 = 0xfaceb002,
  kGquicQ043 = 0x51303433,
  kGquicQ046 = 0x51303436,
  kGquicQ050 = 0x51303530,
};

/// Wire-format family of a version number.
enum class VersionFamily {
  kNegotiation,  ///< version 0: Version Negotiation packets
  kIetf,         ///< RFC 9000 / drafts / mvfst: long+short headers
  kGquic,        ///< legacy Google QUIC (Q0xx): different framing
  kUnknown,
};

/// Salt generation for the Initial key schedule.
enum class SaltGeneration {
  kV1,          ///< RFC 9001 (v1)
  kDraft29_32,  ///< draft-29 .. draft-32
  kDraft23_28,  ///< draft-23 .. draft-28 (incl. mvfst-draft-27)
  kNone,        ///< gQUIC / unknown: no RFC 9001 schedule
};

VersionFamily version_family(std::uint32_t version);
SaltGeneration salt_generation(std::uint32_t version);

/// 20-byte HKDF-Extract salt for the given generation; throws for kNone.
std::span<const std::uint8_t> initial_salt(SaltGeneration generation);

/// True if this is a version this library knows by name.
bool is_known_version(std::uint32_t version);

/// Human-readable name, e.g. "draft-29", "mvfst-draft-27", "v1";
/// unknown versions render as hex.
std::string version_name(std::uint32_t version);

/// True for "grease" reserved versions of the form 0x?a?a?a?a, which
/// endpoints advertise to keep version negotiation exercised.
constexpr bool is_grease_version(std::uint32_t version) {
  return (version & 0x0f0f0f0f) == 0x0a0a0a0a;
}

}  // namespace quicsand::quic
