// High-level QUIC datagram builders.
//
// These compose header codec + frames + TLS messages + packet protection
// into the complete UDP payloads that appear in the paper's traffic:
// client Initials (scans, floods), the server handshake flight that
// becomes backscatter, Version Negotiation, and stateless resets.
//
// Every builder supports two fidelity levels:
//  * kFull — real RFC 9001 packet protection (AES-128-GCM + header
//    protection). Used wherever something later decrypts the packet
//    (server simulation, prober, deep dissection tests).
//  * kFast — identical headers and sizes, but the protected region is
//    filled with uniform random bytes instead of a real AEAD output.
//    To any observer without keys the two are indistinguishable
//    (AES-GCM output is pseudorandom), so month-scale telescope
//    scenarios use kFast. Documented as a substitution in DESIGN.md.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "quic/connection_id.hpp"
#include "quic/version.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace quicsand::quic {

enum class CryptoFidelity { kFull, kFast };

/// Connection identifiers shared by both directions of one handshake.
struct HandshakeContext {
  std::uint32_t version = static_cast<std::uint32_t>(Version::kV1);
  ConnectionId client_dcid;  ///< client's random original DCID (>= 8 bytes)
  ConnectionId client_scid;  ///< client's chosen SCID
  ConnectionId server_scid;  ///< server's chosen SCID (new connection ID)

  /// Fill all IDs with random bytes of typical lengths.
  static HandshakeContext random(std::uint32_t version, util::Rng& rng);
};

/// Client Initial carrying a ClientHello, padded to `pad_to` bytes
/// (RFC 9000 requires >= 1200 for ack-eliciting client Initials).
std::vector<std::uint8_t> build_client_initial(
    const HandshakeContext& ctx, std::string_view sni, util::Rng& rng,
    CryptoFidelity fidelity, std::span<const std::uint8_t> token = {},
    std::size_t pad_to = 1200);

/// First server response datagram: Initial (ServerHello + ACK) coalesced
/// with a Handshake packet carrying the first certificate chunk.
std::vector<std::uint8_t> build_server_initial_handshake(
    const HandshakeContext& ctx, util::Rng& rng, CryptoFidelity fidelity);

/// Follow-up server datagram: one Handshake packet with `crypto_bytes`
/// of certificate continuation.
std::vector<std::uint8_t> build_server_handshake(
    const HandshakeContext& ctx, util::Rng& rng, CryptoFidelity fidelity,
    std::size_t crypto_bytes = 900);

/// Keep-alive/loss-probe datagram: Handshake packet containing a PING.
std::vector<std::uint8_t> build_server_handshake_ping(
    const HandshakeContext& ctx, util::Rng& rng, CryptoFidelity fidelity);

/// Client Handshake-space completion datagram (Finished + ACK); used by
/// the full-handshake client in the server simulation and the prober.
std::vector<std::uint8_t> build_client_handshake_finish(
    const HandshakeContext& ctx, util::Rng& rng, CryptoFidelity fidelity);

/// Version Negotiation packet listing `versions`.
std::vector<std::uint8_t> build_version_negotiation(
    const ConnectionId& dcid, const ConnectionId& scid,
    std::span<const std::uint32_t> versions, util::Rng& rng);

/// Stateless reset: looks like a short-header packet with random payload
/// and a 16-byte token (RFC 9000 §10.3).
std::vector<std::uint8_t> build_stateless_reset(util::Rng& rng,
                                                std::size_t size = 43);

/// Reusable working buffers for the allocation-free builders below. One
/// instance per producer (emitter) keeps the TLS message and frame
/// plaintext out of the heap once the buffers have grown to working size.
struct BuildScratch {
  util::ByteWriter payload;  ///< frame plaintext for one packet
  util::ByteWriter hello;    ///< TLS handshake message under construction
};

// Allocation-free variants of the datagram builders: append the same
// bytes to a caller-owned writer. The vector-returning builders above
// delegate here, so both families consume the identical RNG sequence and
// produce the identical wire image. With CryptoFidelity::kFast no packet
// keys are derived at all (the protected region is random either way),
// which removes the per-packet HKDF from the telescope hot path.
void build_client_initial_into(util::ByteWriter& out,
                               const HandshakeContext& ctx,
                               std::string_view sni, util::Rng& rng,
                               CryptoFidelity fidelity, BuildScratch& scratch,
                               std::span<const std::uint8_t> token = {},
                               std::size_t pad_to = 1200);
void build_server_initial_handshake_into(util::ByteWriter& out,
                                         const HandshakeContext& ctx,
                                         util::Rng& rng,
                                         CryptoFidelity fidelity,
                                         BuildScratch& scratch);
void build_server_handshake_into(util::ByteWriter& out,
                                 const HandshakeContext& ctx, util::Rng& rng,
                                 CryptoFidelity fidelity,
                                 BuildScratch& scratch,
                                 std::size_t crypto_bytes = 900);
void build_server_handshake_ping_into(util::ByteWriter& out,
                                      const HandshakeContext& ctx,
                                      util::Rng& rng, CryptoFidelity fidelity,
                                      BuildScratch& scratch);
void build_version_negotiation_into(util::ByteWriter& out,
                                    const ConnectionId& dcid,
                                    const ConnectionId& scid,
                                    std::span<const std::uint32_t> versions,
                                    util::Rng& rng);
void build_stateless_reset_into(util::ByteWriter& out, util::Rng& rng,
                                std::size_t size = 43);

}  // namespace quicsand::quic
