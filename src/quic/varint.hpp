// QUIC variable-length integers (RFC 9000 §16).
//
// The two most significant bits of the first byte select a 1, 2, 4 or
// 8 byte encoding holding 6, 14, 30 or 62 usable bits.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace quicsand::quic {

constexpr std::uint64_t kVarintMax = (1ULL << 62) - 1;

/// Number of bytes the minimal encoding of `value` occupies (1/2/4/8).
/// Throws std::invalid_argument for values above 2^62-1.
std::size_t varint_size(std::uint64_t value);

/// Append the minimal encoding of `value`.
void write_varint(util::ByteWriter& w, std::uint64_t value);

/// Append `value` using exactly `size` bytes (size must be one of 1/2/4/8
/// and large enough). QUIC allows non-minimal encodings; the packet
/// builders use a fixed 2-byte length field so it can be patched later.
void write_varint_with_size(util::ByteWriter& w, std::uint64_t value,
                            std::size_t size);

/// Decode the next varint; throws util::BufferUnderflow when truncated.
std::uint64_t read_varint(util::ByteReader& r);

}  // namespace quicsand::quic
