// QUIC frame codec (RFC 9000 §19) for the frame types that appear in
// handshake traffic: PADDING, PING, ACK, CRYPTO, CONNECTION_CLOSE and
// HANDSHAKE_DONE. This is the subset the paper's traffic contains —
// Initial/Handshake flights plus keep-alive PINGs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "util/bytes.hpp"

namespace quicsand::quic {

struct PaddingFrame {
  std::size_t length = 1;  ///< run of consecutive PADDING bytes
};

struct PingFrame {};

struct AckFrame {
  std::uint64_t largest_acknowledged = 0;
  std::uint64_t ack_delay = 0;
  std::uint64_t first_range = 0;  ///< packets before largest, contiguous
  /// Additional (gap, range-length) pairs, RFC 9000 §19.3.1.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
};

struct CryptoFrame {
  std::uint64_t offset = 0;
  std::vector<std::uint8_t> data;
};

struct ConnectionCloseFrame {
  bool application = false;  ///< 0x1d (application) vs 0x1c (transport)
  std::uint64_t error_code = 0;
  std::uint64_t frame_type = 0;  ///< transport variant only
  std::string reason;
};

struct HandshakeDoneFrame {};

using Frame = std::variant<PaddingFrame, PingFrame, AckFrame, CryptoFrame,
                           ConnectionCloseFrame, HandshakeDoneFrame>;

/// Serialize one frame.
void write_frame(util::ByteWriter& w, const Frame& frame);

/// Append a CRYPTO frame carrying `data` without materialising a Frame
/// (avoids the CryptoFrame copy on the generation hot path). Byte-for-byte
/// identical to write_frame(CryptoFrame{offset, data}).
void write_crypto_frame(util::ByteWriter& w, std::uint64_t offset,
                        std::span<const std::uint8_t> data);

/// Encoded size of a CRYPTO frame with the given offset and data length,
/// computed without serializing.
std::size_t crypto_frame_size(std::uint64_t offset, std::size_t data_size);

/// Append only the CRYPTO frame header (type, offset, length) announcing
/// `data_size` bytes; the caller appends the data itself (e.g. via
/// rng.fill into uninitialised space).
void write_crypto_frame_header(util::ByteWriter& w, std::uint64_t offset,
                               std::size_t data_size);

/// Parse a full decrypted packet payload into frames. Consecutive PADDING
/// bytes collapse into a single PaddingFrame. Returns nullopt on any
/// malformed or unsupported frame type.
std::optional<std::vector<Frame>> parse_frames(
    std::span<const std::uint8_t> payload);

/// Total encoded size of `frame` (convenience for padding computations).
std::size_t frame_size(const Frame& frame);

}  // namespace quicsand::quic
