#include "quic/transport_params.hpp"

#include <set>

#include "quic/varint.hpp"
#include "util/bytes.hpp"

namespace quicsand::quic {

namespace {

using util::ByteReader;
using util::ByteWriter;

void put_varint_param(ByteWriter& w, TransportParameterId id,
                      std::uint64_t value) {
  write_varint(w, static_cast<std::uint64_t>(id));
  write_varint(w, varint_size(value));
  write_varint(w, value);
}

void put_bytes_param(ByteWriter& w, TransportParameterId id,
                     std::span<const std::uint8_t> value) {
  write_varint(w, static_cast<std::uint64_t>(id));
  write_varint(w, value.size());
  w.write_bytes(value);
}

void put_flag_param(ByteWriter& w, TransportParameterId id) {
  write_varint(w, static_cast<std::uint64_t>(id));
  write_varint(w, 0);
}

}  // namespace

TransportParameters TransportParameters::typical_client(
    const ConnectionId& scid) {
  TransportParameters params;
  params.max_idle_timeout_ms = 30000;
  params.max_udp_payload_size = 1472;
  params.initial_max_data = 1 << 20;
  params.initial_max_stream_data_bidi_local = 1 << 18;
  params.initial_max_stream_data_bidi_remote = 1 << 18;
  params.initial_max_stream_data_uni = 1 << 18;
  params.initial_max_streams_bidi = 100;
  params.initial_max_streams_uni = 100;
  params.ack_delay_exponent = 3;
  params.max_ack_delay_ms = 25;
  params.active_connection_id_limit = 4;
  params.initial_source_connection_id = scid;
  return params;
}

std::vector<std::uint8_t> encode_transport_parameters(
    const TransportParameters& params) {
  ByteWriter w(128);
  encode_transport_parameters_into(w, params);
  return w.take();
}

void encode_transport_parameters_into(ByteWriter& w,
                                      const TransportParameters& params) {
  auto maybe = [&](TransportParameterId id,
                   const std::optional<std::uint64_t>& value) {
    if (value) put_varint_param(w, id, *value);
  };
  maybe(TransportParameterId::kMaxIdleTimeout, params.max_idle_timeout_ms);
  maybe(TransportParameterId::kMaxUdpPayloadSize,
        params.max_udp_payload_size);
  maybe(TransportParameterId::kInitialMaxData, params.initial_max_data);
  maybe(TransportParameterId::kInitialMaxStreamDataBidiLocal,
        params.initial_max_stream_data_bidi_local);
  maybe(TransportParameterId::kInitialMaxStreamDataBidiRemote,
        params.initial_max_stream_data_bidi_remote);
  maybe(TransportParameterId::kInitialMaxStreamDataUni,
        params.initial_max_stream_data_uni);
  maybe(TransportParameterId::kInitialMaxStreamsBidi,
        params.initial_max_streams_bidi);
  maybe(TransportParameterId::kInitialMaxStreamsUni,
        params.initial_max_streams_uni);
  maybe(TransportParameterId::kAckDelayExponent, params.ack_delay_exponent);
  maybe(TransportParameterId::kMaxAckDelay, params.max_ack_delay_ms);
  if (params.disable_active_migration) {
    put_flag_param(w, TransportParameterId::kDisableActiveMigration);
  }
  maybe(TransportParameterId::kActiveConnectionIdLimit,
        params.active_connection_id_limit);
  if (params.initial_source_connection_id) {
    put_bytes_param(w, TransportParameterId::kInitialSourceConnectionId,
                    params.initial_source_connection_id->bytes());
  }
  if (params.original_destination_connection_id) {
    put_bytes_param(w,
                    TransportParameterId::kOriginalDestinationConnectionId,
                    params.original_destination_connection_id->bytes());
  }
  if (params.retry_source_connection_id) {
    put_bytes_param(w, TransportParameterId::kRetrySourceConnectionId,
                    params.retry_source_connection_id->bytes());
  }
  for (const auto& [id, value] : params.unknown) {
    write_varint(w, id);
    write_varint(w, value.size());
    w.write_bytes(value);
  }
}

std::optional<TransportParameters> parse_transport_parameters(
    std::span<const std::uint8_t> data) {
  TransportParameters params;
  std::set<std::uint64_t> seen;
  ByteReader r(data);
  try {
    while (!r.empty()) {
      const std::uint64_t id = read_varint(r);
      const std::uint64_t length = read_varint(r);
      if (length > r.remaining()) return std::nullopt;
      const auto value = r.read_bytes(static_cast<std::size_t>(length));
      // Duplicate ids are a protocol violation (RFC 9000 §7.4).
      if (!seen.insert(id).second) return std::nullopt;

      auto as_varint = [&]() -> std::optional<std::uint64_t> {
        ByteReader vr(value);
        const auto v = read_varint(vr);
        if (!vr.empty()) return std::nullopt;
        return v;
      };
      auto as_cid = [&]() -> std::optional<ConnectionId> {
        if (value.size() > ConnectionId::kMaxSize) return std::nullopt;
        return ConnectionId(value);
      };

      bool ok = true;
      switch (static_cast<TransportParameterId>(id)) {
        case TransportParameterId::kMaxIdleTimeout:
          ok = (params.max_idle_timeout_ms = as_varint()).has_value();
          break;
        case TransportParameterId::kMaxUdpPayloadSize:
          ok = (params.max_udp_payload_size = as_varint()).has_value();
          break;
        case TransportParameterId::kInitialMaxData:
          ok = (params.initial_max_data = as_varint()).has_value();
          break;
        case TransportParameterId::kInitialMaxStreamDataBidiLocal:
          ok = (params.initial_max_stream_data_bidi_local = as_varint())
                   .has_value();
          break;
        case TransportParameterId::kInitialMaxStreamDataBidiRemote:
          ok = (params.initial_max_stream_data_bidi_remote = as_varint())
                   .has_value();
          break;
        case TransportParameterId::kInitialMaxStreamDataUni:
          ok = (params.initial_max_stream_data_uni = as_varint()).has_value();
          break;
        case TransportParameterId::kInitialMaxStreamsBidi:
          ok = (params.initial_max_streams_bidi = as_varint()).has_value();
          break;
        case TransportParameterId::kInitialMaxStreamsUni:
          ok = (params.initial_max_streams_uni = as_varint()).has_value();
          break;
        case TransportParameterId::kAckDelayExponent:
          ok = (params.ack_delay_exponent = as_varint()).has_value();
          break;
        case TransportParameterId::kMaxAckDelay:
          ok = (params.max_ack_delay_ms = as_varint()).has_value();
          break;
        case TransportParameterId::kDisableActiveMigration:
          params.disable_active_migration = true;
          ok = value.empty();
          break;
        case TransportParameterId::kActiveConnectionIdLimit:
          ok = (params.active_connection_id_limit = as_varint()).has_value();
          break;
        case TransportParameterId::kInitialSourceConnectionId:
          ok = (params.initial_source_connection_id = as_cid()).has_value();
          break;
        case TransportParameterId::kOriginalDestinationConnectionId:
          ok = (params.original_destination_connection_id = as_cid())
                   .has_value();
          break;
        case TransportParameterId::kRetrySourceConnectionId:
          ok = (params.retry_source_connection_id = as_cid()).has_value();
          break;
        default:
          // Unknown parameters — including reserved grease ids of the
          // form 31*N+27 (§18.1) — must be ignored; keep them for
          // inspection.
          params.unknown.emplace_back(
              id, std::vector<std::uint8_t>(value.begin(), value.end()));
          break;
      }
      if (!ok) return std::nullopt;
    }
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
  return params;
}

}  // namespace quicsand::quic
