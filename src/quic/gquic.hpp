// Legacy Google QUIC (gQUIC) framing.
//
// In the paper's measurement window Google still served gQUIC Q043/Q046/
// Q050 alongside IETF drafts, and those packets appear in backscatter.
// gQUIC predates RFC 9000: Q043 uses a "public header" with a flags
// byte, an optional 8-byte connection ID and an optional version; Q046+
// adopted the IETF long-header shape but kept Google's crypto. We
// implement enough of the wire image to build and dissect the packets a
// telescope sees — full gQUIC crypto (QUIC Crypto) is out of scope and
// the payload is treated as opaque, which is also all Wireshark shows
// for these packets.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "quic/connection_id.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace quicsand::quic {

/// Q043-style public flags.
struct GquicPublicFlags {
  static constexpr std::uint8_t kVersion = 0x01;
  static constexpr std::uint8_t kReset = 0x02;
  static constexpr std::uint8_t kDiversificationNonce = 0x04;
  static constexpr std::uint8_t kConnectionId = 0x08;
  // Bits 4-5: packet number length (1, 2, 4, 6 bytes).
  static constexpr std::uint8_t kMultipath = 0x40;
};

struct GquicPacketView {
  std::uint32_t version = 0;  ///< 0 when the version flag is absent
  bool has_version = false;
  bool is_reset = false;
  ConnectionId connection_id;  ///< empty when omitted
  int packet_number_length = 1;
  std::uint64_t packet_number = 0;
  std::size_t header_size = 0;
  std::size_t payload_size = 0;
};

/// Build a Q043-style data packet. `version` is included (with the
/// version flag) when non-zero — clients set it until negotiation
/// completes, servers omit it.
std::vector<std::uint8_t> build_gquic_packet(
    const ConnectionId& connection_id, std::uint32_t version,
    std::uint64_t packet_number, std::span<const std::uint8_t> payload);

/// Parse a Q043-style public header. Returns nullopt when the bytes are
/// not plausibly gQUIC (e.g. long-header form bit set, truncation).
std::optional<GquicPacketView> parse_gquic_packet(
    std::span<const std::uint8_t> data);

/// Build a gQUIC server response of roughly `payload_size` opaque bytes
/// (server packets omit the version per the negotiation rules).
std::vector<std::uint8_t> build_gquic_server_response(
    const ConnectionId& connection_id, std::uint64_t packet_number,
    std::size_t payload_size, util::Rng& rng);

// Allocation-free variants appending to a caller-owned writer; the
// vector-returning builders delegate here.
void build_gquic_packet_into(util::ByteWriter& w,
                             const ConnectionId& connection_id,
                             std::uint32_t version,
                             std::uint64_t packet_number,
                             std::span<const std::uint8_t> payload);
void build_gquic_server_response_into(util::ByteWriter& w,
                                      const ConnectionId& connection_id,
                                      std::uint64_t packet_number,
                                      std::size_t payload_size,
                                      util::Rng& rng);

}  // namespace quicsand::quic
