// QUIC transport parameters (RFC 9000 §18).
//
// Carried in a TLS extension in the ClientHello/EncryptedExtensions as a
// sequence of (varint id, varint length, value) records. The builder
// emits the parameters a typical 2021 client advertised; the parser
// tolerates unknown ids (mandatory for forward compatibility) and grease
// entries.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "quic/connection_id.hpp"
#include "util/bytes.hpp"

namespace quicsand::quic {

enum class TransportParameterId : std::uint64_t {
  kOriginalDestinationConnectionId = 0x00,
  kMaxIdleTimeout = 0x01,
  kStatelessResetToken = 0x02,
  kMaxUdpPayloadSize = 0x03,
  kInitialMaxData = 0x04,
  kInitialMaxStreamDataBidiLocal = 0x05,
  kInitialMaxStreamDataBidiRemote = 0x06,
  kInitialMaxStreamDataUni = 0x07,
  kInitialMaxStreamsBidi = 0x08,
  kInitialMaxStreamsUni = 0x09,
  kAckDelayExponent = 0x0a,
  kMaxAckDelay = 0x0b,
  kDisableActiveMigration = 0x0c,
  kActiveConnectionIdLimit = 0x0e,
  kInitialSourceConnectionId = 0x0f,
  kRetrySourceConnectionId = 0x10,
};

struct TransportParameters {
  std::optional<std::uint64_t> max_idle_timeout_ms;
  std::optional<std::uint64_t> max_udp_payload_size;
  std::optional<std::uint64_t> initial_max_data;
  std::optional<std::uint64_t> initial_max_stream_data_bidi_local;
  std::optional<std::uint64_t> initial_max_stream_data_bidi_remote;
  std::optional<std::uint64_t> initial_max_stream_data_uni;
  std::optional<std::uint64_t> initial_max_streams_bidi;
  std::optional<std::uint64_t> initial_max_streams_uni;
  std::optional<std::uint64_t> ack_delay_exponent;
  std::optional<std::uint64_t> max_ack_delay_ms;
  bool disable_active_migration = false;
  std::optional<std::uint64_t> active_connection_id_limit;
  std::optional<ConnectionId> initial_source_connection_id;
  std::optional<ConnectionId> original_destination_connection_id;
  std::optional<ConnectionId> retry_source_connection_id;
  /// Unknown/grease parameters seen while parsing (id, value bytes).
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> unknown;

  /// The defaults a 2021-era browser client advertised.
  static TransportParameters typical_client(const ConnectionId& scid);
};

/// Encode as the TLS extension body.
std::vector<std::uint8_t> encode_transport_parameters(
    const TransportParameters& params);

/// Append the same encoding to a caller-owned writer (hot-path variant;
/// the vector-returning overload delegates here).
void encode_transport_parameters_into(util::ByteWriter& w,
                                      const TransportParameters& params);

/// Parse an extension body; nullopt on structural errors (truncated
/// record, duplicate id).
std::optional<TransportParameters> parse_transport_parameters(
    std::span<const std::uint8_t> data);

}  // namespace quicsand::quic
