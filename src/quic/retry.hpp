// QUIC Retry packets (RFC 9000 §17.2.5, RFC 9001 §5.8).
//
// Retry is QUIC's built-in defense against handshake resource exhaustion:
// the server answers an Initial from an unverified address with a
// stateless Retry carrying an address-bound token; only clients that echo
// the token get a real handshake. The paper benchmarks exactly this
// mitigation (Table 1) and probes for it in the wild (§6), so both the
// stateless token scheme and the integrity tag are implemented for every
// version generation the paper observes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ip.hpp"
#include "quic/connection_id.hpp"
#include "util/time.hpp"

namespace quicsand::quic {

/// Stateless, HMAC-authenticated Retry tokens binding the client address
/// and the original DCID to an issue timestamp.
class RetryTokenMinter {
 public:
  /// `secret` is the server's token key; `lifetime` bounds token age.
  RetryTokenMinter(std::span<const std::uint8_t> secret,
                   util::Duration lifetime = 10 * util::kSecond);

  [[nodiscard]] std::vector<std::uint8_t> mint(
      net::Ipv4Address client, std::uint16_t client_port,
      const ConnectionId& original_dcid, util::Timestamp now) const;

  /// Validate a token echoed by a client. Returns the original DCID on
  /// success (needed for the transport parameter checks and, in our
  /// simulator, for accounting), nullopt on forgery, mismatch or expiry.
  [[nodiscard]] std::optional<ConnectionId> validate(
      std::span<const std::uint8_t> token, net::Ipv4Address client,
      std::uint16_t client_port, util::Timestamp now) const;

 private:
  std::vector<std::uint8_t> secret_;
  util::Duration lifetime_;
};

/// Build a complete Retry packet, including the integrity tag computed
/// over the Retry pseudo-packet (RFC 9001 §5.8). Throws for versions
/// without defined Retry integrity keys.
std::vector<std::uint8_t> build_retry_packet(
    std::uint32_t version, const ConnectionId& dcid, const ConnectionId& scid,
    std::span<const std::uint8_t> token, const ConnectionId& original_dcid);

/// Verify a Retry packet's integrity tag against the original DCID the
/// client sent. `packet` must be the full Retry packet bytes.
bool verify_retry_integrity(std::uint32_t version,
                            std::span<const std::uint8_t> packet,
                            const ConnectionId& original_dcid);

}  // namespace quicsand::quic
