#include "quic/header.hpp"

#include <stdexcept>

#include "quic/varint.hpp"

namespace quicsand::quic {

using util::ByteReader;
using util::ByteWriter;

const char* packet_type_name(PacketType type) {
  switch (type) {
    case PacketType::kInitial:
      return "initial";
    case PacketType::kZeroRtt:
      return "0rtt";
    case PacketType::kHandshake:
      return "handshake";
    case PacketType::kRetry:
      return "retry";
  }
  return "?";
}

const char* parse_error_name(ParseError error) {
  switch (error) {
    case ParseError::kTruncated:
      return "truncated";
    case ParseError::kNotLongHeader:
      return "not-long-header";
    case ParseError::kFixedBitClear:
      return "fixed-bit-clear";
    case ParseError::kBadConnectionIdLength:
      return "bad-cid-length";
    case ParseError::kBadLength:
      return "bad-length";
  }
  return "?";
}

EncodedHeader encode_long_header(const LongHeader& hdr) {
  ByteWriter w(64 + hdr.token.size());
  const HeaderOffsets offsets = encode_long_header_into(w, hdr);
  EncodedHeader out;
  out.length_offset = offsets.length_offset;
  out.pn_offset = offsets.pn_offset;
  out.bytes = w.take();
  return out;
}

HeaderOffsets encode_long_header_into(ByteWriter& w, const LongHeader& hdr) {
  if (hdr.type == PacketType::kRetry) {
    throw std::invalid_argument("encode_long_header: use build_retry_packet");
  }
  if (hdr.packet_number_length < 1 || hdr.packet_number_length > 4) {
    throw std::invalid_argument("encode_long_header: bad pn length");
  }
  const std::uint8_t first =
      static_cast<std::uint8_t>(0xc0 |
                                (static_cast<std::uint8_t>(hdr.type) << 4) |
                                (hdr.packet_number_length - 1));
  w.write_u8(first);
  w.write_u32(hdr.version);
  w.write_u8(static_cast<std::uint8_t>(hdr.dcid.size()));
  w.write_bytes(hdr.dcid.bytes());
  w.write_u8(static_cast<std::uint8_t>(hdr.scid.size()));
  w.write_bytes(hdr.scid.bytes());
  if (hdr.type == PacketType::kInitial) {
    write_varint(w, hdr.token.size());
    w.write_bytes(hdr.token);
  }
  HeaderOffsets out;
  out.length_offset = w.size();
  write_varint_with_size(w, 0, 2);  // placeholder, patched by the sealer
  out.pn_offset = w.size();
  // Truncated packet number, big-endian.
  for (int i = hdr.packet_number_length - 1; i >= 0; --i) {
    w.write_u8(static_cast<std::uint8_t>(hdr.packet_number >> (8 * i)));
  }
  return out;
}

std::size_t encoded_long_header_size(const LongHeader& hdr) {
  // first byte + version + dcid len/bytes + scid len/bytes
  std::size_t size = 1 + 4 + 1 + hdr.dcid.size() + 1 + hdr.scid.size();
  if (hdr.type == PacketType::kInitial) {
    size += varint_size(hdr.token.size()) + hdr.token.size();
  }
  size += 2;  // fixed 2-byte Length varint
  size += static_cast<std::size_t>(hdr.packet_number_length);
  return size;
}

std::optional<LongHeaderView> parse_long_header(
    std::span<const std::uint8_t> data, std::size_t offset,
    ParseError* error) {
  auto fail = [&](ParseError e) -> std::optional<LongHeaderView> {
    if (error != nullptr) *error = e;
    return std::nullopt;
  };
  if (offset >= data.size()) return fail(ParseError::kTruncated);

  try {
    ByteReader r(data.subspan(offset));
    const std::uint8_t first = r.read_u8();
    if (!is_long_header_byte(first)) return fail(ParseError::kNotLongHeader);

    LongHeaderView view;
    view.packet_start = offset;
    view.version = r.read_u32().to_host();

    // Version Negotiation: version == 0, fixed bit may be anything.
    if (view.version == 0) {
      const std::size_t dcid_len = r.read_u8();
      if (dcid_len > ConnectionId::kMaxSize) {
        return fail(ParseError::kBadConnectionIdLength);
      }
      view.dcid = ConnectionId(r.read_bytes(dcid_len));
      const std::size_t scid_len = r.read_u8();
      if (scid_len > ConnectionId::kMaxSize) {
        return fail(ParseError::kBadConnectionIdLength);
      }
      view.scid = ConnectionId(r.read_bytes(scid_len));
      if (r.remaining() % 4 != 0 || r.remaining() == 0) {
        return fail(ParseError::kBadLength);
      }
      while (!r.empty()) view.supported_versions.push_back(r.read_u32().to_host());
      view.packet_end = data.size();
      return view;
    }

    if (!has_fixed_bit(first)) return fail(ParseError::kFixedBitClear);
    view.type = static_cast<PacketType>((first >> 4) & 0x03);

    const std::size_t dcid_len = r.read_u8();
    if (dcid_len > ConnectionId::kMaxSize) {
      return fail(ParseError::kBadConnectionIdLength);
    }
    view.dcid = ConnectionId(r.read_bytes(dcid_len));
    const std::size_t scid_len = r.read_u8();
    if (scid_len > ConnectionId::kMaxSize) {
      return fail(ParseError::kBadConnectionIdLength);
    }
    view.scid = ConnectionId(r.read_bytes(scid_len));

    if (view.type == PacketType::kRetry) {
      // Token is everything up to the 16-byte integrity tag.
      if (r.remaining() < 16) return fail(ParseError::kTruncated);
      view.retry_token = r.read_bytes(r.remaining() - 16);
      view.token_length = view.retry_token.size();
      view.packet_end = data.size();
      return view;
    }

    if (view.type == PacketType::kInitial) {
      const std::uint64_t token_len = read_varint(r);
      if (token_len > r.remaining()) return fail(ParseError::kTruncated);
      view.token = r.read_bytes(static_cast<std::size_t>(token_len));
      view.token_length = static_cast<std::size_t>(token_len);
    }

    view.length = read_varint(r);
    view.pn_offset = offset + r.position();
    // Length counts PN + payload; a protected packet needs at least a
    // 1-byte PN plus a 16-byte AEAD tag, and a PN sample of 16 bytes
    // starting 4 bytes in (RFC 9001 §5.4.2).
    if (view.length < 20 || view.length > r.remaining()) {
      return fail(ParseError::kBadLength);
    }
    view.packet_end = view.pn_offset + static_cast<std::size_t>(view.length);
    return view;
  } catch (const util::BufferUnderflow&) {
    return fail(ParseError::kTruncated);
  }
}

}  // namespace quicsand::quic
