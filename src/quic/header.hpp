// QUIC packet header codec (RFC 9000 §17).
//
// Two layers are provided:
//  * LongHeader / encode_long_header(): the plaintext header a sender
//    builds before packet protection is applied.
//  * LongHeaderView / parse_long_header(): the fields an on-path observer
//    (our telescope dissector) can read from a *protected* packet without
//    keys — everything except the packet number and the low first-byte
//    bits, which are covered by header protection.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "quic/connection_id.hpp"
#include "quic/version.hpp"
#include "util/bytes.hpp"

namespace quicsand::quic {

enum class PacketType : std::uint8_t {
  kInitial = 0,
  kZeroRtt = 1,
  kHandshake = 2,
  kRetry = 3,
};

const char* packet_type_name(PacketType type);

/// Plaintext long header, pre-protection.
struct LongHeader {
  PacketType type = PacketType::kInitial;
  std::uint32_t version = static_cast<std::uint32_t>(Version::kV1);
  ConnectionId dcid;
  ConnectionId scid;
  std::vector<std::uint8_t> token;  ///< Initial packets only
  std::uint64_t packet_number = 0;
  int packet_number_length = 4;  ///< 1..4 bytes on the wire
};

/// Encoded long header plus the offsets the packet-protection layer needs.
struct EncodedHeader {
  std::vector<std::uint8_t> bytes;
  std::size_t pn_offset = 0;      ///< offset of the packet number field
  std::size_t length_offset = 0;  ///< offset of the 2-byte Length varint
};

/// Serialize `hdr` with a placeholder Length field (patched during
/// sealing). Length is always encoded as a 2-byte varint, so sealed
/// payloads are limited to ~16KB — more than any UDP datagram we build.
/// Not usable for Retry (which has no Length/PN); see retry.hpp.
EncodedHeader encode_long_header(const LongHeader& hdr);

/// Field offsets produced by encode_long_header_into; absolute positions
/// in the destination writer (valid even when the writer was non-empty).
struct HeaderOffsets {
  std::size_t pn_offset = 0;
  std::size_t length_offset = 0;
};

/// Append the same encoding to a caller-owned writer without allocating.
/// encode_long_header() delegates here.
HeaderOffsets encode_long_header_into(util::ByteWriter& w,
                                      const LongHeader& hdr);

/// Exact size encode_long_header_into will append for `hdr`, computed
/// without serializing (for padding calculations on the hot path).
std::size_t encoded_long_header_size(const LongHeader& hdr);

/// Header fields readable without removing header protection.
struct LongHeaderView {
  PacketType type = PacketType::kInitial;
  std::uint32_t version = 0;
  ConnectionId dcid;
  ConnectionId scid;
  std::size_t token_length = 0;   ///< Initial only
  std::uint64_t length = 0;       ///< Length field: PN + payload bytes
  std::size_t packet_start = 0;   ///< offset of this packet's first byte
  std::size_t pn_offset = 0;      ///< offset of the protected PN field
  std::size_t packet_end = 0;     ///< one past this packet (coalescing)
  std::span<const std::uint8_t> token;        ///< Initial only
  std::span<const std::uint8_t> retry_token;  ///< Retry only (sans tag)
  std::vector<std::uint32_t> supported_versions;  ///< VN only

  [[nodiscard]] bool is_version_negotiation() const { return version == 0; }
};

enum class ParseError {
  kTruncated,
  kNotLongHeader,
  kFixedBitClear,
  kBadConnectionIdLength,
  kBadLength,
};

const char* parse_error_name(ParseError error);

/// Parse one protected long-header packet starting at `data[offset]`.
/// Handles Initial / 0-RTT / Handshake / Retry and Version Negotiation.
/// On success the view's spans point into `data`.
std::optional<LongHeaderView> parse_long_header(
    std::span<const std::uint8_t> data, std::size_t offset,
    ParseError* error = nullptr);

/// True if the first byte has the long-header form bit set.
constexpr bool is_long_header_byte(std::uint8_t first) {
  return (first & 0x80) != 0;
}

/// True if the QUIC fixed bit is set (both header forms).
constexpr bool has_fixed_bit(std::uint8_t first) {
  return (first & 0x40) != 0;
}

}  // namespace quicsand::quic
