#include "quic/packets.hpp"

#include <array>
#include <stdexcept>

#include "crypto/gcm.hpp"
#include "quic/frames.hpp"
#include "quic/header.hpp"
#include "quic/initial_aead.hpp"
#include "quic/tls_messages.hpp"
#include "util/bytes.hpp"

namespace quicsand::quic {

namespace {

enum class KeySpace { kInitial, kHandshake };

PacketKeys initial_keys(const HandshakeContext& ctx, Perspective p) {
  return derive_initial_keys(ctx.version, ctx.client_dcid, p);
}

PacketKeys handshake_keys(const HandshakeContext& ctx, Perspective p) {
  return derive_handshake_keys_simulated(ctx.version, ctx.client_dcid, p);
}

/// kFast finish: identical header and sizes, protected region filled with
/// random bytes in place of ciphertext+tag. Only the payload *size*
/// matters here; the plaintext content is discarded either way.
void protect_fast_into(util::ByteWriter& out, const LongHeader& hdr,
                       std::size_t payload_size, util::Rng& rng) {
  const auto offsets = encode_long_header_into(out, hdr);
  const std::size_t pn_len =
      static_cast<std::size_t>(hdr.packet_number_length);
  const std::size_t total_length =
      pn_len + payload_size + crypto::AesGcm::kTagSize;
  if (total_length > 16383) {
    throw std::invalid_argument("protect: payload too large");
  }
  out.patch_be(offsets.length_offset, 0x4000 | total_length, 2);
  // Random bytes stand in for ciphertext+tag; also scramble the PN field
  // the way header protection would.
  rng.fill(out.mutable_view().subspan(offsets.pn_offset, pn_len));
  rng.fill(out.append_uninitialized(payload_size + crypto::AesGcm::kTagSize));
}

/// Finish a packet at the requested fidelity. Keys are derived lazily:
/// with kFast no HKDF runs at all (key derivation consumes no RNG, so the
/// two fidelities stay byte-compatible with the historical eager path).
void protect_into(util::ByteWriter& out, const HandshakeContext& ctx,
                  KeySpace space, Perspective perspective,
                  const LongHeader& hdr,
                  std::span<const std::uint8_t> payload,
                  CryptoFidelity fidelity, util::Rng& rng) {
  if (fidelity == CryptoFidelity::kFull) {
    const PacketKeys keys = space == KeySpace::kInitial
                                ? initial_keys(ctx, perspective)
                                : handshake_keys(ctx, perspective);
    const auto packet = seal_long_header_packet(keys, hdr, payload);
    out.write_bytes(packet);
    return;
  }
  protect_fast_into(out, hdr, payload.size(), rng);
}

}  // namespace

HandshakeContext HandshakeContext::random(std::uint32_t version,
                                          util::Rng& rng) {
  HandshakeContext ctx;
  ctx.version = version;
  std::array<std::uint8_t, 8> dcid;
  rng.fill(dcid);
  std::array<std::uint8_t, 8> scid;
  rng.fill(scid);
  std::array<std::uint8_t, 16> server;  // CDNs use longer, routable CIDs
  rng.fill(server);
  ctx.client_dcid = ConnectionId(dcid);
  ctx.client_scid = ConnectionId(scid);
  ctx.server_scid = ConnectionId(server);
  return ctx;
}

void build_client_initial_into(util::ByteWriter& out,
                               const HandshakeContext& ctx,
                               std::string_view sni, util::Rng& rng,
                               CryptoFidelity fidelity, BuildScratch& scratch,
                               std::span<const std::uint8_t> token,
                               std::size_t pad_to) {
  scratch.hello.clear();
  build_client_hello_into(scratch.hello, sni, rng);

  LongHeader hdr;
  hdr.type = PacketType::kInitial;
  hdr.version = ctx.version;
  hdr.dcid = ctx.client_dcid;
  hdr.scid = ctx.client_scid;
  hdr.token.assign(token.begin(), token.end());
  hdr.packet_number = 0;
  hdr.packet_number_length = 4;

  // Pad the plaintext so the final datagram reaches pad_to bytes:
  // header + pn + payload + tag == pad_to.
  const std::size_t fixed =
      encoded_long_header_size(hdr) + crypto::AesGcm::kTagSize;
  const std::size_t hello_frame = crypto_frame_size(0, scratch.hello.size());
  std::size_t padding = 0;
  if (fixed + hello_frame < pad_to) padding = pad_to - fixed - hello_frame;

  if (fidelity == CryptoFidelity::kFast) {
    // The plaintext is replaced by random fill, so only its size matters.
    protect_fast_into(out, hdr, hello_frame + padding, rng);
    return;
  }
  scratch.payload.clear();
  write_crypto_frame(scratch.payload, 0, scratch.hello.view());
  if (padding > 0) write_frame(scratch.payload, PaddingFrame{padding});
  protect_into(out, ctx, KeySpace::kInitial, Perspective::kClient, hdr,
               scratch.payload.view(), fidelity, rng);
}

std::vector<std::uint8_t> build_client_initial(
    const HandshakeContext& ctx, std::string_view sni, util::Rng& rng,
    CryptoFidelity fidelity, std::span<const std::uint8_t> token,
    std::size_t pad_to) {
  util::ByteWriter out;
  BuildScratch scratch;
  build_client_initial_into(out, ctx, sni, rng, fidelity, scratch, token,
                            pad_to);
  return out.take();
}

void build_server_initial_handshake_into(util::ByteWriter& out,
                                         const HandshakeContext& ctx,
                                         util::Rng& rng,
                                         CryptoFidelity fidelity,
                                         BuildScratch& scratch) {
  const std::size_t base = out.size();

  // Initial packet: ACK of the client Initial + ServerHello.
  LongHeader initial;
  initial.type = PacketType::kInitial;
  initial.version = ctx.version;
  initial.dcid = ctx.client_scid;  // route back to the client
  initial.scid = ctx.server_scid;
  initial.packet_number = 0;
  initial.packet_number_length = 2;

  AckFrame ack;
  ack.largest_acknowledged = 0;
  ack.ack_delay = 40;
  scratch.hello.clear();
  build_server_hello_into(scratch.hello, rng);
  scratch.payload.clear();
  write_frame(scratch.payload, ack);
  write_crypto_frame(scratch.payload, 0, scratch.hello.view());
  protect_into(out, ctx, KeySpace::kInitial, Perspective::kServer, initial,
               scratch.payload.view(), fidelity, rng);

  // Coalesced Handshake packet: first chunk of EncryptedExtensions/
  // Certificate flight, sized to fill the datagram toward ~1200 bytes.
  LongHeader hs;
  hs.type = PacketType::kHandshake;
  hs.version = ctx.version;
  hs.dcid = ctx.client_scid;
  hs.scid = ctx.server_scid;
  hs.packet_number = 0;
  hs.packet_number_length = 2;

  const std::size_t datagram_size = out.size() - base;
  const std::size_t remaining =
      1200 > datagram_size + 64 ? 1200 - datagram_size - 64 : 600;
  scratch.payload.clear();
  write_crypto_frame_header(scratch.payload, 0, remaining);
  rng.fill(scratch.payload.append_uninitialized(remaining));
  protect_into(out, ctx, KeySpace::kHandshake, Perspective::kServer, hs,
               scratch.payload.view(), fidelity, rng);
}

std::vector<std::uint8_t> build_server_initial_handshake(
    const HandshakeContext& ctx, util::Rng& rng, CryptoFidelity fidelity) {
  util::ByteWriter out;
  BuildScratch scratch;
  build_server_initial_handshake_into(out, ctx, rng, fidelity, scratch);
  return out.take();
}

void build_server_handshake_into(util::ByteWriter& out,
                                 const HandshakeContext& ctx, util::Rng& rng,
                                 CryptoFidelity fidelity,
                                 BuildScratch& scratch,
                                 std::size_t crypto_bytes) {
  LongHeader hs;
  hs.type = PacketType::kHandshake;
  hs.version = ctx.version;
  hs.dcid = ctx.client_scid;
  hs.scid = ctx.server_scid;
  hs.packet_number = 1;
  hs.packet_number_length = 2;
  scratch.payload.clear();
  write_crypto_frame_header(scratch.payload, 1100, crypto_bytes);
  rng.fill(scratch.payload.append_uninitialized(crypto_bytes));
  protect_into(out, ctx, KeySpace::kHandshake, Perspective::kServer, hs,
               scratch.payload.view(), fidelity, rng);
}

std::vector<std::uint8_t> build_server_handshake(
    const HandshakeContext& ctx, util::Rng& rng, CryptoFidelity fidelity,
    std::size_t crypto_bytes) {
  util::ByteWriter out;
  BuildScratch scratch;
  build_server_handshake_into(out, ctx, rng, fidelity, scratch, crypto_bytes);
  return out.take();
}

void build_server_handshake_ping_into(util::ByteWriter& out,
                                      const HandshakeContext& ctx,
                                      util::Rng& rng, CryptoFidelity fidelity,
                                      BuildScratch& scratch) {
  LongHeader hs;
  hs.type = PacketType::kHandshake;
  hs.version = ctx.version;
  hs.dcid = ctx.client_scid;
  hs.scid = ctx.server_scid;
  hs.packet_number = 2 + rng.uniform(4);
  hs.packet_number_length = 2;
  scratch.payload.clear();
  write_frame(scratch.payload, PingFrame{});
  write_frame(scratch.payload, PaddingFrame{6});
  protect_into(out, ctx, KeySpace::kHandshake, Perspective::kServer, hs,
               scratch.payload.view(), fidelity, rng);
}

std::vector<std::uint8_t> build_server_handshake_ping(
    const HandshakeContext& ctx, util::Rng& rng, CryptoFidelity fidelity) {
  util::ByteWriter out;
  BuildScratch scratch;
  build_server_handshake_ping_into(out, ctx, rng, fidelity, scratch);
  return out.take();
}

std::vector<std::uint8_t> build_client_handshake_finish(
    const HandshakeContext& ctx, util::Rng& rng, CryptoFidelity fidelity) {
  LongHeader hs;
  hs.type = PacketType::kHandshake;
  hs.version = ctx.version;
  hs.dcid = ctx.server_scid;  // client now addresses the server's CID
  hs.scid = ctx.client_scid;
  hs.packet_number = 0;
  hs.packet_number_length = 2;
  AckFrame ack;
  ack.largest_acknowledged = 1;
  ack.first_range = 1;
  util::ByteWriter payload;
  write_frame(payload, ack);
  write_crypto_frame_header(payload, 0, 36);  // Finished-sized
  rng.fill(payload.append_uninitialized(36));
  util::ByteWriter out;
  protect_into(out, ctx, KeySpace::kHandshake, Perspective::kClient, hs,
               payload.view(), fidelity, rng);
  return out.take();
}

void build_version_negotiation_into(util::ByteWriter& out,
                                    const ConnectionId& dcid,
                                    const ConnectionId& scid,
                                    std::span<const std::uint32_t> versions,
                                    util::Rng& rng) {
  if (versions.empty()) {
    throw std::invalid_argument("build_version_negotiation: no versions");
  }
  // Random bits in the first byte except the form bit (RFC 9000 §17.2.1).
  out.write_u8(static_cast<std::uint8_t>(0x80 | (rng.next() & 0x7f)));
  out.write_u32(0);
  out.write_u8(static_cast<std::uint8_t>(dcid.size()));
  out.write_bytes(dcid.bytes());
  out.write_u8(static_cast<std::uint8_t>(scid.size()));
  out.write_bytes(scid.bytes());
  for (std::uint32_t v : versions) out.write_u32(v);
}

std::vector<std::uint8_t> build_version_negotiation(
    const ConnectionId& dcid, const ConnectionId& scid,
    std::span<const std::uint32_t> versions, util::Rng& rng) {
  util::ByteWriter out;
  build_version_negotiation_into(out, dcid, scid, versions, rng);
  return out.take();
}

void build_stateless_reset_into(util::ByteWriter& out, util::Rng& rng,
                                std::size_t size) {
  if (size < 21) {
    throw std::invalid_argument("build_stateless_reset: min 21 bytes");
  }
  const std::size_t base = out.size();
  rng.fill(out.append_uninitialized(size));
  // Short-header form: top bit clear, fixed bit set.
  auto bytes = out.mutable_view();
  bytes[base] = static_cast<std::uint8_t>((bytes[base] & 0x3f) | 0x40);
}

std::vector<std::uint8_t> build_stateless_reset(util::Rng& rng,
                                                std::size_t size) {
  util::ByteWriter out;
  build_stateless_reset_into(out, rng, size);
  return out.take();
}

}  // namespace quicsand::quic
