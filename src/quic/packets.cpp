#include "quic/packets.hpp"

#include <stdexcept>

#include "crypto/gcm.hpp"
#include "quic/frames.hpp"
#include "quic/header.hpp"
#include "quic/initial_aead.hpp"
#include "quic/tls_messages.hpp"
#include "util/bytes.hpp"

namespace quicsand::quic {

namespace {

/// Serialize a frame list into one payload buffer.
std::vector<std::uint8_t> encode_frames(std::span<const Frame> frames) {
  util::ByteWriter w;
  for (const auto& frame : frames) write_frame(w, frame);
  return w.take();
}

/// Finish a packet at the requested fidelity. For kFast the protected
/// region keeps the same size (payload + 16-byte tag) but holds random
/// bytes; header fields stay parseable.
std::vector<std::uint8_t> protect(const PacketKeys& keys,
                                  const LongHeader& hdr,
                                  std::span<const std::uint8_t> payload,
                                  CryptoFidelity fidelity, util::Rng& rng) {
  if (fidelity == CryptoFidelity::kFull) {
    return seal_long_header_packet(keys, hdr, payload);
  }
  EncodedHeader enc = encode_long_header(hdr);
  const std::size_t pn_len =
      static_cast<std::size_t>(hdr.packet_number_length);
  const std::size_t total_length =
      pn_len + payload.size() + crypto::AesGcm::kTagSize;
  if (total_length > 16383) {
    throw std::invalid_argument("protect: payload too large");
  }
  util::ByteWriter w;
  w.write_bytes(enc.bytes);
  w.patch_be(enc.length_offset, 0x4000 | total_length, 2);
  // Random bytes stand in for ciphertext+tag; also scramble the PN field
  // the way header protection would.
  auto packet = w.take();
  rng.fill({packet.data() + enc.pn_offset, pn_len});
  const std::size_t body = payload.size() + crypto::AesGcm::kTagSize;
  const std::size_t old_size = packet.size();
  packet.resize(old_size + body);
  rng.fill({packet.data() + old_size, body});
  return packet;
}

PacketKeys initial_keys(const HandshakeContext& ctx, Perspective p) {
  return derive_initial_keys(ctx.version, ctx.client_dcid, p);
}

PacketKeys handshake_keys(const HandshakeContext& ctx, Perspective p) {
  return derive_handshake_keys_simulated(ctx.version, ctx.client_dcid, p);
}

}  // namespace

HandshakeContext HandshakeContext::random(std::uint32_t version,
                                          util::Rng& rng) {
  HandshakeContext ctx;
  ctx.version = version;
  const auto dcid = rng.bytes(8);
  const auto scid = rng.bytes(8);
  const auto server = rng.bytes(16);  // CDNs use longer, routable CIDs
  ctx.client_dcid = ConnectionId(dcid);
  ctx.client_scid = ConnectionId(scid);
  ctx.server_scid = ConnectionId(server);
  return ctx;
}

std::vector<std::uint8_t> build_client_initial(
    const HandshakeContext& ctx, std::string_view sni, util::Rng& rng,
    CryptoFidelity fidelity, std::span<const std::uint8_t> token,
    std::size_t pad_to) {
  const auto hello = build_client_hello(sni, rng);
  std::vector<Frame> frames;
  frames.push_back(CryptoFrame{0, hello});

  LongHeader hdr;
  hdr.type = PacketType::kInitial;
  hdr.version = ctx.version;
  hdr.dcid = ctx.client_dcid;
  hdr.scid = ctx.client_scid;
  hdr.token.assign(token.begin(), token.end());
  hdr.packet_number = 0;
  hdr.packet_number_length = 4;

  // Pad the plaintext so the final datagram reaches pad_to bytes:
  // header + pn + payload + tag == pad_to.
  const std::size_t header_size = encode_long_header(hdr).bytes.size();
  const std::size_t fixed =
      header_size + crypto::AesGcm::kTagSize;  // pn already in header size
  std::size_t payload_size = 0;
  for (const auto& f : frames) payload_size += frame_size(f);
  if (fixed + payload_size < pad_to) {
    frames.push_back(PaddingFrame{pad_to - fixed - payload_size});
  }
  const auto payload = encode_frames(frames);
  return protect(initial_keys(ctx, Perspective::kClient), hdr, payload,
                 fidelity, rng);
}

std::vector<std::uint8_t> build_server_initial_handshake(
    const HandshakeContext& ctx, util::Rng& rng, CryptoFidelity fidelity) {
  // Initial packet: ACK of the client Initial + ServerHello.
  LongHeader initial;
  initial.type = PacketType::kInitial;
  initial.version = ctx.version;
  initial.dcid = ctx.client_scid;  // route back to the client
  initial.scid = ctx.server_scid;
  initial.packet_number = 0;
  initial.packet_number_length = 2;

  std::vector<Frame> initial_frames;
  AckFrame ack;
  ack.largest_acknowledged = 0;
  ack.ack_delay = 40;
  initial_frames.push_back(ack);
  initial_frames.push_back(CryptoFrame{0, build_server_hello(rng)});
  const auto initial_payload = encode_frames(initial_frames);
  auto datagram = protect(initial_keys(ctx, Perspective::kServer), initial,
                          initial_payload, fidelity, rng);

  // Coalesced Handshake packet: first chunk of EncryptedExtensions/
  // Certificate flight, sized to fill the datagram toward ~1200 bytes.
  LongHeader hs;
  hs.type = PacketType::kHandshake;
  hs.version = ctx.version;
  hs.dcid = ctx.client_scid;
  hs.scid = ctx.server_scid;
  hs.packet_number = 0;
  hs.packet_number_length = 2;

  const std::size_t remaining = 1200 > datagram.size() + 64
                                    ? 1200 - datagram.size() - 64
                                    : 600;
  std::vector<Frame> hs_frames;
  hs_frames.push_back(CryptoFrame{0, rng.bytes(remaining)});
  const auto hs_payload = encode_frames(hs_frames);
  const auto hs_packet = protect(handshake_keys(ctx, Perspective::kServer),
                                 hs, hs_payload, fidelity, rng);
  datagram.insert(datagram.end(), hs_packet.begin(), hs_packet.end());
  return datagram;
}

std::vector<std::uint8_t> build_server_handshake(
    const HandshakeContext& ctx, util::Rng& rng, CryptoFidelity fidelity,
    std::size_t crypto_bytes) {
  LongHeader hs;
  hs.type = PacketType::kHandshake;
  hs.version = ctx.version;
  hs.dcid = ctx.client_scid;
  hs.scid = ctx.server_scid;
  hs.packet_number = 1;
  hs.packet_number_length = 2;
  std::vector<Frame> frames;
  frames.push_back(CryptoFrame{1100, rng.bytes(crypto_bytes)});
  return protect(handshake_keys(ctx, Perspective::kServer), hs,
                 encode_frames(frames), fidelity, rng);
}

std::vector<std::uint8_t> build_server_handshake_ping(
    const HandshakeContext& ctx, util::Rng& rng, CryptoFidelity fidelity) {
  LongHeader hs;
  hs.type = PacketType::kHandshake;
  hs.version = ctx.version;
  hs.dcid = ctx.client_scid;
  hs.scid = ctx.server_scid;
  hs.packet_number = 2 + rng.uniform(4);
  hs.packet_number_length = 2;
  std::vector<Frame> frames;
  frames.push_back(PingFrame{});
  frames.push_back(PaddingFrame{6});
  return protect(handshake_keys(ctx, Perspective::kServer), hs,
                 encode_frames(frames), fidelity, rng);
}

std::vector<std::uint8_t> build_client_handshake_finish(
    const HandshakeContext& ctx, util::Rng& rng, CryptoFidelity fidelity) {
  LongHeader hs;
  hs.type = PacketType::kHandshake;
  hs.version = ctx.version;
  hs.dcid = ctx.server_scid;  // client now addresses the server's CID
  hs.scid = ctx.client_scid;
  hs.packet_number = 0;
  hs.packet_number_length = 2;
  std::vector<Frame> frames;
  AckFrame ack;
  ack.largest_acknowledged = 1;
  ack.first_range = 1;
  frames.push_back(ack);
  frames.push_back(CryptoFrame{0, rng.bytes(36)});  // Finished-sized
  return protect(handshake_keys(ctx, Perspective::kClient), hs,
                 encode_frames(frames), fidelity, rng);
}

std::vector<std::uint8_t> build_version_negotiation(
    const ConnectionId& dcid, const ConnectionId& scid,
    std::span<const std::uint32_t> versions, util::Rng& rng) {
  if (versions.empty()) {
    throw std::invalid_argument("build_version_negotiation: no versions");
  }
  util::ByteWriter w;
  // Random bits in the first byte except the form bit (RFC 9000 §17.2.1).
  w.write_u8(static_cast<std::uint8_t>(0x80 | (rng.next() & 0x7f)));
  w.write_u32(0);
  w.write_u8(static_cast<std::uint8_t>(dcid.size()));
  w.write_bytes(dcid.bytes());
  w.write_u8(static_cast<std::uint8_t>(scid.size()));
  w.write_bytes(scid.bytes());
  for (std::uint32_t v : versions) w.write_u32(v);
  return w.take();
}

std::vector<std::uint8_t> build_stateless_reset(util::Rng& rng,
                                                std::size_t size) {
  if (size < 21) {
    throw std::invalid_argument("build_stateless_reset: min 21 bytes");
  }
  auto packet = rng.bytes(size);
  // Short-header form: top bit clear, fixed bit set.
  packet[0] = static_cast<std::uint8_t>((packet[0] & 0x3f) | 0x40);
  return packet;
}

}  // namespace quicsand::quic
