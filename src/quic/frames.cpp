#include "quic/frames.hpp"

#include "quic/varint.hpp"

namespace quicsand::quic {

using util::ByteReader;
using util::ByteWriter;

namespace {

constexpr std::uint64_t kFramePadding = 0x00;
constexpr std::uint64_t kFramePing = 0x01;
constexpr std::uint64_t kFrameAck = 0x02;
constexpr std::uint64_t kFrameCrypto = 0x06;
constexpr std::uint64_t kFrameCloseTransport = 0x1c;
constexpr std::uint64_t kFrameCloseApplication = 0x1d;
constexpr std::uint64_t kFrameHandshakeDone = 0x1e;

struct FrameWriter {
  ByteWriter& w;

  void operator()(const PaddingFrame& f) const {
    w.write_repeated(0x00, f.length);
  }
  void operator()(const PingFrame&) const { write_varint(w, kFramePing); }
  void operator()(const AckFrame& f) const {
    write_varint(w, kFrameAck);
    write_varint(w, f.largest_acknowledged);
    write_varint(w, f.ack_delay);
    write_varint(w, f.ranges.size());
    write_varint(w, f.first_range);
    for (const auto& [gap, len] : f.ranges) {
      write_varint(w, gap);
      write_varint(w, len);
    }
  }
  void operator()(const CryptoFrame& f) const {
    write_crypto_frame(w, f.offset, f.data);
  }
  void operator()(const ConnectionCloseFrame& f) const {
    write_varint(w, f.application ? kFrameCloseApplication
                                  : kFrameCloseTransport);
    write_varint(w, f.error_code);
    if (!f.application) write_varint(w, f.frame_type);
    write_varint(w, f.reason.size());
    w.write_bytes({reinterpret_cast<const std::uint8_t*>(f.reason.data()),
                   f.reason.size()});
  }
  void operator()(const HandshakeDoneFrame&) const {
    write_varint(w, kFrameHandshakeDone);
  }
};

}  // namespace

void write_frame(ByteWriter& w, const Frame& frame) {
  std::visit(FrameWriter{w}, frame);
}

void write_crypto_frame(ByteWriter& w, std::uint64_t offset,
                        std::span<const std::uint8_t> data) {
  write_crypto_frame_header(w, offset, data.size());
  w.write_bytes(data);
}

void write_crypto_frame_header(ByteWriter& w, std::uint64_t offset,
                               std::size_t data_size) {
  write_varint(w, kFrameCrypto);
  write_varint(w, offset);
  write_varint(w, data_size);
}

std::size_t crypto_frame_size(std::uint64_t offset, std::size_t data_size) {
  return varint_size(kFrameCrypto) + varint_size(offset) +
         varint_size(data_size) + data_size;
}

std::size_t frame_size(const Frame& frame) {
  ByteWriter w;
  write_frame(w, frame);
  return w.size();
}

std::optional<std::vector<Frame>> parse_frames(
    std::span<const std::uint8_t> payload) {
  std::vector<Frame> frames;
  ByteReader r(payload);
  try {
    while (!r.empty()) {
      const std::uint64_t type = read_varint(r);
      switch (type) {
        case kFramePadding: {
          std::size_t run = 1;
          while (!r.empty() && r.peek_u8() == 0x00) {
            r.skip(1);
            ++run;
          }
          frames.push_back(PaddingFrame{run});
          break;
        }
        case kFramePing:
          frames.push_back(PingFrame{});
          break;
        case kFrameAck: {
          AckFrame f;
          f.largest_acknowledged = read_varint(r);
          f.ack_delay = read_varint(r);
          const std::uint64_t range_count = read_varint(r);
          f.first_range = read_varint(r);
          if (range_count > payload.size()) return std::nullopt;  // absurd
          for (std::uint64_t i = 0; i < range_count; ++i) {
            const std::uint64_t gap = read_varint(r);
            const std::uint64_t len = read_varint(r);
            f.ranges.emplace_back(gap, len);
          }
          frames.push_back(std::move(f));
          break;
        }
        case kFrameCrypto: {
          CryptoFrame f;
          f.offset = read_varint(r);
          const std::uint64_t len = read_varint(r);
          if (len > r.remaining()) return std::nullopt;
          f.data = r.read_vector(static_cast<std::size_t>(len));
          frames.push_back(std::move(f));
          break;
        }
        case kFrameCloseTransport:
        case kFrameCloseApplication: {
          ConnectionCloseFrame f;
          f.application = type == kFrameCloseApplication;
          f.error_code = read_varint(r);
          if (!f.application) f.frame_type = read_varint(r);
          const std::uint64_t len = read_varint(r);
          if (len > r.remaining()) return std::nullopt;
          const auto bytes = r.read_bytes(static_cast<std::size_t>(len));
          f.reason.assign(bytes.begin(), bytes.end());
          frames.push_back(std::move(f));
          break;
        }
        case kFrameHandshakeDone:
          frames.push_back(HandshakeDoneFrame{});
          break;
        default:
          return std::nullopt;  // unsupported frame type
      }
    }
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
  return frames;
}

}  // namespace quicsand::quic
