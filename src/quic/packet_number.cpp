#include "quic/packet_number.hpp"

#include <stdexcept>

namespace quicsand::quic {

int packet_number_length(std::uint64_t full_pn, std::int64_t largest_acked) {
  // RFC 9000 A.2: the number of unacknowledged packets determines how
  // many bits are needed; send at least twice that range.
  const std::uint64_t num_unacked =
      largest_acked < 0
          ? full_pn + 1
          : full_pn - static_cast<std::uint64_t>(largest_acked);
  int min_bits = 1;
  while ((num_unacked >> min_bits) != 0 && min_bits < 63) ++min_bits;
  ++min_bits;  // 2 * num_unacked fits in min_bits + 1 bits
  const int bytes = (min_bits + 7) / 8;
  if (bytes > 4) {
    throw std::invalid_argument(
        "packet_number_length: unacked range too large");
  }
  return bytes;
}

std::uint64_t decode_packet_number(std::uint64_t largest,
                                   std::uint64_t truncated_pn,
                                   int pn_nbits) {
  if (pn_nbits != 8 && pn_nbits != 16 && pn_nbits != 24 && pn_nbits != 32) {
    throw std::invalid_argument("decode_packet_number: bad pn_nbits");
  }
  // RFC 9000 A.3.
  const std::uint64_t expected_pn = largest + 1;
  const std::uint64_t pn_win = std::uint64_t{1} << pn_nbits;
  const std::uint64_t pn_hwin = pn_win / 2;
  const std::uint64_t pn_mask = pn_win - 1;
  std::uint64_t candidate_pn = (expected_pn & ~pn_mask) | truncated_pn;
  constexpr std::uint64_t kMax = (std::uint64_t{1} << 62) - 1;
  if (candidate_pn + pn_hwin <= expected_pn &&
      candidate_pn < kMax + 1 - pn_win) {
    return candidate_pn + pn_win;
  }
  if (candidate_pn > expected_pn + pn_hwin && candidate_pn >= pn_win) {
    return candidate_pn - pn_win;
  }
  return candidate_pn;
}

}  // namespace quicsand::quic
