// Minimal TLS 1.3 handshake message builders (RFC 8446).
//
// The CRYPTO frames in QUIC Initial packets carry a ClientHello or a
// ServerHello. The dissector only needs structural validity and realistic
// sizes — the paper's observation "Initial messages without an
// unencrypted TLS Client Hello are Server Hello replies" (§6) is a check
// on the first CRYPTO byte. We therefore build messages that parse
// correctly (lengths, extension framing, SNI, ALPN, key_share) but whose
// key material is random rather than a real X25519 exchange.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace quicsand::quic {

enum class TlsHandshakeType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kEncryptedExtensions = 8,
  kCertificate = 11,
  kCertificateVerify = 15,
  kFinished = 20,
};

/// Build a TLS 1.3 ClientHello carrying `sni`, ALPN h3, an X25519
/// key_share and QUIC transport parameters. `rng` supplies random and
/// session-id bytes.
std::vector<std::uint8_t> build_client_hello(std::string_view sni,
                                             util::Rng& rng);

/// Build a TLS 1.3 ServerHello (cipher TLS_AES_128_GCM_SHA256, X25519
/// key_share) echoing `session_id_length` bytes of legacy session id.
std::vector<std::uint8_t> build_server_hello(util::Rng& rng);

// Allocation-free variants appending to a caller-owned writer; the
// vector-returning builders delegate here so the encodings cannot drift.
void build_client_hello_into(util::ByteWriter& w, std::string_view sni,
                             util::Rng& rng);
void build_server_hello_into(util::ByteWriter& w, util::Rng& rng);

/// Header (type + 24-bit length) of the first handshake message in a
/// CRYPTO stream, if structurally plausible.
struct TlsMessageInfo {
  TlsHandshakeType type;
  std::size_t body_length;
  /// For ClientHello: the server_name extension contents, if present.
  std::optional<std::string> sni;
};

std::optional<TlsMessageInfo> parse_tls_message(
    std::span<const std::uint8_t> data);

/// True if `data` begins with a structurally valid ClientHello.
bool is_client_hello(std::span<const std::uint8_t> data);

}  // namespace quicsand::quic
