#include "quic/retry.hpp"

#include <cstring>
#include <stdexcept>

#include "crypto/gcm.hpp"
#include "crypto/hmac.hpp"
#include "quic/header.hpp"
#include "quic/version.hpp"
#include "util/bytes.hpp"

namespace quicsand::quic {

namespace {

constexpr std::size_t kMacLength = 16;

struct RetryIntegrityKeys {
  std::array<std::uint8_t, 16> key;
  std::array<std::uint8_t, 12> nonce;
};

/// Fixed keys from RFC 9001 §5.8 and the corresponding draft revisions.
RetryIntegrityKeys retry_integrity_keys(std::uint32_t version) {
  switch (salt_generation(version)) {
    case SaltGeneration::kV1:
      return {{0xbe, 0x0c, 0x69, 0x0b, 0x9f, 0x66, 0x57, 0x5a, 0x1d, 0x76,
               0x6b, 0x54, 0xe3, 0x68, 0xc8, 0x4e},
              {0x46, 0x15, 0x99, 0xd3, 0x5d, 0x63, 0x2b, 0xf2, 0x23, 0x98,
               0x25, 0xbb}};
    case SaltGeneration::kDraft29_32:
      return {{0xcc, 0xce, 0x18, 0x7e, 0xd0, 0x9a, 0x09, 0xd0, 0x57, 0x28,
               0x15, 0x5a, 0x6c, 0xb9, 0x6b, 0xe1},
              {0xe5, 0x49, 0x30, 0xf9, 0x7f, 0x21, 0x36, 0xf0, 0x53, 0x0a,
               0x8c, 0x1c}};
    case SaltGeneration::kDraft23_28:
      return {{0x4d, 0x32, 0xec, 0xdb, 0x2a, 0x21, 0x33, 0xc8, 0x41, 0xe4,
               0x04, 0x3d, 0xf2, 0x7d, 0x44, 0x30},
              {0x4d, 0x16, 0x11, 0xd0, 0x55, 0x13, 0xa5, 0x52, 0xc5, 0x87,
               0xd5, 0x75}};
    case SaltGeneration::kNone:
      break;
  }
  throw std::invalid_argument("retry_integrity_keys: unsupported version " +
                              version_name(version));
}

/// Retry pseudo-packet: ODCID length, ODCID, then the Retry packet
/// without its 16-byte tag.
std::vector<std::uint8_t> pseudo_packet(
    std::span<const std::uint8_t> packet_without_tag,
    const ConnectionId& original_dcid) {
  util::ByteWriter w(1 + original_dcid.size() + packet_without_tag.size());
  w.write_u8(static_cast<std::uint8_t>(original_dcid.size()));
  w.write_bytes(original_dcid.bytes());
  w.write_bytes(packet_without_tag);
  return w.take();
}

std::array<std::uint8_t, 16> integrity_tag(
    std::uint32_t version, std::span<const std::uint8_t> packet_without_tag,
    const ConnectionId& original_dcid) {
  const auto keys = retry_integrity_keys(version);
  const crypto::AesGcm aead(keys.key);
  const auto pseudo = pseudo_packet(packet_without_tag, original_dcid);
  return aead.tag_only(keys.nonce, pseudo);
}

}  // namespace

RetryTokenMinter::RetryTokenMinter(std::span<const std::uint8_t> secret,
                                   util::Duration lifetime)
    : secret_(secret.begin(), secret.end()), lifetime_(lifetime) {
  if (secret_.empty()) {
    throw std::invalid_argument("RetryTokenMinter: empty secret");
  }
}

std::vector<std::uint8_t> RetryTokenMinter::mint(
    net::Ipv4Address client, std::uint16_t client_port,
    const ConnectionId& original_dcid, util::Timestamp now) const {
  // Token layout: ts(8) | odcid_len(1) | odcid | mac(16).
  util::ByteWriter body;
  body.write_u64(static_cast<std::uint64_t>(now.count()));
  body.write_u8(static_cast<std::uint8_t>(original_dcid.size()));
  body.write_bytes(original_dcid.bytes());

  util::ByteWriter mac_input;
  mac_input.write_u32(client.value());
  mac_input.write_u16(client_port);
  mac_input.write_bytes(body.view());
  const auto mac = crypto::hmac_sha256(secret_, mac_input.view());

  auto token = body.take();
  token.insert(token.end(), mac.begin(), mac.begin() + kMacLength);
  return token;
}

std::optional<ConnectionId> RetryTokenMinter::validate(
    std::span<const std::uint8_t> token, net::Ipv4Address client,
    std::uint16_t client_port, util::Timestamp now) const {
  if (token.size() < 8 + 1 + kMacLength) return std::nullopt;
  const std::size_t body_len = token.size() - kMacLength;

  util::ByteWriter mac_input;
  mac_input.write_u32(client.value());
  mac_input.write_u16(client_port);
  mac_input.write_bytes(token.first(body_len));
  const auto mac = crypto::hmac_sha256(secret_, mac_input.view());
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < kMacLength; ++i) {
    diff |= static_cast<std::uint8_t>(mac[i] ^ token[body_len + i]);
  }
  if (diff != 0) return std::nullopt;

  util::ByteReader r(token.first(body_len));
  const auto issued = util::Timestamp{static_cast<std::int64_t>(r.read_u64())};
  const std::size_t odcid_len = r.read_u8();
  if (odcid_len > ConnectionId::kMaxSize || odcid_len != r.remaining()) {
    return std::nullopt;
  }
  if (now < issued || now - issued > lifetime_) return std::nullopt;
  return ConnectionId(r.read_bytes(odcid_len));
}

std::vector<std::uint8_t> build_retry_packet(
    std::uint32_t version, const ConnectionId& dcid, const ConnectionId& scid,
    std::span<const std::uint8_t> token,
    const ConnectionId& original_dcid) {
  if (token.empty()) {
    throw std::invalid_argument("build_retry_packet: empty token");
  }
  util::ByteWriter w(32 + token.size());
  // First byte: long header, fixed bit, type Retry, unused bits zero.
  w.write_u8(0xc0 | (static_cast<std::uint8_t>(PacketType::kRetry) << 4));
  w.write_u32(version);
  w.write_u8(static_cast<std::uint8_t>(dcid.size()));
  w.write_bytes(dcid.bytes());
  w.write_u8(static_cast<std::uint8_t>(scid.size()));
  w.write_bytes(scid.bytes());
  w.write_bytes(token);
  const auto tag = integrity_tag(version, w.view(), original_dcid);
  w.write_bytes(tag);
  return w.take();
}

bool verify_retry_integrity(std::uint32_t version,
                            std::span<const std::uint8_t> packet,
                            const ConnectionId& original_dcid) {
  if (packet.size() < 16 + 7) return false;
  const auto body = packet.first(packet.size() - 16);
  const auto expected = integrity_tag(version, body, original_dcid);
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    diff |= static_cast<std::uint8_t>(expected[i] ^
                                      packet[packet.size() - 16 + i]);
  }
  return diff == 0;
}

}  // namespace quicsand::quic
