// ZMap-style horizontal scan model.
//
// Internet-wide single-packet QUIC scans are what dominate the telescope
// (98.5% of QUIC IBR, §5.1): each full-IPv4 pass deposits 2^23 packets
// into a /9 telescope. This model yields, for one scan pass, the probe
// times and telescope targets in a pseudorandom (permuted) order, like
// ZMap's multiplicative-cyclic address iteration.
#pragma once

#include <cstdint>
#include <optional>

#include "net/ip.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace quicsand::scanner {

struct ScanPassConfig {
  net::Ipv4Prefix telescope;          ///< portion of the scan we observe
  util::Timestamp start{};          ///< first probe hits the telescope
  util::Duration duration = 8 * util::kHour;  ///< full-IPv4 pass length
  /// Fraction of telescope addresses actually probed (packet loss,
  /// blocklists); 1.0 probes every address once.
  double coverage = 1.0;
  std::uint64_t seed = 1;
};

/// Iterates the probes of one scan pass that land in the telescope, in
/// time order. Addresses follow a Feistel permutation of the telescope
/// space so consecutive probes are spread over the prefix, like a real
/// randomized scan.
class ScanPass {
 public:
  explicit ScanPass(const ScanPassConfig& config);

  struct Probe {
    util::Timestamp time;
    net::Ipv4Address target;
  };

  /// Next probe, or nullopt when the pass is complete.
  std::optional<Probe> next();

  /// Probes this pass delivers to the telescope: exact for coverage 1.0,
  /// the expectation otherwise (skips are Bernoulli draws).
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  [[nodiscard]] std::uint64_t permute(std::uint64_t index) const;

  ScanPassConfig config_;
  std::uint64_t total_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t index_ = 0;
  util::Rng skip_rng_;
  std::uint64_t space_ = 0;     ///< telescope address count
  std::uint32_t round_keys_[4] = {0, 0, 0, 0};
  int half_bits_ = 0;
  util::Timestamp next_time_{};
};

}  // namespace quicsand::scanner
