#include "scanner/deployment.hpp"

#include "quic/version.hpp"

namespace quicsand::scanner {

namespace {

using quic::Version;

std::uint32_t provider_version(asdb::Asn asn, util::Rng& rng) {
  // Version mixes per §5.2: Facebook backscatter is 95% mvfst-draft-27,
  // Google 78% draft-29; everyone else mostly v1/draft-29 in spring 2021.
  if (asn == asdb::AsRegistry::kFacebook) {
    return rng.bernoulli(0.95) ? static_cast<std::uint32_t>(Version::kMvfstDraft27)
                               : static_cast<std::uint32_t>(Version::kMvfstDraft22);
  }
  if (asn == asdb::AsRegistry::kGoogle) {
    if (rng.bernoulli(0.78)) {
      return static_cast<std::uint32_t>(Version::kDraft29);
    }
    return rng.bernoulli(0.5)
               ? static_cast<std::uint32_t>(Version::kGquicQ050)
               : static_cast<std::uint32_t>(Version::kV1);
  }
  const double roll = rng.uniform01();
  if (roll < 0.55) return static_cast<std::uint32_t>(Version::kV1);
  if (roll < 0.85) return static_cast<std::uint32_t>(Version::kDraft29);
  return static_cast<std::uint32_t>(Version::kDraft32);
}

}  // namespace

Deployment Deployment::synthetic(const asdb::AsRegistry& registry,
                                 const DeploymentConfig& config,
                                 std::uint64_t seed) {
  Deployment deployment;
  util::Rng rng(util::mix64(seed, 0xde9107));

  auto place = [&](asdb::Asn asn, std::size_t count, bool supports_retry) {
    for (std::size_t i = 0; i < count; ++i) {
      QuicServer server;
      // Reject duplicate addresses (possible in small prefixes).
      do {
        server.address = registry.random_address_in(asn, rng);
      } while (deployment.by_address_.contains(server.address));
      server.asn = asn;
      server.version = provider_version(asn, rng);
      server.supports_retry = supports_retry;
      // §6: implementations support RETRY but operators leave it off.
      server.retry_enabled = false;
      deployment.by_address_.emplace(server.address,
                                     deployment.servers_.size());
      deployment.servers_.push_back(server);
    }
  };

  place(asdb::AsRegistry::kGoogle, config.google_servers, true);
  place(asdb::AsRegistry::kFacebook, config.facebook_servers, true);
  place(asdb::AsRegistry::kCloudflare, config.cloudflare_servers, true);

  // Remaining content servers spread across the generated CDN ASes.
  const auto content = registry.by_type(asdb::NetworkType::kContent);
  std::vector<asdb::Asn> generated_cdns;
  for (asdb::Asn asn : content) {
    if (asn != asdb::AsRegistry::kGoogle &&
        asn != asdb::AsRegistry::kFacebook &&
        asn != asdb::AsRegistry::kCloudflare) {
      generated_cdns.push_back(asn);
    }
  }
  for (std::size_t i = 0;
       i < config.other_content_servers && !generated_cdns.empty(); ++i) {
    place(generated_cdns[rng.uniform(generated_cdns.size())], 1,
          rng.bernoulli(0.7));
  }

  // Long tail: self-hosted servers in enterprise and transit networks.
  std::vector<asdb::Asn> tail;
  for (asdb::Asn asn : registry.by_type(asdb::NetworkType::kEnterprise)) {
    tail.push_back(asn);
  }
  for (asdb::Asn asn : registry.by_type(asdb::NetworkType::kTransit)) {
    tail.push_back(asn);
  }
  for (std::size_t i = 0; i < config.long_tail_servers && !tail.empty();
       ++i) {
    place(tail[rng.uniform(tail.size())], 1, rng.bernoulli(0.4));
  }
  return deployment;
}

bool Deployment::set_retry_enabled(net::Ipv4Address addr, bool enabled) {
  const auto it = by_address_.find(addr);
  if (it == by_address_.end()) return false;
  servers_[it->second].retry_enabled = enabled;
  return true;
}

const QuicServer* Deployment::find(net::Ipv4Address addr) const {
  const auto it = by_address_.find(addr);
  return it == by_address_.end() ? nullptr : &servers_[it->second];
}

std::vector<const QuicServer*> Deployment::servers_of(asdb::Asn asn) const {
  std::vector<const QuicServer*> out;
  for (const auto& server : servers_) {
    if (server.asn == asn) out.push_back(&server);
  }
  return out;
}

}  // namespace quicsand::scanner
