// Active RETRY prober.
//
// §6 of the paper validates the telescope's "no RETRY seen" observation
// by actively connecting to the ten most-attacked Google/Facebook servers
// with a QUIC client and checking whether a Retry is returned. The prober
// performs that exchange against our deployment model on real wire
// bytes: it builds a client Initial, lets the simulated server endpoint
// answer (Retry or handshake flight), completes the token dance when
// asked, and reports what it saw.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ip.hpp"
#include "scanner/deployment.hpp"
#include "util/rng.hpp"

namespace quicsand::scanner {

struct ProbeObservation {
  net::Ipv4Address server;
  bool reachable = false;
  bool received_retry = false;
  bool retry_integrity_valid = false;  ///< when a Retry was received
  bool handshake_completed = false;
  int round_trips = 0;  ///< RTs until first byte of server data
  std::uint32_t negotiated_version = 0;
};

class RetryProber {
 public:
  RetryProber(const Deployment& deployment, std::uint64_t seed);

  /// Probe one server address. Unknown addresses are unreachable.
  ProbeObservation probe(net::Ipv4Address server);

  /// Probe a list of servers (e.g. the top-N attacked).
  std::vector<ProbeObservation> probe_all(
      const std::vector<net::Ipv4Address>& servers);

 private:
  const Deployment& deployment_;
  util::Rng rng_;
};

}  // namespace quicsand::scanner
