// Synthetic QUIC server deployment — our substitute for the active-scan
// hitlists (Rüth et al.) the paper correlates victims against.
//
// Real scans in 2021 found ~2M QUIC servers, concentrated at a handful
// of content providers running specific draft versions (mvfst-draft-27 at
// Facebook, draft-29 at Google). The deployment mirrors that shape at a
// configurable scale and records, per server, which versions it answers
// and whether RETRY is supported/enabled — the paper finds support
// without deployment (§6).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "asdb/registry.hpp"
#include "net/ip.hpp"
#include "util/rng.hpp"

namespace quicsand::scanner {

struct QuicServer {
  net::Ipv4Address address;
  asdb::Asn asn = 0;
  std::uint32_t version = 1;   ///< preferred wire version
  bool supports_retry = false; ///< implementation capability
  bool retry_enabled = false;  ///< operator actually turned it on
};

struct DeploymentConfig {
  /// Servers hosted by each named content provider. Large pools matter:
  /// victims are drawn without replacement, so a pool that saturates
  /// would skew the victim mix toward the biggest provider.
  std::size_t google_servers = 4800;
  std::size_t facebook_servers = 2080;
  std::size_t cloudflare_servers = 720;
  std::size_t other_content_servers = 240;  ///< spread over CDN ASes
  std::size_t long_tail_servers = 480;      ///< enterprise/transit hosts
};

class Deployment {
 public:
  /// Build a deterministic deployment over the registry's address space.
  static Deployment synthetic(const asdb::AsRegistry& registry,
                              const DeploymentConfig& config,
                              std::uint64_t seed);

  [[nodiscard]] const std::vector<QuicServer>& servers() const {
    return servers_;
  }

  /// Hitlist membership test (the paper's "98% of attacks target
  /// well-known QUIC servers" check).
  [[nodiscard]] bool is_quic_server(net::Ipv4Address addr) const {
    return by_address_.contains(addr);
  }

  [[nodiscard]] const QuicServer* find(net::Ipv4Address addr) const;

  /// Flip RETRY deployment on one server (what-if experiments); returns
  /// false when the address is not a known server.
  bool set_retry_enabled(net::Ipv4Address addr, bool enabled);

  /// Servers belonging to the given AS.
  [[nodiscard]] std::vector<const QuicServer*> servers_of(
      asdb::Asn asn) const;

  [[nodiscard]] std::size_t size() const { return servers_.size(); }

 private:
  std::vector<QuicServer> servers_;
  std::unordered_map<net::Ipv4Address, std::size_t> by_address_;
};

}  // namespace quicsand::scanner
