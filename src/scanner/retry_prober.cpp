#include "scanner/retry_prober.hpp"

#include "quic/dissector.hpp"
#include "quic/packets.hpp"
#include "quic/retry.hpp"
#include "quic/version.hpp"

namespace quicsand::scanner {

namespace {

/// gQUIC endpoints are out of scope for the RFC 9001 exchange; the
/// prober treats them as v1-capable (Google served both in 2021).
std::uint32_t probe_version(const QuicServer& server) {
  if (quic::version_family(server.version) == quic::VersionFamily::kGquic) {
    return static_cast<std::uint32_t>(quic::Version::kV1);
  }
  return server.version;
}

}  // namespace

RetryProber::RetryProber(const Deployment& deployment, std::uint64_t seed)
    : deployment_(deployment), rng_(util::mix64(seed, 0x9c0be)) {}

ProbeObservation RetryProber::probe(net::Ipv4Address server_addr) {
  ProbeObservation obs;
  obs.server = server_addr;
  const QuicServer* server = deployment_.find(server_addr);
  if (server == nullptr) return obs;  // no listener: probe times out

  obs.reachable = true;
  const std::uint32_t version = probe_version(*server);
  obs.negotiated_version = version;

  auto ctx = quic::HandshakeContext::random(version, rng_);
  const auto initial = quic::build_client_initial(
      ctx, "probe.quicsand.example", rng_, quic::CryptoFidelity::kFull);
  (void)initial;  // the wire bytes are built to keep the path realistic

  int round_trips = 1;
  if (server->retry_enabled) {
    // Server answers statelessly with a Retry carrying a token.
    quic::RetryTokenMinter minter(rng_.bytes(32));
    const auto new_scid = quic::ConnectionId(rng_.bytes(8));
    const auto token =
        minter.mint(net::Ipv4Address(0x7f000001), 4433, ctx.client_dcid,
                    util::kApril2021Start);
    const auto retry_packet = quic::build_retry_packet(
        version, ctx.client_scid, new_scid, token, ctx.client_dcid);
    const auto dissected = quic::dissect_udp_payload(retry_packet);
    obs.received_retry =
        dissected.is_quic &&
        dissected.packets[0].kind == quic::QuicPacketKind::kRetry;
    obs.retry_integrity_valid =
        quic::verify_retry_integrity(version, retry_packet, ctx.client_dcid);
    // Client retries with the token toward the server's new CID.
    ctx.client_dcid = new_scid;
    const auto second = quic::build_client_initial(
        ctx, "probe.quicsand.example", rng_, quic::CryptoFidelity::kFull,
        {dissected.packets[0].scid.bytes().data(), 0});  // token carried below
    (void)second;
    ++round_trips;
  }

  // Server handshake flight and client finish.
  const auto flight = quic::build_server_initial_handshake(
      ctx, rng_, quic::CryptoFidelity::kFull);
  const auto dissected = quic::dissect_udp_payload(flight);
  if (dissected.is_quic && dissected.packets.size() == 2) {
    const auto fin = quic::build_client_handshake_finish(
        ctx, rng_, quic::CryptoFidelity::kFull);
    obs.handshake_completed = !fin.empty();
  }
  obs.round_trips = round_trips;
  return obs;
}

std::vector<ProbeObservation> RetryProber::probe_all(
    const std::vector<net::Ipv4Address>& servers) {
  std::vector<ProbeObservation> out;
  out.reserve(servers.size());
  for (const auto addr : servers) out.push_back(probe(addr));
  return out;
}

}  // namespace quicsand::scanner
