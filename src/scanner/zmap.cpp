#include "scanner/zmap.hpp"

#include <stdexcept>

namespace quicsand::scanner {

ScanPass::ScanPass(const ScanPassConfig& config)
    : config_(config), skip_rng_(util::mix64(config.seed, 0x5ca9)) {
  if (config.coverage <= 0.0 || config.coverage > 1.0) {
    throw std::invalid_argument("ScanPass: coverage must be in (0, 1]");
  }
  if (config.duration <= util::Duration{}) {
    throw std::invalid_argument("ScanPass: non-positive duration");
  }
  space_ = config.telescope.size();
  const int bits = 32 - config.telescope.length();
  half_bits_ = (bits + 1) / 2;
  total_ = static_cast<std::uint64_t>(
      static_cast<double>(space_) * config.coverage + 0.5);
  util::Rng key_rng(util::mix64(config.seed, 0xfe15));
  for (auto& key : round_keys_) {
    key = static_cast<std::uint32_t>(key_rng.next());
  }
  next_time_ = config.start;
}

std::uint64_t ScanPass::permute(std::uint64_t index) const {
  // Balanced Feistel over 2*half_bits_ bits with cycle-walking down to
  // the telescope size. Guaranteed to terminate: the permutation is a
  // bijection on a domain at most 2x the target space.
  const std::uint64_t half_mask = (1ULL << half_bits_) - 1;
  std::uint64_t value = index;
  do {
    std::uint64_t left = value >> half_bits_;
    std::uint64_t right = value & half_mask;
    for (const std::uint32_t key : round_keys_) {
      const std::uint64_t f =
          util::mix64(right, key) & half_mask;
      const std::uint64_t new_right = left ^ f;
      left = right;
      right = new_right;
    }
    value = (left << half_bits_) | right;
  } while (value >= space_);
  return value;
}

std::optional<ScanPass::Probe> ScanPass::next() {
  const double rate =
      static_cast<double>(space_) * config_.coverage /
      util::to_seconds(config_.duration);
  while (index_ < space_) {
    const std::uint64_t idx = index_++;
    if (config_.coverage < 1.0 && !skip_rng_.bernoulli(config_.coverage)) {
      continue;
    }
    Probe probe;
    next_time_ += util::from_seconds(skip_rng_.exponential(rate));
    probe.time = next_time_;
    probe.target = config_.telescope.at(permute(idx));
    ++emitted_;
    return probe;
  }
  return std::nullopt;
}

}  // namespace quicsand::scanner
