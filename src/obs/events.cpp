#include "obs/events.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

namespace quicsand::obs {

const char* detector_event_name(DetectorEventType type) {
  switch (type) {
    case DetectorEventType::kAlertFired: return "alert_fired";
    case DetectorEventType::kAttackClosed: return "attack_closed";
    case DetectorEventType::kSessionEvicted: return "session_evicted";
  }
  return "unknown";
}

std::string to_json_line(const DetectorEvent& event) {
  std::ostringstream out;
  out.precision(3);
  out << std::fixed;
  out << "{\"event\": \"" << detector_event_name(event.type)
      << "\", \"time\": \"" << util::format_utc(event.time)
      << "\", \"time_us\": " << event.time.count()
      << ", \"victim\": \"" << event.victim
      << "\", \"packets\": " << event.packets
      << ", \"peak_pps\": " << event.peak_pps;
  if (event.alert_latency_s >= 0) {
    out << ", \"alert_latency_s\": " << event.alert_latency_s;
  }
  if (event.duration_s >= 0) {
    out << ", \"duration_s\": " << event.duration_s;
  }
  if (event.type == DetectorEventType::kSessionEvicted) {
    out << ", \"alerted\": " << (event.alerted ? "true" : "false");
  }
  out << "}";
  return out.str();
}

void EventLog::set_stream(std::ostream* out) {
  std::lock_guard lock(mutex_);
  stream_ = out;
}

void EventLog::emit(DetectorEvent event) {
  std::lock_guard lock(mutex_);
  if (stream_ != nullptr) *stream_ << to_json_line(event) << "\n";
  events_.push_back(std::move(event));
}

std::vector<DetectorEvent> EventLog::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::size_t EventLog::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

void EventLog::write_ndjson(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  for (const auto& event : events_) out << to_json_line(event) << "\n";
}

bool EventLog::write_ndjson_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  write_ndjson(out);
  return static_cast<bool>(out);
}

}  // namespace quicsand::obs
