#include "obs/events.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <ostream>
#include <sstream>

namespace quicsand::obs {

const char* detector_event_name(DetectorEventType type) {
  switch (type) {
    case DetectorEventType::kAlertFired: return "alert_fired";
    case DetectorEventType::kAttackClosed: return "attack_closed";
    case DetectorEventType::kSessionEvicted: return "session_evicted";
  }
  return "unknown";
}

std::string to_json_line(const DetectorEvent& event) {
  std::ostringstream out;
  out.precision(3);
  out << std::fixed;
  out << "{\"event\": \"" << detector_event_name(event.type)
      << "\", \"time\": \"" << util::format_utc(event.time)
      << "\", \"time_us\": " << event.time.count()
      << ", \"victim\": \"" << event.victim
      << "\", \"packets\": " << event.packets
      << ", \"peak_pps\": " << event.peak_pps;
  if (event.alert_latency_s >= 0) {
    out << ", \"alert_latency_s\": " << event.alert_latency_s;
  }
  if (event.detect_latency_s >= 0) {
    out << ", \"detect_latency_s\": " << event.detect_latency_s;
  }
  if (event.duration_s >= 0) {
    out << ", \"duration_s\": " << event.duration_s;
  }
  if (event.type == DetectorEventType::kSessionEvicted) {
    out << ", \"alerted\": " << (event.alerted ? "true" : "false");
  }
  out << "}";
  return out.str();
}

std::optional<std::string> EventSubscription::pop(util::Duration wait) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(wait.count());
  util::UniqueLock lock(mutex_);
  while (lines_.empty() && !closed_) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
  }
  if (lines_.empty()) return std::nullopt;
  std::string line = std::move(lines_.front());
  lines_.pop_front();
  return line;
}

std::uint64_t EventSubscription::take_dropped() {
  util::LockGuard lock(mutex_);
  const auto dropped = dropped_;
  dropped_ = 0;
  return dropped;
}

bool EventSubscription::closed() const {
  util::LockGuard lock(mutex_);
  return closed_;
}

void EventSubscription::push(std::string line) {
  {
    util::LockGuard lock(mutex_);
    if (closed_) return;
    if (lines_.size() >= capacity_) {
      lines_.pop_front();  // drop the oldest line, keep the alert fresh
      ++dropped_;
    }
    lines_.push_back(std::move(line));
  }
  cv_.notify_all();
}

void EventSubscription::close() {
  {
    util::LockGuard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

EventLog::~EventLog() {
  util::LockGuard lock(mutex_);
  for (const auto& subscription : subscriptions_) subscription->close();
}

void EventLog::set_stream(std::ostream* out) {
  util::LockGuard lock(mutex_);
  stream_ = out;
}

void EventLog::tee_locked(const DetectorEvent& event,
                          const std::string& line) {
  if (stream_ == nullptr) return;
  *stream_ << line << "\n";
  // Alerts are the time-critical lines: flush so a tail -f (or the
  // /events endpoint's file-backed cousin) sees them immediately
  // instead of at buffer-flush granularity.
  if (event.type == DetectorEventType::kAlertFired) stream_->flush();
}

void EventLog::emit(DetectorEvent event) {
  util::LockGuard lock(mutex_);
  const auto line = to_json_line(event);
  tee_locked(event, line);
  for (const auto& subscription : subscriptions_) subscription->push(line);
  events_.push_back(std::move(event));
}

void EventLog::flush() {
  util::LockGuard lock(mutex_);
  if (stream_ != nullptr) stream_->flush();
}

std::shared_ptr<EventSubscription> EventLog::subscribe(std::size_t capacity) {
  return subscribe(capacity, 0, nullptr);
}

std::shared_ptr<EventSubscription> EventLog::subscribe(
    std::size_t capacity, std::size_t backlog,
    std::vector<std::string>* replay) {
  auto subscription = std::shared_ptr<EventSubscription>(
      new EventSubscription(capacity == 0 ? 1 : capacity));
  util::LockGuard lock(mutex_);
  // Backlog capture and registration happen under the same lock emit()
  // takes, so an event lands in exactly one of the two: the replayed
  // tail or the live ring. No gap, no duplicate.
  if (replay != nullptr && backlog > 0) {
    const std::size_t start =
        events_.size() > backlog ? events_.size() - backlog : 0;
    for (std::size_t i = start; i < events_.size(); ++i) {
      replay->push_back(to_json_line(events_[i]));
    }
  }
  subscriptions_.push_back(subscription);
  return subscription;
}

void EventLog::unsubscribe(
    const std::shared_ptr<EventSubscription>& subscription) {
  if (!subscription) return;
  subscription->close();
  util::LockGuard lock(mutex_);
  std::erase(subscriptions_, subscription);
}

std::vector<DetectorEvent> EventLog::events() const {
  util::LockGuard lock(mutex_);
  return events_;
}

std::size_t EventLog::size() const {
  util::LockGuard lock(mutex_);
  return events_.size();
}

std::vector<DetectorEvent> EventLog::events_since(std::size_t from,
                                                  std::size_t* next) const {
  util::LockGuard lock(mutex_);
  std::vector<DetectorEvent> out;
  if (from < events_.size()) {
    out.assign(events_.begin() + static_cast<std::ptrdiff_t>(from),
               events_.end());
  }
  if (next != nullptr) *next = events_.size();
  return out;
}

void EventLog::write_ndjson(std::ostream& out) const {
  util::LockGuard lock(mutex_);
  for (const auto& event : events_) out << to_json_line(event) << "\n";
}

bool EventLog::write_ndjson_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  write_ndjson(out);
  return static_cast<bool>(out);
}

}  // namespace quicsand::obs
