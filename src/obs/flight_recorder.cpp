#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/tsdb.hpp"

namespace quicsand::obs {

namespace {

void json_escape_to(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(std::move(config)) {
  if (config_.window.count() <= 0) config_.window = 120 * util::kSecond;
}

std::string FlightRecorder::dump() const {
  std::uint64_t now_us = 0;
  if (config_.clock) {
    now_us = config_.clock();
  } else if (config_.store != nullptr) {
    for (const auto& info : config_.store->series()) {
      now_us = std::max(now_us, info.last_us);
    }
  }
  return dump_at(now_us);
}

std::string FlightRecorder::dump_at(std::uint64_t now_us) const {
  std::ostringstream out;
  dump_to(out, now_us);
  return out.str();
}

void FlightRecorder::dump_to(std::ostream& out, std::uint64_t now_us) const {
  if (config_.store == nullptr) {
    out << "{\"type\": \"meta\", \"error\": \"no store attached\"}\n";
    return;
  }
  const auto& store = *config_.store;
  auto window_us = static_cast<std::uint64_t>(config_.window.count());
  if (!store.tiers().empty()) {
    const auto& finest = store.tiers().front();
    window_us = std::min(
        window_us,
        static_cast<std::uint64_t>(finest.step.count()) * finest.buckets);
  }
  const auto from_us = now_us > window_us ? now_us - window_us : 0;
  const auto catalog = store.series();

  out << "{\"type\": \"meta\", \"now_us\": " << now_us
      << ", \"from_us\": " << from_us << ", \"window_s\": "
      << window_us / static_cast<std::uint64_t>(util::kSecond.count())
      << ", \"series\": " << catalog.size() << "}\n";

  for (const auto& info : catalog) {
    // step_us = 0 asks for the finest tier: the high-resolution record.
    const auto result = store.query(info.name, from_us, now_us, 0);
    for (const auto& point : result.points) {
      out << "{\"type\": \"sample\", \"series\": ";
      json_escape_to(out, info.name);
      out << ", \"kind\": \"" << series_kind_name(info.kind)
          << "\", \"t_us\": " << point.t_us << ", \"min\": " << point.min
          << ", \"max\": " << point.max << ", \"sum\": " << point.sum
          << ", \"count\": " << point.count << ", \"last\": " << point.last
          << "}\n";
    }
  }

  for (const auto& annotation : store.annotations(from_us, now_us)) {
    out << "{\"type\": \"annotation\", \"t_us\": " << annotation.t_us
        << ", \"event_time_us\": " << annotation.event_time_us
        << ", \"kind\": ";
    json_escape_to(out, annotation.kind);
    out << ", \"victim\": ";
    json_escape_to(out, annotation.victim);
    out << ", \"packets\": " << annotation.packets << ", \"peak_pps\": ";
    std::ostringstream pps;
    pps.precision(3);
    pps << std::fixed << annotation.peak_pps;
    if (annotation.alert_latency_s >= 0) {
      pps << ", \"alert_latency_s\": " << annotation.alert_latency_s;
    }
    if (annotation.detect_latency_s >= 0) {
      pps << ", \"detect_latency_s\": " << annotation.detect_latency_s;
    }
    out << pps.str() << "}\n";
  }
}

bool FlightRecorder::dump_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << dump();
  return static_cast<bool>(out);
}

}  // namespace quicsand::obs
