// Cadenced bridge from the MetricsRegistry (instantaneous values) to the
// TimeSeriesStore (retained history).
//
// One sample pass snapshots every counter, gauge and histogram
// (count+sum) in the registry — and every latency histogram as
// `<name>.count/.sum` plus `<name>.p50/.p90/.p99` gauge series, so
// quantile history reaches /tsdb, /dash and the flight recorder — and
// records them into the store under the metric's dotted name, then
// drains any new EventLog entries into annotations pinned to the same
// sample clock. The pass runs on its own
// thread every `cadence` (default 1 s) — never on the packet hot path —
// and costs O(metrics) per tick; the live-ingest benchmark pins this at
// well under 1% of a 100k pps capture budget (EXPERIMENTS.md).
//
// The clock is injectable (default: wall microseconds since the Unix
// epoch, so /tsdb timestamps line up with QSL1 capture timestamps and
// detector event times). Tests drive sample_once() with a manual clock
// and no thread, which makes every /tsdb/query body deterministic.
//
// The sampler times itself into the registry (tsdb.sample_us histogram,
// tsdb.samples counter) so its own overhead is part of the history it
// retains.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "util/sync.hpp"
#include "util/time.hpp"

namespace quicsand::obs {

class MetricsRegistry;
class EventLog;
class TimeSeriesStore;
class Counter;
class LatencyHistogram;

struct SamplerConfig {
  MetricsRegistry* metrics = nullptr;  ///< source; required
  TimeSeriesStore* store = nullptr;    ///< sink; required
  EventLog* events = nullptr;          ///< optional: alert annotations
  util::Duration cadence = 1 * util::kSecond;
  /// Sample timestamp source, microseconds; defaults to wall clock
  /// (system_clock) so live samples share an axis with QSL1 frames.
  std::function<std::uint64_t()> clock;
  /// Record tsdb.sample_us / tsdb.samples into the registry. Turn off
  /// for golden tests that pin the full series catalog.
  bool self_metrics = true;
};

class Sampler {
 public:
  explicit Sampler(SamplerConfig config);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// One synchronous pass at clock()-now. Safe without start(); this is
  /// what tests drive with a manual clock.
  void sample_once();

  /// Spawn the cadence thread. False when metrics/store are missing.
  bool start();
  /// Stop and join; idempotent, also called by the destructor. The
  /// final pass taken on stop() makes shutdown dumps include the last
  /// partial interval.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t passes() const {
    return passes_.load(std::memory_order_relaxed);
  }

 private:
  void run_loop();

  SamplerConfig config_;
  std::size_t events_seen_ = 0;  ///< sampler thread / sample_once caller only
  Counter* samples_counter_ = nullptr;
  LatencyHistogram* sample_cost_us_ = nullptr;

  /// Serializes start()/stop() against each other. Two concurrent
  /// stop() calls used to both pass the lock-free running_ check and
  /// double-join thread_ (std::terminate); the lifecycle lock makes the
  /// loser wait until the winner's join finishes, then observe the
  /// joined thread and return. run_loop() never takes this lock, so
  /// joining while holding it cannot deadlock.
  util::Mutex lifecycle_mutex_{util::LockRank::kSamplerLifecycle,
                               "sampler_lifecycle"};
  /// Wakes the cadence thread; guards the stop flag it polls.
  util::Mutex mutex_{util::LockRank::kSamplerState, "sampler_state"};
  util::CondVar cv_;
  std::thread thread_ QS_GUARDED_BY(lifecycle_mutex_);
  std::atomic<bool> running_{false};  ///< lock-free mirror for running()
  bool stopping_ QS_GUARDED_BY(mutex_) = false;
  std::atomic<std::uint64_t> passes_{0};
};

}  // namespace quicsand::obs
