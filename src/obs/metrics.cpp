#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string_view>

namespace quicsand::obs {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; we map dotted paths to
/// underscores and prefix the project name.
std::string prometheus_name(const std::string& name) {
  std::string out = "quicsand_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Counters carry the conventional `_total` suffix in the exposition
/// (OpenMetrics requires it; Prometheus tooling expects it).
std::string prometheus_counter_name(const std::string& name) {
  auto out = prometheus_name(name);
  constexpr std::string_view kSuffix = "_total";
  if (out.size() < kSuffix.size() ||
      out.compare(out.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
          0) {
    out += kSuffix;
  }
  return out;
}

/// HELP text escaping per the text exposition format: backslash and
/// newline must be escaped so multi-line help cannot break the parse.
std::string prometheus_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void json_escape_to(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

}  // namespace

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.reserve(bounds_.size() + 1);
  for (std::size_t i = 0; i < bounds_.size() + 1; ++i) {
    buckets_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
}

void Histogram::observe(std::uint64_t sample) noexcept {
  const auto it =
      std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket]->fetch_add(1, std::memory_order_relaxed);
  count_.add(1);
  sum_.add(sample);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    out.push_back(bucket->load(std::memory_order_relaxed));
  }
  return out;
}

std::vector<std::uint64_t> latency_bounds_us() {
  return {1000,    2000,    5000,     10000,    20000,    50000,   100000,
          200000,  500000,  1000000,  2000000,  5000000,  10000000,
          30000000};
}

std::vector<std::uint64_t> size_bounds() {
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = 1; b <= (1ULL << 20); b *= 4) bounds.push_back(b);
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  util::LockGuard lock(mutex_);
  auto& entry = entries_[name];
  if (!entry.counter) {
    entry.counter = std::make_unique<Counter>();
    entry.help = help;
  }
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  util::LockGuard lock(mutex_);
  auto& entry = entries_[name];
  if (!entry.gauge) {
    entry.gauge = std::make_unique<Gauge>();
    entry.help = help;
  }
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds,
                                      const std::string& help) {
  util::LockGuard lock(mutex_);
  auto& entry = entries_[name];
  if (!entry.histogram) {
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
    entry.help = help;
  }
  return *entry.histogram;
}

LatencyHistogram& MetricsRegistry::latency(const std::string& name,
                                           const std::string& help) {
  util::LockGuard lock(mutex_);
  auto& entry = entries_[name];
  if (!entry.latency) {
    entry.latency = std::make_unique<LatencyHistogram>();
    entry.help = help;
  }
  return *entry.latency;
}

std::string MetricsRegistry::to_prometheus() const {
  util::LockGuard lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, entry] : entries_) {
    const auto prom = entry.counter && !entry.gauge && !entry.histogram
                          ? prometheus_counter_name(name)
                          : prometheus_name(name);
    if (!entry.help.empty()) {
      out << "# HELP " << prom << " " << prometheus_help(entry.help) << "\n";
    }
    if (entry.counter) {
      out << "# TYPE " << prom << " counter\n"
          << prom << " " << entry.counter->value() << "\n";
    }
    if (entry.gauge) {
      out << "# TYPE " << prom << " gauge\n"
          << prom << " " << entry.gauge->value() << "\n";
    }
    if (entry.histogram) {
      const auto& h = *entry.histogram;
      out << "# TYPE " << prom << " histogram\n";
      const auto counts = h.bucket_counts();
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        cumulative += counts[i];
        out << prom << "_bucket{le=\"" << h.bounds()[i] << "\"} "
            << cumulative << "\n";
      }
      cumulative += counts.back();
      out << prom << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
      out << prom << "_sum " << h.sum() << "\n";
      out << prom << "_count " << h.count() << "\n";
    }
    if (entry.latency) {
      // Quantile histograms export as summaries: the quantiles are
      // computed server-side (within LatencyHistogram's error bound), so
      // the exposition carries them directly instead of buckets.
      const auto snap = entry.latency->snapshot();
      out << "# TYPE " << prom << " summary\n";
      out << prom << "{quantile=\"0.5\"} " << snap.p50 << "\n";
      out << prom << "{quantile=\"0.9\"} " << snap.p90 << "\n";
      out << prom << "{quantile=\"0.99\"} " << snap.p99 << "\n";
      out << prom << "{quantile=\"0.999\"} " << snap.p999 << "\n";
      out << prom << "_sum " << snap.sum << "\n";
      out << prom << "_count " << snap.count << "\n";
    }
  }
  return out.str();
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counter_snapshot() const {
  util::LockGuard lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, entry] : entries_) {
    if (entry.counter) out.emplace_back(name, entry.counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, std::int64_t>>
MetricsRegistry::gauge_snapshot() const {
  util::LockGuard lock(mutex_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  for (const auto& [name, entry] : entries_) {
    if (entry.gauge) out.emplace_back(name, entry.gauge->value());
  }
  return out;
}

std::vector<MetricsRegistry::HistogramTotals>
MetricsRegistry::histogram_snapshot() const {
  util::LockGuard lock(mutex_);
  std::vector<HistogramTotals> out;
  for (const auto& [name, entry] : entries_) {
    if (entry.histogram) {
      out.push_back({name, entry.histogram->count(), entry.histogram->sum()});
    }
  }
  return out;
}

std::vector<MetricsRegistry::LatencyTotals>
MetricsRegistry::latency_snapshot() const {
  util::LockGuard lock(mutex_);
  std::vector<LatencyTotals> out;
  for (const auto& [name, entry] : entries_) {
    if (entry.latency) {
      out.push_back({name, entry.latency->snapshot()});
    }
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  util::LockGuard lock(mutex_);
  std::ostringstream out;
  bool first = false;
  auto begin_section = [&](const char* title) {
    out << "  ";
    json_escape_to(out, title);
    out << ": {";
    first = true;
  };
  auto key = [&](const std::string& name) {
    if (!first) out << ",";
    first = false;
    out << "\n    ";
    json_escape_to(out, name);
    out << ": ";
  };

  out << "{\n";
  begin_section("counters");
  for (const auto& [name, entry] : entries_) {
    if (!entry.counter) continue;
    key(name);
    out << entry.counter->value();
  }
  out << (first ? "" : "\n  ") << "},\n";

  begin_section("gauges");
  for (const auto& [name, entry] : entries_) {
    if (!entry.gauge) continue;
    key(name);
    out << entry.gauge->value();
  }
  out << (first ? "" : "\n  ") << "},\n";

  begin_section("histograms");
  for (const auto& [name, entry] : entries_) {
    if (!entry.histogram) continue;
    key(name);
    const auto& h = *entry.histogram;
    out << "{\"count\": " << h.count() << ", \"sum\": " << h.sum()
        << ", \"buckets\": [";
    const auto counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out << ", ";
      out << "{\"le\": ";
      if (i < h.bounds().size()) {
        out << h.bounds()[i];
      } else {
        out << "null";
      }
      out << ", \"count\": " << counts[i] << "}";
    }
    out << "]}";
  }
  out << (first ? "" : "\n  ") << "},\n";

  begin_section("latencies");
  for (const auto& [name, entry] : entries_) {
    if (!entry.latency) continue;
    key(name);
    const auto snap = entry.latency->snapshot();
    out << "{\"count\": " << snap.count << ", \"sum\": " << snap.sum
        << ", \"max\": " << snap.max << ", \"p50\": " << snap.p50
        << ", \"p90\": " << snap.p90 << ", \"p99\": " << snap.p99
        << ", \"p999\": " << snap.p999 << "}";
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace quicsand::obs
