// Liveness / readiness model behind the admin server's /healthz and
// /readyz endpoints.
//
// Long-running stages (the parallel pipeline, the online detector, a
// capture loop) register a named Component once and then heartbeat() it
// from their hot loop. A heartbeat is two relaxed atomic stores plus one
// monotonic clock read — cheap enough to call every few thousand packets.
// Nothing runs in the background: the watchdog is evaluated at read time
// (snapshot()/to_json()), using the same injectable microsecond clock the
// tracer uses, so tests drive stale-heartbeat transitions with a manual
// clock and no sleeps.
//
// State machine per component (age = now - last heartbeat):
//
//   healthy  --age >= degraded_after-->  degraded
//   degraded --age >= unhealthy_after--> unhealthy
//   any      --heartbeat()-->            healthy
//   any      --set_idle(true)-->         healthy ("idle": exempt)
//
// A component that finished its work cleanly calls set_idle(true) so a
// drained pipeline does not decay to unhealthy while the process keeps
// serving /metrics. Readiness is explicit: set_ready(true) once the
// component can do useful work; /readyz is 200 only when every component
// is ready.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "util/sync.hpp"
#include "util/time.hpp"

namespace quicsand::obs {

enum class HealthState : std::uint8_t { kHealthy, kDegraded, kUnhealthy };

[[nodiscard]] const char* health_state_name(HealthState state);

class Health {
 public:
  /// Monotonic microsecond clock; the default measures steady time since
  /// the Health instance was constructed. Tests inject a manual clock.
  using Clock = std::function<std::uint64_t()>;

  Health();
  explicit Health(Clock clock);

  Health(const Health&) = delete;
  Health& operator=(const Health&) = delete;

  class Component {
   public:
    /// Mark the component alive now. Wait-free (relaxed stores).
    void heartbeat() noexcept {
      last_beat_us_.store(owner_->now_us(), std::memory_order_relaxed);
      beats_.fetch_add(1, std::memory_order_relaxed);
    }
    /// Readiness is sticky until changed; components start not ready.
    void set_ready(bool ready) noexcept {
      ready_.store(ready, std::memory_order_relaxed);
    }
    /// Idle components are exempt from the staleness watchdog (a stage
    /// that drained its input is healthy, just quiet).
    void set_idle(bool idle) noexcept {
      idle_.store(idle, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t beats() const noexcept {
      return beats_.load(std::memory_order_relaxed);
    }

    /// Constructed by Health::component(); public only so the deque's
    /// allocator can emplace it in place (atomics make it immovable).
    Component(Health* owner, std::string name,
              util::Duration degraded_after, util::Duration unhealthy_after);

   private:
    friend class Health;

    Health* owner_;
    std::string name_;
    std::uint64_t degraded_after_us_;
    std::uint64_t unhealthy_after_us_;
    std::atomic<std::uint64_t> last_beat_us_;
    std::atomic<std::uint64_t> beats_{0};
    std::atomic<bool> ready_{false};
    std::atomic<bool> idle_{false};
  };

  /// Get-or-create by name; the reference stays valid for the Health
  /// instance's lifetime. Thresholds are fixed at first registration.
  /// Registration counts as the first heartbeat.
  Component& component(
      const std::string& name,
      util::Duration degraded_after = 10 * util::kSecond,
      util::Duration unhealthy_after = 60 * util::kSecond);

  struct ComponentStatus {
    std::string name;
    HealthState state = HealthState::kHealthy;
    bool ready = false;
    bool idle = false;
    std::uint64_t beats = 0;
    std::uint64_t age_us = 0;  ///< microseconds since the last heartbeat
  };

  struct Snapshot {
    HealthState overall = HealthState::kHealthy;  ///< worst component
    bool ready = true;  ///< every component ready (vacuously true)
    std::vector<ComponentStatus> components;  ///< registration order
  };

  /// Evaluate the watchdog against the clock now.
  [[nodiscard]] Snapshot snapshot() const;

  /// {"status": "...", "ready": bool, "components": [...]} — the
  /// /healthz body. Deterministic given a manual clock.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] std::uint64_t now_us() const { return clock_(); }

 private:
  Clock clock_;
  mutable util::Mutex mutex_{util::LockRank::kHealth, "health"};
  /// Guarded registration list; deque => stable references, so a
  /// Component& handed out by component() safely escapes the lock (its
  /// mutators are all relaxed atomics).
  std::deque<Component> components_ QS_GUARDED_BY(mutex_);
};

}  // namespace quicsand::obs
