#include "obs/sampler.hpp"

#include <chrono>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/tsdb.hpp"

namespace quicsand::obs {

namespace {

std::uint64_t wall_clock_us() {
  // This IS the injectable clock's default: production samples share a
  // wall-clock axis with QSL1 frames; tests always inject their own.
  const auto now =  // lint:allow(nondeterministic-source)
      std::chrono::system_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

}  // namespace

Sampler::Sampler(SamplerConfig config) : config_(std::move(config)) {
  if (!config_.clock) config_.clock = wall_clock_us;
  if (config_.cadence.count() <= 0) config_.cadence = 1 * util::kSecond;
  if (config_.self_metrics && config_.metrics != nullptr) {
    samples_counter_ =
        &config_.metrics->counter("tsdb.samples", "TSDB sample passes taken");
    sample_cost_us_ = &config_.metrics->latency(
        "tsdb.sample_us", "cost of one TSDB sample pass (us)");
  }
}

Sampler::~Sampler() { stop(); }

void Sampler::sample_once() {
  if (config_.metrics == nullptr || config_.store == nullptr) return;
  const auto started = std::chrono::steady_clock::now();
  const auto t_us = config_.clock();
  auto& store = *config_.store;

  for (const auto& [name, value] : config_.metrics->counter_snapshot()) {
    store.record(name, SeriesKind::kCounter, t_us,
                 static_cast<std::int64_t>(value));
  }
  for (const auto& [name, value] : config_.metrics->gauge_snapshot()) {
    store.record(name, SeriesKind::kGauge, t_us, value);
  }
  for (const auto& totals : config_.metrics->histogram_snapshot()) {
    store.record(totals.name + ".count", SeriesKind::kHistogramCount, t_us,
                 static_cast<std::int64_t>(totals.count));
    store.record(totals.name + ".sum", SeriesKind::kHistogramSum, t_us,
                 static_cast<std::int64_t>(totals.sum));
  }
  for (const auto& totals : config_.metrics->latency_snapshot()) {
    store.record(totals.name + ".count", SeriesKind::kHistogramCount, t_us,
                 static_cast<std::int64_t>(totals.snap.count));
    store.record(totals.name + ".sum", SeriesKind::kHistogramSum, t_us,
                 static_cast<std::int64_t>(totals.snap.sum));
    // Quantiles are instantaneous values, not monotone accumulations, so
    // they go in as gauges — /dash and quicsand_top read them as "last".
    store.record(totals.name + ".p50", SeriesKind::kGauge, t_us,
                 static_cast<std::int64_t>(totals.snap.p50));
    store.record(totals.name + ".p90", SeriesKind::kGauge, t_us,
                 static_cast<std::int64_t>(totals.snap.p90));
    store.record(totals.name + ".p99", SeriesKind::kGauge, t_us,
                 static_cast<std::int64_t>(totals.snap.p99));
  }

  if (config_.events != nullptr) {
    for (const auto& event :
         config_.events->events_since(events_seen_, &events_seen_)) {
      Annotation annotation;
      annotation.t_us = t_us;
      annotation.event_time_us = event.time.count();
      annotation.kind = detector_event_name(event.type);
      annotation.victim = event.victim;
      annotation.packets = event.packets;
      annotation.peak_pps = event.peak_pps;
      annotation.alert_latency_s = event.alert_latency_s;
      annotation.detect_latency_s = event.detect_latency_s;
      store.annotate(std::move(annotation));
    }
  }

  passes_.fetch_add(1, std::memory_order_relaxed);
  if (samples_counter_ != nullptr) samples_counter_->add();
  if (sample_cost_us_ != nullptr) {
    const auto cost =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count();
    sample_cost_us_->record(static_cast<std::uint64_t>(cost));
  }
}

bool Sampler::start() {
  if (config_.metrics == nullptr || config_.store == nullptr) return false;
  util::LockGuard lifecycle(lifecycle_mutex_);
  if (thread_.joinable()) return true;  // already running
  {
    util::LockGuard lock(mutex_);
    stopping_ = false;
  }
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { run_loop(); });
  return true;
}

void Sampler::stop() {
  // The lifecycle lock (not the lock-free running_ flag) decides who
  // joins: two concurrent stop() calls used to both pass a running_
  // check and double-join (std::terminate). The loser now blocks here
  // until the winner's join completes, then sees thread_ already
  // joined and returns.
  util::LockGuard lifecycle(lifecycle_mutex_);
  if (!thread_.joinable()) return;
  {
    util::LockGuard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  thread_ = std::thread();
  running_.store(false, std::memory_order_relaxed);
}

void Sampler::run_loop() {
  while (true) {
    sample_once();
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(config_.cadence.count());
    util::UniqueLock lock(mutex_);
    while (!stopping_) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    if (stopping_) break;
  }
  // A final pass so the stored history (and any flight-recorder dump
  // taken right after stop()) covers the tail of the run.
  sample_once();
}

}  // namespace quicsand::obs
