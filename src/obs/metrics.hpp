// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// The pipeline, the pcap readers and the online detector are instrumented
// unconditionally but observe nothing unless a registry is attached — each
// instrumentation site keeps a raw Counter*/Histogram* that is nullptr
// when no sink is configured, so the hot-path cost without observability
// is a single pointer check (see DESIGN.md §7 for the cost model).
//
// With a registry attached the write path stays lock-free: counters and
// histograms accumulate into util::StripedAdder cells (relaxed atomics on
// a per-thread cache line), so pool workers, the capture loop and detector
// callbacks can all increment the same metric without synchronization.
// Reads (snapshot/export) sum the stripes; registration takes a mutex but
// happens once per metric, not per observation.
//
// Exports: Prometheus text exposition (to_prometheus) and a JSON snapshot
// (to_json), both with deterministic (sorted-by-name) ordering so golden
// tests can pin the formats.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/latency.hpp"
#include "util/sharded_counter.hpp"
#include "util/sync.hpp"

namespace quicsand::obs {

/// Monotonic counter. add() is wait-free; value() sums the stripes.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { cells_.add(n); }
  [[nodiscard]] std::uint64_t value() const noexcept { return cells_.value(); }

 private:
  util::StripedAdder cells_;
};

/// Last-write-wins signed value (queue depths, open sessions, shard
/// sizes). set/add are relaxed atomics.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over non-negative integer samples (durations in
/// microseconds, sizes in records). Bucket upper bounds are set at
/// registration and never change; observe() is two relaxed fetch_adds
/// plus a striped add for the sum.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t sample) noexcept;

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const {
    return bounds_;
  }
  /// Per-bucket counts; the last entry is the overflow (+Inf) bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.value();
  }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_.value(); }

 private:
  std::vector<std::uint64_t> bounds_;  ///< ascending upper bounds
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> buckets_;
  util::StripedAdder count_;
  util::StripedAdder sum_;
};

/// Commonly useful bounds: 1ms..30s in roughly 1-2-5 steps, microseconds.
[[nodiscard]] std::vector<std::uint64_t> latency_bounds_us();
/// Powers of four from 1 to ~1M, for record/packet counts per unit.
[[nodiscard]] std::vector<std::uint64_t> size_bounds();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create; the returned reference stays valid for the registry's
  /// lifetime. Names use dotted paths ("pipeline.packets"); exports
  /// sanitize them per format. `help` is kept from the first registration.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// `bounds` must be ascending; it is fixed at first registration
  /// (subsequent calls with the same name ignore `bounds`).
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds,
                       const std::string& help = "");
  /// Log-linear quantile histogram for duration metrics (no bounds
  /// choice; see obs/latency.hpp for the error bound). Exported as a
  /// Prometheus summary and a "latencies" JSON section.
  LatencyHistogram& latency(const std::string& name,
                            const std::string& help = "");

  /// Prometheus text exposition format (metric names sanitized to
  /// [a-zA-Z0-9_], dots become underscores; counters get the
  /// conventional `_total` suffix; HELP text is escaped per the format).
  [[nodiscard]] std::string to_prometheus() const;

  /// Point-in-time name/value lists (sorted by name), for surfaces that
  /// derive their own rendering — the admin server's /stats throughput
  /// section reads these instead of re-parsing an export.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counter_snapshot() const;
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>>
  gauge_snapshot() const;
  /// Histogram totals (count/sum per name, sorted); the TSDB sampler
  /// records these as `<name>.count` / `<name>.sum` series.
  struct HistogramTotals {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };
  [[nodiscard]] std::vector<HistogramTotals> histogram_snapshot() const;
  /// Latency-histogram snapshots (count/sum/max + quantiles, sorted by
  /// name); the TSDB sampler records these as `<name>.count/.sum` plus
  /// `<name>.p50/.p90/.p99` gauge series.
  struct LatencyTotals {
    std::string name;
    LatencyHistogram::Snapshot snap;
  };
  [[nodiscard]] std::vector<LatencyTotals> latency_snapshot() const;
  /// JSON object
  /// {"counters":{...},"gauges":{...},"histograms":{...},"latencies":{...}}.
  [[nodiscard]] std::string to_json() const;
  /// Write to_json() to `path`; returns false if the file cannot be
  /// written.
  bool write_json_file(const std::string& path) const;

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<LatencyHistogram> latency;
  };

  mutable util::Mutex mutex_{util::LockRank::kMetrics, "metrics_registry"};
  /// Sorted => deterministic export. The map is guarded; the pointed-to
  /// Counter/Gauge/Histogram objects are lock-free and safely escape the
  /// lock (they live until the registry dies, and never move).
  std::map<std::string, Entry> entries_ QS_GUARDED_BY(mutex_);
};

}  // namespace quicsand::obs
