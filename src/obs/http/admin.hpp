// Admin/telemetry endpoint: the obs layer's live serving surface.
//
// Wraps an http::Server with the routes a running deployment needs:
//
//   GET /             endpoint index (text)
//   GET /metrics      Prometheus text exposition from the MetricsRegistry
//   GET /metrics.json the registry's deterministic JSON snapshot
//   GET /healthz      obs::Health watchdog verdict; 503 when unhealthy
//   GET /readyz       200 once every component reported ready, else 503
//   GET /stats        uptime, thread count, counters/gauges + per-stage
//                     throughput derived from counter/uptime
//   GET /events       chunked NDJSON live tail of the detector EventLog
//                     (?backlog=N replays the last N stored events first)
//   GET /tsdb/series  catalog of retained series + tier table
//   GET /tsdb/query   downsampled points (?series=&from=&to=&step=, µs)
//   GET /dash         self-contained HTML sparkline dashboard
//   GET /debug/flightrecorder  NDJSON bundle of the last minutes
//
// Every endpoint renders under a read snapshot: scrapes sum the striped
// counter cells and never block the wait-free write path, so Prometheus
// can poll /metrics while the pipeline ingests millions of records per
// second. /events subscribers get a bounded per-client ring
// (events_buffer lines) that drops-and-counts when the client reads
// slower than the detector fires — a stalled curl costs history, never
// ingest throughput.
//
// Query-parameter errors are uniform across routes: a malformed or
// out-of-range ?from/?to/?step/?backlog answers
//   400 {"error": {"param": "...", "reason": "...", "value": "..."}}
// so clients can rely on one shape instead of per-route ad-hoc text.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "obs/http/server.hpp"
#include "util/time.hpp"

namespace quicsand::obs {

class MetricsRegistry;
class Health;
class EventLog;
class TimeSeriesStore;
class FlightRecorder;

namespace http {

struct AdminOptions {
  ServerOptions http;
  /// Sinks to serve; any of these may stay nullptr and the matching
  /// endpoint answers 503 with a one-line explanation.
  MetricsRegistry* metrics = nullptr;
  Health* health = nullptr;
  EventLog* events = nullptr;
  /// Retained history behind /tsdb/* and /dash (see obs/tsdb.hpp).
  TimeSeriesStore* tsdb = nullptr;
  /// Incident bundle behind /debug/flightrecorder.
  FlightRecorder* flight = nullptr;
  /// Uptime clock (monotonic microseconds); defaults to steady time
  /// since the AdminServer was constructed. Tests inject a manual clock.
  std::function<std::uint64_t()> clock;
  /// Thread-count probe for /stats; defaults to /proc/self/status.
  std::function<std::int64_t()> thread_count;
  /// Per-client /events ring capacity (lines) and poll cadence.
  std::size_t events_buffer = 256;
  util::Duration events_poll = 200 * util::kMillisecond;
  /// Trailing window for the /stats "rates_per_s" section (per-second
  /// counter rates computed from the time-series store).
  util::Duration stats_rate_window = 10 * util::kSecond;
};

class AdminServer {
 public:
  explicit AdminServer(AdminOptions options);

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  bool start() { return server_.start(); }
  void stop() { server_.stop(); }

  [[nodiscard]] std::uint16_t port() const { return server_.port(); }
  [[nodiscard]] const std::string& last_error() const {
    return server_.last_error();
  }
  [[nodiscard]] bool running() const { return server_.running(); }

  /// The /stats JSON body (exposed for tests and file export).
  [[nodiscard]] std::string stats_json() const;

 private:
  void install_routes();

  AdminOptions options_;
  Server server_;
};

}  // namespace http
}  // namespace quicsand::obs
