#include "obs/http/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

namespace quicsand::obs::http {

namespace {

/// send() the whole buffer; false on any error (including timeout).
bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const auto n = ::send(fd, data.data() + sent, data.size() - sent,
                          MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void set_socket_timeout(int fd, int option, util::Duration timeout) {
  timeval tv{};
  tv.tv_sec = timeout.count() / util::kSecond.count();
  tv.tv_usec = timeout.count() % util::kSecond.count();
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

std::string response_head(int status, const std::string& content_type,
                          std::size_t content_length, bool chunked) {
  std::ostringstream out;
  out << "HTTP/1.1 " << status << " " << status_reason(status) << "\r\n"
      << "Content-Type: " << content_type << "\r\n";
  if (chunked) {
    out << "Transfer-Encoding: chunked\r\n";
  } else {
    out << "Content-Length: " << content_length << "\r\n";
  }
  out << "Connection: close\r\n\r\n";
  return out.str();
}

bool send_response(int fd, const Response& response, bool head_only) {
  std::string payload = response_head(response.status, response.content_type,
                                      response.body.size(), false);
  if (!head_only) payload += response.body;
  return send_all(fd, payload);
}

Response simple_status(int status, const std::string& detail = "") {
  Response response;
  response.status = status;
  response.body = std::string(status_reason(status));
  if (!detail.empty()) response.body += ": " + detail;
  response.body += "\n";
  return response;
}

std::string to_hex(std::size_t value) {
  static const char* kDigits = "0123456789abcdef";
  if (value == 0) return "0";
  std::string out;
  while (value > 0) {
    out.insert(out.begin(), kDigits[value & 0xF]);
    value >>= 4;
  }
  return out;
}

}  // namespace

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
  }
  return "Unknown";
}

bool ClientStream::write_chunk(std::string_view data) {
  if (data.empty()) return alive();
  if (!alive()) return false;
  std::string framed = to_hex(data.size()) + "\r\n";
  framed.append(data);
  framed += "\r\n";
  if (!send_all(fd_, framed)) broken_ = true;
  return alive();
}

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() { stop(); }

void Server::handle(const std::string& path, Handler handler) {
  handlers_[path] = std::move(handler);
}

void Server::handle_stream(const std::string& path, StreamHandler handler,
                           StreamValidator validator) {
  stream_handlers_[path] = {std::move(handler), std::move(validator)};
}

bool Server::start() {
  if (running_.load(std::memory_order_relaxed)) return true;
  stopping_.store(false, std::memory_order_relaxed);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = "socket: " + std::string(std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    error_ = "invalid listen host: " + options_.host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    error_ = "bind " + options_.host + ": " + std::string(std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) != 0) {
    error_ = "listen: " + std::string(std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  if (::pipe(wake_pipe_) != 0) {
    error_ = "pipe: " + std::string(std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
  ::fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);

  running_.store(true, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Wake the accept poll; the accept thread tears everything else down.
  const char byte = 'x';
  [[maybe_unused]] const auto ignored = ::write(wake_pipe_[1], &byte, 1);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  running_.store(false, std::memory_order_relaxed);
}

void Server::reap_connections(bool join_all) {
  for (auto it = connections_.begin(); it != connections_.end();) {
    Connection& connection = **it;
    if (join_all || connection.done.load(std::memory_order_acquire)) {
      if (join_all) {
        // Unblock a connection thread stuck in recv/send.
        ::shutdown(connection.fd, SHUT_RDWR);
      }
      if (connection.thread.joinable()) connection.thread.join();
      ::close(connection.fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    // Finite timeout so finished connection threads are reaped promptly
    // even when no new connection arrives.
    const int ready = ::poll(fds, 2, 100);
    reap_connections(false);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    set_socket_timeout(fd, SO_RCVTIMEO, options_.read_timeout);
    set_socket_timeout(fd, SO_SNDTIMEO, options_.write_timeout);

    if (connections_.size() >= options_.max_connections) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      send_response(fd, simple_status(503, "connection limit reached"),
                    false);
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    connection->thread = std::thread([this, raw] { serve_connection(raw); });
    connections_.push_back(std::move(connection));
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  reap_connections(true);
}

int Server::read_request(int fd, Request* request) const {
  std::string buffer;
  while (buffer.find("\r\n\r\n") == std::string::npos) {
    if (buffer.size() > options_.max_request_bytes) return 413;
    char chunk[1024];
    const auto n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return 408;
      return -1;  // client gone; nothing to answer
    }
    if (n == 0) return -1;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  if (buffer.size() > options_.max_request_bytes) return 413;

  const auto line_end = buffer.find("\r\n");
  const std::string line = buffer.substr(0, line_end);
  const auto method_end = line.find(' ');
  if (method_end == std::string::npos) return 400;
  const auto target_end = line.find(' ', method_end + 1);
  if (target_end == std::string::npos) return 400;
  request->method = line.substr(0, method_end);
  std::string target =
      line.substr(method_end + 1, target_end - method_end - 1);
  if (target.empty() || target[0] != '/') return 400;

  const auto query_start = target.find('?');
  request->path = target.substr(0, query_start);
  if (query_start != std::string::npos) {
    std::string query = target.substr(query_start + 1);
    std::size_t pos = 0;
    while (pos < query.size()) {
      auto amp = query.find('&', pos);
      if (amp == std::string::npos) amp = query.size();
      const std::string pair = query.substr(pos, amp - pos);
      const auto eq = pair.find('=');
      if (eq != std::string::npos) {
        request->query[pair.substr(0, eq)] = pair.substr(eq + 1);
      } else if (!pair.empty()) {
        request->query[pair] = "";
      }
      pos = amp + 1;
    }
  }
  return 0;
}

void Server::serve_connection(Connection* connection) {
  const int fd = connection->fd;
  Request request;
  const int status = read_request(fd, &request);
  if (status > 0) {
    send_response(fd, simple_status(status), false);
  } else if (status == 0) {
    served_.fetch_add(1, std::memory_order_relaxed);
    const bool head_only = request.method == "HEAD";
    if (request.method != "GET" && request.method != "HEAD") {
      send_response(fd, simple_status(405, "only GET and HEAD"), false);
    } else if (const auto it = stream_handlers_.find(request.path);
               it != stream_handlers_.end() && !head_only) {
      // Validate query parameters while a plain status can still be
      // sent; once the chunked 200 head is out it is too late for 400.
      std::optional<Response> rejected;
      if (it->second.validator) rejected = it->second.validator(request);
      if (rejected) {
        send_response(fd, *rejected, false);
      } else if (send_all(fd,
                          response_head(200, "application/x-ndjson", 0,
                                        true))) {
        ClientStream stream(fd, &stopping_);
        it->second.handler(request, stream);
        if (stream.alive()) send_all(fd, "0\r\n\r\n");
      }
    } else if (const auto handler = handlers_.find(request.path);
               handler != handlers_.end()) {
      send_response(fd, handler->second(request), head_only);
    } else if (head_only &&
               stream_handlers_.find(request.path) != stream_handlers_.end()) {
      send_response(fd, simple_status(200), true);
    } else {
      send_response(fd, simple_status(404, request.path), false);
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  connection->done.store(true, std::memory_order_release);
}

}  // namespace quicsand::obs::http
