// The /dash page: a self-contained HTML sparkline dashboard over the
// /tsdb endpoints. No external assets — everything (markup, styles,
// canvas-drawing JS) is one embedded string, so the page works from an
// air-gapped sensor with nothing but the admin port reachable.
#pragma once

#include <string_view>

namespace quicsand::obs::http {

[[nodiscard]] std::string_view dash_html();

}  // namespace quicsand::obs::http
