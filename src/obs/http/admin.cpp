#include "obs/http/admin.hpp"

#include <chrono>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

#include "obs/events.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "util/parse.hpp"

namespace quicsand::obs::http {

namespace {

std::function<std::uint64_t()> steady_clock_since_construction() {
  const auto origin = std::chrono::steady_clock::now();
  return [origin] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - origin)
            .count());
  };
}

/// Threads of this process, from /proc/self/status (-1 off Linux).
std::int64_t proc_thread_count() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    constexpr std::string_view kKey = "Threads:";
    if (line.rfind(kKey, 0) != 0) continue;
    std::string_view rest = std::string_view(line).substr(kKey.size());
    const auto begin = rest.find_first_not_of(" \t");
    if (begin == std::string_view::npos) return -1;
    const auto end = rest.find_last_not_of(" \t\r");
    return util::parse_i64(rest.substr(begin, end - begin + 1)).value_or(-1);
  }
  return -1;
}

std::string fmt_fixed(double value, int digits) {
  std::ostringstream out;
  out.precision(digits);
  out << std::fixed << value;
  return out.str();
}

}  // namespace

AdminServer::AdminServer(AdminOptions options)
    : options_(std::move(options)), server_(options_.http) {
  if (!options_.clock) options_.clock = steady_clock_since_construction();
  if (!options_.thread_count) options_.thread_count = proc_thread_count;
  if (options_.events_buffer == 0) options_.events_buffer = 1;
  install_routes();
}

std::string AdminServer::stats_json() const {
  const auto uptime_us = options_.clock();
  const double uptime_s =
      static_cast<double>(uptime_us) / 1e6;
  std::ostringstream out;
  out << "{\"uptime_s\": " << fmt_fixed(uptime_s, 3)
      << ", \"threads\": " << options_.thread_count()
      << ", \"http\": {\"accepted\": " << server_.connections_accepted()
      << ", \"served\": " << server_.requests_served()
      << ", \"rejected\": " << server_.connections_rejected() << "}";
  if (options_.metrics != nullptr) {
    out << ", \"counters\": {";
    bool first = true;
    const auto counters = options_.metrics->counter_snapshot();
    for (const auto& [name, value] : counters) {
      out << (first ? "" : ", ") << "\"" << name << "\": " << value;
      first = false;
    }
    out << "}, \"gauges\": {";
    first = true;
    for (const auto& [name, value] : options_.metrics->gauge_snapshot()) {
      out << (first ? "" : ", ") << "\"" << name << "\": " << value;
      first = false;
    }
    // Per-stage throughput: every counter divided by uptime. Stages that
    // report packet/record counters (pipeline.*, online.*, pcap.*) thus
    // show up as rates without extra bookkeeping.
    out << "}, \"throughput_per_s\": {";
    first = true;
    for (const auto& [name, value] : counters) {
      const double rate =
          uptime_s > 0 ? static_cast<double>(value) / uptime_s : 0.0;
      out << (first ? "" : ", ") << "\"" << name
          << "\": " << fmt_fixed(rate, 3);
      first = false;
    }
    out << "}";
  }
  out << "}";
  return out.str();
}

void AdminServer::install_routes() {
  server_.handle("/", [](const Request&) {
    Response response;
    response.body =
        "quicsand admin endpoints:\n"
        "  /metrics       Prometheus text exposition\n"
        "  /metrics.json  JSON metrics snapshot\n"
        "  /healthz       component health (watchdog verdict)\n"
        "  /readyz        readiness (503 until every component is ready)\n"
        "  /stats         uptime, threads, per-stage throughput\n"
        "  /events        NDJSON live tail of detector events"
        " (?backlog=N)\n";
    return response;
  });

  server_.handle("/metrics", [this](const Request&) {
    Response response;
    if (options_.metrics == nullptr) {
      response.status = 503;
      response.body = "no metrics registry attached\n";
      return response;
    }
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = options_.metrics->to_prometheus();
    return response;
  });

  server_.handle("/metrics.json", [this](const Request&) {
    Response response;
    if (options_.metrics == nullptr) {
      response.status = 503;
      response.body = "no metrics registry attached\n";
      return response;
    }
    response.content_type = "application/json";
    response.body = options_.metrics->to_json();
    return response;
  });

  server_.handle("/healthz", [this](const Request&) {
    Response response;
    if (options_.health == nullptr) {
      response.status = 503;
      response.body = "no health model attached\n";
      return response;
    }
    const auto snapshot = options_.health->snapshot();
    response.status =
        snapshot.overall == HealthState::kUnhealthy ? 503 : 200;
    response.content_type = "application/json";
    response.body = options_.health->to_json() + "\n";
    return response;
  });

  server_.handle("/readyz", [this](const Request&) {
    Response response;
    if (options_.health == nullptr) {
      response.status = 503;
      response.body = "no health model attached\n";
      return response;
    }
    const auto snapshot = options_.health->snapshot();
    response.status = snapshot.ready ? 200 : 503;
    response.content_type = "application/json";
    response.body = std::string("{\"ready\": ") +
                    (snapshot.ready ? "true" : "false") + "}\n";
    return response;
  });

  server_.handle("/stats", [this](const Request&) {
    Response response;
    response.content_type = "application/json";
    response.body = stats_json() + "\n";
    return response;
  });

  server_.handle_stream("/events", [this](const Request& request,
                                          ClientStream& stream) {
    if (options_.events == nullptr) {
      stream.write_chunk("{\"error\": \"no event log attached\"}\n");
      return;
    }
    // Replay the tail of the stored log first when asked: an operator
    // attaching late still sees the recent alerts. Backlog capture and
    // subscription are one atomic step, so an alert firing while the
    // client attaches is never lost between the two.
    std::uint64_t backlog = 0;
    if (const auto it = request.query.find("backlog");
        it != request.query.end()) {
      backlog = util::parse_u64(it->second).value_or(0);
    }
    std::vector<std::string> replay;
    const auto subscription = options_.events->subscribe(
        options_.events_buffer, static_cast<std::size_t>(backlog), &replay);
    for (const auto& line : replay) {
      if (!stream.write_chunk(line + "\n")) {
        options_.events->unsubscribe(subscription);
        return;
      }
    }
    while (stream.alive() && !subscription->closed()) {
      if (const auto dropped = subscription->take_dropped(); dropped > 0) {
        std::ostringstream notice;
        notice << "{\"event\": \"events_dropped\", \"count\": " << dropped
               << "}\n";
        if (!stream.write_chunk(notice.str())) break;
      }
      const auto line = subscription->pop(options_.events_poll);
      if (!line) continue;  // timeout: loop to re-check liveness
      if (!stream.write_chunk(*line + "\n")) break;
    }
    options_.events->unsubscribe(subscription);
  });
}

}  // namespace quicsand::obs::http
