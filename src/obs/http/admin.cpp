#include "obs/http/admin.hpp"

#include <chrono>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string_view>
#include <vector>

#include "obs/events.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/http/dash.hpp"
#include "obs/metrics.hpp"
#include "obs/tsdb.hpp"
#include "util/parse.hpp"

namespace quicsand::obs::http {

namespace {

std::function<std::uint64_t()> steady_clock_since_construction() {
  const auto origin = std::chrono::steady_clock::now();
  return [origin] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - origin)
            .count());
  };
}

/// Threads of this process, from /proc/self/status (-1 off Linux).
std::int64_t proc_thread_count() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    constexpr std::string_view kKey = "Threads:";
    if (line.rfind(kKey, 0) != 0) continue;
    std::string_view rest = std::string_view(line).substr(kKey.size());
    const auto begin = rest.find_first_not_of(" \t");
    if (begin == std::string_view::npos) return -1;
    const auto end = rest.find_last_not_of(" \t\r");
    return util::parse_i64(rest.substr(begin, end - begin + 1)).value_or(-1);
  }
  return -1;
}

std::string fmt_fixed(double value, int digits) {
  std::ostringstream out;
  out.precision(digits);
  out << std::fixed << value;
  return out.str();
}

void json_escape_to(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

/// The uniform query-parameter error shape every admin route answers
/// with (see the header comment): 400/404 + a structured JSON body.
Response param_error(int status, const std::string& param,
                     const std::string& reason, const std::string& value) {
  Response response;
  response.status = status;
  response.content_type = "application/json";
  std::ostringstream out;
  out << "{\"error\": {\"param\": ";
  json_escape_to(out, param);
  out << ", \"reason\": ";
  json_escape_to(out, reason);
  out << ", \"value\": ";
  json_escape_to(out, value);
  out << "}}\n";
  response.body = out.str();
  return response;
}

/// Optional unsigned parameter: absent -> `fallback`; present but not a
/// valid u64 -> a 400 in `*error`.
std::uint64_t u64_param(const Request& request, const std::string& key,
                        std::uint64_t fallback,
                        std::optional<Response>* error) {
  const auto it = request.query.find(key);
  if (it == request.query.end()) return fallback;
  if (const auto parsed = util::parse_u64(it->second)) return *parsed;
  *error = param_error(400, key, "not an unsigned integer", it->second);
  return fallback;
}

}  // namespace

AdminServer::AdminServer(AdminOptions options)
    : options_(std::move(options)), server_(options_.http) {
  if (!options_.clock) options_.clock = steady_clock_since_construction();
  if (!options_.thread_count) options_.thread_count = proc_thread_count;
  if (options_.events_buffer == 0) options_.events_buffer = 1;
  install_routes();
}

std::string AdminServer::stats_json() const {
  const auto uptime_us = options_.clock();
  const double uptime_s =
      static_cast<double>(uptime_us) / 1e6;
  std::ostringstream out;
  out << "{\"uptime_s\": " << fmt_fixed(uptime_s, 3)
      << ", \"threads\": " << options_.thread_count()
      << ", \"http\": {\"accepted\": " << server_.connections_accepted()
      << ", \"served\": " << server_.requests_served()
      << ", \"rejected\": " << server_.connections_rejected() << "}";
  if (options_.metrics != nullptr) {
    out << ", \"counters\": {";
    bool first = true;
    const auto counters = options_.metrics->counter_snapshot();
    for (const auto& [name, value] : counters) {
      out << (first ? "" : ", ") << "\"" << name << "\": " << value;
      first = false;
    }
    out << "}, \"gauges\": {";
    first = true;
    for (const auto& [name, value] : options_.metrics->gauge_snapshot()) {
      out << (first ? "" : ", ") << "\"" << name << "\": " << value;
      first = false;
    }
    // Per-stage throughput: every counter divided by uptime. Stages that
    // report packet/record counters (pipeline.*, online.*, pcap.*) thus
    // show up as rates without extra bookkeeping.
    out << "}, \"throughput_per_s\": {";
    first = true;
    for (const auto& [name, value] : counters) {
      const double rate =
          uptime_s > 0 ? static_cast<double>(value) / uptime_s : 0.0;
      out << (first ? "" : ", ") << "\"" << name
          << "\": " << fmt_fixed(rate, 3);
      first = false;
    }
    out << "}";
  }
  // Recent per-second rates from the retained history (trailing
  // stats_rate_window, finest tier): unlike throughput_per_s these are
  // "now" rates, so live-capture health (live.received vs live.dropped_*)
  // is visible without Prometheus-side rate() math.
  if (options_.tsdb != nullptr) {
    out << ", \"rates_per_s\": {";
    bool first = true;
    for (const auto& info : options_.tsdb->series()) {
      if (info.kind != SeriesKind::kCounter) continue;
      const auto rate =
          options_.tsdb->rate_per_s(info.name, options_.stats_rate_window);
      out << (first ? "" : ", ") << "\"" << info.name
          << "\": " << fmt_fixed(rate, 3);
      first = false;
    }
    out << "}";
  }
  out << "}";
  return out.str();
}

void AdminServer::install_routes() {
  server_.handle("/", [](const Request&) {
    Response response;
    response.body =
        "quicsand admin endpoints:\n"
        "  /metrics       Prometheus text exposition\n"
        "  /metrics.json  JSON metrics snapshot\n"
        "  /healthz       component health (watchdog verdict)\n"
        "  /readyz        readiness (503 until every component is ready)\n"
        "  /stats         uptime, threads, per-stage throughput\n"
        "  /events        NDJSON live tail of detector events"
        " (?backlog=N)\n"
        "  /tsdb/series   retained time-series catalog + tier table\n"
        "  /tsdb/query    downsampled history"
        " (?series=&from=&to=&step=, microseconds)\n"
        "  /dash          live sparkline dashboard (self-contained HTML)\n"
        "  /debug/flightrecorder  NDJSON bundle of the last minutes\n";
    return response;
  });

  server_.handle("/metrics", [this](const Request&) {
    Response response;
    if (options_.metrics == nullptr) {
      response.status = 503;
      response.body = "no metrics registry attached\n";
      return response;
    }
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = options_.metrics->to_prometheus();
    return response;
  });

  server_.handle("/metrics.json", [this](const Request&) {
    Response response;
    if (options_.metrics == nullptr) {
      response.status = 503;
      response.body = "no metrics registry attached\n";
      return response;
    }
    response.content_type = "application/json";
    response.body = options_.metrics->to_json();
    return response;
  });

  server_.handle("/healthz", [this](const Request&) {
    Response response;
    if (options_.health == nullptr) {
      response.status = 503;
      response.body = "no health model attached\n";
      return response;
    }
    const auto snapshot = options_.health->snapshot();
    response.status =
        snapshot.overall == HealthState::kUnhealthy ? 503 : 200;
    response.content_type = "application/json";
    response.body = options_.health->to_json() + "\n";
    return response;
  });

  server_.handle("/readyz", [this](const Request&) {
    Response response;
    if (options_.health == nullptr) {
      response.status = 503;
      response.body = "no health model attached\n";
      return response;
    }
    const auto snapshot = options_.health->snapshot();
    response.status = snapshot.ready ? 200 : 503;
    response.content_type = "application/json";
    response.body = std::string("{\"ready\": ") +
                    (snapshot.ready ? "true" : "false") + "}\n";
    return response;
  });

  server_.handle("/stats", [this](const Request&) {
    Response response;
    response.content_type = "application/json";
    response.body = stats_json() + "\n";
    return response;
  });

  server_.handle("/tsdb/series", [this](const Request&) {
    Response response;
    if (options_.tsdb == nullptr) {
      response.status = 503;
      response.body = "no time-series store attached\n";
      return response;
    }
    response.content_type = "application/json";
    response.body = options_.tsdb->series_json();
    return response;
  });

  server_.handle("/tsdb/query", [this](const Request& request) {
    Response response;
    if (options_.tsdb == nullptr) {
      response.status = 503;
      response.body = "no time-series store attached\n";
      return response;
    }
    const auto series_it = request.query.find("series");
    if (series_it == request.query.end() || series_it->second.empty()) {
      return param_error(400, "series", "required", "");
    }
    std::optional<Response> error;
    const auto from = u64_param(request, "from", 0, &error);
    const auto to = u64_param(request, "to",
                              std::numeric_limits<std::uint64_t>::max(),
                              &error);
    const auto step = u64_param(request, "step", 0, &error);
    if (error) return *error;
    if (from > to) {
      return param_error(400, "from", "exceeds to (reversed range)",
                         std::to_string(from));
    }
    const auto result = options_.tsdb->query(series_it->second, from, to,
                                             step);
    if (!result.found) {
      return param_error(404, "series", "unknown series",
                         series_it->second);
    }
    response.content_type = "application/json";
    response.body =
        options_.tsdb->query_json(series_it->second, from, to, step);
    return response;
  });

  server_.handle("/dash", [](const Request&) {
    Response response;
    response.content_type = "text/html; charset=utf-8";
    response.body = std::string(dash_html());
    return response;
  });

  server_.handle("/debug/flightrecorder", [this](const Request&) {
    Response response;
    if (options_.flight == nullptr) {
      response.status = 503;
      response.body = "no flight recorder attached\n";
      return response;
    }
    response.content_type = "application/x-ndjson";
    response.body = options_.flight->dump();
    return response;
  });

  const auto backlog_validator =
      [](const Request& request) -> std::optional<Response> {
    std::optional<Response> error;
    u64_param(request, "backlog", 0, &error);
    return error;
  };
  server_.handle_stream("/events", [this](const Request& request,
                                          ClientStream& stream) {
    if (options_.events == nullptr) {
      stream.write_chunk("{\"error\": \"no event log attached\"}\n");
      return;
    }
    // Replay the tail of the stored log first when asked: an operator
    // attaching late still sees the recent alerts. Backlog capture and
    // subscription are one atomic step, so an alert firing while the
    // client attaches is never lost between the two. The validator
    // already rejected malformed values with a structured 400.
    std::uint64_t backlog = 0;
    if (const auto it = request.query.find("backlog");
        it != request.query.end()) {
      backlog = util::parse_u64(it->second).value_or(0);
    }
    std::vector<std::string> replay;
    const auto subscription = options_.events->subscribe(
        options_.events_buffer, static_cast<std::size_t>(backlog), &replay);
    for (const auto& line : replay) {
      if (!stream.write_chunk(line + "\n")) {
        options_.events->unsubscribe(subscription);
        return;
      }
    }
    while (stream.alive() && !subscription->closed()) {
      if (const auto dropped = subscription->take_dropped(); dropped > 0) {
        std::ostringstream notice;
        notice << "{\"event\": \"events_dropped\", \"count\": " << dropped
               << "}\n";
        if (!stream.write_chunk(notice.str())) break;
      }
      const auto line = subscription->pop(options_.events_poll);
      if (!line) continue;  // timeout: loop to re-check liveness
      if (!stream.write_chunk(*line + "\n")) break;
    }
    options_.events->unsubscribe(subscription);
  }, backlog_validator);
}

}  // namespace quicsand::obs::http
