// Minimal dependency-free HTTP/1.1 server over POSIX sockets, sized for
// a telemetry/admin surface (a handful of concurrent scrapers), not for
// serving the public internet:
//
//   * one dedicated accept thread; clean shutdown via a self-pipe that
//     wakes the poll() so stop() never waits out a timeout
//   * one short-lived thread per connection, capped at
//     ServerOptions::max_connections (excess connections get 503)
//   * per-connection read/write timeouts (SO_RCVTIMEO / SO_SNDTIMEO) so
//     a stuck client cannot pin a connection slot
//   * a max-request-size cap (413 when exceeded); only GET and HEAD are
//     accepted (405 otherwise), every response is Connection: close
//
// Two handler kinds: a plain Handler returns a complete Response
// (Content-Length framing); a StreamHandler writes HTTP/1.1 chunks
// through a ClientStream until the client disconnects or the server
// stops — the /events NDJSON live tail uses this.
//
// The request path never touches the process being observed: handlers
// run on the connection thread, so a slow scrape can only delay other
// scrapes, never the pipeline's write path.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/time.hpp"

namespace quicsand::obs::http {

struct Request {
  std::string method;  ///< "GET" / "HEAD"
  std::string path;    ///< target with the query string stripped
  std::map<std::string, std::string> query;  ///< decoded ?k=v pairs
};

struct Response {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

[[nodiscard]] const char* status_reason(int status);

/// Handle a stream handler writes through. Writes are chunk-framed;
/// write_chunk returns false once the client is gone or the server is
/// stopping, at which point the handler should return.
class ClientStream {
 public:
  ClientStream(int fd, const std::atomic<bool>* stopping)
      : fd_(fd), stopping_(stopping) {}

  /// Write one HTTP chunk. Empty data is skipped (an empty chunk would
  /// terminate the stream).
  bool write_chunk(std::string_view data);
  [[nodiscard]] bool alive() const {
    return !broken_ && !stopping_->load(std::memory_order_relaxed);
  }

 private:
  int fd_;
  const std::atomic<bool>* stopping_;
  bool broken_ = false;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 picks an ephemeral port (see Server::port)
  std::size_t max_request_bytes = 8192;
  std::size_t max_connections = 16;
  util::Duration read_timeout = 5 * util::kSecond;
  util::Duration write_timeout = 5 * util::kSecond;
};

class Server {
 public:
  using Handler = std::function<Response(const Request&)>;
  using StreamHandler = std::function<void(const Request&, ClientStream&)>;
  /// Runs before the streaming 200 header is committed; returning a
  /// Response short-circuits the stream (the query-parameter 400 path).
  using StreamValidator = std::function<std::optional<Response>(const Request&)>;

  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Exact-match routes; register before start().
  void handle(const std::string& path, Handler handler);
  void handle_stream(const std::string& path, StreamHandler handler,
                     StreamValidator validator = nullptr);

  /// Bind, listen and spawn the accept thread. Returns false (with
  /// last_error() set) if the socket cannot be bound.
  bool start();

  /// Stop accepting, unblock in-flight connections and join every
  /// thread. Idempotent; also called by the destructor.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_relaxed);
  }
  /// Actual bound port (resolves port 0 after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& last_error() const { return error_; }

  // Introspection for tests and /stats.
  [[nodiscard]] std::uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t connections_rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection* connection);
  void reap_connections(bool join_all);
  /// Parse the request head; returns an HTTP status (0 = OK).
  int read_request(int fd, Request* request) const;

  struct StreamRoute {
    StreamHandler handler;
    StreamValidator validator;  ///< may be null
  };

  ServerOptions options_;
  std::map<std::string, Handler> handlers_;
  std::map<std::string, StreamRoute> stream_handlers_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe: stop() wakes the poll
  std::uint16_t port_ = 0;
  std::string error_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> served_{0};
};

}  // namespace quicsand::obs::http
