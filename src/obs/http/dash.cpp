#include "obs/http/dash.hpp"

namespace quicsand::obs::http {

namespace {

constexpr std::string_view kDashHtml = R"DASH(<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>quicsand dash</title>
<style>
  :root { color-scheme: dark; }
  body { background: #101418; color: #d8dee4; margin: 0;
         font: 13px/1.4 ui-monospace, SFMono-Regular, Menlo, monospace; }
  header { display: flex; align-items: baseline; gap: 16px;
           padding: 10px 16px; border-bottom: 1px solid #2a3138; }
  header h1 { font-size: 15px; margin: 0; color: #7ee2a8; }
  header .meta { color: #8a949e; }
  #grid, #latgrid { display: grid; gap: 10px; padding: 12px 16px;
          grid-template-columns: repeat(auto-fill, minmax(340px, 1fr)); }
  #latgrid { padding-top: 0; }
  .card { background: #161b21; border: 1px solid #2a3138;
          border-radius: 6px; padding: 8px 10px; }
  .card .name { color: #9fb4c7; overflow: hidden; white-space: nowrap;
                text-overflow: ellipsis; }
  .card .value { float: right; color: #7ee2a8; }
  .card .value .p99 { color: #e2a87e; }
  canvas { width: 100%; height: 48px; display: block; margin-top: 4px; }
  #lathead { font-size: 13px; color: #9fb4c7; margin: 4px 16px 0; }
  #alerts { padding: 0 16px 16px; }
  #alerts h2 { font-size: 13px; color: #e2a87e; margin: 8px 0 4px; }
  #alerts div { color: #b9c2cb; }
  .err { color: #e27e7e; padding: 12px 16px; }
</style>
</head>
<body>
<header>
  <h1>quicsand</h1>
  <span class="meta" id="meta">connecting&hellip;</span>
</header>
<div id="grid"></div>
<div id="lathead" hidden>latency quantiles (&micro;s) &mdash;
  <span style="color:#7ee2a8">p50</span> ·
  <span style="color:#d8dee4">p90</span> ·
  <span style="color:#e2a87e">p99</span></div>
<div id="latgrid"></div>
<div id="alerts"></div>
<script>
"use strict";
// Counters are cumulative: plot per-second deltas of `last`. Gauges
// plot `last` directly. Poll cadence matches the sampler's default.
const POLL_MS = 2000, WINDOW_US = 10 * 60 * 1000000;
const cards = new Map();

function card(name, gridId) {
  if (cards.has(name)) return cards.get(name);
  const div = document.createElement("div");
  div.className = "card";
  div.innerHTML = '<span class="value"></span><div class="name"></div>' +
                  "<canvas></canvas>";
  div.querySelector(".name").textContent = name;
  document.getElementById(gridId || "grid").appendChild(div);
  const entry = { value: div.querySelector(".value"),
                  canvas: div.querySelector("canvas") };
  cards.set(name, entry);
  return entry;
}

// lines: [{values, color}] sharing one y-scale — a single series for
// the rate cards, the p50/p90/p99 trio for a latency card.
function spark(canvas, lines) {
  const w = canvas.clientWidth || 320, h = canvas.clientHeight || 48;
  canvas.width = w; canvas.height = h;
  const ctx = canvas.getContext("2d");
  ctx.clearRect(0, 0, w, h);
  const all = lines.flatMap(function (l) { return l.values; });
  if (all.length < 2) return;
  const max = Math.max(...all, 1e-9), min = Math.min(...all, 0);
  lines.forEach(function (l) {
    if (l.values.length < 2) return;
    const dx = w / (l.values.length - 1);
    ctx.beginPath();
    l.values.forEach(function (v, i) {
      const y = h - 2 - (h - 6) * ((v - min) / (max - min || 1));
      if (i === 0) ctx.moveTo(0, y); else ctx.lineTo(i * dx, y);
    });
    ctx.strokeStyle = l.color || "#7ee2a8";
    ctx.lineWidth = 1.25; ctx.stroke();
  });
}

function fmt(v) {
  if (Math.abs(v) >= 1e6) return (v / 1e6).toFixed(1) + "M";
  if (Math.abs(v) >= 1e3) return (v / 1e3).toFixed(1) + "k";
  return Math.abs(v) >= 100 ? v.toFixed(0) : v.toFixed(1);
}

async function getJSON(url) {
  const response = await fetch(url);
  if (!response.ok) throw new Error(url + " -> " + response.status);
  return response.json();
}

async function querySeries(info) {
  // Anchor at the catalog's newest sample and ask for the trailing
  // window only, so the server answers from its finest tier.
  const from = Math.max(0, info.last_us - WINDOW_US);
  return getJSON("/tsdb/query?series=" +
                 encodeURIComponent(info.name) +
                 "&from=" + from + "&step=0");
}

async function drawSeries(info) {
  const q = await querySeries(info);
  // columns: [t_us, min, max, sum, count, last]
  const pts = q.points;
  if (!pts.length) return q;
  const cumulative = q.kind !== "gauge";
  const values = [];
  for (let i = cumulative ? 1 : 0; i < pts.length; i++) {
    if (cumulative) {
      const dt = (pts[i][0] - pts[i - 1][0]) / 1e6;
      values.push(dt > 0 ? (pts[i][5] - pts[i - 1][5]) / dt : 0);
    } else {
      values.push(pts[i][5]);
    }
  }
  const entry = card(info.name);
  const current = values.length ? values[values.length - 1] : 0;
  entry.value.textContent = cumulative ? fmt(current) + "/s" : fmt(current);
  spark(entry.canvas, [{ values: values }]);
  return q;
}

// One latency card per histogram base: the sampler bridges each
// LatencyHistogram to <base>.p50/.p90/.p99 gauge series; plot the trio
// on one y-scale and headline the current p50/p99.
const LAT_COLORS = { p50: "#7ee2a8", p90: "#d8dee4", p99: "#e2a87e" };

async function drawLatency(base, quantiles) {
  const lines = [], current = {};
  for (const q of ["p50", "p90", "p99"]) {
    if (!quantiles[q]) continue;
    const resp = await querySeries(quantiles[q]);
    const values = resp.points.map(function (p) { return p[5]; });
    if (values.length) current[q] = values[values.length - 1];
    lines.push({ values: values, color: LAT_COLORS[q] });
  }
  const entry = card(base, "latgrid");
  spark(entry.canvas, lines);
  entry.value.innerHTML =
    (current.p50 !== undefined ? fmt(current.p50) : "&ndash;") +
    ' / <span class="p99">' +
    (current.p99 !== undefined ? fmt(current.p99) : "&ndash;") + "</span>";
}

async function refresh() {
  try {
    const catalog = await getJSON("/tsdb/series");
    document.getElementById("meta").textContent =
      catalog.series.length + " series · " +
      catalog.tiers.map(function (t) {
        return (t.step_us / 1e6) + "s×" + t.buckets;
      }).join(" → ") + " · " + new Date().toISOString();
    let annotations = [];
    // Quantile gauges fold into per-base latency cards; everything
    // else stays an individual rate/level card in the main grid.
    const latencies = new Map();
    for (const info of catalog.series) {
      const m = info.name.match(/^(.*)\.(p50|p90|p99)$/);
      if (m) {
        if (!latencies.has(m[1])) latencies.set(m[1], {});
        latencies.get(m[1])[m[2]] = info;
        continue;
      }
      const q = await drawSeries(info);
      if (q && q.annotations) annotations = q.annotations;
    }
    document.getElementById("lathead").hidden = latencies.size === 0;
    for (const [base, quantiles] of latencies) {
      await drawLatency(base, quantiles);
    }
    const alerts = document.getElementById("alerts");
    if (annotations.length) {
      alerts.innerHTML = "<h2>events</h2>";
      annotations.slice(-12).reverse().forEach(function (a) {
        const line = document.createElement("div");
        line.textContent = new Date(a.t_us / 1000).toISOString() + "  " +
          a.kind + "  " + a.victim + "  " + a.packets + " pkts @ " +
          a.peak_pps + " pps";
        alerts.appendChild(line);
      });
    }
  } catch (error) {
    document.getElementById("meta").textContent = String(error);
  }
  setTimeout(refresh, POLL_MS);
}
refresh();
</script>
</body>
</html>
)DASH";

}  // namespace

std::string_view dash_html() { return kDashHtml; }

}  // namespace quicsand::obs::http
