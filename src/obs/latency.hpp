// Lock-free log-linear latency histogram with a provable relative-error
// bound — the duration-metric primitive behind every *_us histogram in
// the repo (detection latency, pipeline stage times, sampler cost).
//
// Fixed-bucket histograms force a bounds choice per metric and lose all
// resolution outside it; an HDR-style log-linear layout covers the full
// u64 range with a uniform accuracy guarantee instead. With
// kSubBucketBits = 5 the layout is:
//
//   values  0 .. 31          one bucket per value (exact)
//   each octave [2^e, 2^(e+1)), e >= 5
//                            16 sub-buckets of width 2^(e-4)
//
// A bucket's representative is its midpoint, so reconstructing any
// recorded value v from its bucket is off by at most half a bucket
// width. Within octave e the width is w = 2^(e-4) and every value is at
// least 16*w, hence
//
//   |representative - v| / v  <=  (w/2) / (16*w)  =  1/32  =  2^-5
//
// i.e. every quantile query is within kMaxRelativeError (3.125%) of a
// true recorded value — the bound tests/obs_latency_test.cpp pins
// across magnitudes. Values below 32 are exact.
//
// Concurrency: record() is two striped adds plus one relaxed fetch_add
// on the bucket and a CAS loop for the max — no locks, safe from any
// number of threads (shard workers, the receive loop, detector
// callbacks). Readers (quantile/snapshot) copy the bucket array with
// relaxed loads; a snapshot taken during concurrent writes is a valid
// histogram of some subset of them.
//
// Merging: every histogram shares one static geometry, so merge_from()
// is an element-wise add and merged quantiles are *exactly* what a
// single recorder fed the union of samples would report (associative
// and commutative — pinned by test). That is what makes per-shard
// recording cheap: shards record locally and the exporter merges.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/sharded_counter.hpp"

namespace quicsand::obs {

class LatencyHistogram {
 public:
  /// Sub-buckets per octave = 2^kSubBucketBits; also the precision knob.
  static constexpr unsigned kSubBucketBits = 5;
  /// Quantile reconstruction error bound: 2^-kSubBucketBits.
  static constexpr double kMaxRelativeError = 1.0 / 32.0;

  LatencyHistogram();

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Record one non-negative sample (microseconds by convention).
  /// Lock-free, wait-free except the max CAS loop.
  void record(std::uint64_t value) noexcept;

  /// Element-wise add of `other`'s buckets (and count/sum/max) into
  /// this histogram. Same geometry always, so the merged quantiles
  /// equal a single recorder's — associative and commutative.
  void merge_from(const LatencyHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.value();
  }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_.value(); }
  /// Largest recorded value, exact (not bucket-rounded). 0 when empty.
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  /// Value at quantile q in [0, 1] (clamped): the representative of the
  /// bucket holding the ceil(q * count)-th smallest observation, within
  /// kMaxRelativeError of a true recorded value. 0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  /// One consistent pass over the buckets: count/sum/max plus the four
  /// standard quantiles, all from the same bucket copy.
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Relaxed copy of the bucket array (tests pin merge exactness on it).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

  // Static geometry, exposed so the error-bound test can check every
  // bucket's representative against its edges.
  [[nodiscard]] static std::size_t bucket_count() noexcept;
  [[nodiscard]] static std::size_t index_of(std::uint64_t value) noexcept;
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t index) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t index) noexcept;
  [[nodiscard]] static std::uint64_t bucket_representative(
      std::size_t index) noexcept;

 private:
  static constexpr std::size_t kHalf = std::size_t{1}
                                       << (kSubBucketBits - 1);  // 16
  static constexpr std::size_t kLinear = std::size_t{1}
                                         << kSubBucketBits;  // 32
  // Octaves 5..63 (64 - kSubBucketBits of them) each contribute kHalf
  // sub-buckets after the linear region: 32 + 59*16 = 976 buckets,
  // ~7.6 KiB of atomics.
  static constexpr std::size_t kBuckets =
      kLinear + (64 - kSubBucketBits) * kHalf;

  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  util::StripedAdder count_;
  util::StripedAdder sum_;
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace quicsand::obs
