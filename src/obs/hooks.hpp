// Observability attachment point.
//
// Subsystems that can be observed (pipelines, readers, the online
// detector) take an obs::Hooks by value in their options struct. All
// members default to nullptr — the unobserved configuration — and the
// instrumented code resolves its metric handles once at construction, so
// per-packet work pays only a pointer test when nothing is attached.
#pragma once

namespace quicsand::obs {

class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
class LatencyHistogram;
class Tracer;
class EventLog;
class Health;
class TimeSeriesStore;

struct Hooks {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  EventLog* events = nullptr;
  /// Liveness registry: long-running stages register a component and
  /// heartbeat it so /healthz can flag a stalled stage (see health.hpp).
  Health* health = nullptr;
  /// Retained metrics history (see tsdb.hpp). Stages normally don't
  /// write here directly — the Sampler bridges the registry on a
  /// cadence — but a stage can annotate() incident marks on the shared
  /// timeline.
  TimeSeriesStore* tsdb = nullptr;
};

}  // namespace quicsand::obs
