#include "obs/tsdb.hpp"

#include <algorithm>
#include <sstream>

namespace quicsand::obs {

namespace {

void json_escape_to(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

void annotation_json_to(std::ostringstream& out,
                        const Annotation& annotation) {
  out << "{\"t_us\": " << annotation.t_us
      << ", \"event_time_us\": " << annotation.event_time_us
      << ", \"kind\": ";
  json_escape_to(out, annotation.kind);
  out << ", \"victim\": ";
  json_escape_to(out, annotation.victim);
  out << ", \"packets\": " << annotation.packets << ", \"peak_pps\": ";
  std::ostringstream pps;
  pps.precision(3);
  pps << std::fixed << annotation.peak_pps;
  if (annotation.alert_latency_s >= 0) {
    pps << ", \"alert_latency_s\": " << annotation.alert_latency_s;
  }
  if (annotation.detect_latency_s >= 0) {
    pps << ", \"detect_latency_s\": " << annotation.detect_latency_s;
  }
  out << pps.str() << "}";
}

}  // namespace

const char* series_kind_name(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kCounter: return "counter";
    case SeriesKind::kGauge: return "gauge";
    case SeriesKind::kHistogramCount: return "histogram_count";
    case SeriesKind::kHistogramSum: return "histogram_sum";
  }
  return "unknown";
}

std::vector<TierConfig> default_tiers() {
  return {
      {1 * util::kSecond, 600},    // 1 s resolution for 10 minutes
      {10 * util::kSecond, 720},   // 10 s resolution for 2 hours
      {1 * util::kMinute, 1440},   // 1 min resolution for 24 hours
  };
}

TimeSeriesStore::TimeSeriesStore(TsdbConfig config)
    : config_(std::move(config)) {
  if (config_.tiers.empty()) config_.tiers = default_tiers();
  for (auto& tier : config_.tiers) {
    if (tier.step.count() <= 0) tier.step = 1 * util::kSecond;
    if (tier.buckets == 0) tier.buckets = 1;
  }
  if (config_.max_series == 0) config_.max_series = 1;
  if (config_.max_annotations == 0) config_.max_annotations = 1;
}

bool TimeSeriesStore::record(const std::string& name, SeriesKind kind,
                             std::uint64_t t_us, std::int64_t value) {
  util::LockGuard lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    if (entries_.size() >= config_.max_series) {
      ++series_dropped_;
      return false;
    }
    Series series;
    series.kind = kind;
    series.first_us = t_us;
    series.rings.reserve(config_.tiers.size());
    for (const auto& tier : config_.tiers) {
      series.rings.emplace_back(tier.buckets);
    }
    it = entries_.emplace(name, std::move(series)).first;
  }
  auto& series = it->second;
  ++series.samples;
  series.last_us = std::max(series.last_us, t_us);
  ++samples_recorded_;

  for (std::size_t tier = 0; tier < config_.tiers.size(); ++tier) {
    const auto step = static_cast<std::uint64_t>(
        config_.tiers[tier].step.count());
    const auto index = static_cast<std::int64_t>(t_us / step);
    auto& ring = series.rings[tier];
    auto& bucket = ring[static_cast<std::size_t>(index) % ring.size()];
    if (bucket.index == index) {
      bucket.min = std::min(bucket.min, value);
      bucket.max = std::max(bucket.max, value);
      bucket.sum += value;
      bucket.last = value;
      ++bucket.count;
    } else if (bucket.index < index) {
      // The slot held an aged-out bucket (or was empty): start fresh.
      bucket = Bucket{index, value, value, value, value, 1};
    }
    // bucket.index > index: the sample is older than the ring's window
    // at this resolution — already evicted, ignore.
  }
  return true;
}

void TimeSeriesStore::annotate(Annotation annotation) {
  util::LockGuard lock(mutex_);
  if (annotations_.size() >= config_.max_annotations) {
    annotations_.pop_front();
  }
  annotations_.push_back(std::move(annotation));
}

std::vector<TimeSeriesStore::SeriesInfo> TimeSeriesStore::series() const {
  util::LockGuard lock(mutex_);
  std::vector<SeriesInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, series] : entries_) {
    out.push_back({name, series.kind, series.samples, series.first_us,
                   series.last_us});
  }
  return out;
}

std::size_t TimeSeriesStore::pick_tier(const Series& series,
                                       std::uint64_t from_us,
                                       std::uint64_t step_us) const {
  // Finest tier satisfying the requested resolution...
  std::size_t chosen = 0;
  while (chosen + 1 < config_.tiers.size() &&
         static_cast<std::uint64_t>(config_.tiers[chosen].step.count()) <
             step_us) {
    ++chosen;
  }
  // ...escalated until its retention (relative to the newest sample)
  // still covers `from_us`, or we run out of tiers. A `from` before the
  // series even existed asks for history no tier has — clamp it to the
  // first sample so from=0 ("everything") stays on the finest tier that
  // actually covers the series' lifetime.
  from_us = std::max(from_us, series.first_us);
  while (chosen + 1 < config_.tiers.size()) {
    const auto& tier = config_.tiers[chosen];
    const auto retention = static_cast<std::uint64_t>(tier.step.count()) *
                           tier.buckets;
    if (series.last_us < retention || from_us >= series.last_us - retention) {
      break;
    }
    ++chosen;
  }
  return chosen;
}

void TimeSeriesStore::collect_points(const Series& series, std::size_t tier,
                                     std::uint64_t from_us,
                                     std::uint64_t to_us,
                                     std::vector<TsdbPoint>* out) const {
  const auto step = static_cast<std::uint64_t>(
      config_.tiers[tier].step.count());
  const auto& ring = series.rings[tier];
  const auto newest = static_cast<std::int64_t>(series.last_us / step);
  // Valid absolute indices live in (newest - ring.size(), newest]; clip
  // the request so a from=0 query never walks billions of indices.
  auto from_index = static_cast<std::int64_t>(from_us / step);
  auto to_index = static_cast<std::int64_t>(to_us / step);
  const auto oldest =
      newest - static_cast<std::int64_t>(ring.size()) + 1;
  from_index = std::max(from_index, oldest);
  to_index = std::min(to_index, newest);
  for (auto index = from_index; index <= to_index; ++index) {
    const auto& bucket = ring[static_cast<std::size_t>(index) % ring.size()];
    if (bucket.index != index) continue;  // gap or evicted
    out->push_back({static_cast<std::uint64_t>(index) * step, bucket.min,
                    bucket.max, bucket.sum, bucket.last, bucket.count});
  }
}

void TimeSeriesStore::collect_annotations(std::uint64_t from_us,
                                          std::uint64_t to_us,
                                          std::vector<Annotation>* out) const {
  for (const auto& annotation : annotations_) {
    if (annotation.t_us >= from_us && annotation.t_us <= to_us) {
      out->push_back(annotation);
    }
  }
}

TimeSeriesStore::QueryResult TimeSeriesStore::query(
    const std::string& name, std::uint64_t from_us, std::uint64_t to_us,
    std::uint64_t step_us) const {
  util::LockGuard lock(mutex_);
  QueryResult result;
  const auto it = entries_.find(name);
  if (it == entries_.end()) return result;
  const auto& series = it->second;
  result.found = true;
  result.kind = series.kind;
  const auto tier = pick_tier(series, from_us, step_us);
  result.step_us = static_cast<std::uint64_t>(
      config_.tiers[tier].step.count());
  if (from_us > to_us) return result;  // reversed range: empty, not fatal
  collect_points(series, tier, from_us, to_us, &result.points);
  collect_annotations(from_us, to_us, &result.annotations);
  return result;
}

double TimeSeriesStore::rate_per_s(const std::string& name,
                                   util::Duration window) const {
  util::LockGuard lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || window.count() <= 0) return 0;
  const auto& series = it->second;
  const auto window_us = static_cast<std::uint64_t>(window.count());
  const auto from_us =
      series.last_us > window_us ? series.last_us - window_us : 0;
  std::vector<TsdbPoint> points;
  collect_points(series, 0, from_us, series.last_us, &points);
  if (points.size() < 2) return 0;
  const auto& oldest = points.front();
  const auto& newest = points.back();
  const auto elapsed_us = newest.t_us - oldest.t_us;
  if (elapsed_us == 0) return 0;
  return static_cast<double>(newest.last - oldest.last) /
         (static_cast<double>(elapsed_us) / 1e6);
}

std::vector<Annotation> TimeSeriesStore::annotations(
    std::uint64_t from_us, std::uint64_t to_us) const {
  util::LockGuard lock(mutex_);
  std::vector<Annotation> out;
  collect_annotations(from_us, to_us, &out);
  return out;
}

std::string TimeSeriesStore::series_json() const {
  util::LockGuard lock(mutex_);
  std::ostringstream out;
  out << "{\"tiers\": [";
  for (std::size_t i = 0; i < config_.tiers.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{\"step_us\": " << config_.tiers[i].step.count()
        << ", \"buckets\": " << config_.tiers[i].buckets << "}";
  }
  out << "], \"series\": [";
  bool first = true;
  for (const auto& [name, series] : entries_) {
    out << (first ? "" : ", ") << "{\"name\": ";
    json_escape_to(out, name);
    out << ", \"kind\": \"" << series_kind_name(series.kind)
        << "\", \"samples\": " << series.samples
        << ", \"first_us\": " << series.first_us
        << ", \"last_us\": " << series.last_us << "}";
    first = false;
  }
  out << "], \"dropped_series\": " << series_dropped_ << "}\n";
  return out.str();
}

std::string TimeSeriesStore::query_json(const std::string& name,
                                        std::uint64_t from_us,
                                        std::uint64_t to_us,
                                        std::uint64_t step_us) const {
  const auto result = query(name, from_us, to_us, step_us);
  std::ostringstream out;
  out << "{\"series\": ";
  json_escape_to(out, name);
  if (!result.found) {
    out << ", \"error\": \"unknown series\"}\n";
    return out.str();
  }
  out << ", \"kind\": \"" << series_kind_name(result.kind)
      << "\", \"step_us\": " << result.step_us
      << ", \"columns\": [\"t_us\", \"min\", \"max\", \"sum\", \"count\","
         " \"last\"], \"points\": [";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const auto& p = result.points[i];
    if (i > 0) out << ", ";
    out << "[" << p.t_us << ", " << p.min << ", " << p.max << ", " << p.sum
        << ", " << p.count << ", " << p.last << "]";
  }
  out << "], \"annotations\": [";
  for (std::size_t i = 0; i < result.annotations.size(); ++i) {
    if (i > 0) out << ", ";
    annotation_json_to(out, result.annotations[i]);
  }
  out << "]}\n";
  return out.str();
}

std::size_t TimeSeriesStore::series_count() const {
  util::LockGuard lock(mutex_);
  return entries_.size();
}

std::uint64_t TimeSeriesStore::samples_recorded() const {
  util::LockGuard lock(mutex_);
  return samples_recorded_;
}

std::uint64_t TimeSeriesStore::series_dropped() const {
  util::LockGuard lock(mutex_);
  return series_dropped_;
}

}  // namespace quicsand::obs
