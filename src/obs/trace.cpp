#include "obs/trace.hpp"

#include <chrono>
#include <fstream>
#include <sstream>

namespace quicsand::obs {

Tracer::Tracer()
    : Tracer([epoch = std::chrono::steady_clock::now()] {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - epoch)
                .count());
      }) {}

Tracer::Tracer(Clock clock) : clock_(std::move(clock)) {}

void Tracer::record(std::string name, std::uint64_t start_us,
                    std::uint64_t duration_us) {
  util::LockGuard lock(mutex_);
  const auto [it, inserted] = tids_.try_emplace(
      std::this_thread::get_id(), static_cast<std::uint32_t>(tids_.size()));
  events_.push_back(
      TraceEvent{std::move(name), start_us, duration_us, it->second});
}

std::vector<Tracer::TraceEvent> Tracer::events() const {
  util::LockGuard lock(mutex_);
  return events_;
}

void Tracer::clear() {
  util::LockGuard lock(mutex_);
  events_.clear();
}

std::string Tracer::to_chrome_json() const {
  util::LockGuard lock(mutex_);
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const auto& event : events_) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "  {\"name\": \"";
    for (const char c : event.name) {
      if (c == '"' || c == '\\') out << '\\';
      out << c;
    }
    out << "\", \"cat\": \"quicsand\", \"ph\": \"X\", \"ts\": "
        << event.start_us << ", \"dur\": " << event.duration_us
        << ", \"pid\": 1, \"tid\": " << event.tid << "}";
  }
  out << (first ? "" : "\n") << "]}\n";
  return out.str();
}

bool Tracer::write_chrome_json_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_chrome_json();
  return static_cast<bool>(out);
}

}  // namespace quicsand::obs
