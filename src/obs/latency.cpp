#include "obs/latency.hpp"

#include <bit>
#include <cmath>

namespace quicsand::obs {
namespace {

// Smallest octave with sub-bucketing; values below 2^kOctave0 are exact.
constexpr unsigned kOctave0 = LatencyHistogram::kSubBucketBits;

}  // namespace

LatencyHistogram::LatencyHistogram()
    : buckets_(new std::atomic<std::uint64_t>[kBuckets]) {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::size_t LatencyHistogram::bucket_count() noexcept { return kBuckets; }

std::size_t LatencyHistogram::index_of(std::uint64_t value) noexcept {
  if (value < kLinear) {
    return static_cast<std::size_t>(value);
  }
  const unsigned exponent = 63U - static_cast<unsigned>(std::countl_zero(value));
  // Top kSubBucketBits bits of the value: in [kHalf, kLinear) because the
  // leading bit is set. Shifting by (exponent - (kSubBucketBits - 1)) keeps
  // exactly kSubBucketBits bits.
  const std::uint64_t sub = value >> (exponent - (kSubBucketBits - 1U));
  return kLinear + (exponent - kOctave0) * kHalf +
         (static_cast<std::size_t>(sub) - kHalf);
}

std::uint64_t LatencyHistogram::bucket_lower(std::size_t index) noexcept {
  if (index < kLinear) {
    return static_cast<std::uint64_t>(index);
  }
  const std::size_t off = index - kLinear;
  const unsigned exponent = kOctave0 + static_cast<unsigned>(off / kHalf);
  const std::uint64_t sub = kHalf + (off % kHalf);
  // Width within octave e is 2^(e - (kSubBucketBits - 1)).
  return sub << (exponent - (kSubBucketBits - 1U));
}

std::uint64_t LatencyHistogram::bucket_upper(std::size_t index) noexcept {
  if (index < kLinear) {
    return static_cast<std::uint64_t>(index);
  }
  const std::size_t off = index - kLinear;
  const unsigned exponent = kOctave0 + static_cast<unsigned>(off / kHalf);
  const std::uint64_t width = std::uint64_t{1} << (exponent -
                                                   (kSubBucketBits - 1U));
  return bucket_lower(index) + (width - 1);
}

std::uint64_t LatencyHistogram::bucket_representative(
    std::size_t index) noexcept {
  if (index < kLinear) {
    return static_cast<std::uint64_t>(index);
  }
  const std::size_t off = index - kLinear;
  const unsigned exponent = kOctave0 + static_cast<unsigned>(off / kHalf);
  const std::uint64_t width = std::uint64_t{1} << (exponent -
                                                   (kSubBucketBits - 1U));
  // Midpoint; the last octave's midpoints still fit in u64 because the
  // lower edge has the top bit set and width/2 <= 2^58.
  return bucket_lower(index) + width / 2;
}

void LatencyHistogram::record(std::uint64_t value) noexcept {
  buckets_[index_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.add(1);
  sum_.add(value);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::merge_from(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) {
      buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
  }
  count_.add(other.count());
  sum_.add(other.sum());
  const std::uint64_t other_max = other.max();
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (other_max > seen && !max_.compare_exchange_weak(
                                 seen, other_max, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> LatencyHistogram::bucket_counts() const {
  std::vector<std::uint64_t> out(kBuckets);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

namespace {

// Quantile over a materialized bucket copy: representative of the bucket
// holding the ceil(q * total)-th smallest observation.
std::uint64_t quantile_of(const std::vector<std::uint64_t>& buckets,
                          std::uint64_t total, double q) {
  if (total == 0) {
    return 0;
  }
  const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(clamped * static_cast<double>(total)));
  if (target == 0) {
    target = 1;
  }
  if (target > total) {
    target = total;
  }
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= target) {
      return LatencyHistogram::bucket_representative(i);
    }
  }
  return LatencyHistogram::bucket_representative(buckets.size() - 1);
}

}  // namespace

std::uint64_t LatencyHistogram::quantile(double q) const {
  const std::vector<std::uint64_t> buckets = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t n : buckets) {
    total += n;
  }
  return quantile_of(buckets, total, q);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  const std::vector<std::uint64_t> buckets = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t n : buckets) {
    total += n;
  }
  // Bucket-derived count keeps the quantiles and the count consistent even
  // under concurrent writes; sum/max are the striped/atomic totals.
  snap.count = total;
  snap.sum = sum();
  snap.max = max();
  snap.p50 = quantile_of(buckets, total, 0.50);
  snap.p90 = quantile_of(buckets, total, 0.90);
  snap.p99 = quantile_of(buckets, total, 0.99);
  snap.p999 = quantile_of(buckets, total, 0.999);
  return snap;
}

}  // namespace quicsand::obs
