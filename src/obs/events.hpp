// Structured event log for the online detector.
//
// Every alert / attack-close / session-eviction becomes one line of
// line-delimited JSON (NDJSON), the format log shippers and jq expect:
//
//   {"event": "alert_fired", "time": "2021-04-01 00:05:26",
//    "time_us": 1617235526000000, "victim": "44.1.2.3",
//    "packets": 131, "peak_pps": 2.18, "alert_latency_s": 86.0}
//
// The log keeps events in memory for tests and batch export, and can tee
// each line to an ostream as it happens (the monitor example streams them
// to a file an operator can tail). emit() takes a mutex — detector events
// are orders of magnitude rarer than packets, so this is not a hot path.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace quicsand::obs {

enum class DetectorEventType : std::uint8_t {
  kAlertFired,      ///< session first crossed every DoS threshold
  kAttackClosed,    ///< alerted session expired/finished: final numbers
  kSessionEvicted,  ///< session removed (alerted or not)
};

[[nodiscard]] const char* detector_event_name(DetectorEventType type);

struct DetectorEvent {
  DetectorEventType type = DetectorEventType::kAlertFired;
  util::Timestamp time{};  ///< simulation/capture time of the event
  std::string victim;        ///< dotted-quad backscatter source
  std::uint64_t packets = 0;
  double peak_pps = 0;
  /// Seconds from session start to alert; alert/attack events only (<0
  /// means not applicable and is omitted from the JSON).
  double alert_latency_s = -1;
  /// Session length in seconds; close/evict events only (<0 omitted).
  double duration_s = -1;
  bool alerted = false;  ///< eviction events: had this session alerted?
};

/// One NDJSON line (no trailing newline).
[[nodiscard]] std::string to_json_line(const DetectorEvent& event);

class EventLog {
 public:
  EventLog() = default;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Tee each event to `out` as an NDJSON line the moment it is emitted
  /// (in addition to the in-memory log). Pass nullptr to stop.
  void set_stream(std::ostream* out);

  void emit(DetectorEvent event);

  [[nodiscard]] std::vector<DetectorEvent> events() const;
  [[nodiscard]] std::size_t size() const;

  /// Write the whole log as NDJSON.
  void write_ndjson(std::ostream& out) const;
  bool write_ndjson_file(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<DetectorEvent> events_;
  std::ostream* stream_ = nullptr;
};

}  // namespace quicsand::obs
