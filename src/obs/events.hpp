// Structured event log for the online detector.
//
// Every alert / attack-close / session-eviction becomes one line of
// line-delimited JSON (NDJSON), the format log shippers and jq expect:
//
//   {"event": "alert_fired", "time": "2021-04-01 00:05:26",
//    "time_us": 1617235526000000, "victim": "44.1.2.3",
//    "packets": 131, "peak_pps": 2.18, "alert_latency_s": 86.0}
//
// The log keeps events in memory for tests and batch export, and can tee
// each line to an ostream as it happens (the monitor example streams them
// to a file an operator can tail). emit() takes a mutex — detector events
// are orders of magnitude rarer than packets, so this is not a hot path.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/sync.hpp"
#include "util/time.hpp"

namespace quicsand::obs {

/// Compile-time tripwire for the thread-safety annotations in this
/// header; defined only in tests/tsa_negative.cpp (see scripts/
/// check_tsa.sh). The probe accesses guarded fields without their locks
/// and MUST fail to compile under -Werror=thread-safety — if deleting a
/// QS_GUARDED_BY/QS_REQUIRES below makes the probe build, CI fails.
struct TsaNegativeProbe;

enum class DetectorEventType : std::uint8_t {
  kAlertFired,      ///< session first crossed every DoS threshold
  kAttackClosed,    ///< alerted session expired/finished: final numbers
  kSessionEvicted,  ///< session removed (alerted or not)
};

[[nodiscard]] const char* detector_event_name(DetectorEventType type);

struct DetectorEvent {
  DetectorEventType type = DetectorEventType::kAlertFired;
  util::Timestamp time{};  ///< simulation/capture time of the event
  std::string victim;        ///< dotted-quad backscatter source
  std::uint64_t packets = 0;
  double peak_pps = 0;
  /// Seconds from session start to alert; alert/attack events only (<0
  /// means not applicable and is omitted from the JSON).
  double alert_latency_s = -1;
  /// Wall-clock seconds from the first admitted packet's wire (QSL2
  /// send, falling back to receive) stamp to the alert callback; alert
  /// events in live runs only (<0 omitted). Event-time alert_latency_s
  /// measures the attack; this measures the pipeline.
  double detect_latency_s = -1;
  /// Session length in seconds; close/evict events only (<0 omitted).
  double duration_s = -1;
  bool alerted = false;  ///< eviction events: had this session alerted?
};

/// One NDJSON line (no trailing newline).
[[nodiscard]] std::string to_json_line(const DetectorEvent& event);

/// Live-tail handle returned by EventLog::subscribe(): a bounded ring of
/// rendered NDJSON lines. The emitter never blocks on a subscriber — when
/// the ring is full the oldest line is dropped and counted, so a slow
/// /events consumer loses history, not the pipeline's throughput.
class EventSubscription {
 public:
  /// Wait up to `wait` for the next line; nullopt on timeout or once the
  /// subscription is closed and drained.
  std::optional<std::string> pop(util::Duration wait);

  /// Lines dropped because the ring was full since the last call
  /// (read-and-reset, so the consumer can report each gap once).
  [[nodiscard]] std::uint64_t take_dropped();

  [[nodiscard]] bool closed() const;

 private:
  friend class EventLog;
  friend struct TsaNegativeProbe;
  explicit EventSubscription(std::size_t capacity) : capacity_(capacity) {}

  void push(std::string line);
  void close();

  mutable util::Mutex mutex_{util::LockRank::kEventSubscription,
                             "event_subscription"};
  util::CondVar cv_;
  std::deque<std::string> lines_ QS_GUARDED_BY(mutex_);
  const std::size_t capacity_;  ///< immutable after construction
  std::uint64_t dropped_ QS_GUARDED_BY(mutex_) = 0;
  bool closed_ QS_GUARDED_BY(mutex_) = false;
};

class EventLog {
 public:
  EventLog() = default;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Tee each event to `out` as an NDJSON line the moment it is emitted
  /// (in addition to the in-memory log). Pass nullptr to stop.
  void set_stream(std::ostream* out);

  void emit(DetectorEvent event);

  /// Flush the tee stream so an operator tailing the file sees every
  /// line written so far. emit() calls this automatically for alert
  /// events — an early-warning line must not sit in a stdio buffer.
  void flush();

  /// Attach a live tail with a ring of `capacity` lines (see
  /// EventSubscription). Every event emitted after this call is pushed
  /// to the subscriber; closed via unsubscribe() or ~EventLog.
  [[nodiscard]] std::shared_ptr<EventSubscription> subscribe(
      std::size_t capacity);

  /// Same, but atomically captures the last `backlog` stored events as
  /// rendered NDJSON lines into `replay` under the emit lock: an event
  /// fired while a client attaches appears in exactly one of the replay
  /// or the ring, never neither (and never both).
  [[nodiscard]] std::shared_ptr<EventSubscription> subscribe(
      std::size_t capacity, std::size_t backlog,
      std::vector<std::string>* replay);
  void unsubscribe(const std::shared_ptr<EventSubscription>& subscription);

  [[nodiscard]] std::vector<DetectorEvent> events() const;
  [[nodiscard]] std::size_t size() const;

  /// Events stored at index >= `from` (a previous size()); sets `*next`
  /// to the new size. Lets a poller (the TSDB sampler) drain only the
  /// new tail instead of copying the whole log every pass.
  [[nodiscard]] std::vector<DetectorEvent> events_since(
      std::size_t from, std::size_t* next) const;

  /// Write the whole log as NDJSON.
  void write_ndjson(std::ostream& out) const;
  bool write_ndjson_file(const std::string& path) const;

  ~EventLog();

 private:
  friend struct TsaNegativeProbe;

  /// Write `line` to the tee stream if one is attached, flushing
  /// immediately for alert events. Caller holds mutex_.
  void tee_locked(const DetectorEvent& event, const std::string& line)
      QS_REQUIRES(mutex_);

  mutable util::Mutex mutex_{util::LockRank::kEventLog, "event_log"};
  std::vector<DetectorEvent> events_ QS_GUARDED_BY(mutex_);
  std::ostream* stream_ QS_GUARDED_BY(mutex_) = nullptr;
  std::vector<std::shared_ptr<EventSubscription>> subscriptions_
      QS_GUARDED_BY(mutex_);
};

}  // namespace quicsand::obs
