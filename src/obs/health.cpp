#include "obs/health.hpp"

#include <chrono>
#include <sstream>

namespace quicsand::obs {

namespace {

Health::Clock steady_clock_since_construction() {
  const auto origin = std::chrono::steady_clock::now();
  return [origin] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - origin)
            .count());
  };
}

HealthState evaluate(std::uint64_t age_us, std::uint64_t degraded_after_us,
                     std::uint64_t unhealthy_after_us, bool idle) {
  if (idle) return HealthState::kHealthy;
  if (age_us >= unhealthy_after_us) return HealthState::kUnhealthy;
  if (age_us >= degraded_after_us) return HealthState::kDegraded;
  return HealthState::kHealthy;
}

}  // namespace

const char* health_state_name(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kUnhealthy: return "unhealthy";
  }
  return "unknown";
}

Health::Component::Component(Health* owner, std::string name,
                             util::Duration degraded_after,
                             util::Duration unhealthy_after)
    : owner_(owner),
      name_(std::move(name)),
      degraded_after_us_(static_cast<std::uint64_t>(degraded_after.count())),
      unhealthy_after_us_(
          static_cast<std::uint64_t>(unhealthy_after.count())),
      last_beat_us_(owner->now_us()) {}

Health::Health() : clock_(steady_clock_since_construction()) {}

Health::Health(Clock clock) : clock_(std::move(clock)) {}

Health::Component& Health::component(const std::string& name,
                                     util::Duration degraded_after,
                                     util::Duration unhealthy_after) {
  util::LockGuard lock(mutex_);
  for (auto& component : components_) {
    if (component.name_ == name) return component;
  }
  components_.emplace_back(this, name, degraded_after, unhealthy_after);
  return components_.back();
}

Health::Snapshot Health::snapshot() const {
  const auto now = now_us();
  util::LockGuard lock(mutex_);
  Snapshot snapshot;
  for (const auto& component : components_) {
    ComponentStatus status;
    status.name = component.name_;
    status.ready = component.ready_.load(std::memory_order_relaxed);
    status.idle = component.idle_.load(std::memory_order_relaxed);
    status.beats = component.beats();
    const auto last = component.last_beat_us_.load(std::memory_order_relaxed);
    status.age_us = now >= last ? now - last : 0;
    status.state = evaluate(status.age_us, component.degraded_after_us_,
                            component.unhealthy_after_us_, status.idle);
    if (static_cast<int>(status.state) >
        static_cast<int>(snapshot.overall)) {
      snapshot.overall = status.state;
    }
    snapshot.ready = snapshot.ready && status.ready;
    snapshot.components.push_back(std::move(status));
  }
  return snapshot;
}

std::string Health::to_json() const {
  const auto snap = snapshot();
  std::ostringstream out;
  out << "{\"status\": \"" << health_state_name(snap.overall)
      << "\", \"ready\": " << (snap.ready ? "true" : "false")
      << ", \"components\": [";
  bool first = true;
  for (const auto& component : snap.components) {
    if (!first) out << ", ";
    first = false;
    out << "{\"name\": \"" << component.name << "\", \"state\": \""
        << health_state_name(component.state)
        << "\", \"ready\": " << (component.ready ? "true" : "false")
        << ", \"idle\": " << (component.idle ? "true" : "false")
        << ", \"beats\": " << component.beats
        << ", \"age_us\": " << component.age_us << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace quicsand::obs
