// Stage tracing: RAII spans over the pipeline's stages, exported in the
// chrome://tracing / Perfetto "traceEvents" JSON format so shard
// imbalance and merge stalls are visible on a timeline (load the file at
// chrome://tracing or https://ui.perfetto.dev).
//
// A Span records wall time between construction and destruction (or an
// explicit end()) and appends one complete event to the Tracer on close.
// Span accepts a null Tracer and then does nothing, so instrumentation
// sites need no conditionals. Recording takes a mutex per *completed*
// span; spans wrap coarse units (a classify batch, one shard's
// sessionization, a merge), not per-packet work, so contention is nil.
//
// Thread ids in the export are small stable integers assigned in order of
// first appearance on the recording thread, which keeps the JSON
// deterministic enough for tests while still separating pool workers into
// their own timeline rows.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/sync.hpp"

namespace quicsand::obs {

class Tracer {
 public:
  /// Microsecond clock; the default measures steady time since the
  /// tracer was constructed. Tests inject a manual clock.
  using Clock = std::function<std::uint64_t()>;

  Tracer();
  explicit Tracer(Clock clock);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  struct TraceEvent {
    std::string name;
    std::uint64_t start_us = 0;
    std::uint64_t duration_us = 0;
    std::uint32_t tid = 0;  ///< small int per recording thread
  };

  [[nodiscard]] std::uint64_t now_us() const { return clock_(); }

  /// Append one completed event (called by ~Span).
  void record(std::string name, std::uint64_t start_us,
              std::uint64_t duration_us);

  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Drop all recorded events (benchmark loops reuse one tracer).
  void clear();

  /// {"traceEvents":[...]} — complete ("ph":"X") events.
  [[nodiscard]] std::string to_chrome_json() const;
  bool write_chrome_json_file(const std::string& path) const;

 private:
  Clock clock_;
  mutable util::Mutex mutex_{util::LockRank::kTracer, "tracer"};
  std::vector<TraceEvent> events_ QS_GUARDED_BY(mutex_);
  std::unordered_map<std::thread::id, std::uint32_t> tids_
      QS_GUARDED_BY(mutex_);
};

/// RAII span; null tracer => no-op. Movable so helpers can return spans.
class Span {
 public:
  Span(Tracer* tracer, std::string name)
      : tracer_(tracer), name_(std::move(name)) {
    if (tracer_ != nullptr) start_ = tracer_->now_us();
  }
  Span(Span&& other) noexcept
      : tracer_(other.tracer_),
        name_(std::move(other.name_)),
        start_(other.start_) {
    other.tracer_ = nullptr;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span& operator=(Span&&) = delete;

  ~Span() { end(); }

  /// Close early (idempotent).
  void end() {
    if (tracer_ == nullptr) return;
    tracer_->record(std::move(name_), start_, tracer_->now_us() - start_);
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_;
  std::string name_;
  std::uint64_t start_ = 0;
};

}  // namespace quicsand::obs
