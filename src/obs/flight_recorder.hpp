// Incident flight recorder: the last couple of minutes of
// high-resolution telemetry, dumpable as one NDJSON bundle.
//
// The recorder does not keep its own copy of anything — it is a view
// over the TimeSeriesStore's finest tier (1 s buckets by default) plus
// the annotation ring, bounded to a trailing `window`. dump() renders:
//
//   {"type": "meta", ...}                        one header line
//   {"type": "sample", "series": ..., ...}       per series, time-ascending
//   {"type": "annotation", ...}                  detector events in window
//
// Everything an operator needs to reconstruct "what was happening right
// before it died": per-second counter deltas, gauge levels, queue
// depths and the alerts overlaid on the same clock. The admin server
// serves it at GET /debug/flightrecorder; `monitor --flight-out FILE`
// writes the same bundle on (signal) shutdown.
//
// Determinism: given a manual clock and a deterministic store, dump_at()
// is byte-stable — the golden tests pin it.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "util/time.hpp"

namespace quicsand::obs {

class TimeSeriesStore;

struct FlightRecorderConfig {
  TimeSeriesStore* store = nullptr;  ///< required
  /// Trailing window to dump; clamped to the store's finest-tier
  /// retention (there is no more high-resolution history than that).
  util::Duration window = 120 * util::kSecond;
  /// "now" source for dump(); must share the sampler's axis. Defaults
  /// to the newest sample in the store, which is always on-axis.
  std::function<std::uint64_t()> clock;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The NDJSON bundle for [now - window, now], now from the configured
  /// clock (or the store's newest sample when no clock is set).
  [[nodiscard]] std::string dump() const;
  /// Same with an explicit "now" (tests pin this byte-for-byte).
  [[nodiscard]] std::string dump_at(std::uint64_t now_us) const;

  void dump_to(std::ostream& out, std::uint64_t now_us) const;
  /// Write dump() to `path`; false when the file cannot be written.
  bool dump_file(const std::string& path) const;

  [[nodiscard]] util::Duration window() const { return config_.window; }

 private:
  FlightRecorderConfig config_;
};

}  // namespace quicsand::obs
