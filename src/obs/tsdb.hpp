// In-process metrics time-series store: the retention layer behind the
// admin server's /tsdb endpoints and the flight recorder.
//
// The store is a fixed-memory, dependency-free TSDB sized for one
// process observing itself. Every sample lands in a set of
// multi-resolution tiers (by default 1 s x 10 min, 10 s x 2 h and
// 1 min x 24 h); each tier is a ring of downsample buckets keyed by the
// absolute bucket index (floor(t/step)), so writing is O(tiers) with no
// per-sample allocation and old data is evicted by arithmetic, never by
// a background job. A bucket keeps min/max/sum/count/last so both rates
// (delta of `last` between buckets of a cumulative counter) and spikes
// (`max` of a gauge) survive downsampling.
//
// Memory is bounded at construction:
//
//   bytes ~= series x sum_over_tiers(buckets) x sizeof(Bucket)  [48 B]
//
// The default tiers hold 600+720+1440 = 2760 buckets (~130 KiB per
// series); a monitor exporting ~60 series retains a full day of history
// in under 8 MiB. When `max_series` is reached further series are
// dropped (and counted), never reallocated.
//
// Detector alerts enter the same timeline as annotations: a bounded
// ring of {sample time, event payload} the dashboard and the flight
// recorder overlay on the sampled series.
//
// Concurrency: one mutex guards the whole store. The writer is the
// Sampler (one pass per cadence tick, not per packet) and readers are
// admin-server connection threads, so contention is a few locked
// operations per second — the packet hot path never touches the store.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "util/sync.hpp"
#include "util/time.hpp"

namespace quicsand::obs {

enum class SeriesKind : std::uint8_t {
  kCounter,         ///< cumulative, monotonic (rate = delta of `last`)
  kGauge,           ///< instantaneous signed level
  kHistogramCount,  ///< a histogram's cumulative observation count
  kHistogramSum,    ///< a histogram's cumulative observation sum
};

[[nodiscard]] const char* series_kind_name(SeriesKind kind);

/// One downsample tier: `buckets` ring slots of `step` each, i.e.
/// retention = step * buckets.
struct TierConfig {
  util::Duration step{};
  std::size_t buckets = 0;
};

/// 1 s x 10 min -> 10 s x 2 h -> 1 m x 24 h.
[[nodiscard]] std::vector<TierConfig> default_tiers();

struct TsdbConfig {
  /// Ascending by step; empty selects default_tiers().
  std::vector<TierConfig> tiers;
  /// Hard cap on distinct series; extra record() calls are counted in
  /// series_dropped() and otherwise ignored.
  std::size_t max_series = 512;
  /// Annotation ring capacity (oldest evicted first).
  std::size_t max_annotations = 1024;
};

/// One downsampled point: every aggregate of the samples whose
/// timestamps fell into [t_us, t_us + step).
struct TsdbPoint {
  std::uint64_t t_us = 0;  ///< bucket start on the sample clock
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::int64_t sum = 0;
  std::int64_t last = 0;  ///< most recent raw sample in the bucket
  std::uint64_t count = 0;
};

/// A detector event pinned to the sample timeline. `t_us` is when the
/// sampler observed it (same clock as every TsdbPoint); `event_time_us`
/// is the event's own capture/simulation timestamp.
struct Annotation {
  std::uint64_t t_us = 0;
  std::int64_t event_time_us = 0;
  std::string kind;    ///< "alert_fired", "attack_closed", ...
  std::string victim;  ///< dotted quad (may be empty for non-detector marks)
  std::uint64_t packets = 0;
  double peak_pps = 0;
  /// Event-time alert latency (first admitting packet -> threshold),
  /// seconds; negative when absent. Rendered only when >= 0 so
  /// annotations without it keep their pinned JSON shape.
  double alert_latency_s = -1.0;
  /// Wall-clock detection latency (first packet's wire stamp -> alert
  /// callback), seconds; negative when absent (non-live runs).
  double detect_latency_s = -1.0;
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TsdbConfig config = {});

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Record one sample into every tier. Returns false (and counts the
  /// drop) when the series table is full. Out-of-order samples older
  /// than a tier's current bucket window are ignored per tier.
  bool record(const std::string& name, SeriesKind kind, std::uint64_t t_us,
              std::int64_t value);

  void annotate(Annotation annotation);

  struct SeriesInfo {
    std::string name;
    SeriesKind kind = SeriesKind::kCounter;
    std::uint64_t samples = 0;   ///< raw samples recorded
    std::uint64_t first_us = 0;  ///< first sample timestamp ever seen
    std::uint64_t last_us = 0;   ///< newest sample timestamp
  };
  [[nodiscard]] std::vector<SeriesInfo> series() const;

  struct QueryResult {
    bool found = false;  ///< false: no such series
    SeriesKind kind = SeriesKind::kCounter;
    std::uint64_t step_us = 0;  ///< effective (tier) resolution
    std::vector<TsdbPoint> points;
    std::vector<Annotation> annotations;  ///< annotations inside the range
  };

  /// Downsampled points for `name` whose buckets overlap [from_us,
  /// to_us]. The effective resolution is the finest tier with
  /// step >= step_us that still retains `from_us` (the coarsest tier
  /// when none does); pass step_us = 0 for the finest available. A
  /// reversed or out-of-retention range yields an empty point list.
  [[nodiscard]] QueryResult query(const std::string& name,
                                  std::uint64_t from_us, std::uint64_t to_us,
                                  std::uint64_t step_us) const;

  /// Per-second rate of a cumulative series over the trailing `window`
  /// ending at its newest sample, from the finest tier (0 when fewer
  /// than two buckets cover the window). Meaningful for kCounter /
  /// kHistogram* series; gauges get the mean-slope, which is rarely
  /// what you want.
  [[nodiscard]] double rate_per_s(const std::string& name,
                                  util::Duration window) const;

  [[nodiscard]] std::vector<Annotation> annotations(std::uint64_t from_us,
                                                    std::uint64_t to_us) const;

  /// The /tsdb/series catalog: {"tiers": [...], "series": [...]} with
  /// deterministic (sorted-by-name) ordering.
  [[nodiscard]] std::string series_json() const;

  /// The /tsdb/query body for a found series: step, points as
  /// [t_us, min, max, sum, count, last] rows, annotations in range.
  /// Deterministic given deterministic sample timestamps.
  [[nodiscard]] std::string query_json(const std::string& name,
                                       std::uint64_t from_us,
                                       std::uint64_t to_us,
                                       std::uint64_t step_us) const;

  [[nodiscard]] const std::vector<TierConfig>& tiers() const {
    return config_.tiers;
  }
  [[nodiscard]] std::size_t series_count() const;
  [[nodiscard]] std::uint64_t samples_recorded() const;
  [[nodiscard]] std::uint64_t series_dropped() const;

 private:
  struct Bucket {
    std::int64_t index = -1;  ///< absolute floor(t/step); -1 = empty
    std::int64_t min = 0;
    std::int64_t max = 0;
    std::int64_t sum = 0;
    std::int64_t last = 0;
    std::uint64_t count = 0;
  };
  struct Series {
    SeriesKind kind = SeriesKind::kCounter;
    std::uint64_t samples = 0;
    std::uint64_t first_us = 0;
    std::uint64_t last_us = 0;
    /// One ring per tier, config_.tiers order; fixed size at creation.
    std::vector<std::vector<Bucket>> rings;
  };

  /// Tier choice for query(); returns an index into config_.tiers.
  /// Caller holds mutex_ (reads the guarded Series in place).
  [[nodiscard]] std::size_t pick_tier(const Series& series,
                                      std::uint64_t from_us,
                                      std::uint64_t step_us) const
      QS_REQUIRES(mutex_);
  void collect_points(const Series& series, std::size_t tier,
                      std::uint64_t from_us, std::uint64_t to_us,
                      std::vector<TsdbPoint>* out) const QS_REQUIRES(mutex_);
  void collect_annotations(std::uint64_t from_us, std::uint64_t to_us,
                           std::vector<Annotation>* out) const
      QS_REQUIRES(mutex_);

  TsdbConfig config_;  ///< immutable after construction
  mutable util::Mutex mutex_{util::LockRank::kTsdb, "tsdb"};
  /// Sorted => deterministic JSON.
  std::map<std::string, Series> entries_ QS_GUARDED_BY(mutex_);
  std::deque<Annotation> annotations_ QS_GUARDED_BY(mutex_);
  std::uint64_t samples_recorded_ QS_GUARDED_BY(mutex_) = 0;
  std::uint64_t series_dropped_ QS_GUARDED_BY(mutex_) = 0;
};

}  // namespace quicsand::obs
