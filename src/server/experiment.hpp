// Legitimate-client experience under an Initial flood.
//
// Table 1 measures how many *flood* packets get answered; operators care
// about the mirror image — what happens to honest clients while the
// flood runs. This experiment interleaves a spoofed flood with sparse
// legitimate handshake attempts and plays each honest client's full
// exchange against the simulated server on real packets: Initial ->
// (flight | Retry) -> token'd Initial -> flight. It quantifies the §6
// trade-off: without RETRY honest clients fail once the connection table
// fills; with RETRY they all complete but pay one extra round trip;
// adaptive RETRY charges the extra round trip only while under attack.
#pragma once

#include <cstdint>

#include "server/replay.hpp"
#include "server/sim.hpp"

namespace quicsand::server {

struct ClientExperienceConfig {
  ReplayConfig flood;          ///< the background attack
  double legit_rate = 2.0;     ///< honest handshake attempts per second
  std::uint64_t seed = 31;
};

struct ClientExperienceResult {
  std::uint64_t attempts = 0;
  std::uint64_t completed_one_rtt = 0;  ///< full handshake straight away
  std::uint64_t completed_two_rtt = 0;  ///< via Retry + token
  std::uint64_t failed = 0;             ///< no answer (state exhausted)
  SimStats server_stats;

  [[nodiscard]] double success_rate() const {
    return attempts == 0 ? 1.0
                         : static_cast<double>(completed_one_rtt +
                                               completed_two_rtt) /
                               static_cast<double>(attempts);
  }
  [[nodiscard]] double mean_round_trips() const {
    const auto completed = completed_one_rtt + completed_two_rtt;
    return completed == 0
               ? 0.0
               : static_cast<double>(completed_one_rtt +
                                     2 * completed_two_rtt) /
                     static_cast<double>(completed);
  }
};

/// Run the interleaved flood + honest-client experiment.
ClientExperienceResult run_client_experience(
    const ServerConfig& server_config, const ClientExperienceConfig& config);

}  // namespace quicsand::server
