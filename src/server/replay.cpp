#include "server/replay.hpp"

#include "net/headers.hpp"
#include "net/pcap.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"

namespace quicsand::server {

RecordedFlood::RecordedFlood(const ReplayConfig& config)
    : config_(config), rng_(util::mix64(config.seed, 0xf100d)) {
  // One representative Initial is built at the requested fidelity; each
  // replayed packet patches fresh connection IDs into a copy, like a
  // replay tool rewriting CIDs. The packet count at the paper's rates
  // reaches 500k, so per-packet construction must stay cheap.
  auto ctx = quic::HandshakeContext::random(config.version, rng_);
  template_ = quic::build_client_initial(ctx, "replay.quicsand.example",
                                         rng_, config.fidelity);
}

void RecordedFlood::rewind() {
  rng_ = util::Rng(util::mix64(config_.seed, 0xf100d));
  // Re-derive the template so the CID byte stream repeats identically.
  auto ctx = quic::HandshakeContext::random(config_.version, rng_);
  template_ = quic::build_client_initial(ctx, "replay.quicsand.example",
                                         rng_, config_.fidelity);
  index_ = 0;
}

std::optional<RecordedFlood::Record> RecordedFlood::next() {
  if (index_ >= config_.packets) return std::nullopt;
  Record record;
  record.time = config_.start + util::from_seconds(
                                    static_cast<double>(index_) / config_.pps);
  record.source =
      config_.spoofed_sources
          ? net::Ipv4Address(static_cast<std::uint32_t>(rng_.next()))
          : net::Ipv4Address(0x0a000001);
  record.datagram = template_;
  // Long header layout: flags(1) version(4) dcid_len(1) dcid(8)
  // scid_len(1) scid(8); patch both connection IDs.
  rng_.fill({record.datagram.data() + 6, 8});
  rng_.fill({record.datagram.data() + 15, 8});
  ++index_;
  return record;
}

ReplayResult run_replay(const ServerConfig& server_config,
                        const ReplayConfig& replay_config) {
  QuicServerSim sim(server_config);
  RecordedFlood flood(replay_config);
  obs::Counter* packets_counter = nullptr;
  if (auto* metrics = replay_config.obs.metrics) {
    packets_counter = &metrics->counter(
        "replay.packets", "recorded Initials replayed into server sims");
  }
  obs::Health::Component* health = nullptr;
  if (auto* h = replay_config.obs.health) {
    health = &h->component("replay");
    health->set_ready(true);
  }
  util::Timestamp last = replay_config.start;
  std::uint64_t replayed = 0;
  while (auto record = flood.next()) {
    last = record->time;
    sim.on_datagram(record->time, record->datagram, record->source);
    if (packets_counter != nullptr) packets_counter->add();
    // One heartbeat per 1024 packets keeps the watchdog fed without a
    // clock read on every datagram.
    if (health != nullptr && (++replayed & 0x3FF) == 0) health->heartbeat();
  }
  if (health != nullptr) {
    health->heartbeat();
    health->set_idle(true);  // recording exhausted: quiet, not stale
  }
  ReplayResult result;
  result.server = server_config;
  result.replay = replay_config;
  result.stats = sim.finish(last);
  result.extra_rtt = server_config.retry_enabled;
  return result;
}

std::uint64_t dump_recording_pcap(const ReplayConfig& config,
                                  const std::string& path,
                                  std::uint64_t count) {
  net::PcapWriter writer(path);
  RecordedFlood flood(config);
  util::Rng addr_rng(util::mix64(config.seed, 0xadd2));
  std::uint64_t written = 0;
  while (written < count) {
    const auto record = flood.next();
    if (!record) break;
    net::Ipv4Header ip;
    ip.src = net::Ipv4Address(0x0a000001 + static_cast<std::uint32_t>(
                                               addr_rng.uniform(16)));
    ip.dst = net::Ipv4Address::from_octets(10, 1, 0, 1);
    writer.write({record->time,
                  net::build_udp(ip,
                                 static_cast<std::uint16_t>(
                                     32768 + addr_rng.uniform(28232)),
                                 443, record->datagram)});
    ++written;
  }
  return written;
}

}  // namespace quicsand::server
