// Discrete-event simulation of a worker-pool QUIC web server (the
// NGINX-style system benchmarked in Table 1).
//
// The model captures the two resources a QUIC Initial flood exhausts:
//  * connection slots — each accepted handshake pins state for the
//    handshake timeout (NGINX default: 60 s), bounded by
//    workers x connections-per-worker (the paper uses 1024, twice the
//    NGINX default, with 4 or 128 ("auto") workers);
//  * packet processing — each worker drains at most a fixed packet rate.
//
// Without RETRY the server answers each accepted Initial with four
// datagrams (Initial+Handshake, Handshake, and two keep-alive PINGs) and
// holds a slot; once slots are exhausted new Initials are dropped and
// service availability collapses. With RETRY the server answers
// statelessly at the cost of one extra round trip, and never runs out of
// state — exactly the Table 1 contrast.
//
// Time is virtual: the simulation processes timestamped datagrams and
// never sleeps, so a 100,000-pps experiment runs in milliseconds.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <span>
#include <vector>

#include "net/ip.hpp"
#include "quic/header.hpp"
#include "quic/packets.hpp"
#include "quic/retry.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace quicsand::server {

/// RETRY deployment policy. kAdaptive implements the paper's §6
/// suggestion: answer statelessly only while the connection table is
/// under pressure, so well-behaved clients keep the fast 1-RTT handshake
/// in normal operation.
enum class RetryMode : std::uint8_t { kOff, kAlways, kAdaptive };

struct ServerConfig {
  int workers = 4;
  int connections_per_worker = 1024;  ///< paper: twice the NGINX default
  util::Duration handshake_hold = 60 * util::kSecond;
  /// Address-validated handshakes (valid Retry token) complete and hand
  /// over to a normal connection; they pin handshake state only briefly.
  util::Duration validated_hold = 2 * util::kSecond;
  double per_worker_pps = 30000;  ///< packet-processing ceiling per worker
  bool retry_enabled = false;     ///< shorthand for retry_mode = kAlways
  RetryMode retry_mode = RetryMode::kOff;
  /// kAdaptive: switch to RETRY above this connection-table load.
  double adaptive_retry_load = 0.5;
  /// Classic per-source-IP rate limiting. The paper's §3 point made
  /// runnable: spoofed floods present a fresh source per packet, so this
  /// filter never fires against them while it throttles honest hosts.
  bool per_source_rate_limit = false;
  double per_source_pps = 10;
  std::size_t filter_table_limit = 1 << 20;  ///< tracked sources
  std::uint64_t seed = 7;

  [[nodiscard]] std::uint64_t total_slots() const {
    return static_cast<std::uint64_t>(workers) *
           static_cast<std::uint64_t>(connections_per_worker);
  }
  [[nodiscard]] RetryMode effective_retry_mode() const {
    return retry_enabled ? RetryMode::kAlways : retry_mode;
  }
};

struct SimStats {
  std::uint64_t client_requests = 0;
  std::uint64_t server_responses = 0;  ///< datagrams sent by the server
  std::uint64_t accepted = 0;          ///< handshakes that got the flight
  std::uint64_t retries_sent = 0;
  std::uint64_t completed_token_handshakes = 0;  ///< post-Retry accepts
  std::uint64_t dropped_no_slot = 0;
  std::uint64_t dropped_rx_queue = 0;
  std::uint64_t dropped_filtered = 0;  ///< per-source rate limiter hits
  std::uint64_t filter_table_evictions = 0;
  std::uint64_t malformed = 0;
  std::uint64_t peak_connections = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_sent = 0;

  /// Bytes sent per byte received from unvalidated addresses. QUIC caps
  /// this at 3x (RFC 9000 §8); the sim enforces and reports it.
  [[nodiscard]] double amplification_factor() const {
    return bytes_received == 0 ? 0.0
                               : static_cast<double>(bytes_sent) /
                                     static_cast<double>(bytes_received);
  }

  /// Share of requests that received an answer (flight or Retry) —
  /// Table 1's "Service Available".
  [[nodiscard]] double availability() const {
    if (client_requests == 0) return 1.0;
    return static_cast<double>(accepted + retries_sent +
                               completed_token_handshakes) /
           static_cast<double>(client_requests);
  }
};

/// Response datagram hook (tests decrypt these; the benchmark counts).
using ResponseSink =
    std::function<void(util::Timestamp, std::span<const std::uint8_t>)>;

class QuicServerSim {
 public:
  explicit QuicServerSim(const ServerConfig& config);

  /// When set, the server materializes real response datagrams at the
  /// given fidelity; otherwise it only counts them (fast path).
  void set_response_sink(ResponseSink sink, quic::CryptoFidelity fidelity);

  /// Process one incoming UDP payload at virtual time `now`. Timestamps
  /// must be non-decreasing. `source` feeds the per-source filter (and
  /// nothing else: QUIC routing is by connection ID).
  void on_datagram(util::Timestamp now, std::span<const std::uint8_t> payload,
                   net::Ipv4Address source = net::Ipv4Address(0x0a000001));

  /// Release expired state up to `now` and return the statistics.
  [[nodiscard]] const SimStats& finish(util::Timestamp now);

  [[nodiscard]] const SimStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t active_connections() const {
    return active_.size();
  }

 private:
  void expire(util::Timestamp now);
  bool rx_admit(util::Timestamp now);
  bool filter_admit(util::Timestamp now, net::Ipv4Address source);
  [[nodiscard]] bool retry_active() const;
  void respond_flight(util::Timestamp now, const quic::LongHeaderView& view,
                      std::size_t request_bytes);
  void respond_retry(util::Timestamp now, const quic::LongHeaderView& view);

  ServerConfig config_;
  SimStats stats_;
  util::Rng rng_;
  quic::RetryTokenMinter token_minter_;
  std::array<std::size_t, 4> flight_sizes_{};
  /// Expiry times of held handshake states (min-heap).
  std::priority_queue<util::Timestamp, std::vector<util::Timestamp>,
                      std::greater<>>
      active_;
  // Per-source rate-limiter buckets: tokens + last refill time.
  std::unordered_map<std::uint32_t, std::pair<double, util::Timestamp>>
      filter_;
  // Token-bucket packet admission.
  double rx_tokens_ = 0;
  util::Timestamp rx_last_{};
  bool rx_initialized_ = false;

  ResponseSink sink_;
  quic::CryptoFidelity sink_fidelity_ = quic::CryptoFidelity::kFast;
};

}  // namespace quicsand::server
