// Flood recording and replay (the Table 1 methodology).
//
// The paper records 500,000 packets of a real quiche client and replays
// only the client Initial messages at varying rates toward fresh server
// instances — replaying avoids any bias from hand-crafted packets. Our
// "recording" is a deterministic stream of client Initials produced by
// the same builder the rest of the library uses (seeded, so one recording
// can be replayed against many server configurations), optionally dumped
// to a pcap for inspection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ip.hpp"
#include "obs/hooks.hpp"
#include "quic/packets.hpp"
#include "server/sim.hpp"
#include "util/rng.hpp"

namespace quicsand::server {

struct ReplayConfig {
  double pps = 1000;
  std::uint64_t packets = 100000;
  std::uint32_t version = 1;
  quic::CryptoFidelity fidelity = quic::CryptoFidelity::kFast;
  /// Spoofed floods present a fresh random source per packet (the
  /// paper's attack model); false replays from one honest address.
  bool spoofed_sources = true;
  std::uint64_t seed = 2021;
  util::Timestamp start = util::kApril2021Start;
  /// Optional observability sinks: run_replay counts replayed packets
  /// and heartbeats a "replay" health component while the loop runs.
  obs::Hooks obs;
};

/// Deterministic stream of recorded client Initials.
class RecordedFlood {
 public:
  explicit RecordedFlood(const ReplayConfig& config);

  struct Record {
    util::Timestamp time;
    net::Ipv4Address source;
    std::vector<std::uint8_t> datagram;
  };

  /// Next recorded Initial (with its replay timestamp at the configured
  /// rate), or nullopt when the recording is exhausted.
  std::optional<Record> next();

  /// Rewind to the first packet; the same sequence replays identically.
  void rewind();

 private:
  ReplayConfig config_;
  util::Rng rng_;
  std::vector<std::uint8_t> template_;
  std::uint64_t index_ = 0;
};

struct ReplayResult {
  ServerConfig server;
  ReplayConfig replay;
  SimStats stats;
  bool extra_rtt = false;  ///< Retry adds one round trip
};

/// Replay one recording against one fresh server instance.
ReplayResult run_replay(const ServerConfig& server_config,
                        const ReplayConfig& replay_config);

/// Write the first `count` recorded Initials to a pcap file (examples).
std::uint64_t dump_recording_pcap(const ReplayConfig& config,
                                  const std::string& path,
                                  std::uint64_t count);

}  // namespace quicsand::server
