#include "server/experiment.hpp"

#include "quic/dissector.hpp"
#include "quic/header.hpp"

namespace quicsand::server {

namespace {

/// One honest client: sends an Initial, follows a Retry with a token'd
/// Initial. Outcomes are inferred from the server's responses, captured
/// through the response sink.
struct HonestClient {
  quic::HandshakeContext ctx;
  std::vector<std::uint8_t> initial;
};

}  // namespace

ClientExperienceResult run_client_experience(
    const ServerConfig& server_config,
    const ClientExperienceConfig& config) {
  ClientExperienceResult result;
  QuicServerSim sim(server_config);
  util::Rng rng(util::mix64(config.seed, 0x1e617));

  // Capture the most recent response so each honest exchange can react
  // to what the server actually sent (flight vs Retry).
  std::vector<std::uint8_t> last_response;
  bool got_response = false;
  sim.set_response_sink(
      [&](util::Timestamp, std::span<const std::uint8_t> bytes) {
        if (!got_response) {
          last_response.assign(bytes.begin(), bytes.end());
          got_response = true;
        }
      },
      quic::CryptoFidelity::kFast);

  RecordedFlood flood(config.flood);
  auto flood_record = flood.next();
  const util::Timestamp start = config.flood.start;
  const util::Timestamp end =
      start + util::from_seconds(static_cast<double>(config.flood.packets) /
                                 config.flood.pps);
  util::Timestamp next_legit =
      start + util::from_seconds(rng.exponential(config.legit_rate));

  const net::Ipv4Address legit_address(0x0a000001);

  auto run_legit = [&](util::Timestamp now) {
    ++result.attempts;
    auto ctx = quic::HandshakeContext::random(1, rng);
    const auto initial = quic::build_client_initial(
        ctx, "honest.example", rng, quic::CryptoFidelity::kFast);
    got_response = false;
    sim.on_datagram(now, initial, legit_address);
    if (!got_response) {
      ++result.failed;
      return;
    }
    const auto view = quic::parse_long_header(last_response, 0);
    if (view && view->type == quic::PacketType::kRetry) {
      // Token dance: resend carrying the server's token toward its new
      // connection id, one simulated round trip later.
      const std::vector<std::uint8_t> token(view->retry_token.begin(),
                                            view->retry_token.end());
      ctx.client_dcid = view->scid;
      const auto second = quic::build_client_initial(
          ctx, "honest.example", rng, quic::CryptoFidelity::kFast, token);
      got_response = false;
      sim.on_datagram(now + 30 * util::kMillisecond, second, legit_address);
      if (got_response) {
        ++result.completed_two_rtt;
      } else {
        ++result.failed;
      }
      return;
    }
    ++result.completed_one_rtt;
  };

  // Merge the flood stream with the honest arrivals in time order.
  while (flood_record || next_legit < end) {
    const bool legit_first =
        !flood_record || next_legit <= flood_record->time;
    if (legit_first) {
      if (next_legit >= end) break;
      run_legit(next_legit);
      next_legit += util::from_seconds(rng.exponential(config.legit_rate));
    } else {
      sim.on_datagram(flood_record->time, flood_record->datagram,
                      flood_record->source);
      flood_record = flood.next();
    }
  }
  result.server_stats = sim.finish(end);
  return result;
}

}  // namespace quicsand::server
