#include "server/sim.hpp"

#include <numeric>

#include "quic/header.hpp"

namespace quicsand::server {

namespace {

constexpr util::Timestamp kTokenEpoch = util::kApril2021Start;

}  // namespace

QuicServerSim::QuicServerSim(const ServerConfig& config)
    : config_(config),
      rng_(util::mix64(config.seed, 0x5e6e6)),
      token_minter_(rng_.bytes(32), 30 * util::kSecond) {
  // Representative flight datagram sizes for byte accounting when no
  // response sink is attached (one sample build, v1).
  util::Rng size_rng(1);
  auto ctx = quic::HandshakeContext::random(1, size_rng);
  flight_sizes_[0] =
      quic::build_server_initial_handshake(ctx, size_rng,
                                           quic::CryptoFidelity::kFast)
          .size();
  flight_sizes_[1] = quic::build_server_handshake(
                         ctx, size_rng, quic::CryptoFidelity::kFast)
                         .size();
  flight_sizes_[2] = quic::build_server_handshake_ping(
                         ctx, size_rng, quic::CryptoFidelity::kFast)
                         .size();
  flight_sizes_[3] = flight_sizes_[2];
}

void QuicServerSim::set_response_sink(ResponseSink sink,
                                      quic::CryptoFidelity fidelity) {
  sink_ = std::move(sink);
  sink_fidelity_ = fidelity;
}

void QuicServerSim::expire(util::Timestamp now) {
  while (!active_.empty() && active_.top() <= now) active_.pop();
}

bool QuicServerSim::rx_admit(util::Timestamp now) {
  // Token bucket over the aggregate worker packet-processing rate, with
  // one second of burst capacity (the kernel socket buffer).
  const double rate =
      config_.per_worker_pps * static_cast<double>(config_.workers);
  if (!rx_initialized_) {
    rx_initialized_ = true;
    rx_last_ = now;
    rx_tokens_ = rate;
  }
  // Tolerate slight reordering between interleaved streams: a packet
  // carrying an earlier timestamp must not drain the bucket.
  const double elapsed = std::max(0.0, util::to_seconds(now - rx_last_));
  rx_tokens_ = std::min(rate, rx_tokens_ + rate * elapsed);
  rx_last_ = std::max(rx_last_, now);
  if (rx_tokens_ < 1.0) return false;
  rx_tokens_ -= 1.0;
  return true;
}

bool QuicServerSim::retry_active() const {
  switch (config_.effective_retry_mode()) {
    case RetryMode::kOff:
      return false;
    case RetryMode::kAlways:
      return true;
    case RetryMode::kAdaptive:
      return static_cast<double>(active_.size()) >=
             config_.adaptive_retry_load *
                 static_cast<double>(config_.total_slots());
  }
  return false;
}

void QuicServerSim::respond_flight(util::Timestamp now,
                                   const quic::LongHeaderView& view,
                                   std::size_t request_bytes) {
  // Anti-amplification (RFC 9000 §8.1): before address validation the
  // server may send at most 3x the bytes it received. The standard
  // handshake flight (~2.3 KB for a 1.2 KB Initial) fits; the budget is
  // enforced anyway so alternative flight shapes stay compliant.
  const std::size_t budget = 3 * request_bytes;
  std::size_t sent = 0;
  if (!sink_) {
    int datagrams = 0;
    for (const std::size_t size : flight_sizes_) {
      if (sent + size > budget) break;
      sent += size;
      ++datagrams;
    }
    stats_.server_responses += static_cast<std::uint64_t>(datagrams);
    stats_.bytes_sent += sent;
    return;
  }
  quic::HandshakeContext ctx;
  ctx.version = view.version;
  ctx.client_dcid = view.dcid;
  ctx.client_scid = view.scid;
  ctx.server_scid = quic::ConnectionId(rng_.bytes(16));
  const std::pair<util::Duration, std::vector<std::uint8_t>> datagrams[] = {
      {util::Duration{},
       quic::build_server_initial_handshake(ctx, rng_, sink_fidelity_)},
      {10 * util::kMillisecond,
       quic::build_server_handshake(ctx, rng_, sink_fidelity_)},
      {2 * util::kSecond,
       quic::build_server_handshake_ping(ctx, rng_, sink_fidelity_)},
      {4 * util::kSecond,
       quic::build_server_handshake_ping(ctx, rng_, sink_fidelity_)},
  };
  for (const auto& [offset, datagram] : datagrams) {
    if (sent + datagram.size() > budget) break;
    sent += datagram.size();
    ++stats_.server_responses;
    sink_(now + offset, datagram);
  }
  stats_.bytes_sent += sent;
}

void QuicServerSim::respond_retry(util::Timestamp now,
                                  const quic::LongHeaderView& view) {
  ++stats_.retries_sent;
  ++stats_.server_responses;
  // The sim has no real client address; bind tokens to a fixed tuple.
  const auto token = token_minter_.mint(net::Ipv4Address(0x0a000001), 443,
                                        view.dcid, kTokenEpoch);
  if (!sink_) {
    // header(~20) + token + 16-byte integrity tag.
    stats_.bytes_sent += 20 + token.size() + 16;
    return;
  }
  const auto new_scid = quic::ConnectionId(rng_.bytes(8));
  const auto packet = quic::build_retry_packet(view.version, view.scid,
                                               new_scid, token, view.dcid);
  stats_.bytes_sent += packet.size();
  sink_(now, packet);
}

bool QuicServerSim::filter_admit(util::Timestamp now,
                                 net::Ipv4Address source) {
  if (!config_.per_source_rate_limit) return true;
  if (filter_.size() >= config_.filter_table_limit &&
      !filter_.contains(source.value())) {
    // Table full: evict everything (the realistic failure mode of
    // stateful filters under randomly spoofed floods).
    filter_.clear();
    ++stats_.filter_table_evictions;
  }
  auto [it, inserted] =
      filter_.try_emplace(source.value(),
                          std::pair<double, util::Timestamp>{
                              config_.per_source_pps, now});
  auto& [tokens, last] = it->second;
  if (!inserted) {
    const double elapsed = std::max(0.0, util::to_seconds(now - last));
    tokens = std::min(config_.per_source_pps,
                      tokens + config_.per_source_pps * elapsed);
    last = std::max(last, now);
  }
  if (tokens < 1.0) return false;
  tokens -= 1.0;
  return true;
}

void QuicServerSim::on_datagram(util::Timestamp now,
                                std::span<const std::uint8_t> payload,
                                net::Ipv4Address source) {
  ++stats_.client_requests;
  stats_.bytes_received += payload.size();
  expire(now);
  if (!filter_admit(now, source)) {
    ++stats_.dropped_filtered;
    return;
  }
  if (!rx_admit(now)) {
    ++stats_.dropped_rx_queue;
    return;
  }
  const auto view = quic::parse_long_header(payload, 0);
  if (!view || view->is_version_negotiation() ||
      view->type != quic::PacketType::kInitial) {
    ++stats_.malformed;
    return;
  }

  if (view->token_length == 0 && retry_active()) {
    respond_retry(now, *view);
    return;
  }

  bool validated_token = false;
  if (view->token_length > 0) {
    validated_token = token_minter_
                          .validate(view->token, net::Ipv4Address(0x0a000001),
                                    443, kTokenEpoch + util::kSecond)
                          .has_value();
    if (!validated_token &&
        config_.effective_retry_mode() != RetryMode::kOff) {
      // Garbage token: answered with a fresh Retry (stateless).
      respond_retry(now, *view);
      return;
    }
  }

  if (active_.size() >= config_.total_slots()) {
    ++stats_.dropped_no_slot;
    return;
  }
  // Spoofed handshakes never complete and pin state for the full
  // handshake timeout; validated ones finish and free the slot quickly.
  active_.push(now + (validated_token ? config_.validated_hold
                                      : config_.handshake_hold));
  stats_.peak_connections = std::max<std::uint64_t>(
      stats_.peak_connections, active_.size());
  if (validated_token) {
    ++stats_.completed_token_handshakes;
  } else {
    ++stats_.accepted;
  }
  respond_flight(now, *view, payload.size());
}

const SimStats& QuicServerSim::finish(util::Timestamp now) {
  expire(now);
  return stats_;
}

}  // namespace quicsand::server
