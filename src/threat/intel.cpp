#include "threat/intel.hpp"

namespace quicsand::threat {

const char* category_name(Category category) {
  switch (category) {
    case Category::kUnknown:
      return "unknown";
    case Category::kBenign:
      return "benign";
    case Category::kMalicious:
      return "malicious";
  }
  return "?";
}

void IntelDb::add(net::Ipv4Address addr, Category category,
                  std::vector<std::string> tag_list) {
  entries_[addr] = Classification{category, std::move(tag_list)};
}

const Classification& IntelDb::lookup(net::Ipv4Address addr) const {
  const auto it = entries_.find(addr);
  return it == entries_.end() ? unknown_ : it->second;
}

IntelDb::Summary IntelDb::summarize(
    std::span<const net::Ipv4Address> sources) const {
  Summary summary;
  summary.total = sources.size();
  for (const auto addr : sources) {
    const auto& c = lookup(addr);
    switch (c.category) {
      case Category::kBenign:
        ++summary.benign;
        break;
      case Category::kMalicious:
        ++summary.malicious;
        break;
      case Category::kUnknown:
        ++summary.unknown;
        break;
    }
    for (const auto& tag : c.tag_list) ++summary.tag_counts[tag];
  }
  return summary;
}

}  // namespace quicsand::threat
