// Threat-intelligence store — our offline substitute for the GreyNoise
// honeypot platform.
//
// The paper correlates request-session sources with GreyNoise (§5.2):
// no benign scanners among them, 2.3% tagged as known bruteforcers or
// botnet members (Mirai, Eternalblue). This module stores per-IP
// classifications and computes the same summary. The telescope generator
// populates it from its ground truth, playing the role of the honeypot
// sensors that observed the same actors elsewhere.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ip.hpp"

namespace quicsand::threat {

enum class Category : std::uint8_t {
  kUnknown,    ///< never seen by the platform
  kBenign,     ///< verified research/search-engine scanner
  kMalicious,  ///< observed attacking or bruteforcing
};

const char* category_name(Category category);

/// Well-known tag strings used by the scenarios.
namespace tags {
inline constexpr const char* kMirai = "Mirai";
inline constexpr const char* kEternalblue = "Eternalblue";
inline constexpr const char* kBruteforcer = "SSH Bruteforcer";
inline constexpr const char* kResearch = "Research Scanner";
}  // namespace tags

struct Classification {
  Category category = Category::kUnknown;
  std::vector<std::string> tag_list;
};

class IntelDb {
 public:
  /// Record (or overwrite) a classification for `addr`.
  void add(net::Ipv4Address addr, Category category,
           std::vector<std::string> tag_list = {});

  /// Lookup; unknown addresses return a kUnknown classification.
  [[nodiscard]] const Classification& lookup(net::Ipv4Address addr) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Summary over a set of source addresses, mirroring the paper's
  /// GreyNoise correlation.
  struct Summary {
    std::size_t total = 0;
    std::size_t benign = 0;
    std::size_t malicious = 0;
    std::size_t unknown = 0;
    std::unordered_map<std::string, std::size_t> tag_counts;

    [[nodiscard]] double malicious_share() const {
      return total == 0 ? 0.0
                        : static_cast<double>(malicious) /
                              static_cast<double>(total);
    }
  };

  [[nodiscard]] Summary summarize(
      std::span<const net::Ipv4Address> sources) const;

 private:
  std::unordered_map<net::Ipv4Address, Classification> entries_;
  Classification unknown_;
};

}  // namespace quicsand::threat
