// AS registry: our offline substitute for PeeringDB + a BGP table.
//
// Holds AS metadata (name, PeeringDB-style network type, country) and the
// prefixes each AS originates, with longest-prefix-match lookup from an
// IP address. `synthetic()` builds a deterministic miniature Internet
// seeded with the real-world actors the paper names (Google, Facebook,
// other CDNs, the TUM and RWTH research scanners) plus generated eyeball,
// transit and enterprise networks.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "asdb/prefix_trie.hpp"
#include "asdb/types.hpp"
#include "net/ip.hpp"
#include "util/rng.hpp"

namespace quicsand::asdb {

struct SyntheticConfig {
  int eyeball_ases = 300;
  int transit_ases = 50;
  int enterprise_ases = 100;
  int extra_content_ases = 30;
  int prefixes_per_as = 2;  ///< /16 blocks announced per generated AS
};

class AsRegistry {
 public:
  // Well-known ASNs used throughout the scenarios.
  static constexpr Asn kGoogle = 15169;
  static constexpr Asn kFacebook = 32934;
  static constexpr Asn kCloudflare = 13335;
  static constexpr Asn kAkamai = 20940;
  static constexpr Asn kMicrosoft = 8075;
  static constexpr Asn kAmazon = 16509;
  static constexpr Asn kFastly = 54113;
  static constexpr Asn kTumScanner = 56357;   ///< research scanner (TUM)
  static constexpr Asn kRwthScanner = 680;    ///< research scanner (RWTH/DFN)

  /// Register an AS and the prefixes it originates. Throws on duplicate
  /// ASN or empty prefix list.
  void add(AsInfo info, std::span<const net::Ipv4Prefix> prefixes);

  /// Origin-AS metadata for an address; nullptr when unrouted.
  [[nodiscard]] const AsInfo* lookup(net::Ipv4Address addr) const;

  /// Metadata by ASN; nullptr when unknown.
  [[nodiscard]] const AsInfo* find(Asn asn) const;

  [[nodiscard]] const std::vector<net::Ipv4Prefix>& prefixes_of(Asn asn) const;

  /// All ASNs with the given network type (insertion order).
  [[nodiscard]] std::span<const Asn> by_type(NetworkType type) const;

  /// ASNs of `type` registered under `country`; empty if none.
  [[nodiscard]] std::vector<Asn> by_type_and_country(
      NetworkType type, const std::string& country) const;

  /// Uniform random address within the AS's announced space.
  [[nodiscard]] net::Ipv4Address random_address_in(Asn asn,
                                                   util::Rng& rng) const;

  [[nodiscard]] std::size_t as_count() const { return infos_.size(); }

  /// Deterministic synthetic Internet (see file comment). The same seed
  /// always produces the same registry.
  static AsRegistry synthetic(const SyntheticConfig& config,
                              std::uint64_t seed);

 private:
  std::unordered_map<Asn, AsInfo> infos_;
  std::unordered_map<Asn, std::vector<net::Ipv4Prefix>> prefixes_;
  std::vector<std::vector<Asn>> by_type_ =
      std::vector<std::vector<Asn>>(kNetworkTypeCount);
  PrefixTrie<Asn> trie_;
};

/// Country weights used for generated eyeball networks; mirrors the
/// request-session origin mix the paper reports (BD 34%, US 27%, DZ 8%).
struct CountryWeight {
  const char* code;
  double weight;
};
std::span<const CountryWeight> eyeball_country_weights();

}  // namespace quicsand::asdb
