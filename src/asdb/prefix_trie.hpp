// Binary (one bit per level) longest-prefix-match trie over IPv4.
//
// Used for IP -> origin AS resolution. Lookup walks at most 32 nodes;
// insertion creates the path for the announced prefix.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "net/ip.hpp"

namespace quicsand::asdb {

template <typename Value>
class PrefixTrie {
 public:
  /// Announce `value` for `prefix`. A later announcement of the same
  /// prefix overwrites the earlier one (like a routing table update).
  void insert(net::Ipv4Prefix prefix, Value value) {
    Node* node = &root_;
    const std::uint32_t bits = prefix.base().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      auto& child = node->children[bit];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    node->value = std::move(value);
    ++size_;
  }

  /// Longest-prefix match; nullopt when no covering prefix exists.
  [[nodiscard]] std::optional<Value> lookup(net::Ipv4Address addr) const {
    const Node* node = &root_;
    std::optional<Value> best = node->value;
    const std::uint32_t bits = addr.value();
    for (int depth = 0; depth < 32; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      const auto& child = node->children[bit];
      if (!child) break;
      node = child.get();
      if (node->value) best = node->value;
    }
    return best;
  }

  /// Number of insert() calls (announcements, not distinct prefixes).
  [[nodiscard]] std::size_t announcements() const { return size_; }

 private:
  struct Node {
    std::optional<Value> value;
    std::array<std::unique_ptr<Node>, 2> children;
  };

  Node root_;
  std::size_t size_ = 0;
};

}  // namespace quicsand::asdb
