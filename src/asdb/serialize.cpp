#include "asdb/serialize.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

namespace quicsand::asdb {

const char* network_type_keyword(NetworkType type) {
  switch (type) {
    case NetworkType::kEyeball:
      return "eyeball";
    case NetworkType::kContent:
      return "content";
    case NetworkType::kTransit:
      return "transit";
    case NetworkType::kEducation:
      return "education";
    case NetworkType::kEnterprise:
      return "enterprise";
    case NetworkType::kUnknown:
      return "unknown";
  }
  return "unknown";
}

std::optional<NetworkType> parse_network_type(const std::string& keyword) {
  for (const auto type :
       {NetworkType::kEyeball, NetworkType::kContent, NetworkType::kTransit,
        NetworkType::kEducation, NetworkType::kEnterprise,
        NetworkType::kUnknown}) {
    if (keyword == network_type_keyword(type)) return type;
  }
  return std::nullopt;
}

void save_registry(std::ostream& os, const AsRegistry& registry) {
  os << "# QUICsand AS registry\n";
  // Stable output: ASNs sorted, grouped per type for readability.
  std::map<Asn, const AsInfo*> sorted;
  for (const auto type :
       {NetworkType::kEyeball, NetworkType::kContent, NetworkType::kTransit,
        NetworkType::kEducation, NetworkType::kEnterprise,
        NetworkType::kUnknown}) {
    for (const Asn asn : registry.by_type(type)) {
      sorted.emplace(asn, registry.find(asn));
    }
  }
  for (const auto& [asn, info] : sorted) {
    os << "as " << asn << ' ' << network_type_keyword(info->type) << ' '
       << (info->country.empty() ? "??" : info->country) << ' ' << info->name
       << '\n';
    for (const auto& prefix : registry.prefixes_of(asn)) {
      os << "prefix " << asn << ' ' << prefix.to_string() << '\n';
    }
  }
}

bool save_registry_file(const std::string& path, const AsRegistry& registry) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  save_registry(out, registry);
  return static_cast<bool>(out);
}

std::optional<AsRegistry> load_registry(std::istream& is, LoadError* error) {
  auto fail = [&](std::size_t line, std::string message)
      -> std::optional<AsRegistry> {
    if (error != nullptr) *error = {line, std::move(message)};
    return std::nullopt;
  };

  // Two-phase: collect AS records and their prefixes, then add them in
  // one shot each (AsRegistry::add wants all prefixes together).
  struct PendingAs {
    AsInfo info;
    std::vector<net::Ipv4Prefix> prefixes;
    std::size_t line;
  };
  std::map<Asn, PendingAs> pending;

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;  // blank line

    if (keyword == "as") {
      AsInfo info;
      std::string type_keyword;
      if (!(tokens >> info.asn >> type_keyword >> info.country)) {
        return fail(line_number, "malformed as record");
      }
      const auto type = parse_network_type(type_keyword);
      if (!type) return fail(line_number, "unknown type " + type_keyword);
      info.type = *type;
      std::getline(tokens, info.name);
      const auto start = info.name.find_first_not_of(' ');
      info.name = start == std::string::npos ? "" : info.name.substr(start);
      if (pending.contains(info.asn)) {
        return fail(line_number,
                    "duplicate ASN " + std::to_string(info.asn));
      }
      pending.emplace(info.asn, PendingAs{info, {}, line_number});
    } else if (keyword == "prefix") {
      Asn asn = 0;
      std::string cidr;
      if (!(tokens >> asn >> cidr)) {
        return fail(line_number, "malformed prefix record");
      }
      const auto prefix = net::Ipv4Prefix::parse(cidr);
      if (!prefix) return fail(line_number, "bad prefix " + cidr);
      const auto it = pending.find(asn);
      if (it == pending.end()) {
        return fail(line_number,
                    "prefix for unknown ASN " + std::to_string(asn));
      }
      it->second.prefixes.push_back(*prefix);
    } else {
      return fail(line_number, "unknown keyword " + keyword);
    }
  }

  AsRegistry registry;
  for (auto& [asn, record] : pending) {
    if (record.prefixes.empty()) {
      return fail(record.line,
                  "ASN " + std::to_string(asn) + " has no prefixes");
    }
    registry.add(std::move(record.info), record.prefixes);
  }
  return registry;
}

std::optional<AsRegistry> load_registry_file(const std::string& path,
                                             LoadError* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = {0, "cannot open " + path};
    return std::nullopt;
  }
  return load_registry(in, error);
}

}  // namespace quicsand::asdb
