#include "asdb/registry.hpp"

#include <array>
#include <stdexcept>

namespace quicsand::asdb {

namespace {

net::Ipv4Prefix pfx(const char* text) {
  const auto parsed = net::Ipv4Prefix::parse(text);
  if (!parsed) throw std::logic_error(std::string("bad prefix ") + text);
  return *parsed;
}

/// Hands out non-overlapping /16 blocks from /8 pools that do not collide
/// with the well-known prefixes below, the telescope (44/9) or reserved
/// space.
class PrefixAllocator {
 public:
  net::Ipv4Prefix next_slash16() {
    static constexpr std::array<std::uint8_t, 36> kPools = {
        24, 27, 36, 37, 41, 42, 45, 46, 49, 58, 59, 60,
        61, 62, 77, 78, 79, 80, 81, 82, 83, 84, 85, 86,
        87, 88, 89, 90, 91, 92, 93, 94, 95, 96, 97, 98};
    if (pool_index_ >= kPools.size()) {
      throw std::runtime_error("PrefixAllocator: address space exhausted");
    }
    const auto base = net::Ipv4Address::from_octets(
        kPools[pool_index_], static_cast<std::uint8_t>(second_octet_), 0, 0);
    if (++second_octet_ == 256) {
      second_octet_ = 0;
      ++pool_index_;
    }
    return {base, 16};
  }

 private:
  std::size_t pool_index_ = 0;
  int second_octet_ = 0;
};

// Mirrors the paper's request-session mix: BD 34%, US 27%, DZ 8%.
constexpr std::array<CountryWeight, 14> kEyeballCountries = {{
    {"BD", 0.34},
    {"US", 0.27},
    {"DZ", 0.08},
    {"CN", 0.05},
    {"IN", 0.05},
    {"BR", 0.04},
    {"RU", 0.04},
    {"VN", 0.03},
    {"ID", 0.03},
    {"TR", 0.02},
    {"EG", 0.02},
    {"PK", 0.01},
    {"TH", 0.01},
    {"MX", 0.01},
}};

}  // namespace

const char* network_type_name(NetworkType type) {
  switch (type) {
    case NetworkType::kEyeball:
      return "Cable/DSL/ISP";
    case NetworkType::kContent:
      return "Content";
    case NetworkType::kTransit:
      return "NSP";
    case NetworkType::kEducation:
      return "Educational/Research";
    case NetworkType::kEnterprise:
      return "Enterprise";
    case NetworkType::kUnknown:
      return "Unknown";
  }
  return "?";
}

std::span<const CountryWeight> eyeball_country_weights() {
  return kEyeballCountries;
}

void AsRegistry::add(AsInfo info, std::span<const net::Ipv4Prefix> prefixes) {
  if (prefixes.empty()) {
    throw std::invalid_argument("AsRegistry::add: no prefixes");
  }
  if (infos_.contains(info.asn)) {
    throw std::invalid_argument("AsRegistry::add: duplicate ASN " +
                                std::to_string(info.asn));
  }
  const Asn asn = info.asn;
  by_type_[static_cast<std::size_t>(info.type)].push_back(asn);
  infos_.emplace(asn, std::move(info));
  auto& list = prefixes_[asn];
  for (const auto& prefix : prefixes) {
    list.push_back(prefix);
    trie_.insert(prefix, asn);
  }
}

const AsInfo* AsRegistry::lookup(net::Ipv4Address addr) const {
  const auto asn = trie_.lookup(addr);
  if (!asn) return nullptr;
  return find(*asn);
}

const AsInfo* AsRegistry::find(Asn asn) const {
  const auto it = infos_.find(asn);
  return it == infos_.end() ? nullptr : &it->second;
}

const std::vector<net::Ipv4Prefix>& AsRegistry::prefixes_of(Asn asn) const {
  const auto it = prefixes_.find(asn);
  if (it == prefixes_.end()) {
    throw std::out_of_range("AsRegistry: unknown ASN " + std::to_string(asn));
  }
  return it->second;
}

std::span<const Asn> AsRegistry::by_type(NetworkType type) const {
  return by_type_[static_cast<std::size_t>(type)];
}

std::vector<Asn> AsRegistry::by_type_and_country(
    NetworkType type, const std::string& country) const {
  std::vector<Asn> out;
  for (Asn asn : by_type(type)) {
    if (infos_.at(asn).country == country) out.push_back(asn);
  }
  return out;
}

net::Ipv4Address AsRegistry::random_address_in(Asn asn,
                                               util::Rng& rng) const {
  const auto& prefixes = prefixes_of(asn);
  // Weight prefixes by size so sampling is uniform over the space.
  std::uint64_t total = 0;
  for (const auto& p : prefixes) total += p.size();
  std::uint64_t pick = rng.uniform(total);
  for (const auto& p : prefixes) {
    if (pick < p.size()) return p.at(pick);
    pick -= p.size();
  }
  return prefixes.back().base();  // unreachable
}

AsRegistry AsRegistry::synthetic(const SyntheticConfig& config,
                                 std::uint64_t seed) {
  AsRegistry reg;
  util::Rng rng(util::mix64(seed, 0xa5db));
  PrefixAllocator alloc;

  // The content networks the paper identifies as flood victims, with
  // representative real-world prefixes.
  const net::Ipv4Prefix google[] = {pfx("142.250.0.0/15"),
                                    pfx("172.217.0.0/16"),
                                    pfx("216.58.192.0/19"),
                                    pfx("74.125.0.0/16")};
  reg.add({kGoogle, "GOOGLE", NetworkType::kContent, "US"}, google);
  const net::Ipv4Prefix facebook[] = {pfx("157.240.0.0/16"),
                                      pfx("31.13.24.0/21"),
                                      pfx("179.60.192.0/22"),
                                      pfx("66.220.144.0/20")};
  reg.add({kFacebook, "FACEBOOK", NetworkType::kContent, "US"}, facebook);
  const net::Ipv4Prefix cloudflare[] = {pfx("104.16.0.0/13"),
                                        pfx("172.64.0.0/13")};
  reg.add({kCloudflare, "CLOUDFLARE", NetworkType::kContent, "US"},
          cloudflare);
  const net::Ipv4Prefix akamai[] = {pfx("23.32.0.0/11")};
  reg.add({kAkamai, "AKAMAI", NetworkType::kContent, "US"}, akamai);
  const net::Ipv4Prefix microsoft[] = {pfx("13.64.0.0/11")};
  reg.add({kMicrosoft, "MICROSOFT", NetworkType::kContent, "US"}, microsoft);
  const net::Ipv4Prefix amazon[] = {pfx("52.84.0.0/15"), pfx("13.32.0.0/15")};
  reg.add({kAmazon, "AMAZON", NetworkType::kContent, "US"}, amazon);
  const net::Ipv4Prefix fastly[] = {pfx("151.101.0.0/16")};
  reg.add({kFastly, "FASTLY", NetworkType::kContent, "US"}, fastly);

  // The two university research scanners that dominate QUIC IBR (§5.1).
  const net::Ipv4Prefix tum[] = {pfx("138.246.0.0/16")};
  reg.add({kTumScanner, "TUM-MWN", NetworkType::kEducation, "DE"}, tum);
  const net::Ipv4Prefix rwth[] = {pfx("137.226.0.0/16")};
  reg.add({kRwthScanner, "RWTH-AACHEN", NetworkType::kEducation, "DE"}, rwth);

  // Generated ASes. ASNs from the 64496+ documentation/private ranges
  // upward so they never collide with the well-known ones above.
  Asn next_asn = 64500;
  auto add_generated = [&](NetworkType type, const std::string& name_prefix,
                           const std::string& country, int count) {
    for (int i = 0; i < count; ++i) {
      std::vector<net::Ipv4Prefix> prefixes;
      const int n_prefixes =
          1 + static_cast<int>(rng.uniform(
                  static_cast<std::uint64_t>(config.prefixes_per_as)));
      prefixes.reserve(static_cast<std::size_t>(n_prefixes));
      for (int p = 0; p < n_prefixes; ++p) {
        prefixes.push_back(alloc.next_slash16());
      }
      reg.add({next_asn, name_prefix + "-" + std::to_string(next_asn), type,
               country},
              prefixes);
      ++next_asn;
    }
  };

  // Eyeballs spread over the country mix the paper reports.
  std::array<double, kEyeballCountries.size()> weights{};
  for (std::size_t i = 0; i < kEyeballCountries.size(); ++i) {
    weights[i] = kEyeballCountries[i].weight;
  }
  for (int i = 0; i < config.eyeball_ases; ++i) {
    const auto& country =
        kEyeballCountries[rng.weighted_index(weights)];
    add_generated(NetworkType::kEyeball, "EYEBALL", country.code, 1);
  }
  add_generated(NetworkType::kTransit, "TRANSIT", "US", config.transit_ases);
  add_generated(NetworkType::kEnterprise, "ENTERPRISE", "US",
                config.enterprise_ases);
  add_generated(NetworkType::kContent, "CDN", "US",
                config.extra_content_ases);
  return reg;
}

}  // namespace quicsand::asdb
