// AS-level metadata types modeled after PeeringDB's network records.
//
// The paper maps each session's source address to an origin AS and the
// PeeringDB "info_type" of that AS (Figure 5: requests come from
// Cable/DSL/ISP eyeballs, responses from Content networks).
#pragma once

#include <cstdint>
#include <string>

namespace quicsand::asdb {

using Asn = std::uint32_t;

/// PeeringDB info_type categories observed in the paper's figures.
enum class NetworkType : std::uint8_t {
  kEyeball,     ///< "Cable/DSL/ISP"
  kContent,     ///< "Content"
  kTransit,     ///< "NSP" (network service provider / transit)
  kEducation,   ///< "Educational/Research"
  kEnterprise,  ///< "Enterprise"
  kUnknown,     ///< not present in PeeringDB
};

constexpr std::size_t kNetworkTypeCount = 6;

const char* network_type_name(NetworkType type);

struct AsInfo {
  Asn asn = 0;
  std::string name;
  NetworkType type = NetworkType::kUnknown;
  std::string country;  ///< ISO 3166-1 alpha-2
};

}  // namespace quicsand::asdb
