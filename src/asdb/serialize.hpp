// Text serialization for the AS registry.
//
// Lets operators feed their own PeeringDB/BGP-derived data into the
// pipeline instead of the synthetic registry. One record per line:
//
//   as <asn> <type> <country> <name>
//   prefix <asn> <cidr>
//
// '#' starts a comment; blank lines are ignored. `type` is one of
// eyeball|content|transit|education|enterprise|unknown.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "asdb/registry.hpp"

namespace quicsand::asdb {

/// Write `registry` in the text format above.
void save_registry(std::ostream& os, const AsRegistry& registry);
bool save_registry_file(const std::string& path, const AsRegistry& registry);

struct LoadError {
  std::size_t line = 0;
  std::string message;
};

/// Parse a registry; on failure returns nullopt and fills `error`.
std::optional<AsRegistry> load_registry(std::istream& is,
                                        LoadError* error = nullptr);
std::optional<AsRegistry> load_registry_file(const std::string& path,
                                             LoadError* error = nullptr);

/// Keyword names used by the format.
const char* network_type_keyword(NetworkType type);
std::optional<NetworkType> parse_network_type(const std::string& keyword);

}  // namespace quicsand::asdb
