#include "crypto/hkdf.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"

namespace quicsand::crypto {

Sha256::Digest hkdf_extract(std::span<const std::uint8_t> salt,
                            std::span<const std::uint8_t> ikm) {
  return hmac_sha256(salt, ikm);
}

std::vector<std::uint8_t> hkdf_expand(std::span<const std::uint8_t> prk,
                                      std::span<const std::uint8_t> info,
                                      std::size_t length) {
  if (length > 255 * Sha256::kDigestSize) {
    throw std::invalid_argument("hkdf_expand: length too large");
  }
  std::vector<std::uint8_t> okm;
  okm.reserve(length);
  Sha256::Digest t{};
  std::size_t t_len = 0;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    HmacSha256 mac(prk);
    mac.update({t.data(), t_len});
    mac.update(info);
    mac.update({&counter, 1});
    t = mac.finish();
    t_len = t.size();
    const std::size_t take = std::min(t_len, length - okm.size());
    okm.insert(okm.end(), t.begin(),
               t.begin() + static_cast<std::ptrdiff_t>(take));
    ++counter;
  }
  return okm;
}

std::vector<std::uint8_t> hkdf_expand_label(
    std::span<const std::uint8_t> secret, std::string_view label,
    std::span<const std::uint8_t> context, std::size_t length) {
  // struct { uint16 length; opaque label<7..255>; opaque context<0..255>; }
  std::vector<std::uint8_t> info;
  const std::string full_label = "tls13 " + std::string(label);
  info.reserve(4 + full_label.size() + context.size());
  info.push_back(static_cast<std::uint8_t>(length >> 8));
  info.push_back(static_cast<std::uint8_t>(length));
  info.push_back(static_cast<std::uint8_t>(full_label.size()));
  info.insert(info.end(), full_label.begin(), full_label.end());
  info.push_back(static_cast<std::uint8_t>(context.size()));
  info.insert(info.end(), context.begin(), context.end());
  return hkdf_expand(secret, info, length);
}

}  // namespace quicsand::crypto
