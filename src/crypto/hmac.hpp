// HMAC-SHA256 (RFC 2104 / FIPS 198-1); validated against RFC 4231 vectors.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/sha256.hpp"

namespace quicsand::crypto {

/// One-shot HMAC-SHA256.
Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> data);

/// Incremental HMAC for multi-part messages (used by HKDF-Expand).
class HmacSha256 {
 public:
  explicit HmacSha256(std::span<const std::uint8_t> key);

  void update(std::span<const std::uint8_t> data);
  Sha256::Digest finish();

 private:
  std::array<std::uint8_t, Sha256::kBlockSize> opad_key_{};
  Sha256 inner_;
};

}  // namespace quicsand::crypto
