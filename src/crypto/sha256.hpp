// SHA-256 (FIPS 180-4). Implemented from the specification; validated in
// tests against the NIST example vectors. Used by HMAC/HKDF for the QUIC
// Initial secret schedule (RFC 9001) and for Retry token derivation.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace quicsand::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  /// Absorb more input. Can be called repeatedly.
  void update(std::span<const std::uint8_t> data);

  /// Finalize and return the digest. The object must not be reused
  /// afterwards without calling reset().
  Digest finish();

  void reset();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace quicsand::crypto
