// HKDF with SHA-256 (RFC 5869) plus the TLS 1.3 HKDF-Expand-Label
// construction (RFC 8446 §7.1), which QUIC uses to derive Initial keys
// (RFC 9001 §5).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "crypto/sha256.hpp"

namespace quicsand::crypto {

/// HKDF-Extract(salt, ikm) -> PRK.
Sha256::Digest hkdf_extract(std::span<const std::uint8_t> salt,
                            std::span<const std::uint8_t> ikm);

/// HKDF-Expand(prk, info, length). length <= 255 * 32.
std::vector<std::uint8_t> hkdf_expand(std::span<const std::uint8_t> prk,
                                      std::span<const std::uint8_t> info,
                                      std::size_t length);

/// TLS 1.3 HKDF-Expand-Label(secret, label, context, length). The "tls13 "
/// prefix is added internally; pass e.g. "client in" or "quic key".
std::vector<std::uint8_t> hkdf_expand_label(
    std::span<const std::uint8_t> secret, std::string_view label,
    std::span<const std::uint8_t> context, std::size_t length);

}  // namespace quicsand::crypto
