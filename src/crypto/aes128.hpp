// AES-128 block cipher (FIPS 197), encrypt direction only.
//
// GCM and CTR modes, as well as QUIC header protection (AES-ECB on a
// 16-byte sample), only ever use the forward transform, so no inverse
// cipher is implemented. Validated against the FIPS 197 Appendix B vector.
//
// Note on side channels: this is a table-based software implementation
// intended for simulation and trace tooling, not for protecting secrets on
// shared hardware.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace quicsand::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;

  using Block = std::array<std::uint8_t, kBlockSize>;

  explicit Aes128(std::span<const std::uint8_t> key);

  /// Encrypt a single 16-byte block.
  [[nodiscard]] Block encrypt_block(std::span<const std::uint8_t> in) const;

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, 176> round_keys_{};
};

}  // namespace quicsand::crypto
