#include "crypto/gcm.hpp"

#include <cstring>
#include <stdexcept>

namespace quicsand::crypto {

namespace {

using Block = Aes128::Block;

/// Multiply by x in GF(2^128) with the GCM bit order (byte 0 holds the
/// highest-degree-free coefficients x^0..x^7): a right shift across the
/// block with reduction by R = 0xe1 || 0^120.
Block mul_x(const Block& v) {
  Block out{};
  const bool lsb = (v[15] & 1) != 0;
  for (std::size_t b = 15; b > 0; --b) {
    out[b] = static_cast<std::uint8_t>((v[b] >> 1) | ((v[b - 1] & 1) << 7));
  }
  out[0] = v[0] >> 1;
  if (lsb) out[0] ^= 0xe1;
  return out;
}

void xor_into(Block& dst, const Block& src) {
  for (std::size_t i = 0; i < 16; ++i) dst[i] ^= src[i];
}

}  // namespace

AesGcm::AesGcm(std::span<const std::uint8_t> key) : cipher_(key) {
  const Block zero{};
  h_ = cipher_.encrypt_block(zero);

  // Precompute Shoup-style tables: table_[i][b] = (byte value b at byte
  // position i) * H. GHASH then costs 16 lookups + xors per block, which
  // matters because the packet generator seals millions of datagrams.
  table_.resize(16 * 256);
  Block p = h_;  // x^(8i) * H for the current position i
  for (std::size_t i = 0; i < 16; ++i) {
    Block bitval[8];
    bitval[0] = p;  // bit 0x80 at byte i
    for (int k = 1; k < 8; ++k) bitval[k] = mul_x(bitval[k - 1]);
    Block* row = table_.data() + i * 256;
    row[0] = Block{};
    for (unsigned b = 1; b < 256; ++b) {
      const unsigned lsb = b & (~b + 1);
      int bit_index = 0;
      while ((1u << bit_index) != lsb) ++bit_index;
      row[b] = row[b ^ lsb];
      xor_into(row[b], bitval[7 - bit_index]);
    }
    p = mul_x(bitval[7]);  // advance to x^(8(i+1)) * H
  }
}

AesGcm::Block AesGcm::mult_h(const Block& v) const {
  Block out{};
  for (std::size_t i = 0; i < 16; ++i) {
    xor_into(out, table_[i * 256 + v[i]]);
  }
  return out;
}

Block AesGcm::j0(std::span<const std::uint8_t> nonce) const {
  if (nonce.size() != kNonceSize) {
    throw std::invalid_argument("AesGcm: nonce must be 96 bits");
  }
  Block out{};
  std::memcpy(out.data(), nonce.data(), kNonceSize);
  out[15] = 1;
  return out;
}

void AesGcm::ctr_xor(Block counter, std::span<const std::uint8_t> in,
                     std::uint8_t* out) const {
  auto inc32 = [](Block& c) {
    for (std::size_t i = 15; i >= 12; --i) {
      if (++c[i] != 0) break;
    }
  };
  std::size_t offset = 0;
  while (offset < in.size()) {
    inc32(counter);
    const Block keystream = cipher_.encrypt_block(counter);
    const std::size_t take = std::min<std::size_t>(16, in.size() - offset);
    for (std::size_t i = 0; i < take; ++i) {
      out[offset + i] =
          static_cast<std::uint8_t>(in[offset + i] ^ keystream[i]);
    }
    offset += take;
  }
}

Block AesGcm::ghash(std::span<const std::uint8_t> aad,
                    std::span<const std::uint8_t> ciphertext) const {
  Block y{};
  auto absorb = [&](std::span<const std::uint8_t> data) {
    std::size_t offset = 0;
    while (offset < data.size()) {
      const std::size_t take =
          std::min<std::size_t>(16, data.size() - offset);
      for (std::size_t i = 0; i < take; ++i) y[i] ^= data[offset + i];
      y = mult_h(y);
      offset += take;
    }
  };
  absorb(aad);
  absorb(ciphertext);
  Block len{};
  const std::uint64_t aad_bits = static_cast<std::uint64_t>(aad.size()) * 8;
  const std::uint64_t ct_bits =
      static_cast<std::uint64_t>(ciphertext.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    len[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(aad_bits >> (8 * (7 - i)));
    len[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(ct_bits >> (8 * (7 - i)));
  }
  xor_into(y, len);
  return mult_h(y);
}

AesGcm::Tag AesGcm::compute_tag(std::span<const std::uint8_t> nonce,
                                std::span<const std::uint8_t> aad,
                                std::span<const std::uint8_t> ct) const {
  const Block s = ghash(aad, ct);
  const Block ek_j0 = cipher_.encrypt_block(j0(nonce));
  Tag tag{};
  for (std::size_t i = 0; i < kTagSize; ++i) {
    tag[i] = static_cast<std::uint8_t>(s[i] ^ ek_j0[i]);
  }
  return tag;
}

std::vector<std::uint8_t> AesGcm::seal(
    std::span<const std::uint8_t> nonce, std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> plaintext) const {
  std::vector<std::uint8_t> out(plaintext.size() + kTagSize);
  ctr_xor(j0(nonce), plaintext, out.data());
  const Tag tag = compute_tag(nonce, aad, {out.data(), plaintext.size()});
  std::memcpy(out.data() + plaintext.size(), tag.data(), kTagSize);
  return out;
}

std::optional<std::vector<std::uint8_t>> AesGcm::open(
    std::span<const std::uint8_t> nonce, std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> ciphertext_and_tag) const {
  if (ciphertext_and_tag.size() < kTagSize) return std::nullopt;
  const std::size_t ct_len = ciphertext_and_tag.size() - kTagSize;
  const auto ct = ciphertext_and_tag.first(ct_len);
  const Tag expected = compute_tag(nonce, aad, ct);
  // Constant-time tag comparison.
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < kTagSize; ++i) {
    diff |= static_cast<std::uint8_t>(expected[i] ^
                                      ciphertext_and_tag[ct_len + i]);
  }
  if (diff != 0) return std::nullopt;
  std::vector<std::uint8_t> plaintext(ct_len);
  ctr_xor(j0(nonce), ct, plaintext.data());
  return plaintext;
}

AesGcm::Tag AesGcm::tag_only(std::span<const std::uint8_t> nonce,
                             std::span<const std::uint8_t> aad) const {
  return compute_tag(nonce, aad, {});
}

}  // namespace quicsand::crypto
