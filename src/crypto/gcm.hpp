// AES-128-GCM AEAD (NIST SP 800-38D) over the encrypt-only AES-128 core.
//
// QUIC Initial packets are protected with AEAD_AES_128_GCM (RFC 9001 §5.3)
// and Retry packets carry an AES-128-GCM integrity tag (§5.8); this module
// serves both. Validated against NIST GCM example vectors in tests.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/aes128.hpp"

namespace quicsand::crypto {

class AesGcm {
 public:
  static constexpr std::size_t kTagSize = 16;
  static constexpr std::size_t kNonceSize = 12;

  using Tag = std::array<std::uint8_t, kTagSize>;

  explicit AesGcm(std::span<const std::uint8_t> key);

  /// Encrypt `plaintext`, returning ciphertext || 16-byte tag.
  [[nodiscard]] std::vector<std::uint8_t> seal(
      std::span<const std::uint8_t> nonce, std::span<const std::uint8_t> aad,
      std::span<const std::uint8_t> plaintext) const;

  /// Verify and decrypt ciphertext || tag. Returns nullopt if the tag does
  /// not match.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> open(
      std::span<const std::uint8_t> nonce, std::span<const std::uint8_t> aad,
      std::span<const std::uint8_t> ciphertext_and_tag) const;

  /// Compute only the tag over AAD (empty plaintext); this is exactly the
  /// Retry integrity computation in RFC 9001 §5.8.
  [[nodiscard]] Tag tag_only(std::span<const std::uint8_t> nonce,
                             std::span<const std::uint8_t> aad) const;

 private:
  using Block = Aes128::Block;

  [[nodiscard]] Block mult_h(const Block& v) const;
  [[nodiscard]] Block ghash(std::span<const std::uint8_t> aad,
                            std::span<const std::uint8_t> ciphertext) const;
  void ctr_xor(Block counter, std::span<const std::uint8_t> in,
               std::uint8_t* out) const;
  [[nodiscard]] Block j0(std::span<const std::uint8_t> nonce) const;
  [[nodiscard]] Tag compute_tag(std::span<const std::uint8_t> nonce,
                                std::span<const std::uint8_t> aad,
                                std::span<const std::uint8_t> ct) const;

  Aes128 cipher_;
  Block h_{};  // GHASH key: AES_K(0^128)
  // Shoup multiplication tables: 16 positions x 256 byte values.
  std::vector<Block> table_;
};

}  // namespace quicsand::crypto
