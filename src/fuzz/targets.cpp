#include "fuzz/targets.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

#include "net/headers.hpp"
#include "net/live/frame.hpp"
#include "net/pcap.hpp"
#include "net/pcapng.hpp"
#include "quic/dissector.hpp"
#include "quic/header.hpp"
#include "quic/transport_params.hpp"
#include "quic/varint.hpp"
#include "util/bytes.hpp"

// Abort with a message when a parser invariant breaks. Active in every
// build type: the fuzz drivers run under asan/ubsan *and* plain
// RelWithDebInfo, and a silent invariant violation is exactly the class
// of bug the subsystem exists to catch.
#define QUICSAND_FUZZ_CHECK(cond, target, what)                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "fuzz invariant violated [%s]: %s (%s:%d)\n", \
                   target, what, __FILE__, __LINE__);                    \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

namespace quicsand::fuzz {

namespace {

void fuzz_quic_dissect(std::span<const std::uint8_t> data) {
  // Shallow pass: what the bulk classifier runs on every UDP payload.
  const auto shallow = quic::dissect_udp_payload(data);
  if (!shallow.is_quic) {
    QUICSAND_FUZZ_CHECK(shallow.packets.empty(), "quic_dissect",
                        "rejected payload still lists packets");
    QUICSAND_FUZZ_CHECK(!shallow.reject_reason.empty(), "quic_dissect",
                        "rejection without a reason");
  } else {
    QUICSAND_FUZZ_CHECK(!shallow.packets.empty(), "quic_dissect",
                        "accepted payload with no packets");
    std::size_t total = 0;
    for (const auto& packet : shallow.packets) {
      QUICSAND_FUZZ_CHECK(packet.size > 0, "quic_dissect",
                          "zero-size dissected packet");
      QUICSAND_FUZZ_CHECK(packet.size <= data.size(), "quic_dissect",
                          "packet larger than the datagram");
      QUICSAND_FUZZ_CHECK(packet.token_length <= data.size(), "quic_dissect",
                          "token longer than the datagram");
      total += packet.size;
    }
    QUICSAND_FUZZ_CHECK(total <= data.size(), "quic_dissect",
                        "coalesced packet sizes exceed the datagram");
  }
  // Deep pass: Initial decryption as the §6 backscatter validation runs
  // it. Must classify, never throw.
  const auto deep = quic::dissect_udp_payload(data, {.decrypt_initials = true});
  QUICSAND_FUZZ_CHECK(deep.is_quic == shallow.is_quic, "quic_dissect",
                      "deep and shallow passes disagree on is_quic");
  QUICSAND_FUZZ_CHECK(deep.packets.size() == shallow.packets.size(),
                      "quic_dissect",
                      "deep and shallow passes disagree on packet count");
}

void fuzz_quic_header(std::span<const std::uint8_t> data) {
  // Walk coalesced long-header packets exactly like the dissector does.
  std::size_t offset = 0;
  int parsed = 0;
  while (offset < data.size() && parsed < 64) {
    quic::ParseError error{};
    const auto view = quic::parse_long_header(data, offset, &error);
    if (!view) break;
    ++parsed;
    QUICSAND_FUZZ_CHECK(view->packet_start == offset, "quic_header",
                        "view does not start at the requested offset");
    QUICSAND_FUZZ_CHECK(view->packet_end > offset, "quic_header",
                        "empty packet view");
    QUICSAND_FUZZ_CHECK(view->packet_end <= data.size(), "quic_header",
                        "packet end past the buffer");
    QUICSAND_FUZZ_CHECK(view->token.size() == view->token_length ||
                            !view->retry_token.empty(),
                        "quic_header", "token span/length mismatch");
    if (!view->is_version_negotiation() &&
        view->type != quic::PacketType::kRetry) {
      QUICSAND_FUZZ_CHECK(view->pn_offset >= offset &&
                              view->pn_offset < view->packet_end,
                          "quic_header", "pn offset outside the packet");
    }
    offset = view->packet_end;
  }
}

void fuzz_quic_varint(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  int decoded = 0;
  try {
    while (!r.empty() && decoded < 4096) {
      const auto before = r.position();
      const std::uint64_t value = quic::read_varint(r);
      const auto consumed = r.position() - before;
      ++decoded;
      QUICSAND_FUZZ_CHECK(value <= quic::kVarintMax, "quic_varint",
                          "decoded value above 2^62-1");
      QUICSAND_FUZZ_CHECK(consumed >= 1 && consumed <= 8, "quic_varint",
                          "varint consumed an impossible byte count");
      // Round-trip: the minimal re-encoding must decode to the same
      // value and never be longer than what the wire used.
      util::ByteWriter w;
      quic::write_varint(w, value);
      QUICSAND_FUZZ_CHECK(w.size() == quic::varint_size(value), "quic_varint",
                          "write_varint size disagrees with varint_size");
      QUICSAND_FUZZ_CHECK(w.size() <= consumed, "quic_varint",
                          "minimal encoding longer than the wire encoding");
      util::ByteReader back(w.view());
      QUICSAND_FUZZ_CHECK(quic::read_varint(back) == value, "quic_varint",
                          "varint round-trip mismatch");
    }
  } catch (const util::BufferUnderflow&) {
    // Truncated tail: the documented failure mode.
  }
}

void fuzz_quic_transport_params(std::span<const std::uint8_t> data) {
  const auto parsed = quic::parse_transport_parameters(data);
  if (!parsed) return;
  // Encode/parse must be idempotent: re-encoding the parsed view and
  // parsing it again yields byte-identical bytes.
  const auto encoded = quic::encode_transport_parameters(*parsed);
  const auto reparsed = quic::parse_transport_parameters(encoded);
  QUICSAND_FUZZ_CHECK(reparsed.has_value(), "quic_transport_params",
                      "re-encoded parameters failed to parse");
  const auto reencoded = quic::encode_transport_parameters(*reparsed);
  QUICSAND_FUZZ_CHECK(encoded == reencoded, "quic_transport_params",
                      "encode/parse round-trip is not stable");
}

void fuzz_live_datagram(std::span<const std::uint8_t> data) {
  // The live socket feeds arbitrary UDP payloads straight into this
  // parse; it must be total and its span must stay inside the input.
  const auto frame = net::live::parse_live_frame(data);
  QUICSAND_FUZZ_CHECK(frame.datagram.size() <= data.size(), "live_datagram",
                      "datagram larger than the payload");
  if (!frame.datagram.empty()) {
    QUICSAND_FUZZ_CHECK(frame.datagram.data() >= data.data() &&
                            frame.datagram.data() + frame.datagram.size() <=
                                data.data() + data.size(),
                        "live_datagram", "datagram span escapes the payload");
  }
  if (frame.encapsulated) {
    // QSL2 carries a send stamp (any i64 the wire says, -1 reserved
    // for "absent"); QSL1 must always report the stamp as absent.
    const bool v2 = frame.send_wall_us >= 0 ||
                    (data.size() >= 4 &&
                     std::equal(std::begin(net::live::kFrameMagicV2),
                                std::end(net::live::kFrameMagicV2),
                                data.begin()));
    const std::size_t header = v2 ? net::live::kFrameHeaderSizeV2
                                  : net::live::kFrameHeaderSize;
    QUICSAND_FUZZ_CHECK(data.size() >= header, "live_datagram",
                        "encapsulated but shorter than the header");
    QUICSAND_FUZZ_CHECK(frame.datagram.size() == data.size() - header,
                        "live_datagram",
                        "encapsulated datagram length mismatch");
    // Re-encoding the parsed frame must reproduce the input bytes;
    // for v2 the round trip also carries the send stamp, and
    // patch_send_stamp must restore the original bytes exactly.
    auto encoded =
        v2 ? net::live::encode_live_frame_v2(frame.timestamp, 0,
                                             frame.datagram)
           : net::live::encode_live_frame(frame.timestamp, frame.datagram);
    if (v2) net::live::patch_send_stamp(encoded, frame.send_wall_us);
    QUICSAND_FUZZ_CHECK(encoded.size() == data.size() &&
                            std::equal(encoded.begin(), encoded.end(),
                                       data.begin()),
                        "live_datagram", "frame round-trip mismatch");
  } else {
    QUICSAND_FUZZ_CHECK(frame.datagram.size() == data.size(),
                        "live_datagram", "bare payload was truncated");
    // patch_send_stamp must be a total no-op on anything that is not a
    // full QSL2 frame.
    std::vector<std::uint8_t> copy(data.begin(), data.end());
    net::live::patch_send_stamp(copy, 1);
    QUICSAND_FUZZ_CHECK(std::equal(copy.begin(), copy.end(), data.begin()),
                        "live_datagram",
                        "patch_send_stamp mutated a non-QSL2 payload");
  }
  // Sharding peek vs the real decoder: quick_ipv4_source may accept
  // more, but must never reject (or disagree on) a datagram
  // net::decode_ipv4 accepts — otherwise shard-by-source and
  // sessionization would partition the same packet differently.
  const auto source = net::live::quick_ipv4_source(frame.datagram);
  if (const auto decoded = net::decode_ipv4(frame.datagram)) {
    QUICSAND_FUZZ_CHECK(source.has_value(), "live_datagram",
                        "quick_ipv4_source rejected a decodable datagram");
    QUICSAND_FUZZ_CHECK(*source == decoded->ip.src.value(), "live_datagram",
                        "quick_ipv4_source disagrees with decode_ipv4");
  }
}

void fuzz_net_headers(std::span<const std::uint8_t> data) {
  const auto decoded = net::decode_ipv4(data);
  net::verify_checksums(data);  // must never throw, any input
  if (!decoded) return;
  QUICSAND_FUZZ_CHECK(data.size() >= 20, "net_headers",
                      "decoded an impossibly short datagram");
  if (decoded->is_udp()) {
    const auto& udp = decoded->udp();
    QUICSAND_FUZZ_CHECK(udp.payload.size() <= data.size(), "net_headers",
                        "UDP payload larger than the datagram");
    if (!udp.payload.empty()) {
      QUICSAND_FUZZ_CHECK(udp.payload.data() >= data.data() &&
                              udp.payload.data() + udp.payload.size() <=
                                  data.data() + data.size(),
                          "net_headers", "UDP payload span escapes buffer");
    }
  } else if (decoded->is_icmp()) {
    net::parse_icmp_quote(decoded->icmp().payload);
  }
}

/// Shared by the pcap and pcapng targets: drain a reader, feeding every
/// packet into the IPv4 decoder like analyze_pcap does. The readers'
/// documented failure mode is std::runtime_error; anything else escapes
/// and crashes the driver.
template <typename Reader>
void drain_capture_reader(std::span<const std::uint8_t> data,
                          const char* target) {
  std::istringstream stream(
      std::string(reinterpret_cast<const char*>(data.data()), data.size()));
  try {
    Reader reader(stream);
    int packets = 0;
    while (auto packet = reader.next()) {
      QUICSAND_FUZZ_CHECK(packet->data.size() <= data.size(), target,
                          "record larger than the whole capture");
      net::decode_ipv4(packet->data);
      if (++packets > 16384) break;
    }
  } catch (const std::runtime_error&) {
    // Malformed capture: the documented failure mode.
  }
}

void fuzz_pcap(std::span<const std::uint8_t> data) {
  drain_capture_reader<net::PcapReader>(data, "pcap");
}

void fuzz_pcapng(std::span<const std::uint8_t> data) {
  drain_capture_reader<net::PcapngReader>(data, "pcapng");
}

constexpr FuzzTarget kTargets[] = {
    {"live_datagram", fuzz_live_datagram,
     "net::live::parse_live_frame + quick_ipv4_source vs decode_ipv4"},
    {"net_headers", fuzz_net_headers,
     "net::decode_ipv4 + checksum verification + ICMP quote parsing"},
    {"pcap", fuzz_pcap, "net::PcapReader over an in-memory capture"},
    {"pcapng", fuzz_pcapng, "net::PcapngReader over an in-memory capture"},
    {"quic_dissect", fuzz_quic_dissect,
     "quic::dissect_udp_payload, shallow and deep (Initial decryption)"},
    {"quic_header", fuzz_quic_header,
     "quic::parse_long_header over coalesced packets"},
    {"quic_transport_params", fuzz_quic_transport_params,
     "quic::parse_transport_parameters + round-trip stability"},
    {"quic_varint", fuzz_quic_varint,
     "quic::read_varint stream decode + round-trip"},
};

}  // namespace

std::span<const FuzzTarget> all_targets() { return kTargets; }

const FuzzTarget* find_target(std::string_view name) {
  for (const auto& target : kTargets) {
    if (target.name == name) return &target;
  }
  return nullptr;
}

void run_target(std::string_view name, std::span<const std::uint8_t> data) {
  const auto* target = find_target(name);
  if (target == nullptr) {
    throw std::invalid_argument("unknown fuzz target: " + std::string(name));
  }
  target->fn(data);
}

}  // namespace quicsand::fuzz
