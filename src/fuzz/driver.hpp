// Standalone deterministic fuzz driver.
//
// Every fuzz binary under tests/fuzz/ is either linked as a libFuzzer
// target (clang, -DQUICSAND_LIBFUZZER=ON: LLVMFuzzerTestOneInput only)
// or gets a main() from driver_main(): N deterministic mutation
// iterations over the union of builtin and on-disk corpus seeds.
//
//   fuzz_<target> [--iterations N] [--seed S] [--corpus DIR]
//                 [--max-len BYTES] [--write-seeds DIR] [FILE...]
//
// With FILE arguments the driver replays those inputs verbatim (crash
// reproduction) instead of fuzzing. --write-seeds dumps the builtin
// seeds as .hex files (how tests/corpus/ was first populated).
// QUICSAND_FUZZ_ITERATIONS in the environment overrides --iterations,
// so one ctest invocation can scale every registered fuzz test at once.
#pragma once

#include "fuzz/targets.hpp"

namespace quicsand::fuzz {

int driver_main(std::string_view target_name, int argc, char** argv);

}  // namespace quicsand::fuzz
