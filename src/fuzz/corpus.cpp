#include "fuzz/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "net/headers.hpp"
#include "net/live/frame.hpp"
#include "quic/gquic.hpp"
#include "quic/packets.hpp"
#include "quic/retry.hpp"
#include "quic/transport_params.hpp"
#include "quic/varint.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace quicsand::fuzz {

namespace {

namespace fs = std::filesystem;

bool is_hex_digit(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

void append_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void append_u16le(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

/// A small telescope-style UDP datagram (QUIC backscatter) to embed in
/// capture-format seeds.
std::vector<std::uint8_t> sample_udp_datagram(util::Rng& rng) {
  const auto ctx = quic::HandshakeContext::random(1, rng);
  const auto payload = quic::build_server_initial_handshake(
      ctx, rng, quic::CryptoFidelity::kFast);
  net::Ipv4Header ip;
  ip.src = net::Ipv4Address::from_octets(142, 250, 0, 1);
  ip.dst = net::Ipv4Address::from_octets(44, 1, 2, 3);
  return net::build_udp(ip, 443, 40001, payload);
}

/// Classic pcap bytes: little-endian global header + `packets` records.
std::vector<std::uint8_t> make_pcap(
    std::uint32_t magic, std::uint32_t linktype,
    std::span<const std::vector<std::uint8_t>> packets) {
  std::vector<std::uint8_t> out;
  append_u32le(out, magic);
  append_u16le(out, 2);
  append_u16le(out, 4);
  append_u32le(out, 0);
  append_u32le(out, 0);
  append_u32le(out, 65535);
  append_u32le(out, linktype);
  std::uint32_t ts = 1617235200;
  for (const auto& packet : packets) {
    append_u32le(out, ts++);
    append_u32le(out, 250000);
    append_u32le(out, static_cast<std::uint32_t>(packet.size()));
    append_u32le(out, static_cast<std::uint32_t>(packet.size()));
    out.insert(out.end(), packet.begin(), packet.end());
  }
  return out;
}

void append_pcapng_block(std::vector<std::uint8_t>& out, std::uint32_t type,
                         std::span<const std::uint8_t> body) {
  const auto padded = (body.size() + 3) & ~std::size_t{3};
  const auto total = static_cast<std::uint32_t>(12 + padded);
  append_u32le(out, type);
  append_u32le(out, total);
  out.insert(out.end(), body.begin(), body.end());
  out.insert(out.end(), padded - body.size(), 0);
  append_u32le(out, total);
}

/// Minimal pcapng: SHB + one IDB (with an if_tsresol option when
/// `tsresol` is nonzero) + one EPB per packet.
std::vector<std::uint8_t> make_pcapng(
    std::uint16_t linktype, std::uint8_t tsresol,
    std::span<const std::vector<std::uint8_t>> packets) {
  std::vector<std::uint8_t> out;
  std::vector<std::uint8_t> shb;
  append_u32le(shb, 0x1a2b3c4d);
  append_u16le(shb, 1);
  append_u16le(shb, 0);
  for (int i = 0; i < 8; ++i) shb.push_back(0xff);  // section length: -1
  append_pcapng_block(out, 0x0a0d0d0a, shb);

  std::vector<std::uint8_t> idb;
  append_u16le(idb, linktype);
  append_u16le(idb, 0);       // reserved
  append_u32le(idb, 65535);   // snaplen
  if (tsresol != 0) {
    append_u16le(idb, 9);  // if_tsresol
    append_u16le(idb, 1);
    idb.push_back(tsresol);
    idb.insert(idb.end(), 3, 0);  // option padding
    append_u16le(idb, 0);         // opt_endofopt
    append_u16le(idb, 0);
  }
  append_pcapng_block(out, 0x00000001, idb);

  std::uint64_t ts = 1617235200000000ULL;
  for (const auto& packet : packets) {
    std::vector<std::uint8_t> epb;
    append_u32le(epb, 0);  // interface id
    append_u32le(epb, static_cast<std::uint32_t>(ts >> 32));
    append_u32le(epb, static_cast<std::uint32_t>(ts));
    ts += 1000;
    append_u32le(epb, static_cast<std::uint32_t>(packet.size()));
    append_u32le(epb, static_cast<std::uint32_t>(packet.size()));
    epb.insert(epb.end(), packet.begin(), packet.end());
    append_pcapng_block(out, 0x00000006, epb);
  }
  return out;
}

std::vector<CorpusEntry> named(std::vector<std::vector<std::uint8_t>> seeds) {
  std::vector<CorpusEntry> out;
  out.reserve(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    out.push_back({"builtin:" + std::to_string(i), std::move(seeds[i])});
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> quic_datagram_seeds() {
  util::Rng rng(0xc0ffee);
  const auto ctx = quic::HandshakeContext::random(1, rng);
  auto ctx29 = quic::HandshakeContext::random(0xff00001d, rng);
  const std::vector<std::uint32_t> versions = {1, 0xff00001d, 0x0a0a0a0a};
  std::vector<std::uint8_t> token(16);
  rng.fill(token);
  return {
      quic::build_client_initial(ctx, "example.org", rng,
                                 quic::CryptoFidelity::kFast),
      quic::build_client_initial(ctx29, "example.org", rng,
                                 quic::CryptoFidelity::kFast, token),
      quic::build_server_initial_handshake(ctx, rng,
                                           quic::CryptoFidelity::kFast),
      quic::build_server_handshake(ctx, rng, quic::CryptoFidelity::kFast),
      quic::build_version_negotiation(ctx.client_scid, ctx.client_dcid,
                                      versions, rng),
      quic::build_retry_packet(1, ctx.client_scid, ctx.server_scid, token,
                               ctx.client_dcid),
      quic::build_stateless_reset(rng),
      quic::build_gquic_packet(quic::ConnectionId(rng.bytes(8)), 0x51303433,
                               7, rng.bytes(40)),
      // Real-protection Initial so deep dissection has a decryptable seed.
      quic::build_client_initial(ctx, "deep.example", rng,
                                 quic::CryptoFidelity::kFull),
  };
}

std::vector<std::vector<std::uint8_t>> header_seeds() {
  auto seeds = quic_datagram_seeds();
  seeds.resize(6);  // long-header-shaped subset
  return seeds;
}

std::vector<std::vector<std::uint8_t>> varint_seeds() {
  util::ByteWriter w;
  for (const std::uint64_t v :
       {0ULL, 1ULL, 63ULL, 64ULL, 16383ULL, 16384ULL, (1ULL << 30) - 1,
        1ULL << 30, (1ULL << 62) - 1}) {
    quic::write_varint(w, v);
  }
  quic::write_varint_with_size(w, 5, 8);  // non-minimal encoding
  return {w.take()};
}

std::vector<std::vector<std::uint8_t>> transport_params_seeds() {
  util::Rng rng(0xbeef);
  const auto scid = quic::ConnectionId(rng.bytes(8));
  auto params = quic::TransportParameters::typical_client(scid);
  std::vector<std::vector<std::uint8_t>> seeds;
  seeds.push_back(quic::encode_transport_parameters(params));
  params.original_destination_connection_id = quic::ConnectionId(rng.bytes(20));
  params.retry_source_connection_id = quic::ConnectionId(rng.bytes(0));
  seeds.push_back(quic::encode_transport_parameters(params));
  seeds.push_back({});  // empty body is valid
  return seeds;
}

std::vector<std::vector<std::uint8_t>> net_header_seeds() {
  util::Rng rng(0xdead);
  auto udp = sample_udp_datagram(rng);

  net::Ipv4Header tcp_ip;
  tcp_ip.src = net::Ipv4Address::from_octets(93, 184, 216, 34);
  tcp_ip.dst = net::Ipv4Address::from_octets(44, 9, 9, 9);
  tcp_ip.protocol = net::IpProtocol::kTcp;
  net::TcpInfo tcp;
  tcp.src_port = 443;
  tcp.dst_port = 50123;
  tcp.seq = 1;
  tcp.ack = 2;
  tcp.flags = net::TcpFlags::kSyn | net::TcpFlags::kAck;
  auto syn_ack = net::build_tcp(tcp_ip, tcp);

  net::Ipv4Header icmp_ip;
  icmp_ip.src = net::Ipv4Address::from_octets(203, 0, 113, 7);
  icmp_ip.dst = net::Ipv4Address::from_octets(44, 3, 3, 3);
  icmp_ip.protocol = net::IpProtocol::kIcmp;
  auto unreachable = net::build_icmp_error(icmp_ip, 3, 3, udp);

  return {std::move(udp), std::move(syn_ack), std::move(unreachable)};
}

std::vector<std::vector<std::uint8_t>> live_datagram_seeds() {
  util::Rng rng(0x11fe);
  auto bare = sample_udp_datagram(rng);
  auto framed =
      net::live::encode_live_frame(util::Timestamp{1619136000000000LL},
                                   sample_udp_datagram(rng));
  // QSL1 magic with a truncated header: must parse as a bare payload.
  std::vector<std::uint8_t> truncated = {'Q', 'S', 'L', '1', 0xaa, 0xbb};
  return {std::move(framed), std::move(bare), std::move(truncated)};
}

std::vector<std::vector<std::uint8_t>> pcap_seeds() {
  util::Rng rng(0xfeed);
  const std::vector<std::vector<std::uint8_t>> raw_packets = {
      sample_udp_datagram(rng), sample_udp_datagram(rng)};
  std::vector<std::uint8_t> ether(14, 0);
  ether[12] = 0x08;  // ethertype IPv4
  auto framed = sample_udp_datagram(rng);
  framed.insert(framed.begin(), ether.begin(), ether.end());
  const std::vector<std::vector<std::uint8_t>> ether_packets = {framed};
  return {
      make_pcap(0xa1b2c3d4, 101, raw_packets),
      make_pcap(0xa1b23c4d, 101, raw_packets),  // nanosecond magic
      make_pcap(0xa1b2c3d4, 1, ether_packets),  // ethernet linktype
  };
}

std::vector<std::vector<std::uint8_t>> pcapng_seeds() {
  util::Rng rng(0xace);
  const std::vector<std::vector<std::uint8_t>> packets = {
      sample_udp_datagram(rng), sample_udp_datagram(rng)};
  return {
      make_pcapng(101, 0, packets),
      make_pcapng(101, 9, packets),     // decimal nanosecond resolution
      make_pcapng(101, 0x83, packets),  // binary 2^-3 resolution
  };
}

}  // namespace

std::vector<std::uint8_t> parse_hex_corpus(std::string_view text) {
  std::string hex;
  bool in_comment = false;
  for (const char c : text) {
    if (c == '\n') {
      in_comment = false;
    } else if (c == '#') {
      in_comment = true;
    } else if (!in_comment && is_hex_digit(c)) {
      hex.push_back(c);
    } else if (!in_comment && c != ' ' && c != '\t' && c != '\r') {
      throw std::runtime_error("corpus: non-hex byte in .hex file");
    }
  }
  return util::from_hex_strict(hex);
}

std::vector<CorpusEntry> load_corpus_dir(const std::string& dir) {
  std::vector<CorpusEntry> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    if (!in) {
      throw std::runtime_error("corpus: cannot open " +
                               entry.path().string());
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string raw = buffer.str();
    CorpusEntry item;
    item.name = entry.path().filename().string();
    if (entry.path().extension() == ".hex") {
      item.data = parse_hex_corpus(raw);
    } else {
      item.data.assign(raw.begin(), raw.end());
    }
    out.push_back(std::move(item));
  }
  std::sort(out.begin(), out.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) {
              return a.name < b.name;
            });
  return out;
}

void write_hex_corpus_file(const std::string& path, std::string_view comment,
                           std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("corpus: cannot write " + path);
  out << "# " << comment << "\n";
  const std::string hex = util::to_hex(data);
  for (std::size_t i = 0; i < hex.size(); i += 64) {
    out << hex.substr(i, 64) << "\n";
  }
}

std::vector<CorpusEntry> builtin_seeds(std::string_view target) {
  if (target == "quic_dissect") return named(quic_datagram_seeds());
  if (target == "quic_header") return named(header_seeds());
  if (target == "quic_varint") return named(varint_seeds());
  if (target == "quic_transport_params") {
    return named(transport_params_seeds());
  }
  if (target == "net_headers") return named(net_header_seeds());
  if (target == "live_datagram") return named(live_datagram_seeds());
  if (target == "pcap") return named(pcap_seeds());
  if (target == "pcapng") return named(pcapng_seeds());
  return {};
}

}  // namespace quicsand::fuzz
