#include "fuzz/mutator.hpp"

#include <algorithm>
#include <array>

namespace quicsand::fuzz {

namespace {

/// Boundary values that historically break varint/length handling:
/// encoding-size boundaries, the varint maximum, and a few values just
/// past what a UDP datagram or pcap record can actually hold.
constexpr std::array<std::uint64_t, 14> kInterestingValues = {
    0,      1,          63,         64,        127,        128,
    16383,  16384,      65535,      65536,     (1u << 30) - 1,
    1u << 30, (1ULL << 62) - 1, 0xffffffffffffffffULL};

constexpr std::array<std::string_view, 12> kMutationNames = {
    "flip-bit",       "set-byte",     "insert-interesting", "truncate",
    "extend-random",  "dup-chunk",    "erase-chunk",        "splice-varint",
    "patch-length",   "coalesce",     "split-tail",         "zero-pad"};

}  // namespace

std::string_view mutation_name(std::size_t index) {
  return index < kMutationNames.size() ? kMutationNames[index] : "?";
}

Mutator::Mutator(util::Rng rng, MutatorOptions options)
    : rng_(rng), options_(options) {}

std::size_t Mutator::primitive_count() { return kMutationNames.size(); }

void Mutator::mutate(std::vector<std::uint8_t>& data) {
  const auto stacked =
      1 + rng_.uniform(static_cast<std::uint64_t>(options_.max_stacked));
  for (std::uint64_t i = 0; i < stacked; ++i) {
    apply(rng_.uniform(primitive_count()), data);
  }
  clamp(data);
}

void Mutator::apply(std::size_t primitive, std::vector<std::uint8_t>& data) {
  switch (primitive) {
    case 0: flip_bit(data); break;
    case 1: set_byte(data); break;
    case 2: insert_interesting(data); break;
    case 3: truncate(data); break;
    case 4: extend_random(data); break;
    case 5: duplicate_chunk(data); break;
    case 6: erase_chunk(data); break;
    case 7: splice_varint(data); break;
    case 8: patch_length_field(data); break;
    case 9: coalesce_self(data); break;
    case 10: split_tail(data); break;
    case 11: zero_pad_tail(data); break;
    default: flip_bit(data); break;
  }
  clamp(data);
}

void Mutator::clamp(std::vector<std::uint8_t>& data) const {
  if (data.size() > options_.max_size) data.resize(options_.max_size);
}

void Mutator::flip_bit(std::vector<std::uint8_t>& data) {
  if (data.empty()) {
    data.push_back(static_cast<std::uint8_t>(rng_.next()));
    return;
  }
  const auto bit = rng_.uniform(data.size() * 8);
  data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

void Mutator::set_byte(std::vector<std::uint8_t>& data) {
  if (data.empty()) {
    data.push_back(static_cast<std::uint8_t>(rng_.next()));
    return;
  }
  data[rng_.uniform(data.size())] = static_cast<std::uint8_t>(rng_.next());
}

void Mutator::insert_interesting(std::vector<std::uint8_t>& data) {
  const auto value = kInterestingValues[rng_.uniform(kInterestingValues.size())];
  const std::size_t width = std::size_t{1} << rng_.uniform(4);  // 1/2/4/8
  const auto offset = rng_.uniform(data.size() + 1);
  std::array<std::uint8_t, 8> bytes{};
  for (std::size_t i = 0; i < width; ++i) {  // big-endian, the wire order
    bytes[i] = static_cast<std::uint8_t>(value >> (8 * (width - 1 - i)));
  }
  if (rng_.bernoulli(0.5) && offset + width <= data.size()) {
    std::copy_n(bytes.begin(), width, data.begin() + offset);  // overwrite
  } else {
    data.insert(data.begin() + offset, bytes.begin(), bytes.begin() + width);
  }
}

void Mutator::truncate(std::vector<std::uint8_t>& data) {
  if (data.empty()) return;
  data.resize(rng_.uniform(data.size() + 1));
}

void Mutator::extend_random(std::vector<std::uint8_t>& data) {
  const auto extra = 1 + rng_.uniform(64);
  for (std::uint64_t i = 0; i < extra; ++i) {
    data.push_back(static_cast<std::uint8_t>(rng_.next()));
  }
}

void Mutator::duplicate_chunk(std::vector<std::uint8_t>& data) {
  if (data.empty()) return;
  const auto start = rng_.uniform(data.size());
  const auto len = 1 + rng_.uniform(data.size() - start);
  const auto dest = rng_.uniform(data.size() + 1);
  std::vector<std::uint8_t> chunk(data.begin() + start,
                                  data.begin() + start + len);
  data.insert(data.begin() + dest, chunk.begin(), chunk.end());
}

void Mutator::erase_chunk(std::vector<std::uint8_t>& data) {
  if (data.empty()) return;
  const auto start = rng_.uniform(data.size());
  const auto len = 1 + rng_.uniform(data.size() - start);
  data.erase(data.begin() + start, data.begin() + start + len);
}

void Mutator::splice_varint(std::vector<std::uint8_t>& data) {
  // Overwrite a random position with a well-formed RFC 9000 varint
  // holding a boundary value: exercises token/Length/parameter-id
  // handling far better than random byte noise.
  const auto value =
      kInterestingValues[rng_.uniform(kInterestingValues.size())] &
      ((1ULL << 62) - 1);
  std::size_t width = std::size_t{1} << rng_.uniform(4);
  // Smallest legal width for the value, keeping the chosen width when
  // it is large enough (QUIC allows non-minimal encodings).
  std::size_t min_width = value < 64 ? 1 : value < 16384 ? 2
                          : value < (1ULL << 30) ? 4 : 8;
  width = std::max(width, min_width);
  std::array<std::uint8_t, 8> bytes{};
  std::uint64_t v = value;
  for (std::size_t i = width; i-- > 0;) {
    bytes[i] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
  bytes[0] = static_cast<std::uint8_t>(
      (bytes[0] & 0x3f) |
      (width == 1 ? 0x00 : width == 2 ? 0x40 : width == 4 ? 0x80 : 0xc0));
  const auto offset = rng_.uniform(data.size() + 1);
  if (offset + width <= data.size()) {
    std::copy_n(bytes.begin(), width, data.begin() + offset);
  } else {
    data.resize(offset);
    data.insert(data.end(), bytes.begin(), bytes.begin() + width);
  }
}

void Mutator::patch_length_field(std::vector<std::uint8_t>& data) {
  // Rewrite two adjacent bytes as a big-endian length that is slightly
  // off from the bytes actually remaining — the classic trigger for
  // over-reads in TLV and record parsers.
  if (data.size() < 2) return;
  const auto offset = rng_.uniform(data.size() - 1);
  const std::size_t remaining = data.size() - offset - 2;
  const std::int64_t delta =
      static_cast<std::int64_t>(rng_.uniform(9)) - 4;  // -4..+4
  const auto length = static_cast<std::uint16_t>(std::max<std::int64_t>(
      0, static_cast<std::int64_t>(remaining) + delta));
  data[offset] = static_cast<std::uint8_t>(length >> 8);
  data[offset + 1] = static_cast<std::uint8_t>(length);
}

void Mutator::coalesce_self(std::vector<std::uint8_t>& data) {
  // Append a copy of a prefix of the input: turns one well-formed packet
  // into a coalesced datagram (QUIC) or a multi-record stream (pcap).
  if (data.empty()) return;
  const auto len = 1 + rng_.uniform(data.size());
  std::vector<std::uint8_t> prefix(data.begin(), data.begin() + len);
  data.insert(data.end(), prefix.begin(), prefix.end());
}

void Mutator::split_tail(std::vector<std::uint8_t>& data) {
  // Keep a random suffix: simulates mid-stream capture / lost prefix.
  if (data.size() < 2) return;
  const auto start = rng_.uniform(data.size());
  data.erase(data.begin(), data.begin() + start);
}

void Mutator::zero_pad_tail(std::vector<std::uint8_t>& data) {
  // QUIC datagrams legally end in zero padding; pcap files in zero
  // records. Also a cheap way to probe "length says more than payload".
  const auto extra = 1 + rng_.uniform(32);
  data.insert(data.end(), extra, 0);
}

}  // namespace quicsand::fuzz
