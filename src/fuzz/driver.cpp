#include "fuzz/driver.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/mutator.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"

namespace quicsand::fuzz {

namespace {

struct DriverOptions {
  std::uint64_t iterations = 10000;
  std::uint64_t seed = 1;
  std::size_t max_len = 4096;
  std::string corpus_dir;
  std::string write_seeds_dir;
  std::string dump_last_path;
  std::vector<std::string> replay_files;
};

[[noreturn]] void usage(std::string_view target, int code) {
  std::fprintf(
      stderr,
      "usage: fuzz_%.*s [--iterations N] [--seed S] [--corpus DIR]\n"
      "       [--max-len BYTES] [--write-seeds DIR] [--dump-last FILE]\n"
      "       [FILE...]\n"
      "Deterministic mutation fuzzing of the %.*s parser; FILE arguments\n"
      "replay saved inputs (.hex or raw) instead of fuzzing.\n",
      static_cast<int>(target.size()), target.data(),
      static_cast<int>(target.size()), target.data());
  std::exit(code);
}

DriverOptions parse_args(std::string_view target, int argc, char** argv) {
  DriverOptions options;
  if (const char* env = std::getenv("QUICSAND_FUZZ_ITERATIONS")) {
    options.iterations = util::require_u64("QUICSAND_FUZZ_ITERATIONS", env);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(target, 2);
      return argv[++i];
    };
    if (arg == "--iterations") {
      options.iterations = util::require_u64("--iterations", value());
    } else if (arg == "--seed") {
      options.seed = util::require_u64("--seed", value());
    } else if (arg == "--max-len") {
      options.max_len = util::require_u64("--max-len", value());
    } else if (arg == "--corpus") {
      options.corpus_dir = value();
    } else if (arg == "--write-seeds") {
      options.write_seeds_dir = value();
    } else if (arg == "--dump-last") {
      options.dump_last_path = value();
    } else if (arg == "--help" || arg == "-h") {
      usage(target, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      usage(target, 2);
    } else {
      options.replay_files.emplace_back(arg);
    }
  }
  return options;
}

std::vector<std::uint8_t> read_input_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string raw = buffer.str();
  if (path.size() > 4 && path.substr(path.size() - 4) == ".hex") {
    return parse_hex_corpus(raw);
  }
  return {raw.begin(), raw.end()};
}

}  // namespace

int driver_main(std::string_view target_name, int argc, char** argv) {
  const FuzzTarget* target = find_target(target_name);
  if (target == nullptr) {
    std::fprintf(stderr, "unknown fuzz target %.*s\n",
                 static_cast<int>(target_name.size()), target_name.data());
    return 2;
  }
  const auto options = parse_args(target_name, argc, argv);

  if (!options.write_seeds_dir.empty()) {
    const auto seeds = builtin_seeds(target->name);
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      char name[64];
      std::snprintf(name, sizeof(name), "/seed-%03zu.hex", i);
      write_hex_corpus_file(
          options.write_seeds_dir + name,
          std::string(target->name) + " builtin seed", seeds[i].data);
    }
    std::printf("wrote %zu seeds to %s\n", seeds.size(),
                options.write_seeds_dir.c_str());
    return 0;
  }

  if (!options.replay_files.empty()) {
    for (const auto& path : options.replay_files) {
      const auto data = read_input_file(path);
      std::printf("replay %s (%zu bytes)\n", path.c_str(), data.size());
      target->fn(data);
    }
    std::printf("replayed %zu input(s) clean\n",
                options.replay_files.size());
    return 0;
  }

  auto corpus = builtin_seeds(target->name);
  if (!options.corpus_dir.empty()) {
    auto disk = load_corpus_dir(options.corpus_dir);
    corpus.insert(corpus.end(), std::make_move_iterator(disk.begin()),
                  std::make_move_iterator(disk.end()));
  }
  if (corpus.empty()) {
    std::fprintf(stderr, "no corpus entries for %s\n",
                 std::string(target->name).c_str());
    return 2;
  }

  // Every corpus entry runs unmutated first: committed crashers act as
  // regression inputs on every invocation.
  for (const auto& entry : corpus) target->fn(entry.data);

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t bytes = 0;
  for (std::uint64_t i = 0; i < options.iterations; ++i) {
    // One fresh (rng, input) pair per iteration: reproducing iteration i
    // never requires replaying iterations 0..i-1.
    util::Rng rng(util::mix64(options.seed, i));
    Mutator mutator(rng.fork(1),
                    {.max_size = options.max_len, .max_stacked = 5});
    auto data = corpus[rng.uniform(corpus.size())].data;
    mutator.mutate(data);
    bytes += data.size();
    if (!options.dump_last_path.empty()) {
      // Written before the target runs: after a crash the file holds the
      // offending input, ready to commit under tests/corpus/.
      char comment[64];
      std::snprintf(comment, sizeof(comment), "iteration %llu seed %llu",
                    static_cast<unsigned long long>(i),
                    static_cast<unsigned long long>(options.seed));
      write_hex_corpus_file(options.dump_last_path, comment, data);
    }
    target->fn(data);
  }
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf(
      "%s: %llu iterations clean (%zu corpus seeds, %.1f MB mutated, "
      "%.0f exec/s)\n",
      std::string(target->name).c_str(),
      static_cast<unsigned long long>(options.iterations), corpus.size(),
      static_cast<double>(bytes) / 1e6,
      elapsed > 0 ? static_cast<double>(options.iterations) / elapsed : 0.0);
  return 0;
}

}  // namespace quicsand::fuzz
