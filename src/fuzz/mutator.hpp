// Seed-driven structured mutation engine for the fuzz drivers.
//
// libFuzzer-style byte mutations plus wire-format aware transforms
// (varint splices, length-field patches, packet coalescing/splitting)
// built on util::Rng, so a (corpus, seed, iteration) triple always
// produces the same input on every platform — crashes reproduce from
// the command line without saving the mutated bytes.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace quicsand::fuzz {

struct MutatorOptions {
  /// Mutated inputs are clamped to this size (parsers under test cap
  /// out around one UDP datagram / a handful of pcap records).
  std::size_t max_size = 4096;
  /// Upper bound on stacked primitive mutations per mutate() call.
  int max_stacked = 5;
};

/// Names of the mutation primitives, index-aligned with
/// Mutator::primitive_count(); used by tests and stats reporting.
std::string_view mutation_name(std::size_t index);

class Mutator {
 public:
  explicit Mutator(util::Rng rng, MutatorOptions options = {});

  /// Apply 1..max_stacked randomly chosen primitives in place.
  void mutate(std::vector<std::uint8_t>& data);

  /// Apply exactly one primitive by index (tests drive this directly).
  void apply(std::size_t primitive, std::vector<std::uint8_t>& data);

  static std::size_t primitive_count();

 private:
  // Byte-level primitives.
  void flip_bit(std::vector<std::uint8_t>& data);
  void set_byte(std::vector<std::uint8_t>& data);
  void insert_interesting(std::vector<std::uint8_t>& data);
  void truncate(std::vector<std::uint8_t>& data);
  void extend_random(std::vector<std::uint8_t>& data);
  void duplicate_chunk(std::vector<std::uint8_t>& data);
  void erase_chunk(std::vector<std::uint8_t>& data);

  // Structure-aware primitives.
  void splice_varint(std::vector<std::uint8_t>& data);
  void patch_length_field(std::vector<std::uint8_t>& data);
  void coalesce_self(std::vector<std::uint8_t>& data);
  void split_tail(std::vector<std::uint8_t>& data);
  void zero_pad_tail(std::vector<std::uint8_t>& data);

  void clamp(std::vector<std::uint8_t>& data) const;

  util::Rng rng_;
  MutatorOptions options_;
};

}  // namespace quicsand::fuzz
