// Corpus management for the deterministic fuzz drivers.
//
// Two sources of seeds are unioned per target:
//  * builtin_seeds(target): well-formed inputs built programmatically
//    from the project's own encoders (client Initials, VN packets,
//    pcap/pcapng files, transport-parameter blobs, ...) so the mutation
//    engine always starts from structurally valid bytes;
//  * a committed on-disk corpus under tests/corpus/<target>/ holding
//    hand-picked edge cases and every crasher a fuzzer ever found,
//    stored hex-encoded (one file per input, '#' comment lines allowed)
//    so the corpus stays reviewable in git.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace quicsand::fuzz {

struct CorpusEntry {
  std::string name;  ///< "builtin:<n>" or the on-disk file name
  std::vector<std::uint8_t> data;
};

/// Load every corpus file in `dir`, sorted by file name for determinism.
/// Files ending in `.hex` are hex-decoded (whitespace and '#'-comment
/// lines ignored); anything else is read raw. A missing directory yields
/// an empty corpus (targets still have their builtin seeds).
std::vector<CorpusEntry> load_corpus_dir(const std::string& dir);

/// Write `data` hex-encoded (64 chars per line) with a leading comment.
void write_hex_corpus_file(const std::string& path, std::string_view comment,
                           std::span<const std::uint8_t> data);

/// Decode the hex corpus format (inverse of write_hex_corpus_file).
std::vector<std::uint8_t> parse_hex_corpus(std::string_view text);

/// Programmatic well-formed seeds for a fuzz target name; empty for
/// unknown targets.
std::vector<CorpusEntry> builtin_seeds(std::string_view target);

}  // namespace quicsand::fuzz
