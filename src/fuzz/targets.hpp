// Fuzz targets: one entry point per byte-level parser in the analysis
// path. Each target feeds the input through the parser exactly as the
// classification pipeline would, then asserts structural invariants on
// the result (sizes within bounds, round-trips stable). A violated
// invariant or an unexpected exception aborts the process — that is the
// fuzzer's crash signal, under asan/ubsan or not.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace quicsand::fuzz {

using FuzzTargetFn = void (*)(std::span<const std::uint8_t>);

struct FuzzTarget {
  std::string_view name;
  FuzzTargetFn fn;
  std::string_view description;
};

/// All registered targets, name-sorted.
std::span<const FuzzTarget> all_targets();

/// Find a target by name; nullptr when unknown.
const FuzzTarget* find_target(std::string_view name);

/// Invoke a target by name; throws std::invalid_argument when unknown.
void run_target(std::string_view name, std::span<const std::uint8_t> data);

}  // namespace quicsand::fuzz
