#include "telescope/scoring.hpp"

namespace quicsand::telescope {

namespace {

bool matches(const core::DetectedAttack& detected,
             const PlannedAttack& planned, util::Duration slack) {
  if (detected.victim != planned.victim) return false;
  const auto planned_start = planned.start - slack;
  const auto planned_end = planned.start + planned.duration + slack;
  return detected.start <= planned_end && detected.end >= planned_start;
}

}  // namespace

MatchStats score_detections(std::span<const core::DetectedAttack> detected,
                            std::span<const PlannedAttack* const> planned,
                            util::Duration slack) {
  MatchStats stats;
  stats.detected = detected.size();
  stats.planned = planned.size();
  for (const auto& attack : detected) {
    for (const auto* plan : planned) {
      if (matches(attack, *plan, slack)) {
        ++stats.matched_detected;
        break;
      }
    }
  }
  for (const auto* plan : planned) {
    for (const auto& attack : detected) {
      if (matches(attack, *plan, slack)) {
        ++stats.matched_planned;
        break;
      }
    }
  }
  return stats;
}

bool comfortably_detectable(const PlannedAttack& attack,
                            const core::DosThresholds& thresholds) {
  return attack.peak_pps > 2.0 * thresholds.min_peak_pps.count() &&
         util::to_seconds(attack.duration) > 3.0 * thresholds.min_duration_s;
}

}  // namespace quicsand::telescope
