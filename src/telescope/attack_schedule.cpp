#include "telescope/attack_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "quic/version.hpp"

namespace quicsand::telescope {

namespace {

using asdb::AsRegistry;
using asdb::Asn;

constexpr util::Duration kMaxGap = 28 * util::kDay;

/// Attacks per victim: >50% of victims see exactly one attack, the rest
/// follow a capped Pareto tail (Figure 6's long tail).
std::uint64_t draw_attack_count(util::Rng& rng, std::uint64_t cap) {
  if (rng.bernoulli(0.55)) return 1;
  const double x = rng.pareto(1.0, 0.8);
  const auto count = static_cast<std::uint64_t>(std::ceil(x));
  return std::max<std::uint64_t>(2, std::min(count + 1, cap));
}

struct VictimPick {
  net::Ipv4Address address;
  Asn asn;
  bool known_server;
  std::uint32_t version;
};

class VictimPicker {
 public:
  VictimPicker(const ScenarioConfig& config, const asdb::AsRegistry& registry,
               const scanner::Deployment& deployment)
      : config_(config), registry_(registry), deployment_(deployment) {
    for (const auto& server : deployment.servers()) {
      by_asn_[server.asn].push_back(&server);
    }
    for (Asn asn : registry.by_type(asdb::NetworkType::kContent)) {
      if (asn != AsRegistry::kGoogle && asn != AsRegistry::kFacebook &&
          asn != AsRegistry::kCloudflare) {
        other_content_.push_back(asn);
      }
    }
  }

  VictimPick pick_quic_victim(util::Rng& rng,
                              std::unordered_set<std::uint32_t>& used) {
    const auto& mix = config_.attacks;
    const double weights[] = {mix.google_share, mix.facebook_share,
                              mix.cloudflare_share, mix.other_content_share,
                              mix.non_server_share};
    for (int attempt = 0; attempt < 64; ++attempt) {
      VictimPick pick{};
      switch (rng.weighted_index(weights)) {
        case 0:
          pick = pick_server(AsRegistry::kGoogle, rng);
          break;
        case 1:
          pick = pick_server(AsRegistry::kFacebook, rng);
          break;
        case 2:
          pick = pick_server(AsRegistry::kCloudflare, rng);
          break;
        case 3:
          pick = pick_server(
              other_content_[rng.uniform(other_content_.size())], rng);
          break;
        default: {
          // A host that is not on the hitlist (2% of attacks).
          pick.asn = AsRegistry::kGoogle;
          do {
            pick.address = registry_.random_address_in(pick.asn, rng);
          } while (deployment_.is_quic_server(pick.address));
          pick.known_server = false;
          pick.version = 0xff00001d;
          break;
        }
      }
      if (used.insert(pick.address.value()).second) return pick;
    }
    throw std::runtime_error("VictimPicker: victim space exhausted");
  }

  VictimPick pick_common_victim(util::Rng& rng,
                                std::unordered_set<std::uint32_t>& used) {
    // TCP/ICMP floods hit a broad population of web infrastructure.
    const auto types = {asdb::NetworkType::kContent,
                        asdb::NetworkType::kEnterprise,
                        asdb::NetworkType::kTransit};
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto type_index = rng.uniform(3);
      auto it = types.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(type_index));
      const auto ases = registry_.by_type(*it);
      const Asn asn = ases[rng.uniform(ases.size())];
      VictimPick pick{registry_.random_address_in(asn, rng), asn, false, 0};
      if (used.insert(pick.address.value()).second) return pick;
    }
    throw std::runtime_error("VictimPicker: common victim space exhausted");
  }

 private:
  VictimPick pick_server(Asn asn, util::Rng& rng) const {
    const auto it = by_asn_.find(asn);
    if (it == by_asn_.end() || it->second.empty()) {
      // Provider without deployed servers (tiny configs): fall back to a
      // random address flagged as unknown.
      return {registry_.random_address_in(asn, rng), asn, false, 1};
    }
    const auto* server = it->second[rng.uniform(it->second.size())];
    // Attack tooling speaks IETF QUIC; endpoints that prefer legacy
    // gQUIC (Google Q050) answer IETF floods on v1, keeping Google's
    // draft-29 backscatter share at the 78% the paper reports.
    std::uint32_t version = server->version;
    if (quic::salt_generation(version) == quic::SaltGeneration::kNone) {
      version = static_cast<std::uint32_t>(quic::Version::kV1);
    }
    return {server->address, server->asn, true, version};
  }

  const ScenarioConfig& config_;
  const asdb::AsRegistry& registry_;
  const scanner::Deployment& deployment_;
  std::unordered_map<Asn, std::vector<const scanner::QuicServer*>> by_asn_;
  std::vector<Asn> other_content_;
};

util::Duration draw_duration(util::Rng& rng, double median_s, double sigma) {
  // The clamp bounds the lognormal tail: the paper's longest observed
  // events are on the order of a day; unbounded draws would also blow up
  // the per-attack packet budget.
  const double s = rng.lognormal_median(median_s, sigma);
  return util::from_seconds(std::clamp(s, 5.0, 36.0 * 3600.0));
}

/// Telescope-observed peak rates: median ~1 pps (Fig. 7b); the clamp
/// keeps tail attacks within a sane packet budget.
double draw_peak_pps(util::Rng& rng, double median, double sigma) {
  return std::clamp(rng.lognormal_median(median, sigma), 0.05, 12.0);
}

}  // namespace

const char* attack_protocol_name(AttackProtocol protocol) {
  switch (protocol) {
    case AttackProtocol::kQuic:
      return "QUIC";
    case AttackProtocol::kTcp:
      return "TCP";
    case AttackProtocol::kIcmp:
      return "ICMP";
  }
  return "?";
}

std::vector<PlannedAttack> plan_attacks(const ScenarioConfig& config,
                                        const asdb::AsRegistry& registry,
                                        const scanner::Deployment& deployment,
                                        util::Rng& rng) {
  const auto& mix = config.attacks;
  const util::Timestamp window_start = config.start;
  const util::Timestamp window_end = config.end();
  const auto window = window_end - window_start;

  std::vector<PlannedAttack> attacks;
  VictimPicker picker(config, registry, deployment);
  std::unordered_set<std::uint32_t> used_victims;

  const auto total_quic = static_cast<std::uint64_t>(
      mix.quic_attacks_per_day * config.days + 0.5);
  // Bound the per-victim tail: the paper's most-attacked victim takes a
  // few percent of all attacks, not a fifth.
  const std::uint64_t per_victim_cap =
      std::max<std::uint64_t>(5, total_quic / 25);

  auto draw_common_protocol = [&] {
    return rng.bernoulli(mix.icmp_share) ? AttackProtocol::kIcmp
                                         : AttackProtocol::kTcp;
  };

  // `paired` marks the TCP/ICMP half of a multi-vector attack: those are
  // deliberate floods, so they are kept above the detection thresholds
  // (otherwise the detected relation shares drift from the planned mix).
  auto make_common = [&](net::Ipv4Address victim, Asn asn,
                         util::Timestamp start, util::Duration duration,
                         bool paired) {
    PlannedAttack attack;
    attack.protocol = draw_common_protocol();
    attack.victim = victim;
    attack.victim_asn = asn;
    attack.start = std::clamp(start, window_start, window_end - util::kMinute);
    attack.duration = std::min(duration, window_end - attack.start);
    attack.peak_pps = draw_peak_pps(rng, mix.common_peak_pps_median,
                                    mix.common_peak_pps_sigma);
    if (paired) {
      attack.peak_pps = std::max(attack.peak_pps, 1.2);
      attack.duration = std::max(attack.duration, 4 * util::kMinute);
      attack.duration = std::min(attack.duration, window_end - attack.start);
    }
    attack.relation = PlannedRelation::kNotApplicable;
    return attack;
  };

  std::uint64_t planned_quic = 0;
  while (planned_quic < total_quic) {
    const auto victim = picker.pick_quic_victim(rng, used_victims);
    std::uint64_t count = std::min(draw_attack_count(rng, per_victim_cap),
                                   total_quic - planned_quic);

    // Victim class: isolated victims never co-occur with TCP/ICMP.
    const double isolated_share =
        1.0 - mix.concurrent_share - mix.sequential_share;
    const bool isolated = rng.bernoulli(isolated_share);
    // Repeatedly-targeted victims are big, known infrastructure; hosts
    // off the hitlist and single-vector (isolated) victims see one-off
    // events. This also pins the Fig. 6/8 attack-weighted shares to the
    // per-victim class probabilities.
    if (!victim.known_server) count = std::min<std::uint64_t>(count, 2);
    if (isolated) count = std::min<std::uint64_t>(count, 3);
    const double concurrent_given_not_isolated =
        mix.concurrent_share / (mix.concurrent_share + mix.sequential_share);

    // Non-overlapping QUIC attack times for this victim.
    std::vector<util::Timestamp> starts;
    starts.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      starts.push_back(
          window_start +
          util::Duration{static_cast<std::int64_t>(rng.uniform(
              static_cast<std::uint64_t>(window.count())))});
    }
    std::sort(starts.begin(), starts.end());

    bool victim_has_common = false;
    util::Timestamp previous_end = window_start;
    std::vector<std::pair<util::Timestamp, util::Timestamp>> quic_spans;

    for (std::uint64_t i = 0; i < count; ++i) {
      PlannedAttack attack;
      attack.protocol = AttackProtocol::kQuic;
      attack.victim = victim.address;
      attack.victim_asn = victim.asn;
      attack.victim_is_known_server = victim.known_server;
      attack.quic_version = victim.version;
      attack.start = std::max(starts[i], previous_end + util::kMinute);
      if (attack.start >= window_end - util::kMinute) break;
      attack.duration = draw_duration(rng, mix.quic_duration_median_s,
                                      mix.quic_duration_sigma);
      attack.duration = std::min(attack.duration, window_end - attack.start);
      attack.peak_pps = draw_peak_pps(rng, mix.quic_peak_pps_median,
                                      mix.quic_peak_pps_sigma);
      // A small share of floods are heavy hitters — far above the
      // median in both rate and length (the Fig. 7 tails, and the
      // reason Fig. 10 still finds attacks at w=10).
      if (rng.bernoulli(0.02)) {
        attack.peak_pps = std::min(30.0, attack.peak_pps * 8.0);
        attack.duration = std::min(3 * attack.duration,
                                   window_end - attack.start);
      }
      // mvfst keeps probing dead connections far longer than Google's
      // draft-29 stack, so Facebook backscatter events run longer and
      // carry more packets at the same observed rate (Figure 9: higher
      // packet counts at Facebook, more SCIDs at Google). Applied on the
      // duration so the detector's selection bias cannot invert it.
      // The duration ratio must sit strictly between 1 and the flight
      // size ratio (~1.6, see flight_profile) for BOTH Figure 9
      // orderings to hold: Facebook ahead on packets, Google ahead on
      // SCIDs (connections = packets / flight size).
      if (victim.asn == AsRegistry::kFacebook) {
        attack.duration = std::min(
            util::Duration{static_cast<std::int64_t>(
                1.25 * static_cast<double>(attack.duration.count()))},
            window_end - attack.start);
      } else if (victim.asn == AsRegistry::kGoogle) {
        attack.duration = util::Duration{static_cast<std::int64_t>(
            0.95 * static_cast<double>(attack.duration.count()))};
      }
      previous_end = attack.start + attack.duration;
      quic_spans.emplace_back(attack.start, previous_end);

      if (isolated) {
        attack.relation = PlannedRelation::kIsolated;
      } else if (rng.bernoulli(concurrent_given_not_isolated)) {
        attack.relation = PlannedRelation::kConcurrent;
        // Paired common attack with the Figure 12 overlap profile.
        const bool full = rng.bernoulli(mix.full_overlap_share);
        util::Timestamp c_start;
        util::Duration c_duration;
        if (full) {
          c_duration = util::Duration{static_cast<std::int64_t>(
              static_cast<double>(attack.duration.count()) *
              (1.0 + rng.uniform01()))};
          const auto slack = c_duration - attack.duration;
          c_start = attack.start -
                    util::Duration{static_cast<std::int64_t>(rng.uniform(
                        static_cast<std::uint64_t>(slack.count()) + 1))};
        } else {
          // Partial overlaps skew high (Fig. 12: mean share 95%).
          const double u = rng.uniform01();
          const double f = 1.0 - 0.55 * u * u;
          const auto overlap = util::Duration{static_cast<std::int64_t>(
              std::max<double>(static_cast<double>(util::kSecond.count()),
                               f * static_cast<double>(
                                       attack.duration.count())))};
          c_duration =
              overlap + util::Duration{static_cast<std::int64_t>(rng.uniform(
                            static_cast<std::uint64_t>(
                                attack.duration.count()) +
                            1))};
          if (rng.bernoulli(0.5)) {
            // Common attack leads, overlapping the QUIC head.
            c_start = attack.start + overlap - c_duration;
          } else {
            // Common attack trails, overlapping the QUIC tail.
            c_start = attack.start + attack.duration - overlap;
          }
        }
        attacks.push_back(make_common(victim.address, victim.asn, c_start,
                                      c_duration, /*paired=*/true));
        victim_has_common = true;
      } else {
        attack.relation = PlannedRelation::kSequential;
      }
      attacks.push_back(attack);
      ++planned_quic;
    }

    // Sequential victims need at least one non-overlapping common attack.
    if (!isolated && !victim_has_common && !quic_spans.empty()) {
      const double gap_h = rng.lognormal_median(mix.sequential_gap_median_h,
                                                mix.sequential_gap_sigma);
      auto gap = std::min(util::Duration{static_cast<std::int64_t>(
                              gap_h * static_cast<double>(util::kHour.count()))},
                          kMaxGap);
      gap = std::max(gap, 2 * util::kMinute);
      const auto duration = draw_duration(
          rng, mix.common_duration_median_s, mix.common_duration_sigma);
      // Place after the last QUIC attack if it fits, else before the first.
      const auto last_end = quic_spans.back().second;
      util::Timestamp c_start = last_end + gap;
      if (c_start + duration > window_end) {
        c_start = quic_spans.front().first - gap - duration;
        if (c_start < window_start) c_start = last_end + util::kMinute;
      }
      if (c_start >= window_start && c_start < window_end) {
        attacks.push_back(make_common(victim.address, victim.asn, c_start,
                                      duration, /*paired=*/true));
      }
    }
  }

  // Background TCP/ICMP floods on an unrelated victim population.
  const auto total_common = static_cast<std::uint64_t>(
      mix.common_attacks_per_day * config.days + 0.5);
  std::uint64_t planned_common = 0;
  while (planned_common < total_common) {
    const auto victim = picker.pick_common_victim(rng, used_victims);
    const std::uint64_t count =
        std::min(draw_attack_count(rng, per_victim_cap),
                 total_common - planned_common);
    util::Timestamp previous_end = window_start;
    std::vector<util::Timestamp> starts;
    for (std::uint64_t i = 0; i < count; ++i) {
      starts.push_back(
          window_start +
          util::Duration{static_cast<std::int64_t>(rng.uniform(
              static_cast<std::uint64_t>(window.count())))});
    }
    std::sort(starts.begin(), starts.end());
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto start = std::max(starts[i], previous_end + util::kMinute);
      if (start >= window_end - util::kMinute) break;
      const auto duration = draw_duration(
          rng, mix.common_duration_median_s, mix.common_duration_sigma);
      attacks.push_back(make_common(victim.address, victim.asn, start,
                                    duration, /*paired=*/false));
      previous_end = attacks.back().start + attacks.back().duration;
      ++planned_common;
    }
  }

  std::sort(attacks.begin(), attacks.end(),
            [](const PlannedAttack& a, const PlannedAttack& b) {
              return a.start < b.start;
            });
  return attacks;
}

}  // namespace quicsand::telescope
