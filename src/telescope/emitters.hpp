// Packet emitters: time-ordered sources of telescope traffic.
//
// Each emitter models one traffic phenomenon and yields complete raw
// IPv4 datagrams with non-decreasing timestamps. The generator merges
// emitters through a priority queue, so a month of telescope traffic is
// produced in one streaming pass with O(active flights) memory.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "net/headers.hpp"
#include "net/packet.hpp"
#include "net/record_batch.hpp"
#include "quic/packets.hpp"
#include "quic/stateless_reset.hpp"
#include "scanner/zmap.hpp"
#include "telescope/ground_truth.hpp"
#include "telescope/scenario.hpp"
#include "util/rng.hpp"

namespace quicsand::telescope {

class PacketEmitter {
 public:
  virtual ~PacketEmitter() = default;

  /// Write the next packet in time order into `out` (timestamp plus raw
  /// bytes, reusing the buffer's capacity — zero heap traffic once warm).
  /// Returns false when the emitter is drained.
  virtual bool produce(net::PacketBuffer& out) = 0;

  /// Legacy per-record adapter over produce(): copies the staged packet
  /// into a fresh RawPacket. Kept for the differential oracle and
  /// low-rate callers; both paths share one implementation so they
  /// cannot drift.
  std::optional<net::RawPacket> next();

 private:
  net::PacketBuffer adapter_buffer_;
};

/// Internet-wide research scanner (TUM / RWTH model): a sequence of
/// full-pass probes of the telescope, one padded client Initial per
/// address, built from a patched template for throughput.
class ResearchScanEmitter : public PacketEmitter {
 public:
  ResearchScanEmitter(const ScenarioConfig& scenario,
                      const ResearchScannerConfig& scanner_config,
                      net::Ipv4Prefix source_prefix, std::uint64_t seed);

  bool produce(net::PacketBuffer& out) override;

  /// Probes this emitter will produce over the whole window.
  [[nodiscard]] std::uint64_t total_probes() const { return total_; }

 private:
  void start_next_pass();

  ScenarioConfig scenario_;
  ResearchScannerConfig config_;
  net::Ipv4Prefix source_prefix_;
  util::Rng rng_;
  std::vector<util::Timestamp> pass_starts_;
  std::size_t pass_index_ = 0;
  std::unique_ptr<scanner::ScanPass> current_pass_;
  std::vector<std::uint8_t> template_packet_;
  std::size_t dcid_offset_ = 0;  ///< offset of the 8-byte DCID
  std::uint64_t total_ = 0;
};

/// One botnet scanning session: a burst of client Initials from a single
/// eyeball source to random telescope targets on UDP/443.
class BotnetSessionEmitter : public PacketEmitter {
 public:
  BotnetSessionEmitter(const ScenarioConfig& scenario,
                       net::Ipv4Address source, util::Timestamp start,
                       std::uint64_t packet_count, std::uint64_t seed);

  bool produce(net::PacketBuffer& out) override;

 private:
  ScenarioConfig scenario_;
  net::Ipv4Address source_;
  util::Timestamp time_;
  std::uint64_t remaining_;
  util::Rng rng_;
  quic::BuildScratch scratch_;
  util::ByteWriter datagram_;
};

/// Per-implementation handshake flight behaviour (retransmission and
/// probe probabilities, expected datagrams per spoofed connection).
struct FlightProfile {
  double retx1 = 0;  ///< probability of a first PTO retransmission
  double retx2 = 0;  ///< probability of a second, given the first
  double pings = 0;  ///< probability of the keep-alive PING pair
  double reset = 0;  ///< probability of a trailing stateless reset
  double mean_datagrams = 0;
};

/// Flight profile of the server implementation behind `version`.
FlightProfile flight_profile(std::uint32_t version);

/// Backscatter of one QUIC flood: the victim's handshake flights toward
/// spoofed clients that happen to fall inside the telescope.
class QuicBackscatterEmitter : public PacketEmitter {
 public:
  QuicBackscatterEmitter(const ScenarioConfig& scenario,
                         const PlannedAttack& attack, std::uint64_t seed);

  bool produce(net::PacketBuffer& out) override;

 private:
  struct Scheduled {
    util::Timestamp time;
    std::vector<std::uint8_t> datagram;
    bool operator>(const Scheduled& other) const {
      return time > other.time;
    }
  };

  void schedule_connection(util::Timestamp start);
  void refill();
  /// Pop a recycled datagram buffer (or an empty one) from the pool.
  std::vector<std::uint8_t> take_spare();

  ScenarioConfig scenario_;
  PlannedAttack attack_;
  util::Rng rng_;
  std::vector<net::Ipv4Address> spoofed_clients_;
  /// The victim's long-lived stateless-reset key (RFC 9000 §10.3).
  std::unique_ptr<quic::StatelessResetter> resetter_;
  FlightProfile profile_;
  double connection_rate_ = 0;  ///< base connections per second
  double burst_rate_ = 0;       ///< rate during the one-minute peak
  util::Timestamp burst_start_{};
  util::Timestamp next_connection_;
  util::Timestamp attack_end_;
  /// Hard per-attack datagram budget (tail-risk backstop).
  std::int64_t budget_ = 60000;
  std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>>
      pending_;
  quic::BuildScratch scratch_;
  util::ByteWriter payload_builder_;  ///< staged QUIC datagram
  util::ByteWriter udp_builder_;      ///< staged IP/UDP wrapper
  /// Recycled datagram buffers: produce() swaps the consumer's buffer in
  /// here and hands the scheduled datagram out without copying.
  std::vector<std::vector<std::uint8_t>> spare_;
};

/// Backscatter of one TCP or ICMP flood (SYN-ACK retransmission bursts,
/// or ICMP echo replies).
class CommonBackscatterEmitter : public PacketEmitter {
 public:
  CommonBackscatterEmitter(const ScenarioConfig& scenario,
                           const PlannedAttack& attack, std::uint64_t seed);

  bool produce(net::PacketBuffer& out) override;

 private:
  struct Scheduled {
    util::Timestamp time;
    net::Ipv4Address client;
    std::uint16_t client_port;
    std::uint32_t seq;
    bool operator>(const Scheduled& other) const {
      return time > other.time;
    }
  };

  ScenarioConfig scenario_;
  PlannedAttack attack_;
  util::Rng rng_;
  std::uint16_t service_port_;
  double connection_rate_;
  util::Timestamp next_connection_;
  util::Timestamp attack_end_;
  /// Hard per-attack datagram budget (tail-risk backstop).
  std::int64_t budget_ = 40000;
  std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>>
      pending_;
  util::ByteWriter original_;  ///< staged quoted datagram for ICMP errors
};

/// Low-volume misconfiguration backscatter: a content host dribbling a
/// few QUIC packets at one telescope address (Appendix B's excluded
/// response sessions).
class MisconfigEmitter : public PacketEmitter {
 public:
  MisconfigEmitter(const ScenarioConfig& scenario, net::Ipv4Address source,
                   std::uint32_t version, util::Timestamp start,
                   std::uint64_t packet_count, std::uint64_t seed);

  bool produce(net::PacketBuffer& out) override;

 private:
  ScenarioConfig scenario_;
  net::Ipv4Address source_;
  std::uint32_t version_;
  net::Ipv4Address target_;
  std::uint16_t target_port_;
  quic::HandshakeContext ctx_;
  util::Timestamp time_;
  util::Duration gap_;
  std::uint64_t remaining_;
  util::Rng rng_;
  quic::BuildScratch scratch_;
  util::ByteWriter payload_;
};

}  // namespace quicsand::telescope
