#include "telescope/scenario.hpp"

#include <stdexcept>

#include "asdb/registry.hpp"

namespace quicsand::telescope {

ScenarioConfig ScenarioConfig::april2021(int days, std::uint64_t seed) {
  if (days < 1) throw std::invalid_argument("april2021: days < 1");
  ScenarioConfig config;
  config.days = days;
  config.seed = seed;
  // The two university scanners: 92M QUIC packets/month at 98.5% research
  // share means ~10.8 full-IPv4 passes/month combined (8.4M telescope
  // packets each), ~5.4 per scanner.
  config.tum.asn = asdb::AsRegistry::kTumScanner;
  config.tum.passes_per_day = 5.4 / 30.0;
  config.tum.version = 0xff00001d;  // draft-29
  config.rwth.asn = asdb::AsRegistry::kRwthScanner;
  config.rwth.passes_per_day = 5.4 / 30.0;
  config.rwth.version = 0x00000001;  // v1
  return config;
}

}  // namespace quicsand::telescope
