#include "telescope/generator.hpp"

#include <cmath>
#include <stdexcept>

#include "telescope/attack_schedule.hpp"

namespace quicsand::telescope {

namespace {

/// Diurnal rate modulation with peaks at 6:00 and 18:00 UTC (Figure 3):
/// a raised pair of Gaussian bumps over a flat base.
double diurnal_factor(double hour_of_day, double amplitude) {
  auto bump = [&](double peak) {
    double d = std::fabs(hour_of_day - peak);
    d = std::min(d, 24.0 - d);
    return std::exp(-d * d / (2.0 * 2.2 * 2.2));
  };
  return 1.0 + amplitude * (bump(6.0) + bump(18.0) - 0.5);
}

/// Draw a session start time whose density follows the diurnal profile
/// (acceptance-rejection over the window).
util::Timestamp draw_diurnal_time(const ScenarioConfig& config,
                                  util::Rng& rng) {
  const auto window =
      static_cast<std::uint64_t>((config.end() - config.start).count());
  const double max_factor = 1.0 + config.botnet.diurnal_amplitude;
  for (;;) {
    const auto t =
        config.start +
        util::Duration{static_cast<std::int64_t>(rng.uniform(window))};
    const double hour =
        static_cast<double>(util::seconds_of_day(t)) / 3600.0;
    const double f = diurnal_factor(hour, config.botnet.diurnal_amplitude);
    if (rng.uniform01() * max_factor <= f) return t;
  }
}

}  // namespace

TelescopeGenerator::TelescopeGenerator(const ScenarioConfig& config,
                                       const asdb::AsRegistry& registry,
                                       const scanner::Deployment& deployment)
    : config_(config) {
  util::Rng rng(util::mix64(config.seed, 0x93e7a70));

  // Research scanners: deterministic full-IPv4 pass schedules.
  for (const auto* scanner_config : {&config.tum, &config.rwth}) {
    const auto* info = registry.find(scanner_config->asn);
    if (info == nullptr) continue;
    const auto prefix = registry.prefixes_of(scanner_config->asn).front();
    auto emitter = std::make_unique<ResearchScanEmitter>(
        config, *scanner_config, prefix, rng.next());
    truth_.research_probe_count += emitter->total_probes();
    for (std::uint64_t host = 0; host < 8; ++host) {
      research_hosts_.push_back(prefix.at(0x20 + host));
    }
    add_emitter(std::move(emitter));
  }

  // Botnet scanning sessions from eyeball networks, diurnally shaped.
  {
    util::Rng bot_rng = rng.fork(0xb07);
    const auto session_count = bot_rng.poisson(
        config.botnet.sessions_per_day * config.days);
    const auto countries = asdb::eyeball_country_weights();
    std::vector<double> weights;
    weights.reserve(countries.size());
    for (const auto& c : countries) weights.push_back(c.weight);

    for (std::uint64_t i = 0; i < session_count; ++i) {
      // Pick a country by weight, then an eyeball AS within it.
      std::vector<asdb::Asn> candidates;
      std::string country;
      for (int attempt = 0; attempt < 16 && candidates.empty(); ++attempt) {
        country = countries[bot_rng.weighted_index(weights)].code;
        candidates = registry.by_type_and_country(asdb::NetworkType::kEyeball,
                                                  country);
      }
      if (candidates.empty()) continue;
      const auto asn = candidates[bot_rng.uniform(candidates.size())];
      BotnetSource source;
      source.address = registry.random_address_in(asn, bot_rng);
      source.asn = asn;
      source.country = country;
      if (bot_rng.bernoulli(config.botnet.tagged_malicious_share)) {
        source.tagged_malicious = true;
        const double roll = bot_rng.uniform01();
        source.tag = roll < 0.5 ? threat::tags::kMirai
                     : roll < 0.75 ? threat::tags::kEternalblue
                                   : threat::tags::kBruteforcer;
      }
      const auto start = draw_diurnal_time(config, bot_rng);
      const auto packets = std::max<std::uint64_t>(
          1, bot_rng.poisson(config.botnet.packets_per_session));
      truth_.botnet_packet_count += packets;
      truth_.botnet_sources.push_back(source);
      add_emitter(std::make_unique<BotnetSessionEmitter>(
          config, source.address, start, packets, bot_rng.next()));
    }
  }

  // DoS attacks (QUIC backscatter + TCP/ICMP backscatter).
  {
    util::Rng attack_rng = rng.fork(0xa77);
    truth_.attacks = plan_attacks(config, registry, deployment, attack_rng);
    for (const auto& attack : truth_.attacks) {
      if (attack.protocol == AttackProtocol::kQuic) {
        add_emitter(std::make_unique<QuicBackscatterEmitter>(
            config, attack, attack_rng.next()));
      } else {
        add_emitter(std::make_unique<CommonBackscatterEmitter>(
            config, attack, attack_rng.next()));
      }
    }
  }

  // Misconfiguration noise from content hosts.
  {
    util::Rng noise_rng = rng.fork(0x30153);
    const auto session_count = noise_rng.poisson(
        config.misconfig.sessions_per_day * config.days);
    const auto content = registry.by_type(asdb::NetworkType::kContent);
    const auto window =
        static_cast<std::uint64_t>((config.end() - config.start).count());
    for (std::uint64_t i = 0; i < session_count && !content.empty(); ++i) {
      const auto asn = content[noise_rng.uniform(content.size())];
      const auto source = registry.random_address_in(asn, noise_rng);
      const auto start =
          config.start +
          util::Duration{static_cast<std::int64_t>(noise_rng.uniform(window))};
      const auto packets = std::max<std::uint64_t>(
          2, noise_rng.poisson(config.misconfig.packets_per_session));
      truth_.misconfig_packet_count += packets;
      const double roll = noise_rng.uniform01();
      const std::uint32_t version = roll < 0.55   ? 1u
                                    : roll < 0.85 ? 0xff00001du
                                                  : 0x51303530u;  // Q050
      add_emitter(std::make_unique<MisconfigEmitter>(
          config, source, version, start, packets, noise_rng.next()));
    }
  }
}

void TelescopeGenerator::add_emitter(std::unique_ptr<PacketEmitter> emitter) {
  emitters_.push_back(std::move(emitter));
  slots_.emplace_back();
  pull_from(emitters_.size() - 1);
}

void TelescopeGenerator::pull_from(std::size_t emitter_index) {
  auto& slot = slots_[emitter_index];
  if (emitters_[emitter_index]->produce(slot) &&
      slot.timestamp < config_.end()) {
    heap_push(MergeEntry{slot.timestamp, emitter_index});
  }
}

void TelescopeGenerator::heap_push(MergeEntry entry) {
  std::size_t i = heap_.size();
  heap_.push_back(entry);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (heap_[parent].time <= entry.time) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void TelescopeGenerator::heap_sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const MergeEntry entry = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_[child + 1].time < heap_[child].time) {
      ++child;
    }
    if (entry.time <= heap_[child].time) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = entry;
}

void TelescopeGenerator::advance_root() {
  const std::size_t emitter_index = heap_.front().emitter_index;
  auto& slot = slots_[emitter_index];
  if (emitters_[emitter_index]->produce(slot) &&
      slot.timestamp < config_.end()) {
    heap_.front().time = slot.timestamp;
    heap_sift_down(0);
  } else {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) heap_sift_down(0);
  }
}

std::size_t TelescopeGenerator::next_batch(net::RecordBatch& batch) {
  batch.clear();
  while (!heap_.empty()) {
    const auto& slot = slots_[heap_.front().emitter_index];
    if (!batch.try_append(slot.timestamp, slot.bytes())) {
      if (batch.empty()) {
        throw std::invalid_argument(
            "next_batch: packet larger than the batch arena");
      }
      break;
    }
    advance_root();
    ++truth_.total_packet_count;
  }
  return batch.size();
}

std::uint64_t TelescopeGenerator::generate(
    const std::function<void(const net::RawPacket&)>& sink) {
  net::RecordBatch batch;
  net::RawPacket packet;
  std::uint64_t count = 0;
  while (next_batch(batch) > 0) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto view = batch.view(i);
      packet.timestamp = view.timestamp;
      packet.data.assign(view.data.begin(), view.data.end());
      sink(packet);
      ++count;
    }
  }
  return count;
}

threat::IntelDb TelescopeGenerator::make_intel_db() const {
  threat::IntelDb db;
  for (const auto host : research_hosts_) {
    db.add(host, threat::Category::kBenign, {threat::tags::kResearch});
  }
  for (const auto& source : truth_.botnet_sources) {
    if (source.tagged_malicious) {
      db.add(source.address, threat::Category::kMalicious, {source.tag});
    }
  }
  return db;
}

}  // namespace quicsand::telescope
