// Attack planner: turns the scenario's attack mix into a concrete list of
// PlannedAttack records with victims, times, durations, intensities and
// multi-vector relations (concurrent / sequential / isolated).
//
// The planner is separated from packet emission so tests can validate the
// schedule's statistics (victim mix, relation shares, overlap and gap
// distributions) directly, and so the analysis pipeline can be scored
// against exact ground truth.
#pragma once

#include <vector>

#include "asdb/registry.hpp"
#include "scanner/deployment.hpp"
#include "telescope/ground_truth.hpp"
#include "telescope/scenario.hpp"
#include "util/rng.hpp"

namespace quicsand::telescope {

/// Plan every QUIC flood, its paired TCP/ICMP attacks, and the background
/// TCP/ICMP attack population. Returned attacks are sorted by start time.
std::vector<PlannedAttack> plan_attacks(const ScenarioConfig& config,
                                        const asdb::AsRegistry& registry,
                                        const scanner::Deployment& deployment,
                                        util::Rng& rng);

}  // namespace quicsand::telescope
