#include "telescope/ground_truth_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/parse.hpp"

namespace quicsand::telescope {

namespace {

/// Locate the raw value token for `key` in one NDJSON line: the text
/// between the colon and the next top-level ',' or '}'. Good enough for
/// the writer's own output, where values are numbers, booleans, or
/// quoted strings without embedded commas/braces.
std::optional<std::string_view> raw_value(std::string_view line,
                                          std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto at = line.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  auto begin = at + needle.size();
  while (begin < line.size() && line[begin] == ' ') ++begin;
  auto end = begin;
  if (end < line.size() && line[end] == '"') {
    end = line.find('"', end + 1);
    if (end == std::string_view::npos) return std::nullopt;
    return line.substr(begin + 1, end - begin - 1);  // unquoted
  }
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  while (end > begin && line[end - 1] == ' ') --end;
  if (end == begin) return std::nullopt;
  return line.substr(begin, end - begin);
}

std::optional<std::uint64_t> u64_value(std::string_view line,
                                       std::string_view key) {
  const auto raw = raw_value(line, key);
  if (!raw) return std::nullopt;
  return util::parse_u64(*raw);
}

std::optional<std::int64_t> i64_value(std::string_view line,
                                      std::string_view key) {
  const auto raw = raw_value(line, key);
  if (!raw) return std::nullopt;
  return util::parse_i64(*raw);
}

std::optional<double> f64_value(std::string_view line, std::string_view key) {
  const auto raw = raw_value(line, key);
  if (!raw) return std::nullopt;
  return util::parse_f64(*raw);
}

}  // namespace

const char* planned_relation_name(PlannedRelation relation) {
  switch (relation) {
    case PlannedRelation::kConcurrent: return "concurrent";
    case PlannedRelation::kSequential: return "sequential";
    case PlannedRelation::kIsolated: return "isolated";
    case PlannedRelation::kNotApplicable: return "n/a";
  }
  return "n/a";
}

std::optional<PlannedRelation> parse_planned_relation(std::string_view name) {
  if (name == "concurrent") return PlannedRelation::kConcurrent;
  if (name == "sequential") return PlannedRelation::kSequential;
  if (name == "isolated") return PlannedRelation::kIsolated;
  if (name == "n/a") return PlannedRelation::kNotApplicable;
  return std::nullopt;
}

std::optional<AttackProtocol> parse_attack_protocol(std::string_view name) {
  // The names attack_protocol_name() emits.
  if (name == "QUIC") return AttackProtocol::kQuic;
  if (name == "TCP") return AttackProtocol::kTcp;
  if (name == "ICMP") return AttackProtocol::kIcmp;
  return std::nullopt;
}

void write_ground_truth_ndjson(std::ostream& out, const GroundTruth& truth) {
  out << "{\"type\": \"summary\""
      << ", \"attacks\": " << truth.attacks.size()
      << ", \"research_probe_count\": " << truth.research_probe_count
      << ", \"botnet_packet_count\": " << truth.botnet_packet_count
      << ", \"backscatter_packet_count\": " << truth.backscatter_packet_count
      << ", \"common_packet_count\": " << truth.common_packet_count
      << ", \"misconfig_packet_count\": " << truth.misconfig_packet_count
      << ", \"total_packet_count\": " << truth.total_packet_count << "}\n";
  for (const auto& attack : truth.attacks) {
    std::ostringstream line;
    line.precision(17);
    line << "{\"type\": \"attack\""
         << ", \"protocol\": \"" << attack_protocol_name(attack.protocol)
         << "\", \"victim\": \"" << attack.victim.to_string()
         << "\", \"victim_asn\": " << attack.victim_asn
         << ", \"known_server\": "
         << (attack.victim_is_known_server ? "true" : "false")
         << ", \"quic_version\": " << attack.quic_version
         << ", \"start_us\": " << attack.start.count()
         << ", \"duration_us\": " << attack.duration.count()
         << ", \"peak_pps\": " << attack.peak_pps
         << ", \"relation\": \"" << planned_relation_name(attack.relation)
         << "\"}";
    out << line.str() << "\n";
  }
}

bool write_ground_truth_ndjson_file(const std::string& path,
                                    const GroundTruth& truth) {
  std::ofstream out(path);
  if (!out) return false;
  write_ground_truth_ndjson(out, truth);
  out.flush();
  return static_cast<bool>(out);
}

std::optional<GroundTruth> read_ground_truth_ndjson(std::istream& in,
                                                    std::string* error) {
  auto fail = [error](std::size_t line_no, const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return std::nullopt;
  };
  GroundTruth truth;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto type = raw_value(line, "type");
    if (!type) return fail(line_no, "missing \"type\"");
    if (*type == "summary") {
      auto read_count = [&](std::string_view key, std::uint64_t* out_value) {
        if (const auto v = u64_value(line, key)) *out_value = *v;
      };
      read_count("research_probe_count", &truth.research_probe_count);
      read_count("botnet_packet_count", &truth.botnet_packet_count);
      read_count("backscatter_packet_count",
                 &truth.backscatter_packet_count);
      read_count("common_packet_count", &truth.common_packet_count);
      read_count("misconfig_packet_count", &truth.misconfig_packet_count);
      read_count("total_packet_count", &truth.total_packet_count);
      continue;
    }
    if (*type != "attack") {
      return fail(line_no, "unknown type '" + std::string(*type) + "'");
    }
    PlannedAttack attack;
    const auto protocol = raw_value(line, "protocol");
    if (!protocol) return fail(line_no, "missing \"protocol\"");
    if (const auto p = parse_attack_protocol(*protocol)) {
      attack.protocol = *p;
    } else {
      return fail(line_no, "bad protocol '" + std::string(*protocol) + "'");
    }
    const auto victim = raw_value(line, "victim");
    if (!victim) return fail(line_no, "missing \"victim\"");
    if (const auto address = net::Ipv4Address::parse(*victim)) {
      attack.victim = *address;
    } else {
      return fail(line_no, "bad victim '" + std::string(*victim) + "'");
    }
    const auto start = i64_value(line, "start_us");
    const auto duration = i64_value(line, "duration_us");
    if (!start || !duration) {
      return fail(line_no, "missing start_us/duration_us");
    }
    attack.start = util::Timestamp{*start};
    attack.duration = util::Duration{*duration};
    if (const auto asn = u64_value(line, "victim_asn")) {
      attack.victim_asn = static_cast<asdb::Asn>(*asn);
    }
    if (const auto version = u64_value(line, "quic_version")) {
      attack.quic_version = static_cast<std::uint32_t>(*version);
    }
    if (const auto pps = f64_value(line, "peak_pps")) {
      attack.peak_pps = *pps;
    }
    if (const auto known = raw_value(line, "known_server")) {
      attack.victim_is_known_server = (*known == "true");
    }
    if (const auto relation = raw_value(line, "relation")) {
      if (const auto r = parse_planned_relation(*relation)) {
        attack.relation = *r;
      } else {
        return fail(line_no,
                    "bad relation '" + std::string(*relation) + "'");
      }
    }
    truth.attacks.push_back(attack);
  }
  return truth;
}

std::optional<GroundTruth> read_ground_truth_ndjson_file(
    const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  return read_ground_truth_ndjson(in, error);
}

}  // namespace quicsand::telescope
