// Ground-truth scoring of the DoS detector.
//
// The synthetic telescope knows every attack it injected, so unlike the
// paper we can score the pipeline's detections directly: a detected
// attack matches a planned one when the victims are equal and the time
// ranges overlap (with slack for sessionization rounding at the edges).
// The integration and differential-oracle tests assert floors on the
// resulting precision/recall.
#pragma once

#include <functional>
#include <span>

#include "core/dos.hpp"
#include "telescope/ground_truth.hpp"

namespace quicsand::telescope {

struct MatchStats {
  std::uint64_t detected = 0;         ///< detections scored
  std::uint64_t matched_detected = 0; ///< detections matching a planned attack
  std::uint64_t planned = 0;          ///< planned attacks scored
  std::uint64_t matched_planned = 0;  ///< planned attacks found at least once

  [[nodiscard]] double precision() const {
    return detected == 0 ? 1.0
                         : static_cast<double>(matched_detected) /
                               static_cast<double>(detected);
  }
  [[nodiscard]] double recall() const {
    return planned == 0 ? 1.0
                        : static_cast<double>(matched_planned) /
                              static_cast<double>(planned);
  }
};

/// Score `detected` against `planned` (as returned by
/// GroundTruth::quic_attacks()). `slack` extends every planned window on
/// both ends before testing for overlap.
MatchStats score_detections(std::span<const core::DetectedAttack> detected,
                            std::span<const PlannedAttack* const> planned,
                            util::Duration slack = util::kMinute);

/// True when the planned attack sits comfortably above the detection
/// thresholds (3x the duration floor, double the rate floor): recall
/// floors apply to these, since borderline floods legitimately fall
/// below Moore et al.'s cutoffs.
[[nodiscard]] bool comfortably_detectable(const PlannedAttack& attack,
                                          const core::DosThresholds& thresholds);

}  // namespace quicsand::telescope
