// NDJSON serialization of the ground-truth ledger.
//
// `flood_lab --send` writes the schedule it replayed so that anything on
// the receiving side (the live e2e test, an operator diffing alerts
// against truth) can score detections without sharing memory with the
// sender. One summary line, then one line per planned attack:
//
//   {"type": "summary", "attacks": 61, "total_packet_count": 3511245, ...}
//   {"type": "attack", "protocol": "QUIC", "victim": "44.12.3.7",
//    "victim_asn": 2119, "known_server": true, "quic_version": 1,
//    "start_us": 1617235526000000, "duration_us": 363000000,
//    "peak_pps": 2.18, "relation": "concurrent"}
//
// The reader is schema-specific — it round-trips exactly the lines this
// writer emits (plus blank lines and `#` comments), not arbitrary JSON.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "telescope/ground_truth.hpp"

namespace quicsand::telescope {

/// "concurrent" | "sequential" | "isolated" | "n/a".
const char* planned_relation_name(PlannedRelation relation);
std::optional<PlannedRelation> parse_planned_relation(std::string_view name);
std::optional<AttackProtocol> parse_attack_protocol(std::string_view name);

/// Write the summary line and one line per attack. Botnet sources are
/// not serialized (the live harness scores attacks, not sources).
void write_ground_truth_ndjson(std::ostream& out, const GroundTruth& truth);
bool write_ground_truth_ndjson_file(const std::string& path,
                                    const GroundTruth& truth);

/// Parse what write_ground_truth_ndjson() produced. Returns nullopt on
/// a malformed line (with a one-line reason in *error when non-null);
/// unknown keys are ignored, so the schema can grow.
std::optional<GroundTruth> read_ground_truth_ndjson(std::istream& in,
                                                    std::string* error);
std::optional<GroundTruth> read_ground_truth_ndjson_file(
    const std::string& path, std::string* error);

}  // namespace quicsand::telescope
