// Telescope traffic generator: merges all scenario emitters into one
// time-ordered stream of raw IPv4 datagrams — the synthetic equivalent
// of the UCSD telescope capture the paper analyzes.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "asdb/registry.hpp"
#include "net/packet.hpp"
#include "net/record_batch.hpp"
#include "scanner/deployment.hpp"
#include "telescope/emitters.hpp"
#include "telescope/ground_truth.hpp"
#include "telescope/scenario.hpp"
#include "threat/intel.hpp"

namespace quicsand::telescope {

class TelescopeGenerator {
 public:
  /// Plans the whole scenario (attack schedule, botnet sessions,
  /// research passes) up front; packets are then produced lazily.
  TelescopeGenerator(const ScenarioConfig& config,
                     const asdb::AsRegistry& registry,
                     const scanner::Deployment& deployment);

  /// Batched production: clear `batch`, then append packets in global
  /// time order until the batch is full (capacity or arena) or the
  /// window is done. Returns the number appended; zero means done.
  /// Zero heap traffic in steady state — packets are staged in
  /// per-emitter slots and copied once into the batch arena.
  std::size_t next_batch(net::RecordBatch& batch);

  /// Drain the stream into `sink`; returns the packet count. Production
  /// runs through next_batch() underneath — one staging RawPacket is
  /// reused across calls, so the per-packet cost is a copy into the
  /// sink's view, not an allocation.
  std::uint64_t generate(
      const std::function<void(const net::RawPacket&)>& sink);

  [[nodiscard]] const GroundTruth& ground_truth() const { return truth_; }

  /// GreyNoise-style intel reflecting this scenario's actors: research
  /// scanner hosts tagged benign, a share of botnet sources tagged
  /// malicious (Mirai / Eternalblue / bruteforcers).
  [[nodiscard]] threat::IntelDb make_intel_db() const;

 private:
  /// The merge heap holds only (time, emitter) pairs; the packet bytes
  /// stay in the emitter's slot until the consumer copies or adopts
  /// them. Ordering looks at time alone.
  struct MergeEntry {
    util::Timestamp time;
    std::size_t emitter_index;
  };

  void add_emitter(std::unique_ptr<PacketEmitter> emitter);
  /// Produce emitter i's next packet into its slot and push a heap
  /// entry (construction-time priming).
  void pull_from(std::size_t emitter_index);
  /// After the root's packet is consumed: refill that emitter's slot and
  /// restore the heap with a single sift-down (replace-top). During an
  /// attack burst the refilled packet is usually still the minimum, so
  /// the sift exits after one comparison — the merge then costs O(1)
  /// per packet instead of a full pop+push.
  void advance_root();
  void heap_push(MergeEntry entry);
  void heap_sift_down(std::size_t i);

  ScenarioConfig config_;
  GroundTruth truth_;
  std::vector<std::unique_ptr<PacketEmitter>> emitters_;
  /// One staging buffer per emitter: slots_[i] holds emitter i's next
  /// packet while its (time, i) entry sits in the merge heap.
  std::vector<net::PacketBuffer> slots_;
  /// Binary min-heap on MergeEntry::time.
  std::vector<MergeEntry> heap_;
  std::vector<net::Ipv4Address> research_hosts_;
};

}  // namespace quicsand::telescope
