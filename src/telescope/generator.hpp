// Telescope traffic generator: merges all scenario emitters into one
// time-ordered stream of raw IPv4 datagrams — the synthetic equivalent
// of the UCSD telescope capture the paper analyzes.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "asdb/registry.hpp"
#include "net/packet.hpp"
#include "scanner/deployment.hpp"
#include "telescope/emitters.hpp"
#include "telescope/ground_truth.hpp"
#include "telescope/scenario.hpp"
#include "threat/intel.hpp"

namespace quicsand::telescope {

class TelescopeGenerator {
 public:
  /// Plans the whole scenario (attack schedule, botnet sessions,
  /// research passes) up front; packets are then produced lazily.
  TelescopeGenerator(const ScenarioConfig& config,
                     const asdb::AsRegistry& registry,
                     const scanner::Deployment& deployment);

  /// Next packet in global time order; nullopt when the window is done.
  std::optional<net::RawPacket> next();

  /// Drain the stream into `sink`; returns the packet count.
  std::uint64_t generate(
      const std::function<void(const net::RawPacket&)>& sink);

  [[nodiscard]] const GroundTruth& ground_truth() const { return truth_; }

  /// GreyNoise-style intel reflecting this scenario's actors: research
  /// scanner hosts tagged benign, a share of botnet sources tagged
  /// malicious (Mirai / Eternalblue / bruteforcers).
  [[nodiscard]] threat::IntelDb make_intel_db() const;

 private:
  struct QueueEntry {
    net::RawPacket packet;
    std::size_t emitter_index;
    bool operator>(const QueueEntry& other) const {
      return packet.timestamp > other.packet.timestamp;
    }
  };

  void add_emitter(std::unique_ptr<PacketEmitter> emitter);
  void pull_from(std::size_t emitter_index);

  ScenarioConfig config_;
  GroundTruth truth_;
  std::vector<std::unique_ptr<PacketEmitter>> emitters_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue_;
  std::vector<net::Ipv4Address> research_hosts_;
};

}  // namespace quicsand::telescope
