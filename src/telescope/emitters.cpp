#include "telescope/emitters.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "net/headers.hpp"
#include "quic/gquic.hpp"
#include "quic/header.hpp"
#include "quic/version.hpp"

namespace quicsand::telescope {

std::optional<net::RawPacket> PacketEmitter::next() {
  if (!produce(adapter_buffer_)) return std::nullopt;
  const auto bytes = adapter_buffer_.bytes();
  return net::RawPacket{adapter_buffer_.timestamp,
                        {bytes.begin(), bytes.end()}};
}

namespace {

constexpr std::uint16_t kQuicPort = 443;

std::uint16_t ephemeral_port(util::Rng& rng) {
  return static_cast<std::uint16_t>(32768 + rng.uniform(28232));
}

net::Ipv4Header ip_header(net::Ipv4Address src, net::Ipv4Address dst,
                          util::Rng& rng) {
  net::Ipv4Header ip;
  ip.src = src;
  ip.dst = dst;
  ip.ttl = static_cast<std::uint8_t>(48 + rng.uniform(200));
  ip.identification = static_cast<std::uint16_t>(rng.next());
  return ip;
}

net::Ipv4Address random_in_prefix(const net::Ipv4Prefix& prefix,
                                  util::Rng& rng) {
  return prefix.at(rng.uniform(prefix.size()));
}

}  // namespace

// ---------------------------------------------------------------------------
// ResearchScanEmitter

ResearchScanEmitter::ResearchScanEmitter(
    const ScenarioConfig& scenario, const ResearchScannerConfig& config,
    net::Ipv4Prefix source_prefix, std::uint64_t seed)
    : scenario_(scenario),
      config_(config),
      source_prefix_(source_prefix),
      rng_(util::mix64(seed, config.asn)) {
  // Deterministic pass schedule: evenly spaced with a per-scanner phase,
  // so short windows still contain the expected number of passes.
  const double interval_days = 1.0 / config.passes_per_day;
  const double phase = 0.17 + 0.31 * rng_.uniform01();
  for (double day = phase * interval_days; day < scenario.days;
       day += interval_days) {
    pass_starts_.push_back(
        scenario.start + util::Duration{static_cast<std::int64_t>(
                             day * static_cast<double>(util::kDay.count()))});
  }
  total_ = pass_starts_.size() * scenario.telescope.size();

  // Template probe: a padded client Initial from a fixed scanner host.
  // Per-probe we patch destination address, source host bits and DCID,
  // then fix the IP checksum; the UDP checksum is left as 0 ("none"),
  // which RFC 768 permits and scanners commonly do.
  auto ctx = quic::HandshakeContext::random(config.version, rng_);
  const auto payload = quic::build_client_initial(
      ctx, "", rng_, quic::CryptoFidelity::kFast);
  const auto src = source_prefix.at(0x20);
  template_packet_ = net::build_udp(ip_header(src, scenario.telescope.base(),
                                              rng_),
                                    34434, kQuicPort, payload);
  template_packet_[26] = 0;  // UDP checksum: none
  template_packet_[27] = 0;
  // DCID starts after IP(20) + UDP(8) + flags(1) + version(4) + len(1).
  dcid_offset_ = 34;
  start_next_pass();
}

void ResearchScanEmitter::start_next_pass() {
  if (pass_index_ >= pass_starts_.size()) {
    current_pass_.reset();
    return;
  }
  scanner::ScanPassConfig pass;
  pass.telescope = scenario_.telescope;
  pass.start = pass_starts_[pass_index_];
  pass.duration = config_.pass_duration;
  pass.coverage = 1.0;
  pass.seed = util::mix64(rng_.next(), pass_index_);
  current_pass_ = std::make_unique<scanner::ScanPass>(pass);
  ++pass_index_;
}

bool ResearchScanEmitter::produce(net::PacketBuffer& out) {
  while (current_pass_) {
    const auto probe = current_pass_->next();
    if (!probe) {
      start_next_pass();
      continue;
    }
    out.timestamp = probe->time;
    out.writer.clear();
    out.writer.write_bytes(template_packet_);
    const auto data = out.writer.mutable_view();
    // Destination address.
    const std::uint32_t dst = probe->target.value();
    data[16] = static_cast<std::uint8_t>(dst >> 24);
    data[17] = static_cast<std::uint8_t>(dst >> 16);
    data[18] = static_cast<std::uint8_t>(dst >> 8);
    data[19] = static_cast<std::uint8_t>(dst);
    // Scanner host: a handful of machines inside the source prefix.
    data[15] = static_cast<std::uint8_t>(0x20 + rng_.uniform(8));
    // Fresh IP id and DCID per probe.
    const std::uint64_t r = rng_.next();
    data[4] = static_cast<std::uint8_t>(r);
    data[5] = static_cast<std::uint8_t>(r >> 8);
    for (int i = 0; i < 8; ++i) {
      data[dcid_offset_ + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(r >> (8 * i));
    }
    // Recompute the IP header checksum.
    data[10] = 0;
    data[11] = 0;
    const std::uint16_t csum =
        net::internet_checksum({data.data(), 20});
    data[10] = static_cast<std::uint8_t>(csum >> 8);
    data[11] = static_cast<std::uint8_t>(csum);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// BotnetSessionEmitter

BotnetSessionEmitter::BotnetSessionEmitter(const ScenarioConfig& scenario,
                                           net::Ipv4Address source,
                                           util::Timestamp start,
                                           std::uint64_t packet_count,
                                           std::uint64_t seed)
    : scenario_(scenario),
      source_(source),
      time_(start),
      remaining_(packet_count),
      rng_(util::mix64(seed, source.value())) {}

bool BotnetSessionEmitter::produce(net::PacketBuffer& out) {
  if (remaining_ == 0) return false;
  --remaining_;
  auto ctx = quic::HandshakeContext::random(
      rng_.bernoulli(0.8) ? 1u : 0xff00001du, rng_);
  datagram_.clear();
  quic::build_client_initial_into(datagram_, ctx, "", rng_,
                                  scenario_.fidelity, scratch_);
  const auto target = random_in_prefix(scenario_.telescope, rng_);
  // Draw order (port before IP header) matches the historical
  // right-to-left evaluation of build_udp's arguments.
  const std::uint16_t source_port = ephemeral_port(rng_);
  const auto header = ip_header(source_, target, rng_);
  out.timestamp = time_;
  out.writer.clear();
  net::build_udp_into(out.writer, header, source_port, kQuicPort,
                      datagram_.view());
  const double mean_gap_s = util::to_seconds(scenario_.botnet.intra_gap_mean);
  time_ += util::from_seconds(rng_.exponential(1.0 / mean_gap_s));
  return true;
}

// ---------------------------------------------------------------------------
// QuicBackscatterEmitter

QuicBackscatterEmitter::QuicBackscatterEmitter(const ScenarioConfig& scenario,
                                               const PlannedAttack& attack,
                                               std::uint64_t seed)
    : scenario_(scenario),
      attack_(attack),
      rng_(util::mix64(seed,
                       attack.victim.value() ^
                           static_cast<std::uint64_t>(attack.start.count()))) {
  // Spoofed client addresses that fall inside the telescope: attackers
  // randomize ports over a modest IP set (§5.2 / Figure 9).
  const std::size_t ip_count = 1 + rng_.uniform(18);
  spoofed_clients_.reserve(ip_count);
  for (std::size_t i = 0; i < ip_count; ++i) {
    spoofed_clients_.push_back(random_in_prefix(scenario.telescope, rng_));
  }
  // Convert the target packet rate into a connection arrival rate via
  // the expected flight size (implementation dependent, see
  // flight_profile). The attack runs at a base rate with one burst
  // minute at the full peak, so the detector's 1-minute maximum matches
  // the planned peak without inflating the total volume.
  resetter_ = std::make_unique<quic::StatelessResetter>(
      util::Rng(util::mix64(0x5e7, attack.victim.value())).bytes(32));
  profile_ = flight_profile(attack.quic_version);
  connection_rate_ =
      std::max(0.005, attack.peak_pps * 0.42 / profile_.mean_datagrams);
  burst_rate_ = std::max(connection_rate_,
                         attack.peak_pps / profile_.mean_datagrams);
  attack_end_ = attack.start + attack.duration;
  const auto burst_slack = attack.duration > util::kMinute
                               ? attack.duration - util::kMinute
                               : util::Duration{0};
  burst_start_ = attack.start +
                 util::Duration{static_cast<std::int64_t>(rng_.uniform(
                     static_cast<std::uint64_t>(burst_slack.count()) + 1))};
  next_connection_ = attack.start;
  refill();
}

FlightProfile flight_profile(std::uint32_t version) {
  // mvfst (Facebook) retransmits its handshake flight aggressively and
  // keeps probing, so one spoofed connection elicits more datagrams than
  // a draft-29/v1 (Google-style) stack. This is what makes Google show
  // MORE SCIDs per attack DESPITE fewer packets (Figure 9): the same
  // packet rate covers more connections.
  if (quic::version_family(version) == quic::VersionFamily::kIetf &&
      (version & 0xffffff00) == 0xfaceb000) {
    return {0.95, 0.75, 0.95, 0.85,
            2 + (0.95 + 0.95 * 0.75) + 2 * 0.95 + 0.85};
  }
  return {0.45, 0.25, 0.40, 0.65,
          2 + (0.45 + 0.45 * 0.25) + 2 * 0.40 + 0.65};
}

void QuicBackscatterEmitter::schedule_connection(util::Timestamp start) {
  // The victim answers one spoofed Initial: [Initial+Handshake],
  // [Handshake], PTO retransmits, keep-alive PINGs, and sometimes a
  // stateless reset when the attacker reuses a 5-tuple the server
  // already dropped. The mixture reproduces the §6 message composition
  // (~31% Initial / ~57% Handshake / rest other).
  quic::HandshakeContext ctx =
      quic::HandshakeContext::random(attack_.quic_version, rng_);
  const auto client = spoofed_clients_[rng_.uniform(spoofed_clients_.size())];
  const std::uint16_t client_port = ephemeral_port(rng_);

  // Wraps the QUIC datagram staged in payload_builder_ into an IP/UDP
  // packet and enqueues it. The datagram is always built first and the
  // IP header draws happen only inside the budget check, preserving the
  // historical right-to-left argument evaluation draw order.
  auto push = [&](util::Duration offset) {
    if (budget_ <= 0) return;
    --budget_;
    const auto header = ip_header(attack_.victim, client, rng_);
    udp_builder_.reset(take_spare());
    net::build_udp_into(udp_builder_, header, kQuicPort, client_port,
                        payload_builder_.view());
    pending_.push(Scheduled{start + offset, udp_builder_.take()});
  };

  // A small share of attack tools probe with versions the server does
  // not speak; the victim then answers with a single Version Negotiation
  // packet (§2's worst-case handshake) instead of a handshake flight.
  if (rng_.bernoulli(0.02)) {
    const std::uint32_t versions[] = {attack_.quic_version,
                                      0x00000001u};
    payload_builder_.clear();
    quic::build_version_negotiation_into(payload_builder_, ctx.client_scid,
                                         ctx.server_scid, versions, rng_);
    push(util::Duration{});
    return;
  }

  const auto fidelity = scenario_.fidelity;
  payload_builder_.clear();
  quic::build_server_initial_handshake_into(payload_builder_, ctx, rng_,
                                            fidelity, scratch_);
  push(util::Duration{});
  {
    const std::size_t crypto_bytes = 700 + rng_.uniform(500);
    payload_builder_.clear();
    quic::build_server_handshake_into(payload_builder_, ctx, rng_, fidelity,
                                      scratch_, crypto_bytes);
    push(50 * util::kMillisecond);
  }
  if (rng_.bernoulli(profile_.retx1)) {
    payload_builder_.clear();
    quic::build_server_initial_handshake_into(payload_builder_, ctx, rng_,
                                              fidelity, scratch_);
    push(350 * util::kMillisecond);
    if (rng_.bernoulli(profile_.retx2)) {
      payload_builder_.clear();
      quic::build_server_initial_handshake_into(payload_builder_, ctx, rng_,
                                                fidelity, scratch_);
      push(1100 * util::kMillisecond);
    }
  }
  if (rng_.bernoulli(profile_.pings)) {
    payload_builder_.clear();
    quic::build_server_handshake_ping_into(payload_builder_, ctx, rng_,
                                           fidelity, scratch_);
    push(2 * util::kSecond);
    payload_builder_.clear();
    quic::build_server_handshake_ping_into(payload_builder_, ctx, rng_,
                                           fidelity, scratch_);
    push(4 * util::kSecond);
  }
  if (rng_.bernoulli(profile_.reset)) {
    // Proper RFC 9000 reset: trailing token bound to the client's CID
    // under the victim's static key, randomized length. Size draw, reset
    // body, then delay draw — the historical evaluation order.
    const std::size_t reset_size = 40 + rng_.uniform(40);
    payload_builder_.clear();
    resetter_->build_into(payload_builder_, ctx.client_scid, rng_,
                          reset_size);
    push(5 * util::kSecond +
         util::Duration{static_cast<std::int64_t>(rng_.uniform(
             static_cast<std::uint64_t>((2 * util::kSecond).count())))});
  }
}

std::vector<std::uint8_t> QuicBackscatterEmitter::take_spare() {
  if (spare_.empty()) return {};
  auto buf = std::move(spare_.back());
  spare_.pop_back();
  return buf;
}

void QuicBackscatterEmitter::refill() {
  while (budget_ > 0 && next_connection_ < attack_end_ &&
         (pending_.empty() || next_connection_ <= pending_.top().time)) {
    schedule_connection(next_connection_);
    const bool in_burst = next_connection_ >= burst_start_ &&
                          next_connection_ < burst_start_ + util::kMinute;
    next_connection_ += util::from_seconds(
        rng_.exponential(in_burst ? burst_rate_ : connection_rate_));
  }
}

bool QuicBackscatterEmitter::produce(net::PacketBuffer& out) {
  refill();
  if (pending_.empty()) return false;
  // The queue orders on time alone, so moving the payload out of the top
  // element before pop() cannot perturb the heap. The consumer's old
  // buffer goes back into the spare pool, making the hand-off copy-free.
  auto& top = const_cast<Scheduled&>(pending_.top());
  out.timestamp = top.time;
  spare_.push_back(out.writer.take());
  out.writer.adopt(std::move(top.datagram));
  pending_.pop();
  return true;
}

// ---------------------------------------------------------------------------
// CommonBackscatterEmitter

CommonBackscatterEmitter::CommonBackscatterEmitter(
    const ScenarioConfig& scenario, const PlannedAttack& attack,
    std::uint64_t seed)
    : scenario_(scenario),
      attack_(attack),
      rng_(util::mix64(seed,
                       attack.victim.value() ^
                           static_cast<std::uint64_t>(attack.start.count()) ^
                           0xc0)) {
  service_port_ = rng_.bernoulli(0.6) ? 80 : 443;
  // TCP victims answer a spoofed SYN with ~4 SYN-ACK (re)transmissions;
  // ICMP backscatter is one reply per probe.
  const double mean_flight =
      attack.protocol == AttackProtocol::kTcp ? 4.0 : 1.0;
  connection_rate_ = std::max(0.01, attack.peak_pps * 0.8 / mean_flight);
  next_connection_ = attack.start;
  attack_end_ = attack.start + attack.duration;
}

bool CommonBackscatterEmitter::produce(net::PacketBuffer& out) {
  while (budget_ > 0 && next_connection_ < attack_end_ &&
         (pending_.empty() || next_connection_ <= pending_.top().time)) {
    const auto client = random_in_prefix(scenario_.telescope, rng_);
    const std::uint16_t client_port = ephemeral_port(rng_);
    const auto seq = static_cast<std::uint32_t>(rng_.next());
    if (attack_.protocol == AttackProtocol::kTcp) {
      // SYN-ACK retransmissions with exponential backoff (1s, 2s, 4s).
      util::Duration offset{};
      const int retx = 3 + static_cast<int>(rng_.uniform(3));
      for (int i = 0; i < retx && budget_ > 0; ++i) {
        --budget_;
        pending_.push(
            Scheduled{next_connection_ + offset, client, client_port, seq});
        offset = offset * 2 + util::kSecond;
      }
    } else {
      --budget_;
      pending_.push(
          Scheduled{next_connection_, client, client_port, seq});
    }
    next_connection_ +=
        util::from_seconds(rng_.exponential(connection_rate_));
  }
  if (pending_.empty()) return false;
  const auto scheduled = pending_.top();
  pending_.pop();
  out.timestamp = scheduled.time;
  out.writer.clear();

  if (attack_.protocol == AttackProtocol::kTcp) {
    net::TcpInfo tcp;
    tcp.src_port = service_port_;
    tcp.dst_port = scheduled.client_port;
    tcp.seq = scheduled.seq;
    tcp.ack = scheduled.seq + 1;  // echoes the spoofed SYN's ISN + 1
    tcp.flags = net::TcpFlags::kSyn | net::TcpFlags::kAck;
    const auto header = ip_header(attack_.victim, scheduled.client, rng_);
    net::build_tcp_into(out.writer, header, tcp);
    return true;
  }
  // ICMP backscatter: mostly echo replies to spoofed pings; some
  // port-unreachables that quote the spoofed probe (RFC 792), exactly
  // like real UDP-flood backscatter. Draw order inside each branch
  // (payload before headers) matches the historical right-to-left
  // evaluation of the builder arguments.
  if (rng_.bernoulli(0.3)) {
    std::array<std::uint8_t, 8> probe_payload;
    rng_.fill(probe_payload);
    const auto inner = ip_header(scheduled.client, attack_.victim, rng_);
    original_.clear();
    net::build_udp_into(original_, inner, scheduled.client_port, 443,
                        probe_payload);
    const auto header = ip_header(attack_.victim, scheduled.client, rng_);
    net::build_icmp_error_into(out.writer, header, 3, 3, original_.view());
    return true;
  }
  net::IcmpInfo icmp;
  icmp.type = 0;  // echo reply
  icmp.code = 0;
  std::array<std::uint8_t, 28> body;
  rng_.fill(body);
  icmp.payload = body;
  const auto header = ip_header(attack_.victim, scheduled.client, rng_);
  net::build_icmp_into(out.writer, header, icmp);
  return true;
}

// ---------------------------------------------------------------------------
// MisconfigEmitter

MisconfigEmitter::MisconfigEmitter(const ScenarioConfig& scenario,
                                   net::Ipv4Address source,
                                   std::uint32_t version,
                                   util::Timestamp start,
                                   std::uint64_t packet_count,
                                   std::uint64_t seed)
    : scenario_(scenario),
      source_(source),
      version_(version),
      time_(start),
      remaining_(packet_count),
      rng_(util::mix64(seed, source.value() ^ 0x315c)) {
  target_ = random_in_prefix(scenario.telescope, rng_);
  target_port_ = ephemeral_port(rng_);
  ctx_ = quic::HandshakeContext::random(version_, rng_);
  gap_ = packet_count > 1
             ? scenario.misconfig.session_duration /
                   static_cast<std::int64_t>(packet_count)
             : util::kSecond;
}

bool MisconfigEmitter::produce(net::PacketBuffer& out) {
  if (remaining_ == 0) return false;
  --remaining_;
  // A confused endpoint retransmitting handshake-space data and pings at
  // a stale address: low volume, short-lived (Appendix B). A share of
  // these endpoints still run legacy gQUIC (Q0xx public headers). Draws
  // are sequenced to match the historical right-to-left evaluation of
  // the builder arguments.
  payload_.clear();
  if (quic::version_family(version_) == quic::VersionFamily::kGquic) {
    const std::size_t payload_size = 100 + rng_.uniform(300);
    const std::uint64_t packet_number = 1 + rng_.uniform(500);
    std::array<std::uint8_t, 8> cid_bytes;
    rng_.fill(cid_bytes);
    quic::build_gquic_server_response_into(payload_,
                                           quic::ConnectionId(cid_bytes),
                                           packet_number, payload_size, rng_);
  } else if (rng_.bernoulli(0.5)) {
    quic::build_server_handshake_ping_into(payload_, ctx_, rng_,
                                           scenario_.fidelity, scratch_);
  } else {
    const std::size_t crypto_bytes = 100 + rng_.uniform(200);
    quic::build_server_handshake_into(payload_, ctx_, rng_,
                                      scenario_.fidelity, scratch_,
                                      crypto_bytes);
  }
  const auto header = ip_header(source_, target_, rng_);
  out.timestamp = time_;
  out.writer.clear();
  net::build_udp_into(out.writer, header, kQuicPort, target_port_,
                      payload_.view());
  time_ += gap_ + util::Duration{static_cast<std::int64_t>(rng_.uniform(
                      static_cast<std::uint64_t>(gap_.count()) + 1))};
  return true;
}

}  // namespace quicsand::telescope
