// Scenario configuration for the synthetic telescope.
//
// Every number here is taken from, or calibrated against, the paper's
// April 2021 measurement (see DESIGN.md §4): research scanners dominating
// with full-IPv4 passes, diurnal botnet scanning from eyeball networks,
// QUIC flood backscatter from content providers, TCP/ICMP flood
// backscatter, and low-volume misconfiguration noise.
//
// `april2021(days)` reproduces the paper's mixture for a window of the
// given length; counts scale linearly with the window, per-event rates
// and durations do not, so the detector-facing statistics (Figures 4-13)
// are invariant to the chosen window length.
#pragma once

#include <cstdint>

#include "net/ip.hpp"
#include "quic/packets.hpp"
#include "util/time.hpp"

namespace quicsand::telescope {

struct ResearchScannerConfig {
  std::uint32_t asn = 0;
  double passes_per_day = 0.18;  ///< full-IPv4 scan passes
  util::Duration pass_duration = 10 * util::kHour;
  std::uint32_t version = 0xff00001d;  ///< probes sent as draft-29
};

struct BotnetScanConfig {
  double sessions_per_day = 900;      ///< request sessions hitting us
  double packets_per_session = 11;    ///< geometric mean
  util::Duration intra_gap_mean = 35 * util::kSecond;
  double diurnal_amplitude = 0.6;     ///< peaks at 6:00/18:00 UTC
  double tagged_malicious_share = 0.023;  ///< GreyNoise-style tags (§5.2)
};

struct AttackMixConfig {
  // QUIC floods (backscatter events). The paper's 2905 detected attacks
  // are ~97/day; the plan rate is higher because a realistic share of
  // planned floods stays below the Moore et al. detection thresholds.
  double quic_attacks_per_day = 140;
  double victims_mean_attacks = 7.4;  ///< 2905 attacks / 394 victims
  double google_share = 0.58;
  double facebook_share = 0.25;
  double cloudflare_share = 0.08;
  double other_content_share = 0.07;
  double non_server_share = 0.02;     ///< 98% hit known QUIC servers
  double quic_duration_median_s = 255;
  double quic_duration_sigma = 1.1;
  double quic_peak_pps_median = 1.0;  ///< telescope-observed max pps
  double quic_peak_pps_sigma = 0.9;

  // Multi-vector structure (Figure 8): per-QUIC-attack shares.
  double concurrent_share = 0.51;
  double sequential_share = 0.40;     ///< remainder (0.09) is isolated
  double full_overlap_share = 0.75;   ///< Figure 12: 100% overlap pairs
  double sequential_gap_median_h = 8.0;  ///< Figure 13
  double sequential_gap_sigma = 1.6;

  // Background TCP/ICMP floods (Jonker-style common attacks).
  double common_attacks_per_day = 9400;  ///< 282k per month
  double common_duration_median_s = 1499;
  double common_duration_sigma = 1.5;
  double common_peak_pps_median = 1.0;
  double common_peak_pps_sigma = 1.0;
  double icmp_share = 0.2;            ///< rest is TCP backscatter
};

struct MisconfigConfig {
  /// Low-volume response sessions (Appendix B: median 11 packets, 7 s).
  double sessions_per_day = 770;
  double packets_per_session = 11;
  util::Duration session_duration = 7 * util::kSecond;
};

struct ScenarioConfig {
  net::Ipv4Prefix telescope{net::Ipv4Address::from_octets(44, 0, 0, 0), 9};
  util::Timestamp start = util::kApril2021Start;
  int days = 30;
  std::uint64_t seed = 2021;
  quic::CryptoFidelity fidelity = quic::CryptoFidelity::kFast;

  ResearchScannerConfig tum;
  ResearchScannerConfig rwth;
  BotnetScanConfig botnet;
  AttackMixConfig attacks;
  MisconfigConfig misconfig;

  [[nodiscard]] util::Timestamp end() const {
    return start + days * util::kDay;
  }

  /// The paper's April 2021 mixture over a `days`-long window.
  static ScenarioConfig april2021(int days = 30, std::uint64_t seed = 2021);
};

}  // namespace quicsand::telescope
