// Ground-truth ledger for a generated scenario.
//
// The real paper had to infer attacks from backscatter alone; our
// generator knows exactly what it injected. The ledger is what the
// integration tests validate the analysis pipeline against (recall /
// precision of the DoS detector, multi-vector shares, victim mix).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asdb/types.hpp"
#include "net/ip.hpp"
#include "util/time.hpp"

namespace quicsand::telescope {

enum class AttackProtocol : std::uint8_t { kQuic, kTcp, kIcmp };

const char* attack_protocol_name(AttackProtocol protocol);

/// Relationship of a QUIC attack to TCP/ICMP attacks on the same victim,
/// as planned by the scheduler (Figure 8 semantics).
enum class PlannedRelation : std::uint8_t {
  kConcurrent,
  kSequential,
  kIsolated,
  kNotApplicable,  ///< TCP/ICMP attacks themselves
};

struct PlannedAttack {
  AttackProtocol protocol = AttackProtocol::kQuic;
  net::Ipv4Address victim;
  asdb::Asn victim_asn = 0;
  bool victim_is_known_server = false;
  std::uint32_t quic_version = 0;  ///< QUIC attacks only
  util::Timestamp start{};
  util::Duration duration{};
  double peak_pps = 0;  ///< telescope-observed 1-minute peak target
  PlannedRelation relation = PlannedRelation::kNotApplicable;
};

struct BotnetSource {
  net::Ipv4Address address;
  asdb::Asn asn = 0;
  std::string country;
  bool tagged_malicious = false;
  std::string tag;  ///< threat-intel tag when tagged
};

struct GroundTruth {
  std::vector<PlannedAttack> attacks;
  std::vector<BotnetSource> botnet_sources;
  std::uint64_t research_probe_count = 0;   ///< research scanner packets
  std::uint64_t botnet_packet_count = 0;
  std::uint64_t backscatter_packet_count = 0;  ///< QUIC responses
  std::uint64_t common_packet_count = 0;       ///< TCP/ICMP responses
  std::uint64_t misconfig_packet_count = 0;
  std::uint64_t total_packet_count = 0;

  [[nodiscard]] std::vector<const PlannedAttack*> quic_attacks() const {
    std::vector<const PlannedAttack*> out;
    for (const auto& a : attacks) {
      if (a.protocol == AttackProtocol::kQuic) out.push_back(&a);
    }
    return out;
  }
};

}  // namespace quicsand::telescope
