#include "net/ip.hpp"

#include <array>
#include <charconv>
#include <cstdio>

namespace quicsand::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::array<std::uint32_t, 4> octets{};
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    auto [next, ec] = std::from_chars(p, end, octets[static_cast<std::size_t>(i)]);
    if (ec != std::errc{} || octets[static_cast<std::size_t>(i)] > 255) {
      return std::nullopt;
    }
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return from_octets(static_cast<std::uint8_t>(octets[0]),
                     static_cast<std::uint8_t>(octets[1]),
                     static_cast<std::uint8_t>(octets[2]),
                     static_cast<std::uint8_t>(octets[3]));
}

std::string Ipv4Address::to_string() const {
  std::array<char, 16> buf{};
  std::snprintf(buf.data(), buf.size(), "%u.%u.%u.%u", octet(0), octet(1),
                octet(2), octet(3));
  return buf.data();
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  int length = 0;
  const auto len_text = text.substr(slash + 1);
  auto [next, ec] = std::from_chars(len_text.data(),
                                    len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || next != len_text.data() + len_text.size() ||
      length < 0 || length > 32) {
    return std::nullopt;
  }
  return Ipv4Prefix(*addr, length);
}

std::string Ipv4Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace quicsand::net
