// Reusable structure-of-arrays batch of raw packets for the batched
// generation/ingest hot path.
//
// A RecordBatch owns a fixed-capacity byte arena plus parallel columns of
// timestamps and (offset, length) extents.  Producers append packets with
// try_append(); consumers read them back as non-owning views.  clear()
// resets the batch without releasing memory, so after the first fill a
// batch performs zero heap allocations in steady state — the property the
// zero-alloc test in tests/net_record_batch_test.cpp pins.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/bytes.hpp"
#include "util/time.hpp"

namespace quicsand::net {

/// A reusable single-packet staging buffer: the slot type the telescope
/// generator keeps per emitter.  Emitters write the next packet in place
/// via the writer (capacity is retained across packets), so steady-state
/// production touches no heap.
struct PacketBuffer {
  util::Timestamp timestamp{};
  util::ByteWriter writer;

  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return writer.view();
  }
};

/// Non-owning view of one packet stored in a RecordBatch.
struct PacketView {
  util::Timestamp timestamp{};
  std::span<const std::uint8_t> data;
};

class RecordBatch {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;
  static constexpr std::size_t kDefaultArenaBytes = 1u << 20;  // 1 MiB

  explicit RecordBatch(std::size_t capacity = kDefaultCapacity,
                       std::size_t arena_bytes = kDefaultArenaBytes)
      : capacity_(capacity), arena_(arena_bytes) {
    timestamps_.reserve(capacity);
    offsets_.reserve(capacity);
    lengths_.reserve(capacity);
  }

  RecordBatch(RecordBatch&&) = default;
  RecordBatch& operator=(RecordBatch&&) = default;
  RecordBatch(const RecordBatch&) = delete;
  RecordBatch& operator=(const RecordBatch&) = delete;

  [[nodiscard]] std::size_t size() const { return timestamps_.size(); }
  [[nodiscard]] bool empty() const { return timestamps_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t arena_bytes() const { return arena_.size(); }
  [[nodiscard]] std::size_t arena_used() const { return arena_used_; }

  /// True if one more packet of `bytes` length fits (both a free record
  /// slot and arena room).
  [[nodiscard]] bool has_room(std::size_t bytes) const {
    return timestamps_.size() < capacity_ &&
           arena_used_ + bytes <= arena_.size();
  }

  /// Append one packet by copying its bytes into the arena. Returns false
  /// (batch unchanged) when full; the caller then drains the batch and
  /// retries after clear().
  bool try_append(util::Timestamp timestamp,
                  std::span<const std::uint8_t> data) {
    if (!has_room(data.size())) return false;
    // The bytes were framed by ByteWriter on the producer side already.
    // lint:allow(raw-memcpy): bulk copy into the preallocated arena
    std::memcpy(arena_.data() + arena_used_, data.data(), data.size());
    timestamps_.push_back(timestamp);
    offsets_.push_back(static_cast<std::uint32_t>(arena_used_));
    lengths_.push_back(static_cast<std::uint32_t>(data.size()));
    arena_used_ += data.size();
    return true;
  }

  [[nodiscard]] PacketView view(std::size_t i) const {
    return PacketView{timestamps_[i],
                      std::span<const std::uint8_t>(
                          arena_.data() + offsets_[i], lengths_[i])};
  }

  [[nodiscard]] const std::vector<util::Timestamp>& timestamps() const {
    return timestamps_;
  }

  /// Drop records past the first `n`, keeping arena storage (the arena
  /// high-water mark stays where the last surviving record ends). Lets a
  /// batch-fed sender honor an exact packet budget mid-batch.
  void truncate(std::size_t n) {
    if (n >= timestamps_.size()) return;
    arena_used_ = n == 0 ? 0 : offsets_[n - 1] + lengths_[n - 1];
    timestamps_.resize(n);
    offsets_.resize(n);
    lengths_.resize(n);
  }

  /// Reset to empty, keeping record capacity and arena storage.
  void clear() {
    timestamps_.clear();
    offsets_.clear();
    lengths_.clear();
    arena_used_ = 0;
  }

  friend void swap(RecordBatch& a, RecordBatch& b) noexcept {
    using std::swap;
    swap(a.capacity_, b.capacity_);
    swap(a.arena_, b.arena_);
    swap(a.arena_used_, b.arena_used_);
    swap(a.timestamps_, b.timestamps_);
    swap(a.offsets_, b.offsets_);
    swap(a.lengths_, b.lengths_);
  }

 private:
  std::size_t capacity_;
  std::vector<std::uint8_t> arena_;
  std::size_t arena_used_ = 0;
  std::vector<util::Timestamp> timestamps_;
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> lengths_;
};

}  // namespace quicsand::net
