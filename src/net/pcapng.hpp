// pcapng (pcap-ng) reader.
//
// Modern capture tooling writes pcapng rather than classic pcap; a
// telescope operator pointing analyze_pcap at their own data should not
// need to convert first. This reader handles the common block types:
// Section Header (endianness via the byte-order magic), Interface
// Description (link type + if_tsresol option) and Enhanced/Simple Packet
// Blocks. Writing stays classic pcap (net/pcap.hpp) — universally
// readable.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/pcap.hpp"
#include "obs/hooks.hpp"

namespace quicsand::net {

constexpr std::uint32_t kPcapngSectionHeader = 0x0a0d0d0a;
constexpr std::uint32_t kPcapngInterfaceDescription = 0x00000001;
constexpr std::uint32_t kPcapngEnhancedPacket = 0x00000006;
constexpr std::uint32_t kPcapngSimplePacket = 0x00000003;
constexpr std::uint32_t kPcapngByteOrderMagic = 0x1a2b3c4d;

class PcapngReader {
 public:
  /// Opens `path` and reads up to the first Section Header Block.
  /// Throws std::runtime_error on open failure or bad magic.
  explicit PcapngReader(const std::string& path);

  /// Reads from a caller-owned stream (in-memory captures, fuzz
  /// drivers). The stream must outlive the reader. Throws
  /// std::runtime_error when no Section Header Block is found.
  explicit PcapngReader(std::istream& in);

  /// Next packet as a raw IPv4 datagram (Ethernet stripped for
  /// LINKTYPE_ETHERNET interfaces). Non-packet blocks are skipped.
  /// Returns nullopt at end of file; throws on truncated blocks.
  std::optional<RawPacket> next();

  /// Invoke `fn` for each remaining packet; returns the count.
  std::uint64_t for_each(const std::function<void(const RawPacket&)>& fn);

  /// Number of interfaces described so far.
  [[nodiscard]] std::size_t interface_count() const {
    return interfaces_.size();
  }

  /// Attach a metrics registry: counts packets/bytes read, skipped
  /// non-packet blocks and unsupported-linktype drops under "pcapng.*".
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  struct Interface {
    std::uint16_t linktype = 0;
    /// Timestamp units per second (default pcapng resolution: 1e6).
    std::uint64_t ticks_per_second = 1000000;
  };

  bool read_block(std::uint32_t& type, std::vector<std::uint8_t>& body);
  void parse_section_header(const std::vector<std::uint8_t>& body);
  void parse_interface_description(const std::vector<std::uint8_t>& body);
  std::optional<RawPacket> parse_enhanced_packet(
      const std::vector<std::uint8_t>& body) const;

  [[nodiscard]] std::uint16_t get_u16(const std::uint8_t* p) const;
  [[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) const;

  void read_first_section_header();

  std::ifstream file_;
  std::istream* in_ = nullptr;  ///< &file_ or the caller's stream
  bool big_endian_ = false;
  std::vector<Interface> interfaces_;
  obs::Counter* packets_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Counter* skipped_blocks_counter_ = nullptr;
  obs::Counter* linktype_drops_counter_ = nullptr;
  obs::LatencyHistogram* read_us_ = nullptr;  ///< per-packet read latency
};

}  // namespace quicsand::net
