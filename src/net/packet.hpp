// A captured packet: a timestamp plus the raw IPv4 datagram bytes.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/time.hpp"

namespace quicsand::net {

struct RawPacket {
  util::Timestamp timestamp{};
  std::vector<std::uint8_t> data;

  RawPacket() = default;
  RawPacket(util::Timestamp ts, std::vector<std::uint8_t> bytes)
      : timestamp(ts), data(std::move(bytes)) {}
};

}  // namespace quicsand::net
