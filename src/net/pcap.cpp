#include "net/pcap.hpp"

#include <array>
#include <bit>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace quicsand::net {

namespace {

// pcap headers are written in the byte order of the capturing host; we
// emit little-endian (the near-universal convention) and byte-swap on read
// when the magic indicates the opposite order.
void put_u32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u16le(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

std::uint32_t get_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint32_t bswap32(std::uint32_t v) {
  return ((v & 0xff) << 24) | ((v & 0xff00) << 8) | ((v >> 8) & 0xff00) |
         (v >> 24);
}

std::uint64_t steady_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Records scope duration into `hist` on destruction; reads the clock
/// only when a histogram is attached, so unobserved readers stay free.
class ScopedLatency {
 public:
  explicit ScopedLatency(obs::LatencyHistogram* hist)
      : hist_(hist), start_(hist != nullptr ? steady_us() : 0) {}
  ~ScopedLatency() {
    if (hist_ != nullptr) hist_->record(steady_us() - start_);
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  obs::LatencyHistogram* hist_;
  std::uint64_t start_;
};

}  // namespace

PcapWriter::PcapWriter(const std::string& path, std::uint32_t linktype)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) throw std::runtime_error("PcapWriter: cannot open " + path);
  std::array<std::uint8_t, 24> header{};
  put_u32le(&header[0], kPcapMagicMicros);
  put_u16le(&header[4], 2);   // version major
  put_u16le(&header[6], 4);   // version minor
  put_u32le(&header[8], 0);   // thiszone
  put_u32le(&header[12], 0);  // sigfigs
  put_u32le(&header[16], 65535);  // snaplen
  put_u32le(&header[20], linktype);
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
}

void PcapWriter::write(const RawPacket& packet) {
  std::array<std::uint8_t, 16> rec{};
  const std::int64_t ts_us = packet.timestamp.count();
  const auto secs = static_cast<std::uint32_t>(ts_us / util::kSecond.count());
  const auto micros = static_cast<std::uint32_t>(ts_us % util::kSecond.count());
  put_u32le(&rec[0], secs);
  put_u32le(&rec[4], micros);
  put_u32le(&rec[8], static_cast<std::uint32_t>(packet.data.size()));
  put_u32le(&rec[12], static_cast<std::uint32_t>(packet.data.size()));
  out_.write(reinterpret_cast<const char*>(rec.data()),
             static_cast<std::streamsize>(rec.size()));
  out_.write(reinterpret_cast<const char*>(packet.data.data()),
             static_cast<std::streamsize>(packet.data.size()));
  if (!out_) throw std::runtime_error("PcapWriter: write failed");
  ++count_;
}

PcapReader::PcapReader(const std::string& path)
    : file_(path, std::ios::binary), in_(&file_) {
  if (!file_) throw std::runtime_error("PcapReader: cannot open " + path);
  read_global_header();
}

PcapReader::PcapReader(std::istream& in) : in_(&in) { read_global_header(); }

void PcapReader::read_global_header() {
  std::array<std::uint8_t, 24> header{};
  in_->read(reinterpret_cast<char*>(header.data()),
            static_cast<std::streamsize>(header.size()));
  if (in_->gcount() != 24) throw std::runtime_error("PcapReader: short header");
  std::uint32_t magic = get_u32le(&header[0]);
  if (magic == bswap32(kPcapMagicMicros)) {
    swapped_ = true;
  } else if (magic == bswap32(kPcapMagicNanos)) {
    swapped_ = true;
    nanos_ = true;
  } else if (magic == kPcapMagicNanos) {
    nanos_ = true;
  } else if (magic != kPcapMagicMicros) {
    throw std::runtime_error("PcapReader: bad magic");
  }
  std::uint32_t linktype = get_u32le(&header[20]);
  linktype_ = swapped_ ? bswap32(linktype) : linktype;
  if (linktype_ != kLinktypeRaw && linktype_ != kLinktypeEthernet) {
    throw std::runtime_error("PcapReader: unsupported linktype " +
                             std::to_string(linktype_));
  }
}

void PcapReader::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    packets_counter_ = bytes_counter_ = truncated_counter_ =
        ethernet_counter_ = nullptr;
    read_us_ = nullptr;
    return;
  }
  packets_counter_ =
      &metrics->counter("pcap.packets_read", "records read from pcap files");
  bytes_counter_ =
      &metrics->counter("pcap.bytes_read", "captured payload bytes read");
  truncated_counter_ = &metrics->counter(
      "pcap.truncated", "records cut short by EOF or a bad caplen");
  ethernet_counter_ = &metrics->counter(
      "pcap.ethernet_stripped", "LINKTYPE_ETHERNET frames unwrapped");
  read_us_ = &metrics->latency("pcap.read_us",
                               "wall time to read one record");
}

std::optional<RawPacket> PcapReader::next() {
  const ScopedLatency latency(read_us_);
  std::array<std::uint8_t, 16> rec{};
  in_->read(reinterpret_cast<char*>(rec.data()),
           static_cast<std::streamsize>(rec.size()));
  if (in_->gcount() == 0) return std::nullopt;
  if (in_->gcount() != 16) {
    if (truncated_counter_ != nullptr) truncated_counter_->add();
    throw std::runtime_error("PcapReader: truncated record header");
  }
  auto fix = [&](std::uint32_t v) { return swapped_ ? bswap32(v) : v; };
  const std::uint32_t secs = fix(get_u32le(&rec[0]));
  const std::uint32_t frac = fix(get_u32le(&rec[4]));
  const std::uint32_t caplen = fix(get_u32le(&rec[8]));
  if (caplen > 1 << 20) {
    if (truncated_counter_ != nullptr) truncated_counter_->add();
    throw std::runtime_error("PcapReader: absurd caplen");
  }

  RawPacket packet;
  packet.timestamp =
      util::Timestamp{} + static_cast<std::int64_t>(secs) * util::kSecond +
      util::Duration{nanos_ ? frac / 1000 : frac};
  packet.data.resize(caplen);
  in_->read(reinterpret_cast<char*>(packet.data.data()),
           static_cast<std::streamsize>(caplen));
  if (in_->gcount() != static_cast<std::streamsize>(caplen)) {
    if (truncated_counter_ != nullptr) truncated_counter_->add();
    throw std::runtime_error("PcapReader: truncated record body");
  }
  if (linktype_ == kLinktypeEthernet) {
    if (packet.data.size() < 14) {
      if (truncated_counter_ != nullptr) truncated_counter_->add();
      throw std::runtime_error("PcapReader: short ethernet frame");
    }
    packet.data.erase(packet.data.begin(), packet.data.begin() + 14);
    if (ethernet_counter_ != nullptr) ethernet_counter_->add();
  }
  if (packets_counter_ != nullptr) {
    packets_counter_->add();
    bytes_counter_->add(packet.data.size());
  }
  return packet;
}

std::uint64_t PcapReader::for_each(
    const std::function<void(const RawPacket&)>& fn) {
  std::uint64_t n = 0;
  while (auto packet = next()) {
    fn(*packet);
    ++n;
  }
  return n;
}

}  // namespace quicsand::net
