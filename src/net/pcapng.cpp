#include "net/pcapng.hpp"

#include <chrono>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace quicsand::net {

namespace {

constexpr std::size_t kMaxBlockSize = 16u << 20;

std::uint64_t steady_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Records scope duration into `hist` on destruction; reads the clock
/// only when a histogram is attached, so unobserved readers stay free.
class ScopedLatency {
 public:
  explicit ScopedLatency(obs::LatencyHistogram* hist)
      : hist_(hist), start_(hist != nullptr ? steady_us() : 0) {}
  ~ScopedLatency() {
    if (hist_ != nullptr) hist_->record(steady_us() - start_);
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  obs::LatencyHistogram* hist_;
  std::uint64_t start_;
};

}  // namespace

PcapngReader::PcapngReader(const std::string& path)
    : file_(path, std::ios::binary), in_(&file_) {
  if (!file_) throw std::runtime_error("PcapngReader: cannot open " + path);
  read_first_section_header();
}

PcapngReader::PcapngReader(std::istream& in) : in_(&in) {
  read_first_section_header();
}

void PcapngReader::read_first_section_header() {
  std::uint32_t type = 0;
  std::vector<std::uint8_t> body;
  if (!read_block(type, body) || type != kPcapngSectionHeader) {
    throw std::runtime_error("PcapngReader: no section header block");
  }
  parse_section_header(body);
}

std::uint16_t PcapngReader::get_u16(const std::uint8_t* p) const {
  return big_endian_
             ? static_cast<std::uint16_t>((p[0] << 8) | p[1])
             : static_cast<std::uint16_t>((p[1] << 8) | p[0]);
}

std::uint32_t PcapngReader::get_u32(const std::uint8_t* p) const {
  if (big_endian_) {
    return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
           (std::uint32_t{p[2]} << 8) | p[3];
  }
  return (std::uint32_t{p[3]} << 24) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[1]} << 8) | p[0];
}

bool PcapngReader::read_block(std::uint32_t& type,
                              std::vector<std::uint8_t>& body) {
  std::uint8_t header[8];
  in_->read(reinterpret_cast<char*>(header), 8);
  if (in_->gcount() == 0) return false;
  if (in_->gcount() != 8) {
    throw std::runtime_error("PcapngReader: truncated block header");
  }
  // The SHB's own length field must be read with the right endianness,
  // which is only known from its body-order magic; peek it.
  const std::uint32_t raw_type = get_u32(header);
  std::uint32_t total_length = get_u32(header + 4);
  if (raw_type == kPcapngSectionHeader) {
    // Read the magic to fix endianness, then re-interpret the length.
    std::uint8_t magic[4];
    in_->read(reinterpret_cast<char*>(magic), 4);
    if (in_->gcount() != 4) {
      throw std::runtime_error("PcapngReader: truncated section header");
    }
    if (get_u32(magic) == kPcapngByteOrderMagic) {
      // endianness was already right
    } else {
      big_endian_ = !big_endian_;
      if (get_u32(magic) != kPcapngByteOrderMagic) {
        throw std::runtime_error("PcapngReader: bad byte-order magic");
      }
      total_length = get_u32(header + 4);
    }
    if (total_length < 12 + 4 || total_length % 4 != 0 ||
        total_length > kMaxBlockSize) {
      throw std::runtime_error("PcapngReader: bad section header length");
    }
    body.resize(total_length - 12);
    // lint:allow(raw-memcpy): fixed-width magic stamp, no framing here
    std::memcpy(body.data(), magic, 4);
    in_->read(reinterpret_cast<char*>(body.data() + 4),
             static_cast<std::streamsize>(body.size() - 4));
    if (in_->gcount() != static_cast<std::streamsize>(body.size() - 4)) {
      throw std::runtime_error("PcapngReader: truncated section header");
    }
    std::uint8_t trailer[4];
    in_->read(reinterpret_cast<char*>(trailer), 4);
    if (in_->gcount() != 4 || get_u32(trailer) != total_length) {
      throw std::runtime_error("PcapngReader: bad section header trailer");
    }
    type = raw_type;
    return true;
  }

  if (total_length < 12 || total_length % 4 != 0 ||
      total_length > kMaxBlockSize) {
    throw std::runtime_error("PcapngReader: bad block length");
  }
  body.resize(total_length - 12);
  in_->read(reinterpret_cast<char*>(body.data()),
           static_cast<std::streamsize>(body.size()));
  std::uint8_t trailer[4];
  in_->read(reinterpret_cast<char*>(trailer), 4);
  if (in_->gcount() != 4) {
    throw std::runtime_error("PcapngReader: truncated block");
  }
  if (get_u32(trailer) != total_length) {
    throw std::runtime_error("PcapngReader: block length mismatch");
  }
  type = raw_type;
  return true;
}

void PcapngReader::parse_section_header(
    const std::vector<std::uint8_t>& body) {
  if (body.size() < 4 || get_u32(body.data()) != kPcapngByteOrderMagic) {
    throw std::runtime_error("PcapngReader: bad byte-order magic");
  }
  interfaces_.clear();
}

void PcapngReader::parse_interface_description(
    const std::vector<std::uint8_t>& body) {
  if (body.size() < 8) {
    throw std::runtime_error("PcapngReader: short interface block");
  }
  Interface iface;
  iface.linktype = get_u16(body.data());
  // Walk options for if_tsresol (code 9).
  std::size_t offset = 8;
  while (offset + 4 <= body.size()) {
    const std::uint16_t code = get_u16(body.data() + offset);
    const std::uint16_t length = get_u16(body.data() + offset + 2);
    offset += 4;
    if (code == 0) break;  // opt_endofopt
    if (offset + length > body.size()) break;
    if (code == 9 && length >= 1) {
      const std::uint8_t tsresol = body[offset];
      const int exponent = tsresol & 0x7f;
      // Resolutions that overflow uint64 ticks-per-second (2^64, 10^20,
      // ...) cannot describe a real capture; reject instead of shifting
      // by >= 64 or wrapping the multiply.
      if ((tsresol & 0x80) ? exponent > 63 : exponent > 19) {
        throw std::runtime_error("PcapngReader: unsupported if_tsresol");
      }
      if (tsresol & 0x80) {
        iface.ticks_per_second = std::uint64_t{1} << exponent;
      } else {
        iface.ticks_per_second = 1;
        for (int i = 0; i < exponent; ++i) {
          iface.ticks_per_second *= 10;
        }
      }
    }
    offset += (length + 3u) & ~3u;  // options are 4-byte padded
  }
  interfaces_.push_back(iface);
}

std::optional<RawPacket> PcapngReader::parse_enhanced_packet(
    const std::vector<std::uint8_t>& body) const {
  if (body.size() < 20) {
    throw std::runtime_error("PcapngReader: short packet block");
  }
  const std::uint32_t interface_id = get_u32(body.data());
  const std::uint64_t ts =
      (std::uint64_t{get_u32(body.data() + 4)} << 32) |
      get_u32(body.data() + 8);
  const std::uint32_t caplen = get_u32(body.data() + 12);
  if (interface_id >= interfaces_.size()) {
    throw std::runtime_error("PcapngReader: packet for unknown interface");
  }
  // 64-bit sum: `20 + caplen` wraps in uint32 when caplen is near
  // UINT32_MAX and would pass the bound check.
  if (std::uint64_t{20} + caplen > body.size()) {
    throw std::runtime_error("PcapngReader: packet data truncated");
  }
  const auto& iface = interfaces_[interface_id];

  RawPacket packet;
  // Convert interface ticks to microseconds in 128-bit integer math: the
  // old double path hit UB casting out-of-range values (a fabricated ts
  // near 2^64 at 1-tick/s resolution overflows int64 microseconds).
  const auto micros = static_cast<unsigned __int128>(ts) * 1'000'000 /
                      iface.ticks_per_second;
  if (micros > static_cast<std::uint64_t>(
                   std::numeric_limits<util::Timestamp::rep>::max())) {
    throw std::runtime_error("PcapngReader: timestamp out of range");
  }
  packet.timestamp = util::Timestamp{static_cast<std::int64_t>(micros)};
  packet.data.assign(body.begin() + 20, body.begin() + 20 + caplen);
  if (iface.linktype == kLinktypeEthernet) {
    if (packet.data.size() < 14) {
      throw std::runtime_error("PcapngReader: short ethernet frame");
    }
    packet.data.erase(packet.data.begin(), packet.data.begin() + 14);
  } else if (iface.linktype != kLinktypeRaw) {
    if (linktype_drops_counter_ != nullptr) linktype_drops_counter_->add();
    return std::nullopt;  // unsupported link type: skip
  }
  if (packets_counter_ != nullptr) {
    packets_counter_->add();
    bytes_counter_->add(packet.data.size());
  }
  return packet;
}

void PcapngReader::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    packets_counter_ = bytes_counter_ = skipped_blocks_counter_ =
        linktype_drops_counter_ = nullptr;
    read_us_ = nullptr;
    return;
  }
  packets_counter_ = &metrics->counter("pcapng.packets_read",
                                       "packets read from pcapng files");
  bytes_counter_ =
      &metrics->counter("pcapng.bytes_read", "captured payload bytes read");
  skipped_blocks_counter_ = &metrics->counter(
      "pcapng.blocks_skipped", "non-packet blocks (stats, NRB, custom)");
  linktype_drops_counter_ = &metrics->counter(
      "pcapng.linktype_drops", "packets on unsupported link types");
  read_us_ = &metrics->latency(
      "pcapng.read_us",
      "wall time to read one packet, skipped blocks included");
}

std::optional<RawPacket> PcapngReader::next() {
  const ScopedLatency latency(read_us_);
  std::uint32_t type = 0;
  std::vector<std::uint8_t> body;
  while (read_block(type, body)) {
    switch (type) {
      case kPcapngSectionHeader:
        parse_section_header(body);
        break;
      case kPcapngInterfaceDescription:
        parse_interface_description(body);
        break;
      case kPcapngEnhancedPacket: {
        auto packet = parse_enhanced_packet(body);
        if (packet) return packet;
        break;
      }
      default:
        // statistics, name resolution, custom blocks: skip
        if (skipped_blocks_counter_ != nullptr) skipped_blocks_counter_->add();
        break;
    }
  }
  return std::nullopt;
}

std::uint64_t PcapngReader::for_each(
    const std::function<void(const RawPacket&)>& fn) {
  std::uint64_t count = 0;
  while (auto packet = next()) {
    fn(*packet);
    ++count;
  }
  return count;
}

}  // namespace quicsand::net
