// IPv4 addresses and prefixes.
//
// Addresses are a strong wrapper around the host-order 32-bit value so the
// rest of the code cannot confuse them with ports, ASNs or counters.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace quicsand::net {

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order)
      : value_(host_order) {}

  static constexpr Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                           std::uint8_t c, std::uint8_t d) {
    return Ipv4Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parse dotted-quad notation; nullopt on malformed input.
  static std::optional<Ipv4Address> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix, e.g. 44.0.0.0/9.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  constexpr Ipv4Prefix(Ipv4Address base, int length)
      : base_(Ipv4Address(length == 0 ? 0 : (base.value() & mask(length)))),
        length_(length) {}

  static std::optional<Ipv4Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr Ipv4Address base() const { return base_; }
  [[nodiscard]] constexpr int length() const { return length_; }

  [[nodiscard]] constexpr bool contains(Ipv4Address addr) const {
    if (length_ == 0) return true;
    return (addr.value() & mask(length_)) == base_.value();
  }

  /// Number of addresses covered by this prefix.
  [[nodiscard]] constexpr std::uint64_t size() const {
    return 1ULL << (32 - length_);
  }

  /// The i-th address inside the prefix (i < size()).
  [[nodiscard]] constexpr Ipv4Address at(std::uint64_t i) const {
    return Ipv4Address(base_.value() + static_cast<std::uint32_t>(i));
  }

  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Prefix&) const = default;

 private:
  static constexpr std::uint32_t mask(int length) {
    return length == 0 ? 0 : ~std::uint32_t{0} << (32 - length);
  }

  Ipv4Address base_{};
  int length_ = 0;
};

}  // namespace quicsand::net

template <>
struct std::hash<quicsand::net::Ipv4Address> {
  std::size_t operator()(const quicsand::net::Ipv4Address& a) const noexcept {
    // Fibonacci scrambling; addresses are often sequential.
    return static_cast<std::size_t>(a.value()) * 0x9e3779b97f4a7c15ULL;
  }
};
