// Classic libpcap file format (.pcap) reader and writer.
//
// Implemented from the format specification (the 24-byte global header
// with magic 0xa1b2c3d4 followed by 16-byte per-record headers). We write
// LINKTYPE_RAW (101): records are bare IPv4 datagrams, which is the
// natural format for telescope data and avoids synthesizing Ethernet
// headers. The reader also accepts LINKTYPE_ETHERNET (1) and strips the
// 14-byte Ethernet header so real captures can be analyzed.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <optional>
#include <string>

#include "net/packet.hpp"
#include "obs/hooks.hpp"

namespace quicsand::net {

constexpr std::uint32_t kPcapMagicMicros = 0xa1b2c3d4;
constexpr std::uint32_t kPcapMagicNanos = 0xa1b23c4d;
constexpr std::uint32_t kLinktypeEthernet = 1;
constexpr std::uint32_t kLinktypeRaw = 101;

class PcapWriter {
 public:
  /// Opens (truncates) `path` and writes the global header.
  /// Throws std::runtime_error if the file cannot be created.
  explicit PcapWriter(const std::string& path,
                      std::uint32_t linktype = kLinktypeRaw);

  void write(const RawPacket& packet);

  [[nodiscard]] std::uint64_t packets_written() const { return count_; }

 private:
  std::ofstream out_;
  std::uint64_t count_ = 0;
};

class PcapReader {
 public:
  /// Opens `path` and parses the global header.
  /// Throws std::runtime_error on open failure or bad magic.
  explicit PcapReader(const std::string& path);

  /// Reads from a caller-owned stream (in-memory captures, sockets,
  /// fuzz drivers). The stream must outlive the reader. Throws
  /// std::runtime_error on bad magic, like the file constructor.
  explicit PcapReader(std::istream& in);

  /// Read the next record as a raw IPv4 datagram (Ethernet stripped when
  /// the capture is LINKTYPE_ETHERNET). Returns nullopt at end of file.
  /// Throws std::runtime_error on a truncated record.
  std::optional<RawPacket> next();

  /// Convenience: invoke `fn` for each remaining packet; returns count.
  std::uint64_t for_each(const std::function<void(const RawPacket&)>& fn);

  [[nodiscard]] std::uint32_t linktype() const { return linktype_; }

  /// Attach a metrics registry: counts packets/bytes read, truncated
  /// records (before the exception) and stripped Ethernet frames under
  /// "pcap.*". Pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  void read_global_header();

  std::ifstream file_;
  std::istream* in_ = nullptr;  ///< &file_ or the caller's stream
  std::uint32_t linktype_ = kLinktypeRaw;
  bool nanos_ = false;
  bool swapped_ = false;
  obs::Counter* packets_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Counter* truncated_counter_ = nullptr;
  obs::Counter* ethernet_counter_ = nullptr;
  obs::LatencyHistogram* read_us_ = nullptr;  ///< per-record read latency
};

}  // namespace quicsand::net
