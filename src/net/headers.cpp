#include "net/headers.hpp"

#include "util/bytes.hpp"

namespace quicsand::net {

using util::ByteReader;
using util::ByteWriter;

namespace {

constexpr std::size_t kIpv4HeaderSize = 20;
constexpr std::size_t kUdpHeaderSize = 8;
constexpr std::size_t kTcpHeaderSize = 20;
constexpr std::size_t kIcmpHeaderSize = 4;

std::uint32_t checksum_partial(std::span<const std::uint8_t> data,
                               std::uint32_t sum) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  return sum;
}

std::uint16_t checksum_fold(std::uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

/// Pseudo-header sum for UDP/TCP checksums.
std::uint32_t pseudo_header_sum(Ipv4Address src, Ipv4Address dst,
                                IpProtocol proto, std::size_t l4_length) {
  std::uint32_t sum = 0;
  sum += src.value() >> 16;
  sum += src.value() & 0xffff;
  sum += dst.value() >> 16;
  sum += dst.value() & 0xffff;
  sum += static_cast<std::uint32_t>(proto);
  sum += static_cast<std::uint32_t>(l4_length);
  return sum;
}

void write_ipv4_header(ByteWriter& w, const Ipv4Header& ip,
                       std::size_t l4_length) {
  const std::size_t total = kIpv4HeaderSize + l4_length;
  const std::size_t header_start = w.size();
  w.write_u8(0x45);  // version 4, IHL 5
  w.write_u8(0);     // DSCP/ECN
  w.write_u16(static_cast<std::uint16_t>(total));
  w.write_u16(ip.identification);
  w.write_u16(0x4000);  // DF, no fragments
  w.write_u8(ip.ttl);
  w.write_u8(static_cast<std::uint8_t>(ip.protocol));
  w.write_u16(0);  // checksum placeholder
  w.write_u32(ip.src.value());
  w.write_u32(ip.dst.value());
  const auto header = w.view().subspan(header_start, kIpv4HeaderSize);
  w.patch_be(header_start + 10, internet_checksum(header), 2);
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return checksum_fold(checksum_partial(data, 0));
}

void build_udp_into(ByteWriter& w, const Ipv4Header& ip, std::uint16_t sport,
                    std::uint16_t dport,
                    std::span<const std::uint8_t> payload) {
  const std::size_t l4_length = kUdpHeaderSize + payload.size();
  Ipv4Header header = ip;
  header.protocol = IpProtocol::kUdp;
  write_ipv4_header(w, header, l4_length);

  const std::size_t udp_start = w.size();
  w.write_u16(sport);
  w.write_u16(dport);
  w.write_u16(static_cast<std::uint16_t>(l4_length));
  w.write_u16(0);  // checksum placeholder
  w.write_bytes(payload);

  std::uint32_t sum =
      pseudo_header_sum(ip.src, ip.dst, IpProtocol::kUdp, l4_length);
  sum = checksum_partial(w.view().subspan(udp_start), sum);
  std::uint16_t csum = checksum_fold(sum);
  if (csum == 0) csum = 0xffff;  // RFC 768: transmitted zero means "none"
  w.patch_be(udp_start + 6, csum, 2);
}

std::vector<std::uint8_t> build_udp(const Ipv4Header& ip, std::uint16_t sport,
                                    std::uint16_t dport,
                                    std::span<const std::uint8_t> payload) {
  ByteWriter w(kIpv4HeaderSize + kUdpHeaderSize + payload.size());
  build_udp_into(w, ip, sport, dport, payload);
  return w.take();
}

void build_tcp_into(ByteWriter& w, const Ipv4Header& ip, const TcpInfo& tcp) {
  const std::size_t l4_length = kTcpHeaderSize + tcp.payload.size();
  Ipv4Header header = ip;
  header.protocol = IpProtocol::kTcp;
  write_ipv4_header(w, header, l4_length);

  const std::size_t tcp_start = w.size();
  w.write_u16(tcp.src_port);
  w.write_u16(tcp.dst_port);
  w.write_u32(tcp.seq);
  w.write_u32(tcp.ack);
  w.write_u8(0x50);  // data offset 5, no options
  w.write_u8(tcp.flags);
  w.write_u16(0xffff);  // window
  w.write_u16(0);       // checksum placeholder
  w.write_u16(0);       // urgent pointer
  w.write_bytes(tcp.payload);

  std::uint32_t sum =
      pseudo_header_sum(ip.src, ip.dst, IpProtocol::kTcp, l4_length);
  sum = checksum_partial(w.view().subspan(tcp_start), sum);
  w.patch_be(tcp_start + 16, checksum_fold(sum), 2);
}

std::vector<std::uint8_t> build_tcp(const Ipv4Header& ip, const TcpInfo& tcp) {
  ByteWriter w(kIpv4HeaderSize + kTcpHeaderSize + tcp.payload.size());
  build_tcp_into(w, ip, tcp);
  return w.take();
}

void build_icmp_into(ByteWriter& w, const Ipv4Header& ip,
                     const IcmpInfo& icmp) {
  const std::size_t l4_length = kIcmpHeaderSize + icmp.payload.size();
  Ipv4Header header = ip;
  header.protocol = IpProtocol::kIcmp;
  write_ipv4_header(w, header, l4_length);

  const std::size_t icmp_start = w.size();
  w.write_u8(icmp.type);
  w.write_u8(icmp.code);
  w.write_u16(0);  // checksum placeholder
  w.write_bytes(icmp.payload);
  w.patch_be(icmp_start + 2,
             internet_checksum(w.view().subspan(icmp_start)), 2);
}

std::vector<std::uint8_t> build_icmp(const Ipv4Header& ip,
                                     const IcmpInfo& icmp) {
  ByteWriter w(kIpv4HeaderSize + kIcmpHeaderSize + icmp.payload.size());
  build_icmp_into(w, ip, icmp);
  return w.take();
}

void build_icmp_error_into(ByteWriter& w, const Ipv4Header& ip,
                           std::uint8_t type, std::uint8_t code,
                           std::span<const std::uint8_t> original_datagram) {
  // Unused/zero field (4 bytes) + original IP header + first 8 bytes of
  // the original payload (RFC 792), written inline so no temporary quote
  // buffer is materialised.
  const std::size_t quoted_len =
      std::min<std::size_t>(original_datagram.size(), kIpv4HeaderSize + 8);
  const std::size_t l4_length = kIcmpHeaderSize + 4 + quoted_len;
  Ipv4Header header = ip;
  header.protocol = IpProtocol::kIcmp;
  write_ipv4_header(w, header, l4_length);

  const std::size_t icmp_start = w.size();
  w.write_u8(type);
  w.write_u8(code);
  w.write_u16(0);  // checksum placeholder
  w.write_u32(0);  // unused field
  w.write_bytes(original_datagram.first(quoted_len));
  w.patch_be(icmp_start + 2,
             internet_checksum(w.view().subspan(icmp_start)), 2);
}

std::vector<std::uint8_t> build_icmp_error(
    const Ipv4Header& ip, std::uint8_t type, std::uint8_t code,
    std::span<const std::uint8_t> original_datagram) {
  ByteWriter w;
  build_icmp_error_into(w, ip, type, code, original_datagram);
  return w.take();
}

std::optional<IcmpQuote> parse_icmp_quote(
    std::span<const std::uint8_t> icmp_payload) {
  try {
    ByteReader r(icmp_payload);
    r.skip(4);  // unused field
    const std::uint8_t version_ihl = r.read_u8();
    if ((version_ihl >> 4) != 4) return std::nullopt;
    const std::size_t ihl = (version_ihl & 0x0f) * std::size_t{4};
    if (ihl < kIpv4HeaderSize) return std::nullopt;
    r.skip(7);  // dscp(1), total length(2), id(2), flags/fragment(2)
    IcmpQuote quote;
    r.skip(1);  // ttl
    quote.protocol = static_cast<IpProtocol>(r.read_u8());
    r.skip(2);  // checksum
    quote.original_src = Ipv4Address(r.read_u32().to_host());
    quote.original_dst = Ipv4Address(r.read_u32().to_host());
    r.skip(ihl - kIpv4HeaderSize);  // options
    if ((quote.protocol == IpProtocol::kUdp ||
         quote.protocol == IpProtocol::kTcp) &&
        r.remaining() >= 4) {
      quote.src_port = r.read_u16().to_host();
      quote.dst_port = r.read_u16().to_host();
    }
    return quote;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

std::optional<DecodedPacket> decode_ipv4(std::span<const std::uint8_t> data) {
  try {
    ByteReader r(data);
    const std::uint8_t version_ihl = r.read_u8();
    if ((version_ihl >> 4) != 4) return std::nullopt;
    const std::size_t ihl = (version_ihl & 0x0f) * std::size_t{4};
    if (ihl < kIpv4HeaderSize || data.size() < ihl) return std::nullopt;
    r.skip(1);  // DSCP/ECN
    const std::uint16_t total_length = r.read_u16().to_host();
    if (total_length < ihl || total_length > data.size()) return std::nullopt;
    const std::uint16_t identification = r.read_u16().to_host();
    r.skip(2);  // flags/fragment
    const std::uint8_t ttl = r.read_u8();
    const std::uint8_t protocol = r.read_u8();
    r.skip(2);  // checksum
    const Ipv4Address src(r.read_u32().to_host());
    const Ipv4Address dst(r.read_u32().to_host());
    // Skip IPv4 options if present.
    r.skip(ihl - kIpv4HeaderSize);

    DecodedPacket out;
    out.ip = {src, dst, static_cast<IpProtocol>(protocol), ttl,
              identification, total_length};
    const std::size_t l4_len = total_length - ihl;
    ByteReader l4(data.subspan(ihl, l4_len));

    switch (static_cast<IpProtocol>(protocol)) {
      case IpProtocol::kUdp: {
        UdpInfo udp;
        udp.src_port = l4.read_u16().to_host();
        udp.dst_port = l4.read_u16().to_host();
        const std::uint16_t udp_len = l4.read_u16().to_host();
        l4.skip(2);  // checksum
        if (udp_len < kUdpHeaderSize || udp_len > l4_len) return std::nullopt;
        udp.payload = data.subspan(ihl + kUdpHeaderSize,
                                   udp_len - kUdpHeaderSize);
        out.l4 = udp;
        return out;
      }
      case IpProtocol::kTcp: {
        TcpInfo tcp;
        tcp.src_port = l4.read_u16().to_host();
        tcp.dst_port = l4.read_u16().to_host();
        tcp.seq = l4.read_u32().to_host();
        tcp.ack = l4.read_u32().to_host();
        const std::size_t data_offset = (l4.read_u8() >> 4) * std::size_t{4};
        tcp.flags = l4.read_u8();
        if (data_offset < kTcpHeaderSize || data_offset > l4_len) {
          return std::nullopt;
        }
        tcp.payload = data.subspan(ihl + data_offset, l4_len - data_offset);
        out.l4 = tcp;
        return out;
      }
      case IpProtocol::kIcmp: {
        IcmpInfo icmp;
        icmp.type = l4.read_u8();
        icmp.code = l4.read_u8();
        l4.skip(2);  // checksum
        icmp.payload = data.subspan(ihl + kIcmpHeaderSize,
                                    l4_len - kIcmpHeaderSize);
        out.l4 = icmp;
        return out;
      }
      default:
        return std::nullopt;
    }
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

bool verify_checksums(std::span<const std::uint8_t> data) {
  if (data.size() < kIpv4HeaderSize) return false;
  const std::size_t ihl = (data[0] & 0x0f) * std::size_t{4};
  if (data.size() < ihl) return false;
  if (internet_checksum(data.first(ihl)) != 0) return false;

  const auto decoded = decode_ipv4(data);
  if (!decoded) return false;
  const std::size_t l4_len = decoded->ip.total_length - ihl;
  const auto l4 = data.subspan(ihl, l4_len);

  switch (decoded->ip.protocol) {
    case IpProtocol::kUdp:
      // A transmitted zero means "no checksum" (RFC 768) — scanners
      // commonly send that; it verifies trivially.
      if (l4.size() >= 8 && l4[6] == 0 && l4[7] == 0) return true;
      [[fallthrough]];
    case IpProtocol::kTcp: {
      std::uint32_t sum = pseudo_header_sum(
          decoded->ip.src, decoded->ip.dst, decoded->ip.protocol, l4_len);
      return checksum_fold(checksum_partial(l4, sum)) == 0;
    }
    case IpProtocol::kIcmp:
      return internet_checksum(l4) == 0;
  }
  return false;
}

}  // namespace quicsand::net
