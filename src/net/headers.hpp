// IPv4 / UDP / TCP / ICMP header encoding and decoding.
//
// The telescope captures raw IPv4 datagrams; every synthetic packet in the
// simulator is a real, checksummed byte sequence built here, and the
// analysis side parses those bytes back. This keeps the generator and the
// analyzer honest: they only communicate through the wire format, exactly
// like the paper's pipeline (pcap in, dissector out).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "net/ip.hpp"
#include "util/bytes.hpp"

namespace quicsand::net {

/// Internet checksum (RFC 1071) over a byte span.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

enum class IpProtocol : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

struct Ipv4Header {
  Ipv4Address src;
  Ipv4Address dst;
  IpProtocol protocol = IpProtocol::kUdp;
  std::uint8_t ttl = 64;
  std::uint16_t identification = 0;
  std::uint16_t total_length = 0;  // filled by the serializer
};

/// TCP flag bits as they appear in the header.
struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
};

struct UdpInfo {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::span<const std::uint8_t> payload;
};

struct TcpInfo {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::span<const std::uint8_t> payload;
};

struct IcmpInfo {
  std::uint8_t type = 0;
  std::uint8_t code = 0;
  std::span<const std::uint8_t> payload;
};

/// Decoded view into a raw IPv4 datagram. Spans point into the original
/// buffer, which must outlive the view.
struct DecodedPacket {
  Ipv4Header ip;
  std::variant<UdpInfo, TcpInfo, IcmpInfo> l4;

  [[nodiscard]] bool is_udp() const {
    return std::holds_alternative<UdpInfo>(l4);
  }
  [[nodiscard]] bool is_tcp() const {
    return std::holds_alternative<TcpInfo>(l4);
  }
  [[nodiscard]] bool is_icmp() const {
    return std::holds_alternative<IcmpInfo>(l4);
  }
  [[nodiscard]] const UdpInfo& udp() const { return std::get<UdpInfo>(l4); }
  [[nodiscard]] const TcpInfo& tcp() const { return std::get<TcpInfo>(l4); }
  [[nodiscard]] const IcmpInfo& icmp() const { return std::get<IcmpInfo>(l4); }
};

/// Build a complete IPv4+UDP datagram with valid checksums.
std::vector<std::uint8_t> build_udp(const Ipv4Header& ip, std::uint16_t sport,
                                    std::uint16_t dport,
                                    std::span<const std::uint8_t> payload);

/// Build a complete IPv4+TCP segment (no options) with valid checksums.
std::vector<std::uint8_t> build_tcp(const Ipv4Header& ip, const TcpInfo& tcp);

/// Build a complete IPv4+ICMP datagram with valid checksums.
std::vector<std::uint8_t> build_icmp(const Ipv4Header& ip,
                                     const IcmpInfo& icmp);

/// Build an ICMP error (e.g. destination/port unreachable) quoting the
/// original datagram's IP header plus its first 8 payload bytes, as
/// RFC 792 requires. This is what real UDP backscatter looks like when a
/// victim rejects a spoofed probe.
std::vector<std::uint8_t> build_icmp_error(
    const Ipv4Header& ip, std::uint8_t type, std::uint8_t code,
    std::span<const std::uint8_t> original_datagram);

// Allocation-free variants: append the same bytes to a caller-owned writer
// (typically a reusable per-emitter buffer). The vector-returning builders
// above delegate to these, so the two families cannot drift apart.
void build_udp_into(util::ByteWriter& w, const Ipv4Header& ip,
                    std::uint16_t sport, std::uint16_t dport,
                    std::span<const std::uint8_t> payload);
void build_tcp_into(util::ByteWriter& w, const Ipv4Header& ip,
                    const TcpInfo& tcp);
void build_icmp_into(util::ByteWriter& w, const Ipv4Header& ip,
                     const IcmpInfo& icmp);
void build_icmp_error_into(util::ByteWriter& w, const Ipv4Header& ip,
                           std::uint8_t type, std::uint8_t code,
                           std::span<const std::uint8_t> original_datagram);

/// The original datagram summary quoted inside an ICMP error payload.
struct IcmpQuote {
  Ipv4Address original_src;
  Ipv4Address original_dst;
  IpProtocol protocol = IpProtocol::kUdp;
  std::uint16_t src_port = 0;  ///< UDP/TCP only
  std::uint16_t dst_port = 0;
};

/// Parse the quote out of an ICMP error payload (the bytes after the
/// 4-byte ICMP header). Returns nullopt when no valid quote is present.
std::optional<IcmpQuote> parse_icmp_quote(
    std::span<const std::uint8_t> icmp_payload);

/// Parse a raw IPv4 datagram. Returns nullopt on truncation, bad version,
/// or unsupported protocol. Checksums are NOT verified here (telescopes
/// keep packets with bad checksums too); use verify_checksums() if needed.
std::optional<DecodedPacket> decode_ipv4(std::span<const std::uint8_t> data);

/// Verify the IPv4 header checksum and, for UDP/TCP, the L4 checksum.
bool verify_checksums(std::span<const std::uint8_t> data);

}  // namespace quicsand::net
