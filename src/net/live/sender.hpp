// Loopback traffic generator: the attack side of the live harness.
//
// LiveSender streams synthetic IPv4 datagrams (QSL2-encapsulated so the
// receiver sees the scenario's spoofed sources and timestamps, plus a
// wall-clock send stamp patched in right before each sendmmsg batch for
// one-way latency measurement) to a UDP endpoint with batched sendmmsg,
// pacing the stream through a token bucket whose fill rate comes from a
// RateController:
//
//   constant  target pps throughout
//   burst     alternates ~2x and ~0.2x of target every second
//   ramp      linear 0 -> 2x target over the stream
//   chaos     seeded per-second random multiplier in [0.2x, 3x]
//
// All modes average roughly the target rate; they differ in how bursty
// the instantaneous load is, which is what stresses the receiver's
// drop-oldest rings differently.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "net/live/socket.hpp"
#include "net/packet.hpp"
#include "net/record_batch.hpp"
#include "obs/hooks.hpp"
#include "util/time.hpp"

namespace quicsand::net::live {

enum class RateMode : std::uint8_t { kConstant, kBurst, kRamp, kChaos };

/// "constant" | "burst" | "ramp" | "chaos"; nullopt otherwise.
std::optional<RateMode> parse_rate_mode(std::string_view name);
std::string_view rate_mode_name(RateMode mode);

/// Instantaneous packet rate as a function of elapsed stream time.
/// Deterministic for a given (mode, target, seed): chaos derives its
/// per-second multiplier by hashing the second index, not by a stateful
/// walk, so two controllers with the same seed always agree.
class RateController {
 public:
  /// `ramp_window_s` is the time over which ramp reaches 2x target.
  RateController(RateMode mode, double target_pps, std::uint64_t seed,
                 double ramp_window_s = 10.0);

  [[nodiscard]] double pps_at(double elapsed_s) const;
  [[nodiscard]] RateMode mode() const { return mode_; }
  [[nodiscard]] double target_pps() const { return target_pps_; }

 private:
  RateMode mode_;
  double target_pps_;
  std::uint64_t seed_;
  double ramp_window_s_;
};

struct LiveSenderConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double pps = 100000.0;  ///< target rate the controller modulates
  RateMode mode = RateMode::kConstant;
  std::uint64_t seed = 1;
  /// Wrap each datagram in a QSL2 frame carrying its scenario timestamp
  /// and a wall-clock send stamp. False sends the raw datagram bytes
  /// (deployable mode: the receiver stamps arrival time instead).
  bool encapsulate = true;
  /// Ramp window for RateMode::kRamp; ignored by other modes.
  double ramp_window_s = 10.0;
  obs::Hooks obs;
};

struct SendStats {
  std::uint64_t sent = 0;           ///< datagrams the kernel accepted
  std::uint64_t send_failures = 0;  ///< datagrams lost to send errors
  double elapsed_s = 0.0;
  double achieved_pps = 0.0;
};

class LiveSender {
 public:
  /// Produces the next datagram, nullopt when the stream ends.
  using Source = std::function<std::optional<net::RawPacket>()>;
  /// Refills a cleared RecordBatch with the next run of records; returns
  /// false once the stream is exhausted (records appended on that final
  /// call are still sent). The batched path skips the per-record
  /// std::function call and RawPacket copy of Source, so loopback send
  /// rates stop bounding the latency benchmark.
  using BatchSource = std::function<bool(net::RecordBatch&)>;

  explicit LiveSender(LiveSenderConfig config);

  LiveSender(const LiveSender&) = delete;
  LiveSender& operator=(const LiveSender&) = delete;

  /// Connect, then drain `next` through the paced socket until it
  /// returns nullopt or `*stop` turns true. Blocking; returns the
  /// achieved totals. On connect failure returns zeroed stats with
  /// last_error() set.
  SendStats send_stream(const Source& next,
                        const std::atomic<bool>* stop = nullptr);

  /// Same contract, fed whole RecordBatches: frame buffers are reused
  /// across batches and the socket still sees <= ReceiveBatch::kMax
  /// payloads per sendmmsg.
  SendStats send_batches(const BatchSource& fill,
                         const std::atomic<bool>* stop = nullptr);

  [[nodiscard]] const std::string& last_error() const { return error_; }

 private:
  LiveSenderConfig config_;
  RateController controller_;
  UdpSocket socket_;
  std::string error_;
};

}  // namespace quicsand::net::live
