#include "net/live/sender.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "net/live/frame.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace quicsand::net::live {

std::optional<RateMode> parse_rate_mode(std::string_view name) {
  if (name == "constant") return RateMode::kConstant;
  if (name == "burst") return RateMode::kBurst;
  if (name == "ramp") return RateMode::kRamp;
  if (name == "chaos") return RateMode::kChaos;
  return std::nullopt;
}

std::string_view rate_mode_name(RateMode mode) {
  switch (mode) {
    case RateMode::kConstant:
      return "constant";
    case RateMode::kBurst:
      return "burst";
    case RateMode::kRamp:
      return "ramp";
    case RateMode::kChaos:
      return "chaos";
  }
  return "constant";
}

RateController::RateController(RateMode mode, double target_pps,
                               std::uint64_t seed, double ramp_window_s)
    : mode_(mode),
      target_pps_(std::max(target_pps, 1.0)),
      seed_(seed),
      ramp_window_s_(std::max(ramp_window_s, 0.001)) {}

double RateController::pps_at(double elapsed_s) const {
  if (elapsed_s < 0) elapsed_s = 0;
  switch (mode_) {
    case RateMode::kConstant:
      return target_pps_;
    case RateMode::kBurst: {
      // 2x/0.2x alternating seconds: same average neighborhood as
      // constant, but each on-second must drain through the rings.
      const auto second = static_cast<std::uint64_t>(elapsed_s);
      return (second % 2 == 0) ? 2.0 * target_pps_ : 0.2 * target_pps_;
    }
    case RateMode::kRamp: {
      const double frac = std::min(elapsed_s / ramp_window_s_, 1.0);
      return std::max(2.0 * target_pps_ * frac, 0.01 * target_pps_);
    }
    case RateMode::kChaos: {
      // Per-second multiplier in [0.2, 3.0] hashed from the second
      // index, so every controller with this seed replays identically.
      const auto second = static_cast<std::uint64_t>(elapsed_s);
      const std::uint64_t h = util::mix64(seed_, second);
      const double unit =
          static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
      return target_pps_ * (0.2 + 2.8 * unit);
    }
  }
  return target_pps_;
}

LiveSender::LiveSender(LiveSenderConfig config)
    : config_(std::move(config)),
      controller_(config_.mode, config_.pps, config_.seed,
                  config_.ramp_window_s) {}

namespace {

/// Token bucket shared by both send paths: credit accrues at the
/// controller's instantaneous rate and is spent one datagram per token.
/// The cap bounds the burst we emit after a scheduling stall to a few
/// socket batches.
class Pacer {
 public:
  explicit Pacer(const RateController& controller)
      : controller_(controller), start_(Clock::now()) {}

  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Block until `need` tokens are available (or `*stop` turns true),
  /// then spend them.
  void acquire(std::size_t need, const std::atomic<bool>* stop) {
    for (;;) {
      const double now = elapsed_s();
      credit_ += controller_.pps_at(now) * (now - last_);
      last_ = now;
      credit_ =
          std::min(credit_, 4.0 * static_cast<double>(ReceiveBatch::kMax));
      if (credit_ >= static_cast<double>(need)) break;
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) break;
      const double deficit = static_cast<double>(need) - credit_;
      const double wait_s =
          std::clamp(deficit / controller_.pps_at(now), 20e-6, 2e-3);
      std::this_thread::sleep_for(std::chrono::duration<double>(wait_s));
    }
    credit_ -= static_cast<double>(need);
  }

 private:
  using Clock = std::chrono::steady_clock;
  const RateController& controller_;
  Clock::time_point start_;
  double credit_ = 0.0;
  double last_ = 0.0;
};

struct SendCounters {
  obs::Counter* sent = nullptr;
  obs::Counter* failures = nullptr;
};

SendCounters make_send_counters(obs::MetricsRegistry* metrics) {
  SendCounters counters;
  if (metrics != nullptr) {
    counters.sent = &metrics->counter("live.sent_packets",
                                      "datagrams pushed onto the wire");
    counters.failures = &metrics->counter("live.send_failures",
                                          "datagrams lost to send errors");
  }
  return counters;
}

/// Stamp (QSL2 payloads only) and send one chunk, folding the result
/// into `stats`. The wall clock is read once per sendmmsg batch: every
/// frame in the chunk shares one send stamp, which is at most one batch
/// (~64 packets) of skew — far below the scheduling noise floor.
void stamp_and_send(UdpSocket& socket, bool encapsulate,
                    std::span<std::vector<std::uint8_t>> chunk,
                    const SendCounters& counters, SendStats& stats,
                    std::string& error) {
  if (encapsulate) {
    const std::int64_t stamp = wall_clock_us();
    for (auto& payload : chunk) patch_send_stamp(payload, stamp);
  }
  const std::size_t accepted =
      socket.send_batch({chunk.data(), chunk.size()});
  stats.sent += accepted;
  if (counters.sent != nullptr) counters.sent->add(accepted);
  if (accepted < chunk.size()) {
    const auto failed = static_cast<std::uint64_t>(chunk.size() - accepted);
    stats.send_failures += failed;
    if (counters.failures != nullptr) counters.failures->add(failed);
    error = socket.last_error();
  }
}

}  // namespace

SendStats LiveSender::send_stream(const Source& next,
                                  const std::atomic<bool>* stop) {
  SendStats stats;
  if (!socket_.connect(config_.host, config_.port)) {
    error_ = socket_.last_error();
    return stats;
  }
  const auto counters = make_send_counters(config_.obs.metrics);
  Pacer pacer(controller_);

  std::vector<std::vector<std::uint8_t>> batch;
  batch.reserve(ReceiveBatch::kMax);
  bool exhausted = false;
  while (!exhausted && (stop == nullptr ||
                        !stop->load(std::memory_order_relaxed))) {
    batch.clear();
    while (batch.size() < ReceiveBatch::kMax) {
      auto packet = next();
      if (!packet) {
        exhausted = true;
        break;
      }
      if (config_.encapsulate) {
        batch.push_back(
            encode_live_frame_v2(packet->timestamp, 0, packet->data));
      } else {
        batch.push_back(std::move(packet->data));
      }
    }
    if (batch.empty()) break;

    pacer.acquire(batch.size(), stop);
    stamp_and_send(socket_, config_.encapsulate,
                   {batch.data(), batch.size()}, counters, stats, error_);
  }

  stats.elapsed_s = pacer.elapsed_s();
  stats.achieved_pps =
      stats.elapsed_s > 0 ? static_cast<double>(stats.sent) / stats.elapsed_s
                          : 0.0;
  socket_.close();
  return stats;
}

SendStats LiveSender::send_batches(const BatchSource& fill,
                                   const std::atomic<bool>* stop) {
  SendStats stats;
  if (!socket_.connect(config_.host, config_.port)) {
    error_ = socket_.last_error();
    return stats;
  }
  const auto counters = make_send_counters(config_.obs.metrics);
  Pacer pacer(controller_);

  net::RecordBatch records;
  // Frame buffers are reused across refills: frames[i] keeps its heap
  // allocation and is overwritten in place, so steady-state sending
  // performs no per-packet allocation — the point of the batched path.
  std::vector<std::vector<std::uint8_t>> frames;
  bool more = true;
  while (more && (stop == nullptr ||
                  !stop->load(std::memory_order_relaxed))) {
    records.clear();
    more = fill(records);
    const std::size_t n = records.size();
    if (n == 0) {
      if (!more) break;
      continue;
    }
    if (frames.size() < n) frames.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto view = records.view(i);
      auto& buf = frames[i];
      buf.clear();
      if (config_.encapsulate) {
        buf.insert(buf.end(), std::begin(kFrameMagicV2),
                   std::end(kFrameMagicV2));
        const auto ts = static_cast<std::uint64_t>(view.timestamp.count());
        for (std::size_t b = 0; b < 8; ++b) {
          buf.push_back(static_cast<std::uint8_t>(ts >> (8 * (7 - b))));
        }
        buf.insert(buf.end(), 8, 0);  // send stamp, patched at send time
      }
      buf.insert(buf.end(), view.data.begin(), view.data.end());
    }

    for (std::size_t offset = 0; offset < n;) {
      const std::size_t chunk = std::min(n - offset, ReceiveBatch::kMax);
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) break;
      pacer.acquire(chunk, stop);
      stamp_and_send(socket_, config_.encapsulate,
                     {frames.data() + offset, chunk}, counters, stats,
                     error_);
      offset += chunk;
    }
  }

  stats.elapsed_s = pacer.elapsed_s();
  stats.achieved_pps =
      stats.elapsed_s > 0 ? static_cast<double>(stats.sent) / stats.elapsed_s
                          : 0.0;
  socket_.close();
  return stats;
}

}  // namespace quicsand::net::live
