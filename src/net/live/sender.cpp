#include "net/live/sender.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "net/live/frame.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace quicsand::net::live {

std::optional<RateMode> parse_rate_mode(std::string_view name) {
  if (name == "constant") return RateMode::kConstant;
  if (name == "burst") return RateMode::kBurst;
  if (name == "ramp") return RateMode::kRamp;
  if (name == "chaos") return RateMode::kChaos;
  return std::nullopt;
}

std::string_view rate_mode_name(RateMode mode) {
  switch (mode) {
    case RateMode::kConstant:
      return "constant";
    case RateMode::kBurst:
      return "burst";
    case RateMode::kRamp:
      return "ramp";
    case RateMode::kChaos:
      return "chaos";
  }
  return "constant";
}

RateController::RateController(RateMode mode, double target_pps,
                               std::uint64_t seed, double ramp_window_s)
    : mode_(mode),
      target_pps_(std::max(target_pps, 1.0)),
      seed_(seed),
      ramp_window_s_(std::max(ramp_window_s, 0.001)) {}

double RateController::pps_at(double elapsed_s) const {
  if (elapsed_s < 0) elapsed_s = 0;
  switch (mode_) {
    case RateMode::kConstant:
      return target_pps_;
    case RateMode::kBurst: {
      // 2x/0.2x alternating seconds: same average neighborhood as
      // constant, but each on-second must drain through the rings.
      const auto second = static_cast<std::uint64_t>(elapsed_s);
      return (second % 2 == 0) ? 2.0 * target_pps_ : 0.2 * target_pps_;
    }
    case RateMode::kRamp: {
      const double frac = std::min(elapsed_s / ramp_window_s_, 1.0);
      return std::max(2.0 * target_pps_ * frac, 0.01 * target_pps_);
    }
    case RateMode::kChaos: {
      // Per-second multiplier in [0.2, 3.0] hashed from the second
      // index, so every controller with this seed replays identically.
      const auto second = static_cast<std::uint64_t>(elapsed_s);
      const std::uint64_t h = util::mix64(seed_, second);
      const double unit =
          static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
      return target_pps_ * (0.2 + 2.8 * unit);
    }
  }
  return target_pps_;
}

LiveSender::LiveSender(LiveSenderConfig config)
    : config_(std::move(config)),
      controller_(config_.mode, config_.pps, config_.seed,
                  config_.ramp_window_s) {}

SendStats LiveSender::send_stream(const Source& next,
                                  const std::atomic<bool>* stop) {
  SendStats stats;
  if (!socket_.connect(config_.host, config_.port)) {
    error_ = socket_.last_error();
    return stats;
  }
  obs::Counter* sent_counter = nullptr;
  obs::Counter* failure_counter = nullptr;
  if (auto* metrics = config_.obs.metrics) {
    sent_counter = &metrics->counter("live.sent_packets",
                                     "datagrams pushed onto the wire");
    failure_counter = &metrics->counter("live.send_failures",
                                        "datagrams lost to send errors");
  }

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  auto elapsed_s = [&start] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  std::vector<std::vector<std::uint8_t>> batch;
  batch.reserve(ReceiveBatch::kMax);
  // Token bucket: credit accrues at the controller's instantaneous rate
  // and is spent one datagram per token. The cap bounds the burst we
  // emit after a scheduling stall to one socket batch.
  double credit = 0.0;
  double last = 0.0;
  bool exhausted = false;
  while (!exhausted && (stop == nullptr ||
                        !stop->load(std::memory_order_relaxed))) {
    batch.clear();
    while (batch.size() < ReceiveBatch::kMax) {
      auto packet = next();
      if (!packet) {
        exhausted = true;
        break;
      }
      if (config_.encapsulate) {
        batch.push_back(encode_live_frame(packet->timestamp, packet->data));
      } else {
        batch.push_back(std::move(packet->data));
      }
    }
    if (batch.empty()) break;

    for (;;) {
      const double now = elapsed_s();
      credit += controller_.pps_at(now) * (now - last);
      last = now;
      credit = std::min(credit, 4.0 * static_cast<double>(ReceiveBatch::kMax));
      if (credit >= static_cast<double>(batch.size())) break;
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) break;
      const double deficit = static_cast<double>(batch.size()) - credit;
      const double wait_s =
          std::clamp(deficit / controller_.pps_at(now), 20e-6, 2e-3);
      std::this_thread::sleep_for(std::chrono::duration<double>(wait_s));
    }
    credit -= static_cast<double>(batch.size());

    const std::size_t accepted = socket_.send_batch(batch);
    stats.sent += accepted;
    if (sent_counter != nullptr) sent_counter->add(accepted);
    if (accepted < batch.size()) {
      const auto failed =
          static_cast<std::uint64_t>(batch.size() - accepted);
      stats.send_failures += failed;
      if (failure_counter != nullptr) failure_counter->add(failed);
      error_ = socket_.last_error();
    }
  }

  stats.elapsed_s = elapsed_s();
  stats.achieved_pps =
      stats.elapsed_s > 0 ? static_cast<double>(stats.sent) / stats.elapsed_s
                          : 0.0;
  socket_.close();
  return stats;
}

}  // namespace quicsand::net::live
