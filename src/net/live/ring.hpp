// Bounded lock-free ring buffer for the live capture path.
//
// One ring per analysis shard sits between the single recvmmsg receiver
// thread (producer) and that shard's worker thread (consumer). The
// backpressure policy is drop-OLDEST: when a shard's worker falls
// behind, the producer discards the element at the head and keeps the
// fresh packet, so the window the detector sees stays current — exactly
// what an early-warning monitor wants (stale backscatter is worthless,
// the packets arriving *now* are the alert). Every discarded element is
// counted by the caller via the push_drop_oldest() return value and
// exported as live.dropped_ring.
//
// Implementation: Dmitry Vyukov's bounded MPMC queue (per-cell sequence
// numbers). Nominally this is an SPSC hand-off, but drop-oldest makes
// the producer a second *consumer* when the ring is full, so the
// general MPMC protocol is what keeps that steal race-free — the
// produce and consume fast paths are still a single CAS each.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

namespace quicsand::net::live {

template <typename T>
class Ring {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit Ring(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Approximate occupancy (exact when producer and consumer are quiet).
  [[nodiscard]] std::size_t size() const {
    const auto head = head_.load(std::memory_order_relaxed);
    const auto tail = tail_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  /// Enqueue; returns false when the ring is full. Takes an rvalue
  /// reference so a failed push leaves the caller's object intact (the
  /// move into the cell happens only on the success path) — the
  /// drop-oldest retry loop depends on that.
  bool try_push(T&& value) {
    Cell* cell = nullptr;
    auto pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const auto seq = cell->sequence.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Dequeue; nullopt when the ring is empty.
  std::optional<T> try_pop() {
    Cell* cell = nullptr;
    auto pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const auto seq = cell->sequence.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return std::nullopt;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    std::optional<T> out(std::move(cell->value));
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return out;
  }

  /// Enqueue unconditionally, discarding head elements while the ring is
  /// full. Returns how many elements were discarded (usually 0).
  std::uint64_t push_drop_oldest(T value) {
    std::uint64_t dropped = 0;
    while (!try_push(std::move(value))) {
      // Steal the oldest element; racing with the consumer is fine, one
      // of us wins and the loop re-checks. The pop can only fail while
      // the consumer is mid-claim, so retry rather than spin-count.
      if (auto oldest = try_pop()) ++dropped;
    }
    return dropped;
  }

  /// Producer-side end-of-stream mark; consumers drain then stop.
  void close() { closed_.store(true, std::memory_order_release); }
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  static constexpr std::size_t kCacheLine = 64;

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  ///< producer cursor
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  std::atomic<bool> closed_{false};
};

}  // namespace quicsand::net::live
