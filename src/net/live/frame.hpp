// QSL1 live-capture frame: how raw telescope datagrams travel inside a
// real UDP payload.
//
// A UDP socket delivers payloads, not IP headers, so a live sensor
// cannot see the (spoofed) addresses the analysis pipeline keys on.
// The lab sender therefore tunnels each synthetic IPv4 datagram as the
// UDP payload, optionally prefixed with a 12-byte header that carries
// the scenario timestamp:
//
//   | 'Q' 'S' 'L' '1' | i64 timestamp_us, big-endian | raw IPv4 datagram |
//
// With the prefix, the receiver replays scenario time (a day of
// telescope traffic floods through loopback in seconds and the detector
// still sees April 2021 session dynamics — the same trick the pcap
// reader plays). Without it, the payload is treated as a bare IPv4
// datagram stamped with the arrival wall clock — the deployable-sensor
// mode. A payload that starts with the magic but is shorter than the
// full prefix is treated as bare bytes (and will then fail IPv4 decode,
// counted as undecodable, never crashing the receiver).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/time.hpp"

namespace quicsand::net::live {

inline constexpr std::uint8_t kFrameMagic[4] = {'Q', 'S', 'L', '1'};
inline constexpr std::size_t kFrameHeaderSize = 12;

/// Decoded view of one received UDP payload. `datagram` points into the
/// payload buffer, which must outlive the view.
struct LiveFrame {
  bool encapsulated = false;  ///< QSL1 prefix present
  /// Embedded scenario timestamp; meaningful only when encapsulated.
  util::Timestamp timestamp{};
  std::span<const std::uint8_t> datagram;
};

/// Split a UDP payload into (timestamp, datagram). Total function: any
/// input yields a frame — garbage comes back as a bare datagram.
[[nodiscard]] LiveFrame parse_live_frame(std::span<const std::uint8_t> payload);

/// Build the QSL1-encapsulated payload for one raw IPv4 datagram.
[[nodiscard]] std::vector<std::uint8_t> encode_live_frame(
    util::Timestamp timestamp, std::span<const std::uint8_t> datagram);

/// Cheap structural probe used by the receiver to shard and count
/// without a full parse: returns the IPv4 source address (host order)
/// when the datagram has a plausible IPv4 header, nullopt otherwise.
/// One-way guarantee (fuzz-pinned): anything net::decode_ipv4 accepts,
/// this accepts too — the quick path never drops a decodable packet.
[[nodiscard]] std::optional<std::uint32_t> quick_ipv4_source(
    std::span<const std::uint8_t> datagram);

}  // namespace quicsand::net::live
