// QSL1/QSL2 live-capture frames: how raw telescope datagrams travel
// inside a real UDP payload.
//
// A UDP socket delivers payloads, not IP headers, so a live sensor
// cannot see the (spoofed) addresses the analysis pipeline keys on.
// The lab sender therefore tunnels each synthetic IPv4 datagram as the
// UDP payload, optionally prefixed with a header that carries the
// scenario timestamp:
//
//   | 'Q' 'S' 'L' '1' | i64 timestamp_us, big-endian | raw IPv4 datagram |
//
// QSL2 adds a wall-clock send stamp so the receiver can measure one-way
// wire latency (valid on loopback / hosts sharing a clock):
//
//   | 'Q' 'S' 'L' '2' | i64 timestamp_us | i64 send_wall_us | datagram |
//
// The send stamp sits at kSendStampOffset so the sender can patch it in
// place just before each sendmmsg batch instead of re-encoding frames.
//
// With either prefix, the receiver replays scenario time (a day of
// telescope traffic floods through loopback in seconds and the detector
// still sees April 2021 session dynamics — the same trick the pcap
// reader plays). Without one, the payload is treated as a bare IPv4
// datagram stamped with the arrival wall clock — the deployable-sensor
// mode. A payload that starts with a magic but is shorter than the
// full prefix is treated as bare bytes (and will then fail IPv4 decode,
// counted as undecodable, never crashing the receiver).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/time.hpp"

namespace quicsand::net::live {

inline constexpr std::uint8_t kFrameMagic[4] = {'Q', 'S', 'L', '1'};
inline constexpr std::uint8_t kFrameMagicV2[4] = {'Q', 'S', 'L', '2'};
inline constexpr std::size_t kFrameHeaderSize = 12;
inline constexpr std::size_t kFrameHeaderSizeV2 = 20;
/// Byte offset of the i64 send-wall-clock stamp in a QSL2 header; the
/// sender patches it in place right before each send batch.
inline constexpr std::size_t kSendStampOffset = 12;

/// Decoded view of one received UDP payload. `datagram` points into the
/// payload buffer, which must outlive the view.
struct LiveFrame {
  bool encapsulated = false;  ///< QSL1/QSL2 prefix present
  /// Embedded scenario timestamp; meaningful only when encapsulated.
  util::Timestamp timestamp{};
  /// QSL2 only: sender's wall clock (us since epoch) at send time;
  /// negative when absent (QSL1 or bare payloads).
  std::int64_t send_wall_us = -1;
  std::span<const std::uint8_t> datagram;
};

/// Split a UDP payload into (timestamp, datagram). Total function: any
/// input yields a frame — garbage comes back as a bare datagram.
[[nodiscard]] LiveFrame parse_live_frame(std::span<const std::uint8_t> payload);

/// Build the QSL1-encapsulated payload for one raw IPv4 datagram.
[[nodiscard]] std::vector<std::uint8_t> encode_live_frame(
    util::Timestamp timestamp, std::span<const std::uint8_t> datagram);

/// Build the QSL2-encapsulated payload: scenario timestamp plus a
/// wall-clock send stamp (pass 0 and patch via patch_send_stamp later).
/// The stamp stays a raw i64: it is a CLOCK_REALTIME scalar with a -1
/// "absent" sentinel, written as big-endian wire bytes, not a
/// scenario-clock util::Timestamp.
[[nodiscard]] std::vector<std::uint8_t> encode_live_frame_v2(
    util::Timestamp timestamp,
    std::int64_t send_wall_us,  // lint:allow(naked-int64-time-param)
    std::span<const std::uint8_t> datagram);

/// Overwrite the send stamp of an already-encoded QSL2 payload in place.
/// No-op for payloads that are not QSL2 frames.
void patch_send_stamp(
    std::span<std::uint8_t> payload,
    std::int64_t send_wall_us);  // lint:allow(naked-int64-time-param)

/// Microseconds since the Unix epoch (CLOCK_REALTIME): the clock domain
/// QSL2 send stamps, receiver arrival stamps and /tsdb samples share.
[[nodiscard]] std::int64_t wall_clock_us();

/// Cheap structural probe used by the receiver to shard and count
/// without a full parse: returns the IPv4 source address (host order)
/// when the datagram has a plausible IPv4 header, nullopt otherwise.
/// One-way guarantee (fuzz-pinned): anything net::decode_ipv4 accepts,
/// this accepts too — the quick path never drops a decodable packet.
[[nodiscard]] std::optional<std::uint32_t> quick_ipv4_source(
    std::span<const std::uint8_t> datagram);

}  // namespace quicsand::net::live
