#include "net/live/frame.hpp"

#include <ctime>

#include "util/bytes.hpp"

namespace quicsand::net::live {

namespace {

bool has_magic(std::span<const std::uint8_t> payload,
               const std::uint8_t (&magic)[4]) {
  return payload.size() >= 4 && payload[0] == magic[0] &&
         payload[1] == magic[1] && payload[2] == magic[2] &&
         payload[3] == magic[3];
}

}  // namespace

LiveFrame parse_live_frame(std::span<const std::uint8_t> payload) {
  LiveFrame frame;
  if (payload.size() >= kFrameHeaderSize && has_magic(payload, kFrameMagic)) {
    util::ByteReader reader(payload);
    reader.read_bytes(4);  // magic
    frame.encapsulated = true;
    frame.timestamp =
        util::Timestamp{static_cast<std::int64_t>(reader.read_u64())};
    frame.datagram = payload.subspan(kFrameHeaderSize);
    return frame;
  }
  if (payload.size() >= kFrameHeaderSizeV2 &&
      has_magic(payload, kFrameMagicV2)) {
    util::ByteReader reader(payload);
    reader.read_bytes(4);  // magic
    frame.encapsulated = true;
    frame.timestamp =
        util::Timestamp{static_cast<std::int64_t>(reader.read_u64())};
    frame.send_wall_us = static_cast<std::int64_t>(reader.read_u64());
    frame.datagram = payload.subspan(kFrameHeaderSizeV2);
    return frame;
  }
  frame.datagram = payload;
  return frame;
}

std::vector<std::uint8_t> encode_live_frame(
    util::Timestamp timestamp, std::span<const std::uint8_t> datagram) {
  util::ByteWriter writer;
  writer.write_bytes(kFrameMagic);
  writer.write_u64(static_cast<std::uint64_t>(timestamp.count()));
  writer.write_bytes(datagram);
  return writer.take();
}

std::vector<std::uint8_t> encode_live_frame_v2(
    util::Timestamp timestamp,
    std::int64_t send_wall_us,  // lint:allow(naked-int64-time-param)
    std::span<const std::uint8_t> datagram) {
  util::ByteWriter writer;
  writer.write_bytes(kFrameMagicV2);
  writer.write_u64(static_cast<std::uint64_t>(timestamp.count()));
  writer.write_u64(static_cast<std::uint64_t>(send_wall_us));
  writer.write_bytes(datagram);
  return writer.take();
}

void patch_send_stamp(
    std::span<std::uint8_t> payload,
    std::int64_t send_wall_us) {  // lint:allow(naked-int64-time-param)
  if (payload.size() < kFrameHeaderSizeV2 ||
      !has_magic(payload, kFrameMagicV2)) {
    return;
  }
  const auto stamp = static_cast<std::uint64_t>(send_wall_us);
  for (std::size_t i = 0; i < 8; ++i) {
    payload[kSendStampOffset + i] =
        static_cast<std::uint8_t>(stamp >> (8 * (7 - i)));
  }
}

std::int64_t wall_clock_us() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 +
         ts.tv_nsec / 1'000;
}

std::optional<std::uint32_t> quick_ipv4_source(
    std::span<const std::uint8_t> datagram) {
  // Mirrors the preconditions net::decode_ipv4 enforces before it reads
  // the source address: 20-byte minimum, version nibble 4. Everything
  // else (header length, total length, protocol) is left to the full
  // decoder — rejecting more here could disagree with it.
  if (datagram.size() < 20) return std::nullopt;
  if ((datagram[0] >> 4) != 4) return std::nullopt;
  return (static_cast<std::uint32_t>(datagram[12]) << 24) |
         (static_cast<std::uint32_t>(datagram[13]) << 16) |
         (static_cast<std::uint32_t>(datagram[14]) << 8) |
         static_cast<std::uint32_t>(datagram[15]);
}

}  // namespace quicsand::net::live
