#include "net/live/frame.hpp"

#include "util/bytes.hpp"

namespace quicsand::net::live {

LiveFrame parse_live_frame(std::span<const std::uint8_t> payload) {
  LiveFrame frame;
  if (payload.size() >= kFrameHeaderSize && payload[0] == kFrameMagic[0] &&
      payload[1] == kFrameMagic[1] && payload[2] == kFrameMagic[2] &&
      payload[3] == kFrameMagic[3]) {
    util::ByteReader reader(payload);
    reader.read_bytes(4);  // magic
    frame.encapsulated = true;
    frame.timestamp =
        util::Timestamp{static_cast<std::int64_t>(reader.read_u64())};
    frame.datagram = payload.subspan(kFrameHeaderSize);
    return frame;
  }
  frame.datagram = payload;
  return frame;
}

std::vector<std::uint8_t> encode_live_frame(
    util::Timestamp timestamp, std::span<const std::uint8_t> datagram) {
  util::ByteWriter writer;
  writer.write_bytes(kFrameMagic);
  writer.write_u64(static_cast<std::uint64_t>(timestamp.count()));
  writer.write_bytes(datagram);
  return writer.take();
}

std::optional<std::uint32_t> quick_ipv4_source(
    std::span<const std::uint8_t> datagram) {
  // Mirrors the preconditions net::decode_ipv4 enforces before it reads
  // the source address: 20-byte minimum, version nibble 4. Everything
  // else (header length, total length, protocol) is left to the full
  // decoder — rejecting more here could disagree with it.
  if (datagram.size() < 20) return std::nullopt;
  if ((datagram[0] >> 4) != 4) return std::nullopt;
  return (static_cast<std::uint32_t>(datagram[12]) << 24) |
         (static_cast<std::uint32_t>(datagram[13]) << 16) |
         (static_cast<std::uint32_t>(datagram[14]) << 8) |
         static_cast<std::uint32_t>(datagram[15]);
}

}  // namespace quicsand::net::live
