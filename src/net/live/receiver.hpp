// Live UDP ingestion front-end: the telescope sensor's capture loop.
//
// One receiver thread drains the socket with batched recvmmsg, parses
// the QSL1 frame (or stamps arrival time), shards each datagram by the
// IPv4 source address — the same per-source partitioning the parallel
// pipeline uses, so per-shard sessionization stays exact — and hands it
// to that shard's bounded drop-oldest Ring. One worker thread per shard
// pops packets and invokes the caller's sink (classifier + online
// detector in `monitor --live`). Per-shard packet order is the socket
// arrival order, so each shard sees non-decreasing timestamps whenever
// the sender emits in time order.
//
// Accounting invariant (asserted end-to-end in tests/live_e2e_test.cpp):
//
//   sent == delivered + dropped_ring + dropped_kernel
//
// where dropped_kernel counts socket-buffer overflow (SO_RXQ_OVFL) and
// dropped_ring counts drop-oldest evictions. Undecodable payloads are
// *delivered* and counted, never fatal: the sensor must survive any
// bytes the internet throws at UDP/443.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/live/ring.hpp"
#include "net/live/socket.hpp"
#include "net/packet.hpp"
#include "obs/health.hpp"
#include "obs/hooks.hpp"

namespace quicsand::net::live {

struct LiveReceiverConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 picks an ephemeral port (see port())
  /// Analysis shards == worker threads == rings.
  std::size_t shards = 1;
  /// Per-shard ring capacity (rounded up to a power of two).
  std::size_t ring_capacity = std::size_t{1} << 16;
  /// SO_RCVBUF request; best effort (kernel clamps to rmem_max).
  std::size_t rcvbuf_bytes = std::size_t{1} << 22;
  /// Receiver poll timeout: the latency of noticing stop().
  util::Duration poll_timeout = 50 * util::kMillisecond;
  /// Record per-stage latency histograms for every Nth received
  /// datagram (deterministic 1-in-N; 0 disables sampling). Sampled
  /// packets cost two extra clock reads on the worker thread; the
  /// timing stamps themselves ride along on every packet.
  std::size_t latency_sample_every = 64;
  obs::Hooks obs;
};

/// Wall-clock stamps (microseconds since the epoch) one datagram picked
/// up on its way through the live path; -1 where unknown. send_wall_us
/// comes off the QSL2 header, so wire latency is only meaningful when
/// sender and receiver share a clock (loopback, or NTP-close hosts).
struct DatagramTiming {
  std::int64_t send_wall_us = -1;  ///< QSL2 sender stamp
  std::int64_t recv_wall_us = -1;  ///< socket batch arrival
  bool sampled = false;  ///< selected for per-stage histogram recording
};

class LiveReceiver {
 public:
  /// Invoked on the shard's worker thread, packets in arrival order.
  /// The sink owns per-shard state (classifier, detector shard) and
  /// needs no locking as long as it keeps shards independent. `timing`
  /// carries the datagram's wire/arrival stamps for detection-latency
  /// accounting downstream.
  using Sink = std::function<void(std::size_t shard,
                                  const net::RawPacket& packet,
                                  const DatagramTiming& timing)>;

  explicit LiveReceiver(LiveReceiverConfig config);
  ~LiveReceiver();

  LiveReceiver(const LiveReceiver&) = delete;
  LiveReceiver& operator=(const LiveReceiver&) = delete;

  /// Bind and spawn the receiver + worker threads. False (with
  /// last_error() set) when the socket cannot be bound.
  bool start(Sink sink);

  /// Stop receiving, drain every ring through the sinks, join all
  /// threads. Idempotent; also called by the destructor.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_relaxed);
  }
  /// Actual bound port (resolves port 0 after start()).
  [[nodiscard]] std::uint16_t port() const { return socket_.local_port(); }
  [[nodiscard]] const std::string& last_error() const { return error_; }
  [[nodiscard]] std::size_t shard_count() const { return config_.shards; }

  // Accounting (monotonic, readable while running).
  [[nodiscard]] std::uint64_t received() const {
    return received_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped_ring() const {
    return dropped_ring_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped_kernel() const {
    return dropped_kernel_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped_total() const {
    return dropped_ring() + dropped_kernel();
  }
  [[nodiscard]] std::uint64_t undecodable() const {
    return undecodable_.load(std::memory_order_relaxed);
  }

 private:
  /// Ring element: the packet plus its lifecycle stamps.
  struct TimedPacket {
    net::RawPacket packet;
    DatagramTiming timing;
  };

  /// Per-shard pipeline-lag watermarks, padded to a cache line: the
  /// receive loop advances `enqueued_event_us`, the shard worker
  /// advances `processed_event_us`, and their difference is the shard's
  /// event-time lag gauge. `ring_high_water` is the largest ring
  /// occupancy the receive loop has observed.
  struct alignas(64) ShardWatermark {
    std::atomic<std::int64_t> enqueued_event_us{0};
    std::atomic<std::int64_t> processed_event_us{0};
    std::atomic<std::uint64_t> ring_high_water{0};
  };

  void receive_loop();
  void worker_loop(std::size_t shard);

  LiveReceiverConfig config_;
  Sink sink_;
  UdpSocket socket_;
  std::string error_;
  std::vector<std::unique_ptr<Ring<TimedPacket>>> rings_;
  std::vector<std::unique_ptr<ShardWatermark>> watermarks_;
  std::thread receive_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_ring_{0};
  std::atomic<std::uint64_t> dropped_kernel_{0};
  std::atomic<std::uint64_t> undecodable_{0};

  // Resolved metric handles; nullptr without an attached registry.
  obs::Counter* received_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Counter* delivered_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;        ///< live.dropped_packets
  obs::Counter* dropped_ring_counter_ = nullptr;
  obs::Counter* dropped_kernel_counter_ = nullptr;
  obs::Counter* undecodable_counter_ = nullptr;
  obs::Histogram* batch_hist_ = nullptr;
  obs::Gauge* ring_depth_gauge_ = nullptr;
  // Per-stage latency histograms for sampled datagrams.
  obs::LatencyHistogram* wire_latency_ = nullptr;     ///< send -> arrival
  obs::LatencyHistogram* ring_latency_ = nullptr;     ///< arrival -> pop
  obs::LatencyHistogram* process_latency_ = nullptr;  ///< pop -> sink done
  obs::LatencyHistogram* e2e_latency_ = nullptr;      ///< send -> sink done
  // Per-shard watermark gauges, indexed by shard.
  std::vector<obs::Gauge*> shard_lag_gauges_;
  std::vector<obs::Gauge*> shard_high_water_gauges_;
  obs::Health::Component* receiver_health_ = nullptr;
  obs::Health::Component* workers_health_ = nullptr;
};

}  // namespace quicsand::net::live
