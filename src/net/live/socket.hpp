// Non-blocking UDP socket with batched I/O for the live capture path.
//
// Receive side: poll() + recvmmsg drains up to ReceiveBatch::kMax
// datagrams per syscall; SO_RXQ_OVFL ancillary data reports datagrams
// the kernel dropped because the socket buffer overflowed, so the
// monitor can account for every packet a sender claims to have sent
// (sent == delivered + ring drops + kernel drops). Send side: sendmmsg
// in batches with EAGAIN backoff through poll(POLLOUT).
//
// recvmmsg/sendmmsg are Linux syscalls; on other platforms the batch
// calls degrade to a recvfrom/sendto loop with identical semantics
// (minus the kernel-drop counter, which then stays 0).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace quicsand::net::live {

/// Reusable receive buffers for one recvmmsg batch (allocated once,
/// refilled every call — the hot loop never allocates).
struct ReceiveBatch {
  static constexpr std::size_t kMax = 64;
  /// Largest payload we accept: QSL1 header + an MTU-sized datagram.
  static constexpr std::size_t kBufferSize = 2048;

  std::array<std::array<std::uint8_t, kBufferSize>, kMax> buffers;
  std::array<std::size_t, kMax> lengths{};  ///< valid payload bytes
  std::size_t count = 0;                    ///< messages received

  [[nodiscard]] std::span<const std::uint8_t> payload(std::size_t i) const {
    return {buffers[i].data(), lengths[i]};
  }
};

class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Bind a non-blocking receive socket. `port` 0 picks an ephemeral
  /// port (see local_port()). `rcvbuf_bytes` is requested via SO_RCVBUF
  /// (the kernel may clamp it). Returns false with last_error() set.
  bool bind(const std::string& host, std::uint16_t port,
            std::size_t rcvbuf_bytes);

  /// Open a blocking send socket aimed at host:port. Returns false with
  /// last_error() set (resolution failure, etc.).
  bool connect(const std::string& host, std::uint16_t port);

  /// Drain up to ReceiveBatch::kMax datagrams. Waits at most
  /// `poll_timeout` for the first one; returns the number received
  /// (0 on timeout) or -1 on a fatal socket error. Kernel-dropped
  /// datagram count (SO_RXQ_OVFL delta) is accumulated into
  /// *kernel_dropped when non-null.
  int receive_batch(ReceiveBatch* batch, util::Duration poll_timeout,
                    std::uint64_t* kernel_dropped);

  /// Send every payload (blocking, batched). Returns the number the
  /// kernel accepted; anything less means a fatal error mid-batch.
  std::size_t send_batch(std::span<const std::vector<std::uint8_t>> payloads);

  /// Wake any receive_batch() poll immediately (e.g. from stop()).
  void shutdown_receive();

  void close();
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] std::uint16_t local_port() const { return port_; }
  [[nodiscard]] const std::string& last_error() const { return error_; }

 private:
  bool set_error(const std::string& what);

  int fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::uint32_t last_ovfl_ = 0;  ///< cumulative SO_RXQ_OVFL counter
  bool seen_ovfl_ = false;
  std::string error_;
};

}  // namespace quicsand::net::live
