#include "net/live/receiver.hpp"

#include <algorithm>
#include <chrono>

#include "net/live/frame.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

// Arrival timestamps come from frame.hpp's wall_clock_us()
// (CLOCK_REALTIME): live capture is the one place the pipeline
// legitimately reads the wall clock — everything downstream still only
// sees util::Timestamp, and send/arrival stamps stay in one clock
// domain.

namespace quicsand::net::live {

LiveReceiver::LiveReceiver(LiveReceiverConfig config)
    : config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  if (auto* metrics = config_.obs.metrics) {
    received_counter_ =
        &metrics->counter("live.received_packets",
                          "datagrams read from the live UDP socket");
    bytes_counter_ = &metrics->counter("live.received_bytes",
                                       "payload bytes read from the socket");
    delivered_counter_ =
        &metrics->counter("live.delivered_packets",
                          "datagrams handed to a shard sink");
    dropped_counter_ = &metrics->counter(
        "live.dropped_packets",
        "datagrams lost before analysis (ring evictions + kernel overflow)");
    dropped_ring_counter_ = &metrics->counter(
        "live.dropped_ring", "drop-oldest ring evictions");
    dropped_kernel_counter_ = &metrics->counter(
        "live.dropped_kernel", "socket-buffer overflow (SO_RXQ_OVFL)");
    undecodable_counter_ = &metrics->counter(
        "live.undecodable", "payloads without a plausible IPv4 header");
    batch_hist_ = &metrics->histogram("live.batch_packets",
                                      obs::size_bounds(),
                                      "datagrams per recvmmsg batch");
    ring_depth_gauge_ = &metrics->gauge(
        "live.ring_depth", "occupancy of the fullest shard ring");
    wire_latency_ = &metrics->latency(
        "live.latency.wire_us",
        "QSL2 send stamp -> socket arrival, sampled (us; loopback clock)");
    ring_latency_ = &metrics->latency(
        "live.latency.ring_us",
        "socket arrival -> shard worker pop, sampled (us)");
    process_latency_ = &metrics->latency(
        "live.latency.process_us",
        "shard worker pop -> sink return, sampled (us)");
    e2e_latency_ = &metrics->latency(
        "live.latency.e2e_us",
        "wire send (or arrival) -> sink return, sampled (us)");
    shard_lag_gauges_.reserve(config_.shards);
    shard_high_water_gauges_.reserve(config_.shards);
    for (std::size_t i = 0; i < config_.shards; ++i) {
      const auto prefix = "live.shard" + std::to_string(i);
      shard_lag_gauges_.push_back(&metrics->gauge(
          prefix + ".lag_us",
          "event-time skew: newest enqueued minus newest processed (us)"));
      shard_high_water_gauges_.push_back(&metrics->gauge(
          prefix + ".ring_high_water",
          "largest ring occupancy observed on this shard"));
    }
  }
  if (auto* health = config_.obs.health) {
    receiver_health_ = &health->component("live_receiver");
    workers_health_ = &health->component("live_workers");
  }
}

LiveReceiver::~LiveReceiver() { stop(); }

bool LiveReceiver::start(Sink sink) {
  if (running_.load(std::memory_order_relaxed)) return true;
  sink_ = std::move(sink);
  if (!socket_.bind(config_.host, config_.port, config_.rcvbuf_bytes)) {
    error_ = socket_.last_error();
    return false;
  }
  stopping_.store(false, std::memory_order_relaxed);
  rings_.clear();
  rings_.reserve(config_.shards);
  watermarks_.clear();
  watermarks_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    rings_.push_back(
        std::make_unique<Ring<TimedPacket>>(config_.ring_capacity));
    watermarks_.push_back(std::make_unique<ShardWatermark>());
  }
  running_.store(true, std::memory_order_relaxed);
  if (receiver_health_ != nullptr) receiver_health_->set_ready(true);
  if (workers_health_ != nullptr) workers_health_->set_ready(true);
  receive_thread_ = std::thread([this] { receive_loop(); });
  workers_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  return true;
}

void LiveReceiver::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  stopping_.store(true, std::memory_order_relaxed);
  socket_.shutdown_receive();
  if (receive_thread_.joinable()) receive_thread_.join();
  // receive_loop closed every ring on exit; workers drain and leave.
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  socket_.close();
  if (receiver_health_ != nullptr) receiver_health_->set_idle(true);
  if (workers_health_ != nullptr) workers_health_->set_idle(true);
  running_.store(false, std::memory_order_relaxed);
}

void LiveReceiver::receive_loop() {
  ReceiveBatch batch;
  std::uint64_t seen = 0;  ///< datagrams parsed, for 1-in-N sampling
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::uint64_t kernel_delta = 0;
    const int n =
        socket_.receive_batch(&batch, config_.poll_timeout, &kernel_delta);
    if (kernel_delta > 0) {
      dropped_kernel_.fetch_add(kernel_delta, std::memory_order_relaxed);
      if (dropped_kernel_counter_ != nullptr) {
        dropped_kernel_counter_->add(kernel_delta);
      }
      if (dropped_counter_ != nullptr) dropped_counter_->add(kernel_delta);
    }
    if (receiver_health_ != nullptr) receiver_health_->heartbeat();
    if (n < 0) break;      // fatal socket error; stop() still joins cleanly
    if (n == 0) continue;  // timeout or wake
    if (batch_hist_ != nullptr) {
      batch_hist_->observe(static_cast<std::uint64_t>(n));
    }
    // One wall-clock read stamps the whole recvmmsg batch: the spread
    // within a batch is microseconds, far below queueing latency.
    const std::int64_t recv_wall = wall_clock_us();
    std::uint64_t bytes = 0;
    for (std::size_t i = 0; i < batch.count; ++i) {
      const auto payload = batch.payload(i);
      bytes += payload.size();
      const LiveFrame frame = parse_live_frame(payload);
      const util::Timestamp timestamp =
          frame.encapsulated ? frame.timestamp : util::Timestamp{recv_wall};
      std::size_t shard = 0;
      if (const auto src = quick_ipv4_source(frame.datagram)) {
        shard = config_.shards == 1
                    ? 0
                    : static_cast<std::size_t>(util::mix64(*src, 0x1157)) %
                          config_.shards;
      } else {
        undecodable_.fetch_add(1, std::memory_order_relaxed);
        if (undecodable_counter_ != nullptr) undecodable_counter_->add();
      }
      received_.fetch_add(1, std::memory_order_relaxed);
      TimedPacket timed{
          net::RawPacket(timestamp,
                         {frame.datagram.begin(), frame.datagram.end()}),
          DatagramTiming{frame.send_wall_us, recv_wall,
                         config_.latency_sample_every > 0 &&
                             seen++ % config_.latency_sample_every == 0}};
      if (frame.send_wall_us >= 0 && wire_latency_ != nullptr &&
          timed.timing.sampled) {
        const std::int64_t wire = recv_wall - frame.send_wall_us;
        wire_latency_->record(
            static_cast<std::uint64_t>(std::max<std::int64_t>(wire, 0)));
      }
      watermarks_[shard]->enqueued_event_us.store(timestamp.count(),
                                                 std::memory_order_relaxed);
      const auto evicted =
          rings_[shard]->push_drop_oldest(std::move(timed));
      if (evicted > 0) {
        dropped_ring_.fetch_add(evicted, std::memory_order_relaxed);
        if (dropped_ring_counter_ != nullptr) {
          dropped_ring_counter_->add(evicted);
        }
        if (dropped_counter_ != nullptr) dropped_counter_->add(evicted);
      }
    }
    if (received_counter_ != nullptr) received_counter_->add(batch.count);
    if (bytes_counter_ != nullptr) bytes_counter_->add(bytes);
    if (ring_depth_gauge_ != nullptr) {
      std::size_t depth = 0;
      for (std::size_t s = 0; s < rings_.size(); ++s) {
        const std::size_t size = rings_[s]->size();
        depth = std::max(depth, size);
        auto& mark = *watermarks_[s];
        if (size > mark.ring_high_water.load(std::memory_order_relaxed)) {
          mark.ring_high_water.store(size, std::memory_order_relaxed);
        }
        if (s < shard_high_water_gauges_.size()) {
          shard_high_water_gauges_[s]->set(static_cast<std::int64_t>(
              mark.ring_high_water.load(std::memory_order_relaxed)));
        }
        if (s < shard_lag_gauges_.size()) {
          const std::int64_t lag =
              mark.enqueued_event_us.load(std::memory_order_relaxed) -
              mark.processed_event_us.load(std::memory_order_relaxed);
          shard_lag_gauges_[s]->set(std::max<std::int64_t>(lag, 0));
        }
      }
      ring_depth_gauge_->set(static_cast<std::int64_t>(depth));
    }
  }
  for (auto& ring : rings_) ring->close();
}

void LiveReceiver::worker_loop(std::size_t shard) {
  auto& ring = *rings_[shard];
  auto& mark = *watermarks_[shard];
  std::uint64_t handled = 0;
  bool draining = false;
  for (;;) {
    if (auto timed = ring.try_pop()) {
      delivered_.fetch_add(1, std::memory_order_relaxed);
      if (delivered_counter_ != nullptr) delivered_counter_->add();
      if (timed->timing.sampled && ring_latency_ != nullptr) {
        // Sampled path: two extra clock reads bracket the sink call and
        // feed the queue/process/end-to-end histograms.
        const std::int64_t popped = wall_clock_us();
        ring_latency_->record(static_cast<std::uint64_t>(
            std::max<std::int64_t>(popped - timed->timing.recv_wall_us, 0)));
        if (sink_) sink_(shard, timed->packet, timed->timing);
        const std::int64_t done = wall_clock_us();
        process_latency_->record(
            static_cast<std::uint64_t>(std::max<std::int64_t>(done - popped, 0)));
        const std::int64_t origin = timed->timing.send_wall_us >= 0
                                        ? timed->timing.send_wall_us
                                        : timed->timing.recv_wall_us;
        e2e_latency_->record(
            static_cast<std::uint64_t>(std::max<std::int64_t>(done - origin, 0)));
      } else if (sink_) {
        sink_(shard, timed->packet, timed->timing);
      }
      mark.processed_event_us.store(timed->packet.timestamp.count(),
                                    std::memory_order_relaxed);
      if (workers_health_ != nullptr && (++handled & 0xFFF) == 0) {
        workers_health_->heartbeat();
      }
      continue;
    }
    // A miss then break on closed() would strand packets published
    // between the miss and the close. close() is ordered after every
    // push, so one more drain pass after observing it sees them all.
    if (draining) break;
    if (ring.closed()) {
      draining = true;
      continue;
    }
    if (workers_health_ != nullptr) workers_health_->heartbeat();
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

}  // namespace quicsand::net::live
