#include "net/live/receiver.hpp"

#include <algorithm>
#include <chrono>
#include <ctime>

#include "net/live/frame.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace quicsand::net::live {

namespace {

/// Arrival timestamp for non-encapsulated payloads: epoch microseconds
/// from CLOCK_REALTIME. Live capture is the one place the pipeline
/// legitimately reads the wall clock — everything downstream still only
/// sees util::Timestamp.
util::Timestamp wall_clock_now() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return util::Timestamp{ts.tv_sec * util::kSecond.count() +
                         ts.tv_nsec / 1000};
}

}  // namespace

LiveReceiver::LiveReceiver(LiveReceiverConfig config)
    : config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  if (auto* metrics = config_.obs.metrics) {
    received_counter_ =
        &metrics->counter("live.received_packets",
                          "datagrams read from the live UDP socket");
    bytes_counter_ = &metrics->counter("live.received_bytes",
                                       "payload bytes read from the socket");
    delivered_counter_ =
        &metrics->counter("live.delivered_packets",
                          "datagrams handed to a shard sink");
    dropped_counter_ = &metrics->counter(
        "live.dropped_packets",
        "datagrams lost before analysis (ring evictions + kernel overflow)");
    dropped_ring_counter_ = &metrics->counter(
        "live.dropped_ring", "drop-oldest ring evictions");
    dropped_kernel_counter_ = &metrics->counter(
        "live.dropped_kernel", "socket-buffer overflow (SO_RXQ_OVFL)");
    undecodable_counter_ = &metrics->counter(
        "live.undecodable", "payloads without a plausible IPv4 header");
    batch_hist_ = &metrics->histogram("live.batch_packets",
                                      obs::size_bounds(),
                                      "datagrams per recvmmsg batch");
    ring_depth_gauge_ = &metrics->gauge(
        "live.ring_depth", "occupancy of the fullest shard ring");
  }
  if (auto* health = config_.obs.health) {
    receiver_health_ = &health->component("live_receiver");
    workers_health_ = &health->component("live_workers");
  }
}

LiveReceiver::~LiveReceiver() { stop(); }

bool LiveReceiver::start(Sink sink) {
  if (running_.load(std::memory_order_relaxed)) return true;
  sink_ = std::move(sink);
  if (!socket_.bind(config_.host, config_.port, config_.rcvbuf_bytes)) {
    error_ = socket_.last_error();
    return false;
  }
  stopping_.store(false, std::memory_order_relaxed);
  rings_.clear();
  rings_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    rings_.push_back(
        std::make_unique<Ring<net::RawPacket>>(config_.ring_capacity));
  }
  running_.store(true, std::memory_order_relaxed);
  if (receiver_health_ != nullptr) receiver_health_->set_ready(true);
  if (workers_health_ != nullptr) workers_health_->set_ready(true);
  receive_thread_ = std::thread([this] { receive_loop(); });
  workers_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  return true;
}

void LiveReceiver::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  stopping_.store(true, std::memory_order_relaxed);
  socket_.shutdown_receive();
  if (receive_thread_.joinable()) receive_thread_.join();
  // receive_loop closed every ring on exit; workers drain and leave.
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  socket_.close();
  if (receiver_health_ != nullptr) receiver_health_->set_idle(true);
  if (workers_health_ != nullptr) workers_health_->set_idle(true);
  running_.store(false, std::memory_order_relaxed);
}

void LiveReceiver::receive_loop() {
  ReceiveBatch batch;
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::uint64_t kernel_delta = 0;
    const int n =
        socket_.receive_batch(&batch, config_.poll_timeout, &kernel_delta);
    if (kernel_delta > 0) {
      dropped_kernel_.fetch_add(kernel_delta, std::memory_order_relaxed);
      if (dropped_kernel_counter_ != nullptr) {
        dropped_kernel_counter_->add(kernel_delta);
      }
      if (dropped_counter_ != nullptr) dropped_counter_->add(kernel_delta);
    }
    if (receiver_health_ != nullptr) receiver_health_->heartbeat();
    if (n < 0) break;      // fatal socket error; stop() still joins cleanly
    if (n == 0) continue;  // timeout or wake
    if (batch_hist_ != nullptr) {
      batch_hist_->observe(static_cast<std::uint64_t>(n));
    }
    std::uint64_t bytes = 0;
    for (std::size_t i = 0; i < batch.count; ++i) {
      const auto payload = batch.payload(i);
      bytes += payload.size();
      const LiveFrame frame = parse_live_frame(payload);
      const util::Timestamp timestamp =
          frame.encapsulated ? frame.timestamp : wall_clock_now();
      std::size_t shard = 0;
      if (const auto src = quick_ipv4_source(frame.datagram)) {
        shard = config_.shards == 1
                    ? 0
                    : static_cast<std::size_t>(util::mix64(*src, 0x1157)) %
                          config_.shards;
      } else {
        undecodable_.fetch_add(1, std::memory_order_relaxed);
        if (undecodable_counter_ != nullptr) undecodable_counter_->add();
      }
      received_.fetch_add(1, std::memory_order_relaxed);
      net::RawPacket packet(
          timestamp, {frame.datagram.begin(), frame.datagram.end()});
      const auto evicted =
          rings_[shard]->push_drop_oldest(std::move(packet));
      if (evicted > 0) {
        dropped_ring_.fetch_add(evicted, std::memory_order_relaxed);
        if (dropped_ring_counter_ != nullptr) {
          dropped_ring_counter_->add(evicted);
        }
        if (dropped_counter_ != nullptr) dropped_counter_->add(evicted);
      }
    }
    if (received_counter_ != nullptr) received_counter_->add(batch.count);
    if (bytes_counter_ != nullptr) bytes_counter_->add(bytes);
    if (ring_depth_gauge_ != nullptr) {
      std::size_t depth = 0;
      for (const auto& ring : rings_) {
        depth = std::max(depth, ring->size());
      }
      ring_depth_gauge_->set(static_cast<std::int64_t>(depth));
    }
  }
  for (auto& ring : rings_) ring->close();
}

void LiveReceiver::worker_loop(std::size_t shard) {
  auto& ring = *rings_[shard];
  std::uint64_t handled = 0;
  bool draining = false;
  for (;;) {
    if (auto packet = ring.try_pop()) {
      delivered_.fetch_add(1, std::memory_order_relaxed);
      if (delivered_counter_ != nullptr) delivered_counter_->add();
      if (sink_) sink_(shard, *packet);
      if (workers_health_ != nullptr && (++handled & 0xFFF) == 0) {
        workers_health_->heartbeat();
      }
      continue;
    }
    // A miss then break on closed() would strand packets published
    // between the miss and the close. close() is ordered after every
    // push, so one more drain pass after observing it sees them all.
    if (draining) break;
    if (ring.closed()) {
      draining = true;
      continue;
    }
    if (workers_health_ != nullptr) workers_health_->heartbeat();
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

}  // namespace quicsand::net::live
