#include "net/live/socket.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace quicsand::net::live {

namespace {

bool resolve(const std::string& host, std::uint16_t port, sockaddr_in* out,
             std::string* error) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    out->sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  if (inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1) return true;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_DGRAM;
  addrinfo* result = nullptr;
  if (getaddrinfo(host.c_str(), nullptr, &hints, &result) != 0 ||
      result == nullptr) {
    *error = "cannot resolve host '" + host + "'";
    return false;
  }
  out->sin_addr =
      reinterpret_cast<const sockaddr_in*>(result->ai_addr)->sin_addr;
  freeaddrinfo(result);
  return true;
}

}  // namespace

UdpSocket::~UdpSocket() { close(); }

bool UdpSocket::set_error(const std::string& what) {
  error_ = what + ": " + std::strerror(errno);
  return false;
}

bool UdpSocket::bind(const std::string& host, std::uint16_t port,
                     std::size_t rcvbuf_bytes) {
  close();
  sockaddr_in addr{};
  if (!resolve(host, port, &addr, &error_)) return false;
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0) return set_error("socket");
  if (rcvbuf_bytes > 0) {
    // Best effort: the kernel clamps to net.core.rmem_max. A small
    // buffer only raises the kernel-drop counter, never loses accounting.
    const int bytes = static_cast<int>(rcvbuf_bytes);
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
  }
#ifdef SO_RXQ_OVFL
  {
    const int on = 1;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RXQ_OVFL, &on, sizeof(on));
  }
#endif
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    set_error("bind " + host + ":" + std::to_string(port));
    close();
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    set_error("getsockname");
    close();
    return false;
  }
  port_ = ntohs(bound.sin_port);
  if (::pipe(wake_pipe_) != 0) {
    set_error("pipe");
    close();
    return false;
  }
  (void)::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
  last_ovfl_ = 0;
  seen_ovfl_ = false;
  error_.clear();
  return true;
}

bool UdpSocket::connect(const std::string& host, std::uint16_t port) {
  close();
  sockaddr_in addr{};
  if (!resolve(host, port, &addr, &error_)) return false;
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return set_error("socket");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    set_error("connect " + host + ":" + std::to_string(port));
    close();
    return false;
  }
  error_.clear();
  return true;
}

void UdpSocket::shutdown_receive() {
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
}

void UdpSocket::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  port_ = 0;
}

int UdpSocket::receive_batch(ReceiveBatch* batch, util::Duration poll_timeout,
                             std::uint64_t* kernel_dropped) {
  batch->count = 0;
  if (fd_ < 0) return -1;

  pollfd fds[2];
  fds[0] = {fd_, POLLIN, 0};
  fds[1] = {wake_pipe_[0], POLLIN, 0};
  const int timeout_ms =
      static_cast<int>(poll_timeout.count() / util::kMillisecond.count());
  const int ready = ::poll(fds, 2, timeout_ms);
  if (ready < 0) return errno == EINTR ? 0 : -1;
  if (ready == 0 || (fds[0].revents & POLLIN) == 0) {
    if ((fds[1].revents & POLLIN) != 0) {
      char sink[16];
      (void)!::read(wake_pipe_[0], sink, sizeof(sink));
    }
    return 0;
  }

#if defined(__linux__)
  mmsghdr msgs[ReceiveBatch::kMax];
  iovec iovs[ReceiveBatch::kMax];
  alignas(cmsghdr) std::uint8_t cmsg_space[ReceiveBatch::kMax][64];
  for (std::size_t i = 0; i < ReceiveBatch::kMax; ++i) {
    iovs[i] = {batch->buffers[i].data(), ReceiveBatch::kBufferSize};
    std::memset(&msgs[i], 0, sizeof(msgs[i]));
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
    msgs[i].msg_hdr.msg_control = cmsg_space[i];
    msgs[i].msg_hdr.msg_controllen = sizeof(cmsg_space[i]);
  }
  const int n = ::recvmmsg(fd_, msgs, ReceiveBatch::kMax, 0, nullptr);
  if (n < 0) {
    return (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) ? 0
                                                                       : -1;
  }
  for (int i = 0; i < n; ++i) {
    batch->lengths[static_cast<std::size_t>(i)] = msgs[i].msg_len;
#ifdef SO_RXQ_OVFL
    for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msgs[i].msg_hdr); cmsg != nullptr;
         cmsg = CMSG_NXTHDR(&msgs[i].msg_hdr, cmsg)) {
      if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SO_RXQ_OVFL) {
        std::uint32_t total = 0;
        std::memcpy(&total, CMSG_DATA(cmsg),  // lint:allow(raw-memcpy)
                    sizeof(total));
        // The kernel reports a cumulative per-socket counter; export
        // the delta since the last message that carried one.
        if (kernel_dropped != nullptr && seen_ovfl_) {
          *kernel_dropped += total - last_ovfl_;
        } else if (kernel_dropped != nullptr) {
          *kernel_dropped += total;
        }
        last_ovfl_ = total;
        seen_ovfl_ = true;
      }
    }
#endif
  }
  batch->count = static_cast<std::size_t>(n);
  return n;
#else
  (void)kernel_dropped;
  int n = 0;
  while (n < static_cast<int>(ReceiveBatch::kMax)) {
    const ssize_t got =
        ::recv(fd_, batch->buffers[static_cast<std::size_t>(n)].data(),
               ReceiveBatch::kBufferSize, 0);
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      return n > 0 ? n : -1;
    }
    batch->lengths[static_cast<std::size_t>(n)] =
        static_cast<std::size_t>(got);
    ++n;
  }
  batch->count = static_cast<std::size_t>(n);
  return n;
#endif
}

std::size_t UdpSocket::send_batch(
    std::span<const std::vector<std::uint8_t>> payloads) {
  if (fd_ < 0) return 0;
  std::size_t sent = 0;
#if defined(__linux__)
  while (sent < payloads.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(payloads.size() - sent, ReceiveBatch::kMax);
    mmsghdr msgs[ReceiveBatch::kMax];
    iovec iovs[ReceiveBatch::kMax];
    for (std::size_t i = 0; i < chunk; ++i) {
      const auto& payload = payloads[sent + i];
      iovs[i] = {const_cast<std::uint8_t*>(payload.data()), payload.size()};
      std::memset(&msgs[i], 0, sizeof(msgs[i]));
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    const int n = ::sendmmsg(fd_, msgs, static_cast<unsigned>(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pfd{fd_, POLLOUT, 0};
        (void)::poll(&pfd, 1, 100);
        continue;
      }
      set_error("sendmmsg");
      return sent;
    }
    sent += static_cast<std::size_t>(n);
  }
#else
  for (const auto& payload : payloads) {
    if (::send(fd_, payload.data(), payload.size(), 0) < 0) {
      if (errno == EINTR) continue;
      set_error("send");
      return sent;
    }
    ++sent;
  }
#endif
  return sent;
}

}  // namespace quicsand::net::live
