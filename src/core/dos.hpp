// DoS attack inference over backscatter sessions (§5.2).
//
// A response session is an attack when it exceeds Moore et al.'s
// thresholds: more than 25 packets, longer than 60 seconds, and a
// 1-minute peak rate above 0.5 packets/second. Appendix B's sensitivity
// study multiplies every threshold by a weight w; weight(w) reproduces
// that sweep.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/sessions.hpp"

namespace quicsand::core {

struct DosThresholds {
  double min_packets = 25;
  double min_duration_s = 60;
  double min_peak_pps = 0.5;

  /// Moore et al. thresholds scaled by `w` (Figure 10).
  [[nodiscard]] DosThresholds weighted(double w) const {
    return {min_packets * w, min_duration_s * w, min_peak_pps * w};
  }
};

struct DetectedAttack {
  std::size_t session_index = 0;  ///< into the analyzed session span
  net::Ipv4Address victim;        ///< the backscatter source
  util::Timestamp start = 0;
  util::Timestamp end = 0;
  std::uint64_t packets = 0;
  double peak_pps = 0;

  [[nodiscard]] util::Duration duration() const { return end - start; }
  [[nodiscard]] bool overlaps(const DetectedAttack& other,
                              util::Duration min_overlap) const {
    const auto lo = std::max(start, other.start);
    const auto hi = std::min(end, other.end);
    return hi - lo >= min_overlap;
  }
};

/// Select the sessions exceeding all thresholds.
std::vector<DetectedAttack> detect_attacks(std::span<const Session> sessions,
                                           const DosThresholds& thresholds);

/// Summary of the sessions NOT classified as attacks (Appendix B checks
/// their median intensity/duration/packets).
struct ExcludedSummary {
  std::uint64_t count = 0;
  double median_packets = 0;
  double median_duration_s = 0;
  double median_peak_pps = 0;
};

ExcludedSummary summarize_excluded(std::span<const Session> sessions,
                                   const DosThresholds& thresholds);

}  // namespace quicsand::core
