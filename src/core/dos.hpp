// DoS attack inference over backscatter sessions (§5.2).
//
// A response session is an attack when it exceeds Moore et al.'s
// thresholds: more than 25 packets, longer than 60 seconds, and a
// 1-minute peak rate above 0.5 packets/second. Appendix B's sensitivity
// study multiplies every threshold by a weight w; weight(w) reproduces
// that sweep.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/sessions.hpp"

namespace quicsand::core {

struct DosThresholds {
  double min_packets = 25;
  double min_duration_s = 60;
  Pps min_peak_pps{0.5};

  /// Moore et al. thresholds scaled by `w` (Figure 10).
  [[nodiscard]] DosThresholds weighted(double w) const {
    return {min_packets * w, min_duration_s * w, min_peak_pps * w};
  }

  /// The attack test itself (shared by the batch, parallel and online
  /// detectors): every threshold must be strictly exceeded.
  [[nodiscard]] bool admits(const Session& session) const;
};

struct DetectedAttack {
  std::size_t session_index = 0;  ///< into the analyzed session span
  net::Ipv4Address victim;        ///< the backscatter source
  util::Timestamp start{};
  util::Timestamp end{};
  PacketCount packets{};
  Pps peak_pps{};

  [[nodiscard]] util::Duration duration() const { return end - start; }
  [[nodiscard]] bool overlaps(const DetectedAttack& other,
                              util::Duration min_overlap) const {
    const auto lo = std::max(start, other.start);
    const auto hi = std::min(end, other.end);
    return hi - lo >= min_overlap;
  }

  friend bool operator==(const DetectedAttack&,
                         const DetectedAttack&) = default;
};

/// Select the sessions exceeding all thresholds.
std::vector<DetectedAttack> detect_attacks(std::span<const Session> sessions,
                                           const DosThresholds& thresholds);

/// Combine per-shard detect_attacks() outputs into the list the serial
/// detector would produce over the merged session list: session_index is
/// remapped through `global_index` (from merge_sessions) and the attacks
/// ordered by their merged session position.
std::vector<DetectedAttack> merge_attacks(
    std::vector<std::vector<DetectedAttack>> parts,
    const std::vector<std::vector<std::size_t>>& global_index);

/// Summary of the sessions NOT classified as attacks (Appendix B checks
/// their median intensity/duration/packets).
struct ExcludedSummary {
  std::uint64_t count = 0;
  double median_packets = 0;
  double median_duration_s = 0;
  double median_peak_pps = 0;  ///< median of peak rates, in pps
};

ExcludedSummary summarize_excluded(std::span<const Session> sessions,
                                   const DosThresholds& thresholds);

}  // namespace quicsand::core
