// Strong units for the analysis axes (§5).
//
// The DoS thresholds mix packet counts, seconds and packets-per-second in
// adjacent arithmetic; tagging each axis makes a unit mix-up (comparing a
// packet count against a pps threshold, say) a compile error instead of a
// silently different attack count. Time axes live in util/time.hpp
// (Timestamp, Duration, MinuteBin, HourBin).
#pragma once

#include <cstdint>

#include "util/strong.hpp"

namespace quicsand::core {

struct PacketCountTag {};
/// Number of packets (sessions, attacks, minute slots).
using PacketCount = util::Strong<PacketCountTag, std::uint64_t>;

struct PpsTag {};
/// Packet rate in packets per second.
using Pps = util::Strong<PpsTag, double>;

/// The rate of `packets` arriving within one minute (the Fig. 6/10 peak
/// intensity definition).
constexpr Pps per_minute_rate(std::uint64_t packets) {
  return Pps{static_cast<double>(packets) / 60.0};
}

}  // namespace quicsand::core
