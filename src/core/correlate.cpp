#include "core/correlate.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace quicsand::core {

const char* relation_name(Relation relation) {
  switch (relation) {
    case Relation::kConcurrent:
      return "concurrent";
    case Relation::kSequential:
      return "sequential";
    case Relation::kIsolated:
      return "isolated";
  }
  return "?";
}

double MultiVectorReport::share(Relation relation) const {
  if (total() == 0) return 0;
  const std::uint64_t count = relation == Relation::kConcurrent ? concurrent
                              : relation == Relation::kSequential
                                  ? sequential
                                  : isolated;
  return static_cast<double>(count) / static_cast<double>(total());
}

std::vector<double> MultiVectorReport::overlap_shares() const {
  std::vector<double> out;
  for (const auto& c : per_attack) {
    if (c.relation == Relation::kConcurrent) out.push_back(c.overlap_share);
  }
  return out;
}

std::vector<double> MultiVectorReport::gaps_seconds() const {
  std::vector<double> out;
  for (const auto& c : per_attack) {
    if (c.relation == Relation::kSequential) {
      out.push_back(util::to_seconds(c.gap));
    }
  }
  return out;
}

MultiVectorReport correlate_attacks(
    std::span<const DetectedAttack> quic_attacks,
    std::span<const DetectedAttack> common_attacks,
    util::Duration min_overlap) {
  // Index TCP/ICMP attacks per victim, time-sorted.
  std::unordered_map<std::uint32_t, std::vector<const DetectedAttack*>>
      by_victim;
  for (const auto& attack : common_attacks) {
    by_victim[attack.victim.value()].push_back(&attack);
  }
  for (auto& [victim, list] : by_victim) {
    std::sort(list.begin(), list.end(),
              [](const DetectedAttack* a, const DetectedAttack* b) {
                return a->start < b->start;
              });
  }

  MultiVectorReport report;
  report.per_attack.reserve(quic_attacks.size());
  for (std::size_t i = 0; i < quic_attacks.size(); ++i) {
    const auto& quic = quic_attacks[i];
    AttackCorrelation correlation;
    correlation.quic_attack_index = i;

    const auto it = by_victim.find(quic.victim.value());
    if (it == by_victim.end()) {
      correlation.relation = Relation::kIsolated;
      ++report.isolated;
      report.per_attack.push_back(correlation);
      continue;
    }

    // Union of overlap with all common attacks on this victim; the lists
    // are sorted and per-victim attack counts are small.
    util::Duration overlap_total{};
    util::Timestamp covered_until = quic.start;
    constexpr util::Duration kNoGap{std::numeric_limits<std::int64_t>::max()};
    util::Duration best_gap = kNoGap;
    for (const auto* common : it->second) {
      const auto lo = std::max(quic.start, common->start);
      const auto hi = std::min(quic.end, common->end);
      if (hi > lo) {
        const auto from = std::max(lo, covered_until);
        if (hi > from) {
          overlap_total += hi - from;
          covered_until = hi;
        }
      } else {
        const auto gap =
            common->start >= quic.end
                ? common->start - quic.end
                : quic.start - common->end;
        best_gap = std::min(best_gap, gap);
      }
    }

    if (overlap_total >= min_overlap) {
      correlation.relation = Relation::kConcurrent;
      const auto duration = quic.duration();
      correlation.overlap_share =
          duration > util::Duration{}
              ? std::min(1.0, util::to_seconds(overlap_total) /
                                  util::to_seconds(duration))
                       : 1.0;
      ++report.concurrent;
    } else {
      correlation.relation = Relation::kSequential;
      // Sub-second overlap with no disjoint attack: effectively adjacent.
      correlation.gap = best_gap == kNoGap ? util::Duration{} : best_gap;
      ++report.sequential;
    }
    report.per_attack.push_back(correlation);
  }
  return report;
}

std::vector<TimelineEntry> victim_timeline(
    net::Ipv4Address victim, std::span<const DetectedAttack> quic_attacks,
    std::span<const DetectedAttack> common_attacks) {
  std::vector<TimelineEntry> timeline;
  for (const auto& attack : quic_attacks) {
    if (attack.victim == victim) {
      timeline.push_back({true, attack.start, attack.end});
    }
  }
  for (const auto& attack : common_attacks) {
    if (attack.victim == victim) {
      timeline.push_back({false, attack.start, attack.end});
    }
  }
  std::sort(timeline.begin(), timeline.end(),
            [](const TimelineEntry& a, const TimelineEntry& b) {
              return a.start < b.start;
            });
  return timeline;
}

}  // namespace quicsand::core
