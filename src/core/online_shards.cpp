#include "core/online_shards.hpp"

#include <algorithm>
#include <tuple>

namespace quicsand::core {

ShardedOnlineDetector::ShardedOnlineDetector(
    ShardedOnlineDetectorConfig config) {
  const std::size_t count = config.shards == 0 ? 1 : config.shards;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>(config.detector));
    Shard* shard = shards_.back().get();
    shard->detector.set_on_attack([shard](const DetectedAttack& attack) {
      shard->attacks.push_back(attack);
    });
    shard->detector.set_on_alert([this](const DetectedAttack& attack) {
      util::LockGuard lock(alert_mutex_);
      if (on_alert_) on_alert_(attack);
    });
  }
}

void ShardedOnlineDetector::set_on_alert(AlertCallback callback) {
  util::LockGuard lock(alert_mutex_);
  on_alert_ = std::move(callback);
}

void ShardedOnlineDetector::consume(std::size_t shard,
                                    const PacketRecord& record,
                                    const IngestTiming* timing) {
  shards_[shard % shards_.size()]->detector.consume(record, timing);
}

const std::vector<DetectedAttack>& ShardedOnlineDetector::finish() {
  if (finished_) return merged_;
  finished_ = true;
  for (auto& shard : shards_) shard->detector.finish();
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->attacks.size();
  merged_.reserve(total);
  for (const auto& shard : shards_) {
    merged_.insert(merged_.end(), shard->attacks.begin(),
                   shard->attacks.end());
  }
  std::sort(merged_.begin(), merged_.end(),
            [](const DetectedAttack& a, const DetectedAttack& b) {
              return std::tuple(a.start, a.victim, a.end) <
                     std::tuple(b.start, b.victim, b.end);
            });
  for (std::size_t i = 0; i < merged_.size(); ++i) {
    merged_[i].session_index = i;
  }
  return merged_;
}

std::uint64_t ShardedOnlineDetector::alerts_fired() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->detector.alerts_fired();
  return total;
}

std::uint64_t ShardedOnlineDetector::attacks_closed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->detector.attacks_closed();
  }
  return total;
}

std::uint64_t ShardedOnlineDetector::sessions_evicted() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->detector.sessions_evicted();
  }
  return total;
}

std::size_t ShardedOnlineDetector::open_sessions() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->detector.open_sessions();
  return total;
}

}  // namespace quicsand::core
