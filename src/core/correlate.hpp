// Multi-vector attack correlation (§5.2, Figures 8/11/12/13).
//
// Each QUIC flood is related to the TCP/ICMP floods on the same victim:
//  * concurrent — time ranges overlap in at least one second,
//  * sequential — the victim also saw TCP/ICMP floods, but disjoint in
//    time (the gap to the nearest one is reported),
//  * isolated   — no TCP/ICMP flood on that victim at all.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/dos.hpp"

namespace quicsand::core {

enum class Relation : std::uint8_t { kConcurrent, kSequential, kIsolated };

const char* relation_name(Relation relation);

struct AttackCorrelation {
  std::size_t quic_attack_index = 0;
  Relation relation = Relation::kIsolated;
  /// Concurrent only: union of overlap seconds divided by the QUIC
  /// attack's duration (Figure 12).
  double overlap_share = 0;
  /// Sequential only: distance to the nearest TCP/ICMP attack
  /// (Figure 13).
  util::Duration gap{};
};

struct MultiVectorReport {
  std::vector<AttackCorrelation> per_attack;
  std::uint64_t concurrent = 0;
  std::uint64_t sequential = 0;
  std::uint64_t isolated = 0;

  [[nodiscard]] std::uint64_t total() const {
    return concurrent + sequential + isolated;
  }
  [[nodiscard]] double share(Relation relation) const;
  /// Overlap shares of concurrent attacks (for the Figure 12 CDF).
  [[nodiscard]] std::vector<double> overlap_shares() const;
  /// Gaps of sequential attacks in seconds (for the Figure 13 CDF).
  [[nodiscard]] std::vector<double> gaps_seconds() const;
};

/// Correlate QUIC attacks against TCP/ICMP attacks. `min_overlap` is the
/// concurrency rule (the paper requires one mutual second).
MultiVectorReport correlate_attacks(
    std::span<const DetectedAttack> quic_attacks,
    std::span<const DetectedAttack> common_attacks,
    util::Duration min_overlap = util::kSecond);

/// Timeline entry for one victim (Figure 11's per-victim illustration).
struct TimelineEntry {
  bool is_quic = false;
  util::Timestamp start{};
  util::Timestamp end{};
};

std::vector<TimelineEntry> victim_timeline(
    net::Ipv4Address victim, std::span<const DetectedAttack> quic_attacks,
    std::span<const DetectedAttack> common_attacks);

}  // namespace quicsand::core
