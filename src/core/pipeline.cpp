#include "core/pipeline.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace quicsand::core {

void publish_classifier_stats(const ClassifierStats& stats,
                              obs::MetricsRegistry& metrics) {
  metrics.gauge("classifier.total", "decodable+undecodable packets seen")
      .set(static_cast<std::int64_t>(stats.total));
  metrics.gauge("classifier.undecodable", "not parseable as IPv4/UDP/TCP/ICMP")
      .set(static_cast<std::int64_t>(stats.undecodable));
  metrics
      .gauge("classifier.quic_port_rejects",
             "UDP port 443 that failed QUIC dissection")
      .set(static_cast<std::int64_t>(stats.quic_port_rejects));
  metrics.gauge("classifier.research", "research-scanner QUIC packets")
      .set(static_cast<std::int64_t>(stats.research));
  for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
    metrics
        .gauge(std::string("classifier.class.") +
               traffic_class_name(static_cast<TrafficClass>(c)))
        .set(static_cast<std::int64_t>(stats.by_class[c]));
  }
}

Pipeline::Pipeline(PipelineOptions options)
    : options_(std::move(options)),
      classifier_(ClassifierConfig{options_.research_prefixes}) {
  const auto hours = static_cast<std::size_t>(options_.days) * 24;
  hourly_.research_quic.resize(hours, 0);
  hourly_.other_quic.resize(hours, 0);
  hourly_.quic_requests.resize(hours, 0);
  hourly_.quic_responses.resize(hours, 0);
  if (options_.obs.metrics != nullptr) {
    packets_counter_ = &options_.obs.metrics->counter(
        "pipeline.packets", "packets consumed by the pipeline");
    records_counter_ = &options_.obs.metrics->counter(
        "pipeline.records", "sanitized records kept for analysis");
  }
}

void Pipeline::consume(const net::RawPacket& packet) {
  consume(packet.timestamp, packet.data);
}

void Pipeline::consume(util::Timestamp timestamp,
                       std::span<const std::uint8_t> data) {
  if (packets_counter_ != nullptr) packets_counter_->add();
  const auto record = classifier_.classify(timestamp, data);
  if (!record) return;

  bin_hourly(*record, options_.window_start, hourly_.research_quic.size(),
             [this](HourlySlot slot, std::size_t hour) {
               ++hourly_.of(slot)[hour];
             });

  // Keep only the records the later stages need: sanitized QUIC traffic
  // plus TCP/ICMP scans and backscatter.
  if (!keep_for_analysis(*record)) return;
  if (records_counter_ != nullptr) records_counter_->add();
  records_.push_back(*record);
}

std::vector<std::pair<util::Duration, std::uint64_t>>
Pipeline::session_timeout_sweep(
    std::span<const util::Duration> timeouts) const {
  obs::Span span(options_.obs.tracer, "pipeline.timeout_sweep");
  return timeout_sweep(records_, timeouts, sanitized_quic_filter());
}

Pipeline::AttackAnalysis Pipeline::analyze_attacks() const {
  return analyze_attacks(options_.thresholds);
}

Pipeline::AttackAnalysis Pipeline::analyze_attacks(
    const DosThresholds& thresholds) const {
  if (options_.obs.metrics != nullptr) {
    publish_classifier_stats(stats(), *options_.obs.metrics);
  }
  AttackAnalysis analysis;
  {
    obs::Span span(options_.obs.tracer, "pipeline.sessionize");
    analysis.response_sessions = response_sessions(options_.session_timeout);
    analysis.common_sessions = common_sessions(options_.session_timeout);
  }
  {
    obs::Span span(options_.obs.tracer, "pipeline.detect");
    analysis.quic_attacks =
        detect_attacks(analysis.response_sessions, thresholds);
    analysis.common_attacks =
        detect_attacks(analysis.common_sessions, thresholds);
  }
  if (options_.obs.metrics != nullptr) {
    options_.obs.metrics->gauge("pipeline.quic_attacks")
        .set(static_cast<std::int64_t>(analysis.quic_attacks.size()));
    options_.obs.metrics->gauge("pipeline.common_attacks")
        .set(static_cast<std::int64_t>(analysis.common_attacks.size()));
  }
  return analysis;
}

}  // namespace quicsand::core
