#include "core/pipeline.hpp"

namespace quicsand::core {

Pipeline::Pipeline(PipelineOptions options)
    : options_(std::move(options)),
      classifier_(ClassifierConfig{options_.research_prefixes}) {
  const auto hours = static_cast<std::size_t>(options_.days) * 24;
  hourly_.research_quic.resize(hours, 0);
  hourly_.other_quic.resize(hours, 0);
  hourly_.quic_requests.resize(hours, 0);
  hourly_.quic_responses.resize(hours, 0);
}

void Pipeline::consume(const net::RawPacket& packet) {
  const auto record = classifier_.classify(packet);
  if (!record) return;

  bin_hourly(*record, options_.window_start, hourly_.research_quic.size(),
             [this](HourlySlot slot, std::size_t hour) {
               ++hourly_.of(slot)[hour];
             });

  // Keep only the records the later stages need: sanitized QUIC traffic
  // plus TCP/ICMP scans and backscatter.
  if (!keep_for_analysis(*record)) return;
  records_.push_back(*record);
}

std::vector<std::pair<util::Duration, std::uint64_t>>
Pipeline::session_timeout_sweep(
    std::span<const util::Duration> timeouts) const {
  return timeout_sweep(records_, timeouts, sanitized_quic_filter());
}

Pipeline::AttackAnalysis Pipeline::analyze_attacks() const {
  return analyze_attacks(options_.thresholds);
}

Pipeline::AttackAnalysis Pipeline::analyze_attacks(
    const DosThresholds& thresholds) const {
  AttackAnalysis analysis;
  analysis.response_sessions = response_sessions(options_.session_timeout);
  analysis.common_sessions = common_sessions(options_.session_timeout);
  analysis.quic_attacks =
      detect_attacks(analysis.response_sessions, thresholds);
  analysis.common_attacks =
      detect_attacks(analysis.common_sessions, thresholds);
  return analysis;
}

}  // namespace quicsand::core
