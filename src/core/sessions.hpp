// Sessionization (§5.1): packets from one source belong to the same
// session while the inactivity gap stays below a timeout. The paper picks
// 5 minutes from the knee of the session-count-vs-timeout curve (Fig. 4),
// matching Moore et al.'s established thresholds.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/record.hpp"
#include "core/units.hpp"

namespace quicsand::core {

struct Session {
  net::Ipv4Address source;
  util::Timestamp start{};
  util::Timestamp end{};
  PacketCount packets{};
  std::uint64_t bytes = 0;
  /// Packet count per 1-minute slot since `start` (max-pps computation).
  std::vector<std::uint32_t> minute_counts;
  /// Distinct counter hashes: SCIDs, peer addresses, (addr, port) pairs.
  std::unordered_set<std::uint64_t> scids;
  std::unordered_set<std::uint32_t> peers;
  std::unordered_set<std::uint64_t> peer_ports;
  /// QUIC message composition and version mix.
  std::array<std::uint64_t, kQuicKindCount> kind_counts{};
  std::unordered_map<std::uint32_t, std::uint64_t> version_counts;

  [[nodiscard]] util::Duration duration() const { return end - start; }

  /// Highest 1-minute packet rate, in packets per second.
  [[nodiscard]] Pps peak_pps() const {
    std::uint32_t best = 0;
    for (const auto c : minute_counts) best = std::max(best, c);
    return per_minute_rate(best);
  }

  /// Dominant QUIC version (most packets); 0 when none seen.
  [[nodiscard]] std::uint32_t dominant_version() const;

  friend bool operator==(const Session&, const Session&) = default;
};

/// Fold one record into an open session (shared by build_sessions and
/// the online detector). Minute slots are (i·60s, (i+1)·60s] relative to
/// the session start, with the start packet in slot 0: a packet exactly
/// 60 s after the start has one minute of elapsed activity and belongs
/// to the closing minute rather than opening a phantom trailing slot.
void absorb_record(Session& session, const PacketRecord& record);

/// Strict ordering of session lists: by start time, ties broken by
/// source. Two distinct sessions never compare equal (a source's
/// sessions are time-disjoint), so sorted output is unique.
[[nodiscard]] bool session_before(const Session& a, const Session& b);

using RecordFilter = std::function<bool(const PacketRecord&)>;

/// Standard filters.
RecordFilter quic_request_filter(bool include_research = false);
RecordFilter quic_response_filter();
RecordFilter common_backscatter_filter();  ///< TCP + ICMP backscatter
RecordFilter sanitized_quic_filter();      ///< both QUIC directions

/// Group the filtered records into per-source sessions with the given
/// inactivity timeout. Records must be in non-decreasing time order
/// (pcap / generator order). Sessions are returned sorted by start time.
std::vector<Session> build_sessions(std::span<const PacketRecord> records,
                                    util::Duration timeout,
                                    const RecordFilter& filter);

/// K-way merge of session lists each sorted by `session_before` (the
/// order build_sessions returns). When the parts partition the record
/// stream by source, the merged list is identical to sessionizing the
/// whole stream at once — sessionization is source-local.
struct SessionMerge {
  std::vector<Session> sessions;
  /// global_index[part][i] = position of part's i-th session in
  /// `sessions` (for remapping per-part DetectedAttack indices).
  std::vector<std::vector<std::size_t>> global_index;
};

SessionMerge merge_sessions(std::vector<std::vector<Session>> parts);

/// Per-source inactivity gaps of a filtered record span — the sufficient
/// statistic for the timeout sweep. Profiles of a source-partitioned
/// stream combine by summing `sources` and concatenating `gaps`.
struct GapProfile {
  std::uint64_t sources = 0;
  std::vector<util::Duration> gaps;  ///< unsorted
};

GapProfile collect_gap_profile(std::span<const PacketRecord> records,
                               const RecordFilter& filter);
void merge_gap_profiles(GapProfile& into, GapProfile&& from);

/// Session count per timeout from a gap profile: for timeout T the count
/// is `sources` + the number of gaps above T.
std::vector<std::pair<util::Duration, std::uint64_t>> sweep_counts(
    GapProfile profile, std::span<const util::Duration> timeouts);

/// Number of sessions for each timeout in `timeouts` (Figure 4 sweep),
/// computed in one pass over the inactivity-gap distribution. A timeout
/// of util::Duration max plays the role of the paper's timeout=inf lower
/// bound (one session per source).
std::vector<std::pair<util::Duration, std::uint64_t>> timeout_sweep(
    std::span<const PacketRecord> records,
    std::span<const util::Duration> timeouts, const RecordFilter& filter);

}  // namespace quicsand::core
