#include "core/sessions.hpp"

#include <algorithm>

namespace quicsand::core {

namespace {

void absorb(Session& session, const PacketRecord& record) {
  session.end = record.timestamp;
  ++session.packets;
  session.bytes += record.wire_size;
  const auto minute = static_cast<std::size_t>(
      (record.timestamp - session.start) / util::kMinute);
  if (session.minute_counts.size() <= minute) {
    session.minute_counts.resize(minute + 1, 0);
  }
  ++session.minute_counts[minute];
  if (record.has_scid) session.scids.insert(record.scid_hash);
  // The "peer" is the other endpoint: destination for responses and
  // requests alike (the telescope side).
  session.peers.insert(record.dst.value());
  session.peer_ports.insert(
      (static_cast<std::uint64_t>(record.dst.value()) << 16) |
      record.dst_port);
  for (std::size_t k = 0; k < kQuicKindCount; ++k) {
    session.kind_counts[k] += record.kind_counts[k];
  }
  if (record.quic_version != 0) {
    ++session.version_counts[record.quic_version];
  }
}

Session open_session(const PacketRecord& record) {
  Session session;
  session.source = record.src;
  session.start = record.timestamp;
  session.end = record.timestamp;
  absorb(session, record);
  return session;
}

}  // namespace

std::uint32_t Session::dominant_version() const {
  std::uint32_t best_version = 0;
  std::uint64_t best_count = 0;
  for (const auto& [version, count] : version_counts) {
    if (count > best_count) {
      best_count = count;
      best_version = version;
    }
  }
  return best_version;
}

RecordFilter quic_request_filter(bool include_research) {
  return [include_research](const PacketRecord& r) {
    return r.cls == TrafficClass::kQuicRequest &&
           (include_research || !r.is_research);
  };
}

RecordFilter quic_response_filter() {
  return [](const PacketRecord& r) {
    return r.cls == TrafficClass::kQuicResponse && !r.is_research;
  };
}

RecordFilter common_backscatter_filter() {
  return [](const PacketRecord& r) {
    return r.cls == TrafficClass::kTcpBackscatter ||
           r.cls == TrafficClass::kIcmpBackscatter;
  };
}

std::vector<Session> build_sessions(std::span<const PacketRecord> records,
                                    util::Duration timeout,
                                    const RecordFilter& filter) {
  std::vector<Session> closed;
  std::unordered_map<std::uint32_t, Session> open;
  for (const auto& record : records) {
    if (!filter(record)) continue;
    auto [it, inserted] = open.try_emplace(record.src.value());
    if (inserted) {
      it->second = open_session(record);
      continue;
    }
    Session& session = it->second;
    if (record.timestamp - session.end > timeout) {
      closed.push_back(std::move(session));
      it->second = open_session(record);
    } else {
      absorb(session, record);
    }
  }
  closed.reserve(closed.size() + open.size());
  for (auto& [source, session] : open) closed.push_back(std::move(session));
  std::sort(closed.begin(), closed.end(),
            [](const Session& a, const Session& b) {
              return a.start < b.start ||
                     (a.start == b.start && a.source < b.source);
            });
  return closed;
}

std::vector<std::pair<util::Duration, std::uint64_t>> timeout_sweep(
    std::span<const PacketRecord> records,
    std::span<const util::Duration> timeouts, const RecordFilter& filter) {
  // One pass: collect every per-source inactivity gap; for timeout T the
  // session count is (#sources) + (#gaps > T).
  std::unordered_map<std::uint32_t, util::Timestamp> last_seen;
  std::vector<util::Duration> gaps;
  for (const auto& record : records) {
    if (!filter(record)) continue;
    const auto [it, inserted] =
        last_seen.try_emplace(record.src.value(), record.timestamp);
    if (!inserted) {
      gaps.push_back(record.timestamp - it->second);
      it->second = record.timestamp;
    }
  }
  std::sort(gaps.begin(), gaps.end());
  std::vector<std::pair<util::Duration, std::uint64_t>> out;
  out.reserve(timeouts.size());
  for (const auto timeout : timeouts) {
    const auto it = std::upper_bound(gaps.begin(), gaps.end(), timeout);
    const auto above = static_cast<std::uint64_t>(gaps.end() - it);
    out.emplace_back(timeout, last_seen.size() + above);
  }
  return out;
}

}  // namespace quicsand::core
