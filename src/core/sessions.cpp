#include "core/sessions.hpp"

#include <algorithm>

namespace quicsand::core {

namespace {

Session open_session(const PacketRecord& record) {
  Session session;
  session.source = record.src;
  session.start = record.timestamp;
  session.end = record.timestamp;
  absorb_record(session, record);
  return session;
}

}  // namespace

void absorb_record(Session& session, const PacketRecord& record) {
  session.end = record.timestamp;
  ++session.packets;
  session.bytes += record.wire_size;
  // Boundary packets (elapsed time an exact multiple of a minute) close
  // the previous slot instead of opening a new one; otherwise a 1 µs
  // timing difference around the boundary would flip peak_pps() across
  // the DoS threshold.
  const auto elapsed = record.timestamp - session.start;
  const auto slot =
      elapsed == util::Duration{}
          ? util::MinuteBin{}
          : util::MinuteBin{(elapsed - util::kMicrosecond) / util::kMinute};
  const auto minute = static_cast<std::size_t>(slot.count());
  if (session.minute_counts.size() <= minute) {
    session.minute_counts.resize(minute + 1, 0);
  }
  ++session.minute_counts[minute];
  if (record.has_scid) session.scids.insert(record.scid_hash);
  // The "peer" is the other endpoint: destination for responses and
  // requests alike (the telescope side).
  session.peers.insert(record.dst.value());
  session.peer_ports.insert(
      (static_cast<std::uint64_t>(record.dst.value()) << 16) |
      record.dst_port);
  for (std::size_t k = 0; k < kQuicKindCount; ++k) {
    session.kind_counts[k] += record.kind_counts[k];
  }
  if (record.quic_version != 0) {
    ++session.version_counts[record.quic_version];
  }
}

bool session_before(const Session& a, const Session& b) {
  return a.start < b.start || (a.start == b.start && a.source < b.source);
}

std::uint32_t Session::dominant_version() const {
  std::uint32_t best_version = 0;
  std::uint64_t best_count = 0;
  for (const auto& [version, count] : version_counts) {
    if (count > best_count) {
      best_count = count;
      best_version = version;
    }
  }
  return best_version;
}

RecordFilter quic_request_filter(bool include_research) {
  return [include_research](const PacketRecord& r) {
    return r.cls == TrafficClass::kQuicRequest &&
           (include_research || !r.is_research);
  };
}

RecordFilter quic_response_filter() {
  return [](const PacketRecord& r) {
    return r.cls == TrafficClass::kQuicResponse && !r.is_research;
  };
}

RecordFilter common_backscatter_filter() {
  return [](const PacketRecord& r) {
    return r.cls == TrafficClass::kTcpBackscatter ||
           r.cls == TrafficClass::kIcmpBackscatter;
  };
}

RecordFilter sanitized_quic_filter() {
  return [](const PacketRecord& r) { return r.is_quic() && !r.is_research; };
}

std::vector<Session> build_sessions(std::span<const PacketRecord> records,
                                    util::Duration timeout,
                                    const RecordFilter& filter) {
  std::vector<Session> closed;
  std::unordered_map<std::uint32_t, Session> open;
  for (const auto& record : records) {
    if (!filter(record)) continue;
    auto [it, inserted] = open.try_emplace(record.src.value());
    if (inserted) {
      it->second = open_session(record);
      continue;
    }
    Session& session = it->second;
    if (record.timestamp - session.end > timeout) {
      closed.push_back(std::move(session));
      it->second = open_session(record);
    } else {
      absorb_record(session, record);
    }
  }
  closed.reserve(closed.size() + open.size());
  for (auto& [source, session] : open) closed.push_back(std::move(session));
  std::sort(closed.begin(), closed.end(), session_before);
  return closed;
}

SessionMerge merge_sessions(std::vector<std::vector<Session>> parts) {
  SessionMerge merge;
  merge.global_index.resize(parts.size());
  std::size_t total = 0;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    total += parts[p].size();
    merge.global_index[p].resize(parts[p].size());
  }
  merge.sessions.reserve(total);
  std::vector<std::size_t> cursor(parts.size(), 0);
  while (merge.sessions.size() < total) {
    std::size_t best = parts.size();
    for (std::size_t p = 0; p < parts.size(); ++p) {
      if (cursor[p] >= parts[p].size()) continue;
      if (best == parts.size() ||
          session_before(parts[p][cursor[p]], parts[best][cursor[best]])) {
        best = p;
      }
    }
    merge.global_index[best][cursor[best]] = merge.sessions.size();
    merge.sessions.push_back(std::move(parts[best][cursor[best]]));
    ++cursor[best];
  }
  return merge;
}

GapProfile collect_gap_profile(std::span<const PacketRecord> records,
                               const RecordFilter& filter) {
  GapProfile profile;
  std::unordered_map<std::uint32_t, util::Timestamp> last_seen;
  for (const auto& record : records) {
    if (!filter(record)) continue;
    const auto [it, inserted] =
        last_seen.try_emplace(record.src.value(), record.timestamp);
    if (!inserted) {
      profile.gaps.push_back(record.timestamp - it->second);
      it->second = record.timestamp;
    }
  }
  profile.sources = last_seen.size();
  return profile;
}

void merge_gap_profiles(GapProfile& into, GapProfile&& from) {
  into.sources += from.sources;
  into.gaps.insert(into.gaps.end(), from.gaps.begin(), from.gaps.end());
}

std::vector<std::pair<util::Duration, std::uint64_t>> sweep_counts(
    GapProfile profile, std::span<const util::Duration> timeouts) {
  auto& gaps = profile.gaps;
  std::sort(gaps.begin(), gaps.end());
  std::vector<std::pair<util::Duration, std::uint64_t>> out;
  out.reserve(timeouts.size());
  for (const auto timeout : timeouts) {
    const auto it = std::upper_bound(gaps.begin(), gaps.end(), timeout);
    const auto above = static_cast<std::uint64_t>(gaps.end() - it);
    out.emplace_back(timeout, profile.sources + above);
  }
  return out;
}

std::vector<std::pair<util::Duration, std::uint64_t>> timeout_sweep(
    std::span<const PacketRecord> records,
    std::span<const util::Duration> timeouts, const RecordFilter& filter) {
  return sweep_counts(collect_gap_profile(records, filter), timeouts);
}

}  // namespace quicsand::core
