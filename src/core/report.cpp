#include "core/report.hpp"

#include <algorithm>
#include <ostream>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace quicsand::core {

AnalysisReport build_report(const Pipeline& pipeline,
                            const Pipeline::AttackAnalysis& analysis,
                            const asdb::AsRegistry& registry,
                            const scanner::Deployment& deployment) {
  AnalysisReport report;
  const auto& stats = pipeline.stats();
  report.total_packets = stats.total;
  report.quic_packets = stats.of(TrafficClass::kQuicRequest) +
                        stats.of(TrafficClass::kQuicResponse);
  report.research_packets = stats.research;
  const double sanitized =
      std::max<double>(1.0, static_cast<double>(stats.sanitized_quic()));
  report.request_share =
      static_cast<double>(stats.sanitized_requests()) / sanitized;
  report.response_share =
      static_cast<double>(stats.sanitized_responses()) / sanitized;

  const auto requests =
      pipeline.request_sessions(pipeline.options().session_timeout);
  report.request_sessions = requests.size();
  report.response_sessions = analysis.response_sessions.size();
  double req_packets = 0;
  for (const auto& s : requests) {
    req_packets += static_cast<double>(s.packets.count());
  }
  double resp_packets = 0;
  for (const auto& s : analysis.response_sessions) {
    resp_packets += static_cast<double>(s.packets.count());
  }
  report.mean_request_session_packets =
      req_packets / std::max<double>(1.0, static_cast<double>(requests.size()));
  report.mean_response_session_packets =
      resp_packets /
      std::max<double>(1.0,
                       static_cast<double>(analysis.response_sessions.size()));

  report.quic_attacks = analysis.quic_attacks.size();
  report.common_attacks = analysis.common_attacks.size();
  std::vector<double> quic_durations, common_durations, quic_rates;
  for (const auto& a : analysis.quic_attacks) {
    quic_durations.push_back(util::to_seconds(a.duration()));
    quic_rates.push_back(a.peak_pps.count());
  }
  for (const auto& a : analysis.common_attacks) {
    common_durations.push_back(util::to_seconds(a.duration()));
  }
  if (!quic_durations.empty()) {
    report.quic_duration_median_s = util::median_of(quic_durations);
    report.quic_peak_pps_median = util::median_of(quic_rates);
  }
  if (!common_durations.empty()) {
    report.common_duration_median_s = util::median_of(common_durations);
  }

  const auto correlation = correlate_attacks(analysis.quic_attacks,
                                             analysis.common_attacks);
  report.concurrent_share = correlation.share(Relation::kConcurrent);
  report.sequential_share = correlation.share(Relation::kSequential);
  report.isolated_share = correlation.share(Relation::kIsolated);

  const auto victims =
      analyze_victims(analysis.quic_attacks, registry, deployment);
  report.victims = victims.victims.size();
  report.known_server_share = victims.known_server_share();
  report.single_attack_victim_share = victims.single_attack_victim_share();
  std::vector<std::pair<std::string, std::uint64_t>> ases;
  for (const auto& [asn, count] : victims.attacks_by_asn) {
    const auto* info = registry.find(asn);
    ases.emplace_back(info != nullptr ? info->name : std::to_string(asn),
                      count);
  }
  std::sort(ases.begin(), ases.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (ases.size() > 5) ases.resize(5);
  report.top_victim_ases = std::move(ases);
  return report;
}

void print_report(std::ostream& os, const AnalysisReport& report) {
  util::print_heading(os, "QUICsand analysis report");
  util::Table overview({"metric", "value"});
  overview.add_row({"total packets", util::with_commas(report.total_packets)});
  overview.add_row({"QUIC packets", util::with_commas(report.quic_packets)});
  overview.add_row(
      {"research scanner packets", util::with_commas(report.research_packets)});
  overview.add_row({"sanitized request share",
                    util::pct(report.request_share)});
  overview.add_row({"sanitized response share",
                    util::pct(report.response_share)});
  overview.add_row({"request sessions",
                    util::with_commas(report.request_sessions)});
  overview.add_row({"response sessions",
                    util::with_commas(report.response_sessions)});
  overview.add_row({"mean pkts/request session",
                    util::fmt(report.mean_request_session_packets, 1)});
  overview.add_row({"mean pkts/response session",
                    util::fmt(report.mean_response_session_packets, 1)});
  overview.add_row({"QUIC floods", util::with_commas(report.quic_attacks)});
  overview.add_row(
      {"TCP/ICMP floods", util::with_commas(report.common_attacks)});
  overview.add_row({"median QUIC flood duration",
                    util::fmt(report.quic_duration_median_s, 0) + " s"});
  overview.add_row({"median TCP/ICMP flood duration",
                    util::fmt(report.common_duration_median_s, 0) + " s"});
  overview.add_row({"median QUIC intensity",
                    util::fmt(report.quic_peak_pps_median, 2) + " max pps"});
  overview.add_row({"multi-vector concurrent",
                    util::pct(report.concurrent_share)});
  overview.add_row({"multi-vector sequential",
                    util::pct(report.sequential_share)});
  overview.add_row({"isolated", util::pct(report.isolated_share)});
  overview.add_row({"victims", util::with_commas(report.victims)});
  overview.add_row({"attacks on known QUIC servers",
                    util::pct(report.known_server_share)});
  overview.add_row({"single-attack victims",
                    util::pct(report.single_attack_victim_share)});
  overview.print(os);
  if (!report.top_victim_ases.empty()) {
    os << "top victim ASes:";
    for (const auto& [name, count] : report.top_victim_ases) {
      os << "  " << name << "(" << count << ")";
    }
    os << "\n";
  }
}

}  // namespace quicsand::core
