// Sharded, multi-threaded variant of the serial analysis Pipeline.
//
// Ingest classifies fixed-size packet batches on a worker pool: each
// worker owns a Classifier and a row of hourly ShardedCounters, merged by
// summation when ingest finishes. The analyses then shard the record
// stream by hash(source IP) % N; sessionization and DoS detection are
// purely source-local (§5.1), so every shard runs the serial inner loops
// on its own subspan and the merged output is bit-identical to the
// serial Pipeline regardless of shard count. See DESIGN.md
// "Parallel execution model" for the determinism argument.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "core/pipeline.hpp"
#include "net/record_batch.hpp"
#include "obs/health.hpp"
#include "util/sharded_counter.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace quicsand::core {

/// Compile-time tripwire for the thread-safety annotations below;
/// defined only in tests/tsa_negative.cpp (see scripts/check_tsa.sh).
/// It MUST fail to compile under -Werror=thread-safety — if deleting a
/// QS_GUARDED_BY/QS_REQUIRES here makes the probe build, CI fails.
struct TsaNegativeProbe;

struct ParallelPipelineOptions {
  PipelineOptions base;
  /// Worker threads == analysis shards. 0 means hardware concurrency.
  std::size_t shards = 0;
  /// Packets classified per worker task.
  std::size_t batch_size = 4096;
};

class ParallelPipeline {
 public:
  explicit ParallelPipeline(ParallelPipelineOptions options);
  ParallelPipeline(PipelineOptions base, std::size_t shards);
  ~ParallelPipeline();

  ParallelPipeline(const ParallelPipeline&) = delete;
  ParallelPipeline& operator=(const ParallelPipeline&) = delete;

  /// Ingest one packet (must arrive in time order). Classification runs
  /// on the pool, overlapping with the caller's capture/generation loop.
  void consume(const net::RawPacket& packet);

  /// Take a recycled (empty) batch from the pool, or a fresh one sized
  /// to options().batch_size on first use. Fill it with packets in time
  /// order and hand it back via consume_batch().
  [[nodiscard]] net::RecordBatch acquire_batch();

  /// Ingest a whole batch: classification of the batch runs as one pool
  /// task, and the batch itself is recycled into the pool afterwards, so
  /// the generate→ingest hot loop performs no steady-state allocation.
  /// Batches (and any interleaved consume() packets) must arrive in
  /// global time order.
  void consume_batch(net::RecordBatch&& batch);

  /// Flush pending batches and merge per-worker state. Idempotent; every
  /// analysis accessor calls it, after which consume() must not be
  /// called again.
  void finish();

  [[nodiscard]] const ClassifierStats& stats();
  [[nodiscard]] const HourlySeries& hourly();

  /// Sanitized records in arrival order, identical to the serial
  /// pipeline's record stream.
  [[nodiscard]] std::span<const PacketRecord> records();

  std::vector<Session> request_sessions(util::Duration timeout);
  std::vector<Session> response_sessions(util::Duration timeout);
  std::vector<Session> common_sessions(util::Duration timeout);

  std::vector<std::pair<util::Duration, std::uint64_t>>
  session_timeout_sweep(std::span<const util::Duration> timeouts);

  Pipeline::AttackAnalysis analyze_attacks();
  Pipeline::AttackAnalysis analyze_attacks(const DosThresholds& thresholds);

  [[nodiscard]] const PipelineOptions& options() const {
    return options_.base;
  }
  [[nodiscard]] std::size_t shard_count() const { return shards_; }

 private:
  friend struct TsaNegativeProbe;

  void dispatch_batch();
  /// Block until fewer than 4 * shards_ batches are in flight, then
  /// claim a slot (increments inflight_, publishes the gauge). Caller
  /// holds inflight_mutex_ via `lock` — both ingest paths share this
  /// backpressure gate.
  void wait_for_inflight_slot(util::UniqueLock& lock)
      QS_REQUIRES(inflight_mutex_);
  /// Return a claimed slot and wake blocked producers; takes
  /// inflight_mutex_ itself (called from worker jobs).
  void release_inflight_slot() QS_EXCLUDES(inflight_mutex_);
  /// Partition records() by hash(source IP) % shards, once.
  const std::vector<std::vector<PacketRecord>>& shard_records();
  std::vector<std::vector<Session>> sharded_sessions(
      util::Duration timeout, const RecordFilter& filter);

  ParallelPipelineOptions options_;
  std::size_t shards_;
  std::size_t hours_;

  // Per-worker ingest state: workers only touch their own slot/row.
  std::vector<std::unique_ptr<Classifier>> worker_classifiers_;
  std::vector<util::ShardedCounter> worker_hourly_;  // one per HourlySlot

  // Ingest: the main thread appends an output slot per batch before
  // submitting it, so workers write disjoint, stable deque elements.
  std::vector<net::RawPacket> pending_;
  std::deque<std::vector<PacketRecord>> batches_;
  util::Mutex inflight_mutex_{util::LockRank::kPipelineInflight,
                              "pipeline_inflight"};
  util::CondVar inflight_cv_;
  std::size_t inflight_ QS_GUARDED_BY(inflight_mutex_) = 0;

  // Recycled RecordBatch pool for the batched ingest path. Workers take
  // pool_mutex_ and inflight_mutex_ strictly sequentially (never
  // nested), so both are leaf ranks.
  util::Mutex pool_mutex_{util::LockRank::kPipelineBatchPool,
                          "pipeline_batch_pool"};
  std::vector<net::RecordBatch> batch_pool_ QS_GUARDED_BY(pool_mutex_);

  // Merged state, valid once finished_.
  bool finished_ = false;
  ClassifierStats stats_;
  HourlySeries hourly_;
  std::vector<PacketRecord> records_;
  bool sharded_ = false;
  std::vector<std::vector<PacketRecord>> shard_records_;

  // Observability handles, resolved once at construction; all nullptr
  // when no registry is attached (options_.base.obs).
  obs::Counter* packets_counter_ = nullptr;
  obs::Counter* records_counter_ = nullptr;
  obs::Counter* batches_counter_ = nullptr;
  obs::LatencyHistogram* backpressure_wait_us_ = nullptr;
  obs::LatencyHistogram* queue_wait_us_ = nullptr;
  obs::Histogram* shard_records_hist_ = nullptr;
  obs::LatencyHistogram* classify_batch_us_ = nullptr;
  obs::LatencyHistogram* sessionize_shard_us_ = nullptr;
  obs::LatencyHistogram* analyze_shard_us_ = nullptr;
  obs::Gauge* inflight_gauge_ = nullptr;
  obs::Gauge* pending_gauge_ = nullptr;
  // Liveness component; heartbeat per dispatched batch, idle once
  // finish() has merged.
  obs::Health::Component* health_ = nullptr;

  // Declared last so jobs referencing the members above are drained
  // before anything else is destroyed.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace quicsand::core
