#include "core/online.hpp"

namespace quicsand::core {

OnlineDetector::OnlineDetector(OnlineDetectorConfig config)
    : config_(std::move(config)) {}

bool OnlineDetector::exceeds_thresholds(const Session& session) const {
  return config_.thresholds.admits(session);
}

DetectedAttack OnlineDetector::to_attack(const Session& session) const {
  DetectedAttack attack;
  attack.victim = session.source;
  attack.start = session.start;
  attack.end = session.end;
  attack.packets = session.packets;
  attack.peak_pps = session.peak_pps();
  return attack;
}

void OnlineDetector::close(OpenSession& open) {
  if (open.alerted) {
    ++closed_;
    if (on_attack_) on_attack_(to_attack(open.session));
  }
}

void OnlineDetector::sweep(util::Timestamp now) {
  for (auto it = open_.begin(); it != open_.end();) {
    if (now - it->second.session.end > config_.session_timeout) {
      close(it->second);
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
}

void OnlineDetector::consume(const PacketRecord& record) {
  if (last_sweep_ == 0) last_sweep_ = record.timestamp;
  if (record.timestamp - last_sweep_ >= config_.sweep_interval) {
    sweep(record.timestamp);
    last_sweep_ = record.timestamp;
  }
  if (!config_.filter(record)) return;

  auto [it, inserted] = open_.try_emplace(record.src.value());
  OpenSession& open = it->second;
  if (!inserted &&
      record.timestamp - open.session.end > config_.session_timeout) {
    // The previous session expired: close it and start fresh.
    close(open);
    open = OpenSession{};
    inserted = true;
  }
  if (inserted) {
    open.session.source = record.src;
    open.session.start = record.timestamp;
    open.session.end = record.timestamp;
  }
  absorb_record(open.session, record);

  if (!open.alerted && exceeds_thresholds(open.session)) {
    open.alerted = true;
    ++alerts_;
    latency_sum_s_ += util::to_seconds(record.timestamp -
                                       open.session.start);
    if (on_alert_) on_alert_(to_attack(open.session));
  }
}

void OnlineDetector::finish() {
  for (auto& [source, open] : open_) close(open);
  open_.clear();
}

}  // namespace quicsand::core
