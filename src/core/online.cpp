#include "core/online.hpp"

#include <algorithm>

#include "obs/events.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"

namespace quicsand::core {

namespace {

obs::DetectorEvent make_event(obs::DetectorEventType type,
                              const Session& session) {
  obs::DetectorEvent event;
  event.type = type;
  event.time = session.end;
  event.victim = session.source.to_string();
  event.packets = session.packets.count();
  event.peak_pps = session.peak_pps().count();
  event.duration_s = util::to_seconds(session.duration());
  return event;
}

}  // namespace

OnlineDetector::OnlineDetector(OnlineDetectorConfig config)
    : config_(std::move(config)) {
  if (auto* metrics = config_.obs.metrics) {
    records_counter_ = &metrics->counter(
        "online.records", "records consumed by the online detector");
    alerts_counter_ =
        &metrics->counter("online.alerts", "threshold-crossing alerts fired");
    attacks_counter_ =
        &metrics->counter("online.attacks_closed", "alerted sessions closed");
    evictions_counter_ = &metrics->counter(
        "online.sessions_evicted", "sessions removed by expiry or finish");
    open_gauge_ =
        &metrics->gauge("online.open_sessions", "sessions currently open");
    alert_latency_us_ = &metrics->latency(
        "online.alert_latency_us", "session start to alert, simulation time");
    if (config_.wall_clock) {
      detect_latency_us_ = &metrics->latency(
          "live.detect_latency_us",
          "first admitted packet on the wire to alert callback (us)");
    }
  }
  if (auto* health = config_.obs.health) {
    health_ = &health->component("online_detector");
    health_->set_ready(true);
  }
}

bool OnlineDetector::exceeds_thresholds(const Session& session) const {
  return config_.thresholds.admits(session);
}

DetectedAttack OnlineDetector::to_attack(const Session& session) const {
  DetectedAttack attack;
  attack.victim = session.source;
  attack.start = session.start;
  attack.end = session.end;
  attack.packets = session.packets;
  attack.peak_pps = session.peak_pps();
  return attack;
}

void OnlineDetector::close(OpenSession& open) {
  if (open.alerted) {
    ++closed_;
    if (attacks_counter_ != nullptr) attacks_counter_->add();
    if (config_.obs.events != nullptr) {
      config_.obs.events->emit(make_event(
          obs::DetectorEventType::kAttackClosed, open.session));
    }
    if (on_attack_) on_attack_(to_attack(open.session));
  }
}

/// Bookkeeping for any session leaving the open table; close() first for
/// the attack-closed side effects, then the eviction event.
void OnlineDetector::evict(OpenSession& open) {
  close(open);
  ++evicted_;
  if (evictions_counter_ != nullptr) evictions_counter_->add();
  if (config_.obs.events != nullptr) {
    auto event =
        make_event(obs::DetectorEventType::kSessionEvicted, open.session);
    event.alerted = open.alerted;
    config_.obs.events->emit(std::move(event));
  }
}

void OnlineDetector::sweep(util::Timestamp now) {
  for (auto it = open_.begin(); it != open_.end();) {
    if (now - it->second.session.end > config_.session_timeout) {
      evict(it->second);
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
  if (open_gauge_ != nullptr) {
    open_gauge_->set(static_cast<std::int64_t>(open_.size()));
  }
}

void OnlineDetector::consume(const PacketRecord& record,
                             const IngestTiming* timing) {
  if (records_counter_ != nullptr) records_counter_->add();
  // One heartbeat per 256 records keeps the watchdog fed without a
  // clock read on every record.
  if (health_ != nullptr) {
    if (idle_) {
      health_->set_idle(false);
      idle_ = false;
    }
    if ((++consumed_ & 0xFF) == 0) health_->heartbeat();
  }
  if (last_sweep_ == util::Timestamp{}) last_sweep_ = record.timestamp;
  if (record.timestamp - last_sweep_ >= config_.sweep_interval) {
    sweep(record.timestamp);
    last_sweep_ = record.timestamp;
  }
  if (!config_.filter(record)) return;

  auto [it, inserted] = open_.try_emplace(record.src.value());
  OpenSession& open = it->second;
  if (!inserted &&
      record.timestamp - open.session.end > config_.session_timeout) {
    // The previous session expired: close it and start fresh.
    evict(open);
    open = OpenSession{};
    inserted = true;
  }
  if (inserted) {
    open.session.source = record.src;
    open.session.start = record.timestamp;
    open.session.end = record.timestamp;
    if (open_gauge_ != nullptr) {
      open_gauge_->set(static_cast<std::int64_t>(open_.size()));
    }
  }
  if (timing != nullptr) {
    // First available stamps anchor the session; later packets of an
    // already-anchored session leave them alone.
    if (open.first_send_wall_us < 0) {
      open.first_send_wall_us = timing->send_wall_us;
    }
    if (open.first_recv_wall_us < 0) {
      open.first_recv_wall_us = timing->recv_wall_us;
    }
  }
  absorb_record(open.session, record);

  if (!open.alerted && exceeds_thresholds(open.session)) {
    open.alerted = true;
    ++alerts_;
    const auto latency = record.timestamp - open.session.start;
    latency_sum_s_ += util::to_seconds(latency);
    if (alerts_counter_ != nullptr) alerts_counter_->add();
    if (alert_latency_us_ != nullptr) {
      alert_latency_us_->record(static_cast<std::uint64_t>(
          std::max<std::int64_t>(latency.count(), 0)));
    }
    // Wall-clock detection latency: first admitted packet's wire stamp
    // (arrival stamp when the frame carried none) to this callback.
    double detect_latency_s = -1;
    if (config_.wall_clock) {
      const std::int64_t origin = open.first_send_wall_us >= 0
                                      ? open.first_send_wall_us
                                      : open.first_recv_wall_us;
      if (origin >= 0) {
        const std::int64_t detect_us =
            std::max<std::int64_t>(config_.wall_clock() - origin, 0);
        detect_latency_s = static_cast<double>(detect_us) / 1e6;
        if (detect_latency_us_ != nullptr) {
          detect_latency_us_->record(static_cast<std::uint64_t>(detect_us));
        }
      }
    }
    if (config_.obs.events != nullptr) {
      auto event =
          make_event(obs::DetectorEventType::kAlertFired, open.session);
      event.alert_latency_s = util::to_seconds(latency);
      event.detect_latency_s = detect_latency_s;
      event.duration_s = -1;  // session still open
      config_.obs.events->emit(std::move(event));
    }
    if (on_alert_) on_alert_(to_attack(open.session));
  }
}

void OnlineDetector::finish() {
  for (auto& [source, open] : open_) evict(open);
  open_.clear();
  if (open_gauge_ != nullptr) open_gauge_->set(0);
  if (config_.obs.events != nullptr) config_.obs.events->flush();
  if (health_ != nullptr) {
    health_->heartbeat();
    health_->set_idle(true);  // stream drained: quiet, not stale
    idle_ = true;
  }
}

}  // namespace quicsand::core
