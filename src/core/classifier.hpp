// Traffic classifier (§4.1 of the paper).
//
// QUIC is identified by transport-layer properties — UDP with source or
// destination port 443 — and validated with the payload dissector, the
// role Wireshark plays in the paper. Packets with source port 443 are
// responses (backscatter), destination port 443 requests (scans). TCP and
// ICMP packets are split into scans and backscatter by flags/type, as in
// Moore et al.'s backscatter methodology.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/record.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"
#include "util/time.hpp"

namespace quicsand::core {

struct ClassifierConfig {
  /// Sources inside these prefixes are flagged as research scanners
  /// (TUM / RWTH in the paper) and can be removed from analyses.
  std::vector<net::Ipv4Prefix> research_prefixes;
};

struct ClassifierStats {
  std::uint64_t total = 0;
  std::uint64_t undecodable = 0;  ///< not parseable as IPv4/UDP/TCP/ICMP
  std::array<std::uint64_t, kTrafficClassCount> by_class{};
  std::uint64_t research = 0;           ///< research-flagged QUIC packets
  std::uint64_t research_requests = 0;  ///< research QUIC requests
  std::uint64_t quic_port_rejects = 0;  ///< UDP/443 that failed dissection

  [[nodiscard]] std::uint64_t of(TrafficClass cls) const {
    return by_class[static_cast<std::size_t>(cls)];
  }
  /// QUIC packets after research-scanner removal.
  [[nodiscard]] std::uint64_t sanitized_quic() const {
    return of(TrafficClass::kQuicRequest) + of(TrafficClass::kQuicResponse) -
           research;
  }
  [[nodiscard]] std::uint64_t sanitized_requests() const {
    return of(TrafficClass::kQuicRequest) - research_requests;
  }
  [[nodiscard]] std::uint64_t sanitized_responses() const {
    return of(TrafficClass::kQuicResponse) -
           (research - research_requests);
  }

  /// Fold another classifier's counters into this one (parallel
  /// classification keeps one Classifier per worker).
  void merge_from(const ClassifierStats& other);
};

class Classifier {
 public:
  explicit Classifier(ClassifierConfig config);

  /// Classify one captured datagram. Returns nullopt for undecodable
  /// packets; all decodable packets produce a record (possibly kOther).
  std::optional<PacketRecord> classify(const net::RawPacket& packet);

  /// Zero-copy variant over a non-owning view (batched ingest); the
  /// RawPacket overload delegates here.
  std::optional<PacketRecord> classify(util::Timestamp timestamp,
                                       std::span<const std::uint8_t> data);

  [[nodiscard]] const ClassifierStats& stats() const { return stats_; }

 private:
  ClassifierConfig config_;
  ClassifierStats stats_;
};

}  // namespace quicsand::core
