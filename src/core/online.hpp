// Online (streaming) DoS detection.
//
// The paper's motivation (§1) is operational: "it will be crucial to
// monitor such attack attempts early in the QUIC deployment phase".
// The batch pipeline answers "what happened last month"; this detector
// answers "what is happening now": it consumes classified records in
// time order, keeps per-source open sessions, fires an alert callback
// the moment a session crosses the Moore et al. thresholds (not when it
// ends), and emits the finished attack when the session closes.
//
// Memory is bounded by the number of sources active within one timeout
// window; expired sessions are evicted lazily and by periodic sweeps.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "core/dos.hpp"
#include "core/record.hpp"
#include "core/sessions.hpp"
#include "obs/health.hpp"
#include "obs/hooks.hpp"

namespace quicsand::core {

struct OnlineDetectorConfig {
  util::Duration session_timeout = 5 * util::kMinute;
  DosThresholds thresholds;
  RecordFilter filter = quic_response_filter();
  /// Sweep cadence for evicting idle sessions.
  util::Duration sweep_interval = util::kMinute;
  /// Optional observability sinks: obs.events receives the structured
  /// alert-fired / attack-closed / session-evicted stream (NDJSON-able),
  /// obs.metrics the online.* counters and the alert-latency histogram.
  obs::Hooks obs;
  /// Wall-clock source (microseconds since the epoch) read at alert
  /// time to measure wire -> alert detection latency against the
  /// IngestTiming stamps. Null (the default) disables the measurement,
  /// keeping scenario/golden runs free of nondeterministic reads.
  std::function<std::int64_t()> wall_clock;
};

class OnlineDetector {
 public:
  /// `on_alert` fires once per session, at the first record that pushes
  /// it over every threshold — the early-warning signal. `on_attack`
  /// fires when an alerted session closes, with the final numbers.
  using AlertCallback = std::function<void(const DetectedAttack&)>;

  explicit OnlineDetector(OnlineDetectorConfig config);

  void set_on_alert(AlertCallback callback) {
    on_alert_ = std::move(callback);
  }
  void set_on_attack(AlertCallback callback) {
    on_attack_ = std::move(callback);
  }

  /// Consume one record (non-decreasing timestamps). `timing`, when
  /// provided by a live capture path, carries the record's wall-clock
  /// ingest stamps; the first admitted packet's stamps anchor the
  /// session's wire -> alert detection latency.
  void consume(const PacketRecord& record,
               const IngestTiming* timing = nullptr);

  /// Close every open session (end of stream).
  void finish();

  [[nodiscard]] std::size_t open_sessions() const { return open_.size(); }
  [[nodiscard]] std::uint64_t alerts_fired() const { return alerts_; }
  [[nodiscard]] std::uint64_t attacks_closed() const { return closed_; }
  /// Sessions removed so far (expiry or finish), alerted or not.
  [[nodiscard]] std::uint64_t sessions_evicted() const { return evicted_; }
  /// Detection latency: seconds from session start to alert, averaged.
  [[nodiscard]] double mean_alert_latency_s() const {
    return alerts_ == 0 ? 0.0
                        : latency_sum_s_ / static_cast<double>(alerts_);
  }

 private:
  struct OpenSession {
    Session session;
    bool alerted = false;
    /// Wall-clock stamps of the first admitted packet (-1 unknown);
    /// the send stamp is preferred as the detection-latency origin,
    /// falling back to arrival when the frame carried none.
    std::int64_t first_send_wall_us = -1;
    std::int64_t first_recv_wall_us = -1;
  };

  [[nodiscard]] bool exceeds_thresholds(const Session& session) const;
  [[nodiscard]] DetectedAttack to_attack(const Session& session) const;
  void close(OpenSession& open);
  void evict(OpenSession& open);
  void sweep(util::Timestamp now);

  OnlineDetectorConfig config_;
  AlertCallback on_alert_;
  AlertCallback on_attack_;
  std::unordered_map<std::uint32_t, OpenSession> open_;
  util::Timestamp last_sweep_{};
  std::uint64_t alerts_ = 0;
  std::uint64_t closed_ = 0;
  std::uint64_t evicted_ = 0;
  double latency_sum_s_ = 0;
  // Resolved metric handles; nullptr without an attached registry.
  obs::Counter* records_counter_ = nullptr;
  obs::Counter* alerts_counter_ = nullptr;
  obs::Counter* attacks_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
  obs::Gauge* open_gauge_ = nullptr;
  obs::LatencyHistogram* alert_latency_us_ = nullptr;
  obs::LatencyHistogram* detect_latency_us_ = nullptr;
  // Liveness component; heartbeat every 256 records, idle after finish.
  obs::Health::Component* health_ = nullptr;
  std::uint64_t consumed_ = 0;
  bool idle_ = false;
};

}  // namespace quicsand::core
