#include "core/dos.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace quicsand::core {

bool DosThresholds::admits(const Session& session) const {
  return static_cast<double>(session.packets.count()) > min_packets &&
         util::to_seconds(session.duration()) > min_duration_s &&
         session.peak_pps() > min_peak_pps;
}

std::vector<DetectedAttack> detect_attacks(std::span<const Session> sessions,
                                           const DosThresholds& thresholds) {
  std::vector<DetectedAttack> attacks;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const Session& session = sessions[i];
    if (!thresholds.admits(session)) continue;
    DetectedAttack attack;
    attack.session_index = i;
    attack.victim = session.source;
    attack.start = session.start;
    attack.end = session.end;
    attack.packets = session.packets;
    attack.peak_pps = session.peak_pps();
    attacks.push_back(attack);
  }
  return attacks;
}

std::vector<DetectedAttack> merge_attacks(
    std::vector<std::vector<DetectedAttack>> parts,
    const std::vector<std::vector<std::size_t>>& global_index) {
  std::vector<DetectedAttack> merged;
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  merged.reserve(total);
  for (std::size_t p = 0; p < parts.size(); ++p) {
    for (auto& attack : parts[p]) {
      attack.session_index = global_index[p][attack.session_index];
      merged.push_back(attack);
    }
  }
  // Global session indices are unique, so ordering by them recovers the
  // serial emission order exactly.
  std::sort(merged.begin(), merged.end(),
            [](const DetectedAttack& a, const DetectedAttack& b) {
              return a.session_index < b.session_index;
            });
  return merged;
}

ExcludedSummary summarize_excluded(std::span<const Session> sessions,
                                   const DosThresholds& thresholds) {
  ExcludedSummary summary;
  std::vector<double> packets, durations, rates;
  for (const auto& session : sessions) {
    if (thresholds.admits(session)) continue;
    ++summary.count;
    packets.push_back(static_cast<double>(session.packets.count()));
    durations.push_back(util::to_seconds(session.duration()));
    rates.push_back(session.peak_pps().count());
  }
  if (summary.count > 0) {
    summary.median_packets = util::median_of(packets);
    summary.median_duration_s = util::median_of(durations);
    summary.median_peak_pps = util::median_of(rates);
  }
  return summary;
}

}  // namespace quicsand::core
