#include "core/dos.hpp"

#include "util/stats.hpp"

namespace quicsand::core {

namespace {

bool is_attack(const Session& session, const DosThresholds& thresholds) {
  return static_cast<double>(session.packets) > thresholds.min_packets &&
         util::to_seconds(session.duration()) > thresholds.min_duration_s &&
         session.peak_pps() > thresholds.min_peak_pps;
}

}  // namespace

std::vector<DetectedAttack> detect_attacks(std::span<const Session> sessions,
                                           const DosThresholds& thresholds) {
  std::vector<DetectedAttack> attacks;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const Session& session = sessions[i];
    if (!is_attack(session, thresholds)) continue;
    DetectedAttack attack;
    attack.session_index = i;
    attack.victim = session.source;
    attack.start = session.start;
    attack.end = session.end;
    attack.packets = session.packets;
    attack.peak_pps = session.peak_pps();
    attacks.push_back(attack);
  }
  return attacks;
}

ExcludedSummary summarize_excluded(std::span<const Session> sessions,
                                   const DosThresholds& thresholds) {
  ExcludedSummary summary;
  std::vector<double> packets, durations, rates;
  for (const auto& session : sessions) {
    if (is_attack(session, thresholds)) continue;
    ++summary.count;
    packets.push_back(static_cast<double>(session.packets));
    durations.push_back(util::to_seconds(session.duration()));
    rates.push_back(session.peak_pps());
  }
  if (summary.count > 0) {
    summary.median_packets = util::median_of(packets);
    summary.median_duration_s = util::median_of(durations);
    summary.median_peak_pps = util::median_of(rates);
  }
  return summary;
}

}  // namespace quicsand::core
