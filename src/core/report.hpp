// Aggregated analysis report: the full §5 story for one capture, as a
// struct (for programmatic use) and as rendered text (for the CLI tools).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "asdb/registry.hpp"
#include "core/correlate.hpp"
#include "core/pipeline.hpp"
#include "core/victims.hpp"
#include "scanner/deployment.hpp"

namespace quicsand::core {

struct AnalysisReport {
  // Traffic overview (§5.1).
  std::uint64_t total_packets = 0;
  std::uint64_t quic_packets = 0;
  std::uint64_t research_packets = 0;
  double request_share = 0;   ///< of sanitized QUIC packets
  double response_share = 0;

  // Sessions.
  std::uint64_t request_sessions = 0;
  std::uint64_t response_sessions = 0;
  double mean_request_session_packets = 0;
  double mean_response_session_packets = 0;

  // DoS events (§5.2).
  std::uint64_t quic_attacks = 0;
  std::uint64_t common_attacks = 0;
  double quic_duration_median_s = 0;
  double common_duration_median_s = 0;
  double quic_peak_pps_median = 0;

  // Multi-vector structure.
  double concurrent_share = 0;
  double sequential_share = 0;
  double isolated_share = 0;

  // Victims.
  std::uint64_t victims = 0;
  double known_server_share = 0;
  double single_attack_victim_share = 0;
  std::vector<std::pair<std::string, std::uint64_t>> top_victim_ases;
};

/// Assemble the full report from an analyzed pipeline.
AnalysisReport build_report(const Pipeline& pipeline,
                            const Pipeline::AttackAnalysis& analysis,
                            const asdb::AsRegistry& registry,
                            const scanner::Deployment& deployment);

/// Render the report as the text summary the examples print.
void print_report(std::ostream& os, const AnalysisReport& report);

}  // namespace quicsand::core
