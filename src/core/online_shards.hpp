// Sharded online detection for the live capture path.
//
// The live receiver partitions datagrams by IPv4 source — the same key
// sessionization groups by — so each shard's packet stream contains
// complete sessions and an independent OnlineDetector per shard is
// *exact*: no session ever spans two shards. This wrapper owns one
// detector per shard, lets each shard's worker thread consume() its own
// stream without locks, serializes the user-facing alert callbacks
// (shards fire from different threads; the callback itself needs no
// locking), and merges the per-shard attack lists into one
// deterministic, (start, victim, end)-ordered result at finish().
//
// Shards share one obs::Hooks: the metrics registry is get-or-create,
// so the online.* counters aggregate across shards. The open-sessions
// gauge becomes last-writer-wins under concurrency, which is acceptable
// for a load indicator.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/online.hpp"
#include "util/sync.hpp"

namespace quicsand::core {

struct ShardedOnlineDetectorConfig {
  std::size_t shards = 1;
  /// Per-shard detector configuration (shared verbatim by every shard).
  OnlineDetectorConfig detector;
};

class ShardedOnlineDetector {
 public:
  using AlertCallback = OnlineDetector::AlertCallback;

  explicit ShardedOnlineDetector(ShardedOnlineDetectorConfig config);

  ShardedOnlineDetector(const ShardedOnlineDetector&) = delete;
  ShardedOnlineDetector& operator=(const ShardedOnlineDetector&) = delete;

  /// Fired on the first record that crosses every threshold. Invoked
  /// under an internal mutex, so concurrent shards never interleave
  /// inside the callback. Set before the first consume().
  void set_on_alert(AlertCallback callback);

  /// Consume one record on shard `shard`. Thread-safe across *distinct*
  /// shards (one thread per shard, the live receiver's contract); calls
  /// for the same shard must stay on one thread in time order. `timing`
  /// optionally carries the record's wall-clock ingest stamps for
  /// detection-latency accounting.
  void consume(std::size_t shard, const PacketRecord& record,
               const IngestTiming* timing = nullptr);

  /// Close every open session on every shard and merge the per-shard
  /// attacks into one list ordered by (start, victim, end), with
  /// session_index rewritten to the merged position. Call once, after
  /// all consumers stopped; attacks() returns the same list afterwards.
  const std::vector<DetectedAttack>& finish();

  [[nodiscard]] const std::vector<DetectedAttack>& attacks() const {
    return merged_;
  }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  // Aggregates over all shards.
  [[nodiscard]] std::uint64_t alerts_fired() const;
  [[nodiscard]] std::uint64_t attacks_closed() const;
  [[nodiscard]] std::uint64_t sessions_evicted() const;
  [[nodiscard]] std::size_t open_sessions() const;

 private:
  struct Shard {
    explicit Shard(const OnlineDetectorConfig& config)
        : detector(config) {}
    OnlineDetector detector;
    std::vector<DetectedAttack> attacks;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Bottom of the repo's lock hierarchy (kOnlineAlert): the serialized
  /// callback typically emits into an EventLog (kEventLog), which in
  /// turn pushes to subscriber rings (kEventSubscription).
  util::Mutex alert_mutex_{util::LockRank::kOnlineAlert, "online_alert"};
  AlertCallback on_alert_ QS_GUARDED_BY(alert_mutex_);
  std::vector<DetectedAttack> merged_;  ///< finish()/main thread only
  bool finished_ = false;               ///< finish()/main thread only
};

}  // namespace quicsand::core
