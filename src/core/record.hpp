// Compact per-packet record produced by the classifier.
//
// The telescope sees tens of millions of packets; everything downstream
// (sessionization, DoS detection, correlation) operates on these ~64-byte
// records instead of raw datagrams.
#pragma once

#include <array>
#include <cstdint>

#include "net/ip.hpp"
#include "quic/connection_id.hpp"
#include "quic/dissector.hpp"
#include "util/time.hpp"

namespace quicsand::core {

enum class TrafficClass : std::uint8_t {
  kQuicRequest,     ///< UDP, destination port 443, valid QUIC
  kQuicResponse,    ///< UDP, source port 443, valid QUIC (backscatter)
  kTcpRequest,      ///< TCP SYN (scan)
  kTcpBackscatter,  ///< TCP SYN-ACK / RST (flood response)
  kIcmpBackscatter, ///< ICMP echo reply / unreachable / time exceeded
  kOther,           ///< everything else (incl. non-QUIC UDP/443)
};

constexpr std::size_t kTrafficClassCount = 6;

const char* traffic_class_name(TrafficClass cls);

/// Number of QuicPacketKind enumerators (for fixed-size histograms).
constexpr std::size_t kQuicKindCount = 7;

struct PacketRecord {
  util::Timestamp timestamp{};
  net::Ipv4Address src;
  net::Ipv4Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t wire_size = 0;
  TrafficClass cls = TrafficClass::kOther;
  bool is_research = false;  ///< source matches a research scanner prefix
  std::uint32_t quic_version = 0;  ///< first long-header version, 0 if none
  std::uint8_t quic_packet_count = 0;  ///< QUIC packets in the datagram
  /// Per-kind QUIC message counts within the datagram, indexed by
  /// QuicPacketKind; drives the §6 composition analysis.
  std::array<std::uint8_t, kQuicKindCount> kind_counts{};
  bool has_scid = false;
  /// FNV hash of the first long-header SCID; distinct-SCID counting only
  /// needs equality, so the record stays compact at telescope volumes.
  std::uint64_t scid_hash = 0;

  [[nodiscard]] bool is_quic() const {
    return cls == TrafficClass::kQuicRequest ||
           cls == TrafficClass::kQuicResponse;
  }

  friend bool operator==(const PacketRecord&, const PacketRecord&) = default;
};

/// Wall-clock ingest stamps (microseconds since the epoch, -1 unknown)
/// a live capture path can hand the online detector alongside a record,
/// so per-attack detection latency can be measured wire -> alert. Kept
/// out of PacketRecord: scenario/pcap paths have no wall-clock story
/// and the record stays at its compact size.
struct IngestTiming {
  std::int64_t send_wall_us = -1;  ///< sender's wire stamp (QSL2)
  std::int64_t recv_wall_us = -1;  ///< capture-socket arrival stamp
};

}  // namespace quicsand::core
