#include "core/classifier.hpp"

namespace quicsand::core {

namespace {

constexpr std::uint16_t kQuicPort = 443;

bool is_backscatter_icmp(std::uint8_t type) {
  // Echo reply, destination unreachable, source quench, time exceeded:
  // responses a victim (or its network) sends to spoofed probes.
  return type == 0 || type == 3 || type == 4 || type == 11;
}

}  // namespace

void ClassifierStats::merge_from(const ClassifierStats& other) {
  total += other.total;
  undecodable += other.undecodable;
  for (std::size_t i = 0; i < by_class.size(); ++i) {
    by_class[i] += other.by_class[i];
  }
  research += other.research;
  research_requests += other.research_requests;
  quic_port_rejects += other.quic_port_rejects;
}

const char* traffic_class_name(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kQuicRequest:
      return "quic-request";
    case TrafficClass::kQuicResponse:
      return "quic-response";
    case TrafficClass::kTcpRequest:
      return "tcp-request";
    case TrafficClass::kTcpBackscatter:
      return "tcp-backscatter";
    case TrafficClass::kIcmpBackscatter:
      return "icmp-backscatter";
    case TrafficClass::kOther:
      return "other";
  }
  return "?";
}

Classifier::Classifier(ClassifierConfig config)
    : config_(std::move(config)) {}

std::optional<PacketRecord> Classifier::classify(
    const net::RawPacket& packet) {
  return classify(packet.timestamp, packet.data);
}

std::optional<PacketRecord> Classifier::classify(
    util::Timestamp timestamp, std::span<const std::uint8_t> data) {
  ++stats_.total;
  const auto decoded = net::decode_ipv4(data);
  if (!decoded) {
    ++stats_.undecodable;
    return std::nullopt;
  }

  PacketRecord record;
  record.timestamp = timestamp;
  record.src = decoded->ip.src;
  record.dst = decoded->ip.dst;
  record.wire_size = static_cast<std::uint16_t>(data.size());

  if (decoded->is_udp()) {
    const auto& udp = decoded->udp();
    record.src_port = udp.src_port;
    record.dst_port = udp.dst_port;
    if (udp.src_port == kQuicPort || udp.dst_port == kQuicPort) {
      const auto dissected = quic::dissect_udp_payload(udp.payload);
      if (dissected.is_quic) {
        // Source port 443 -> response (backscatter); destination port
        // 443 -> request (scan). The two sets are disjoint by
        // construction: src==dst==443 is treated as a response.
        record.cls = udp.src_port == kQuicPort
                         ? TrafficClass::kQuicResponse
                         : TrafficClass::kQuicRequest;
        record.quic_packet_count =
            static_cast<std::uint8_t>(dissected.packets.size());
        for (const auto& quic_packet : dissected.packets) {
          ++record.kind_counts[static_cast<std::size_t>(quic_packet.kind)];
          if (record.quic_version == 0 &&
              quic_packet.kind != quic::QuicPacketKind::kShort) {
            record.quic_version = quic_packet.version;
          }
          if (!record.has_scid && !quic_packet.scid.empty()) {
            record.has_scid = true;
            record.scid_hash = quic_packet.scid.hash();
          }
        }
      } else {
        ++stats_.quic_port_rejects;
        record.cls = TrafficClass::kOther;
      }
    }
  } else if (decoded->is_tcp()) {
    const auto& tcp = decoded->tcp();
    record.src_port = tcp.src_port;
    record.dst_port = tcp.dst_port;
    const bool syn = tcp.flags & net::TcpFlags::kSyn;
    const bool ack = tcp.flags & net::TcpFlags::kAck;
    const bool rst = tcp.flags & net::TcpFlags::kRst;
    if (syn && !ack) {
      record.cls = TrafficClass::kTcpRequest;
    } else if ((syn && ack) || rst) {
      record.cls = TrafficClass::kTcpBackscatter;
    }
  } else if (decoded->is_icmp()) {
    if (is_backscatter_icmp(decoded->icmp().type)) {
      record.cls = TrafficClass::kIcmpBackscatter;
    }
  }

  for (const auto& prefix : config_.research_prefixes) {
    if (prefix.contains(record.src)) {
      record.is_research = true;
      break;
    }
  }
  ++stats_.by_class[static_cast<std::size_t>(record.cls)];
  if (record.is_research && record.is_quic()) {
    ++stats_.research;
    if (record.cls == TrafficClass::kQuicRequest) {
      ++stats_.research_requests;
    }
  }
  return record;
}

}  // namespace quicsand::core
