#include "core/victims.hpp"

#include <algorithm>
#include <unordered_map>

namespace quicsand::core {

double ProviderProfile::version_share(std::uint32_t version) const {
  std::uint64_t total = 0;
  for (const auto& [v, count] : version_counts) total += count;
  if (total == 0) return 0;
  const auto it = version_counts.find(version);
  return it == version_counts.end()
             ? 0.0
             : static_cast<double>(it->second) / static_cast<double>(total);
}

double VictimReport::single_attack_victim_share() const {
  if (victims.empty()) return 0;
  std::uint64_t single = 0;
  for (const auto& victim : victims) {
    if (victim.attack_count == 1) ++single;
  }
  return static_cast<double>(single) / static_cast<double>(victims.size());
}

std::vector<double> VictimReport::attacks_per_victim() const {
  std::vector<double> out;
  out.reserve(victims.size());
  for (const auto& victim : victims) {
    out.push_back(static_cast<double>(victim.attack_count));
  }
  return out;
}

VictimReport analyze_victims(std::span<const DetectedAttack> attacks,
                             const asdb::AsRegistry& registry,
                             const scanner::Deployment& deployment) {
  VictimReport report;
  std::unordered_map<std::uint32_t, VictimSummary> victims;
  for (const auto& attack : attacks) {
    ++report.total_attacks;
    auto [it, inserted] = victims.try_emplace(attack.victim.value());
    VictimSummary& summary = it->second;
    if (inserted) {
      summary.address = attack.victim;
      const auto* info = registry.lookup(attack.victim);
      if (info != nullptr) {
        summary.asn = info->asn;
        summary.as_name = info->name;
      }
      summary.known_quic_server = deployment.is_quic_server(attack.victim);
    }
    ++summary.attack_count;
    if (summary.known_quic_server) ++report.attacks_on_known_servers;
    ++report.attacks_by_asn[summary.asn];
  }
  report.victims.reserve(victims.size());
  for (auto& [address, summary] : victims) {
    report.victims.push_back(std::move(summary));
  }
  std::sort(report.victims.begin(), report.victims.end(),
            [](const VictimSummary& a, const VictimSummary& b) {
              return a.attack_count > b.attack_count ||
                     (a.attack_count == b.attack_count &&
                      a.address < b.address);
            });
  return report;
}

std::vector<ProviderProfile> profile_providers(
    std::span<const DetectedAttack> attacks,
    std::span<const Session> sessions, const asdb::AsRegistry& registry,
    std::span<const asdb::Asn> provider_asns) {
  std::vector<ProviderProfile> profiles;
  profiles.reserve(provider_asns.size());
  std::unordered_map<asdb::Asn, std::size_t> index;
  for (const auto asn : provider_asns) {
    const auto* info = registry.find(asn);
    ProviderProfile profile;
    profile.name = info != nullptr ? info->name : std::to_string(asn);
    index.emplace(asn, profiles.size());
    profiles.push_back(std::move(profile));
  }

  for (const auto& attack : attacks) {
    const auto* info = registry.lookup(attack.victim);
    if (info == nullptr) continue;
    const auto it = index.find(info->asn);
    if (it == index.end()) continue;
    ProviderProfile& profile = profiles[it->second];
    const Session& session = sessions[attack.session_index];
    ++profile.attacks;
    profile.packets_per_attack.add(static_cast<double>(session.packets.count()));
    profile.client_ips_per_attack.add(
        static_cast<double>(session.peers.size()));
    profile.client_ports_per_attack.add(
        static_cast<double>(session.peer_ports.size()));
    profile.scids_per_attack.add(static_cast<double>(session.scids.size()));
    for (const auto& [version, count] : session.version_counts) {
      profile.version_counts[version] += count;
    }
  }
  return profiles;
}

}  // namespace quicsand::core
