#include "core/parallel_pipeline.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace quicsand::core {

namespace {

std::size_t resolve_shards(std::size_t requested) {
  if (requested > 0) return requested;
  const auto hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::uint64_t steady_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ParallelPipeline::ParallelPipeline(ParallelPipelineOptions options)
    : options_(std::move(options)),
      shards_(resolve_shards(options_.shards)),
      hours_(static_cast<std::size_t>(options_.base.days) * 24) {
  if (options_.batch_size == 0) options_.batch_size = 4096;
  worker_classifiers_.reserve(shards_);
  for (std::size_t i = 0; i < shards_; ++i) {
    worker_classifiers_.push_back(std::make_unique<Classifier>(
        ClassifierConfig{options_.base.research_prefixes}));
  }
  worker_hourly_.reserve(kHourlySlotCount);
  for (std::size_t slot = 0; slot < kHourlySlotCount; ++slot) {
    worker_hourly_.emplace_back(shards_, hours_);
  }
  pending_.reserve(options_.batch_size);
  if (auto* metrics = options_.base.obs.metrics) {
    packets_counter_ = &metrics->counter(
        "pipeline.packets", "packets consumed by the pipeline");
    records_counter_ = &metrics->counter(
        "pipeline.records", "sanitized records kept for analysis");
    batches_counter_ =
        &metrics->counter("parallel.batches", "classify batches dispatched");
    backpressure_wait_us_ = &metrics->latency(
        "parallel.backpressure_wait_us",
        "time the capture loop blocked on in-flight batch backpressure");
    queue_wait_us_ = &metrics->latency(
        "parallel.queue_wait_us",
        "time a classify batch waited in the pool queue");
    shard_records_hist_ = &metrics->histogram(
        "parallel.shard_records", obs::size_bounds(),
        "records per analysis shard (imbalance indicator)");
    classify_batch_us_ = &metrics->latency(
        "parallel.classify_batch_us",
        "wall time a worker spent classifying one batch");
    sessionize_shard_us_ = &metrics->latency(
        "parallel.sessionize_shard_us",
        "wall time one shard spent in sessionization");
    analyze_shard_us_ = &metrics->latency(
        "parallel.analyze_shard_us",
        "wall time one shard spent in session + attack analysis");
    inflight_gauge_ = &metrics->gauge(
        "parallel.inflight_batches", "classify batches queued or running");
    pending_gauge_ = &metrics->gauge(
        "parallel.pending_packets",
        "packets buffered in the current (undispatched) batch");
    metrics->gauge("parallel.shards", "analysis shards / worker threads")
        .set(static_cast<std::int64_t>(shards_));
  }
  if (auto* health = options_.base.obs.health) {
    health_ = &health->component("parallel_pipeline");
    health_->set_ready(true);
  }
  pool_ = std::make_unique<util::ThreadPool>(shards_);
}

ParallelPipeline::ParallelPipeline(PipelineOptions base, std::size_t shards)
    : ParallelPipeline(
          ParallelPipelineOptions{std::move(base), shards, 4096}) {}

ParallelPipeline::~ParallelPipeline() {
  if (pool_) pool_->wait_idle();
}

void ParallelPipeline::consume(const net::RawPacket& packet) {
  if (packets_counter_ != nullptr) packets_counter_->add();
  pending_.push_back(packet);
  if (pending_gauge_ != nullptr) {
    pending_gauge_->set(static_cast<std::int64_t>(pending_.size()));
  }
  if (pending_.size() >= options_.batch_size) dispatch_batch();
}

net::RecordBatch ParallelPipeline::acquire_batch() {
  {
    util::LockGuard lock(pool_mutex_);
    if (!batch_pool_.empty()) {
      auto batch = std::move(batch_pool_.back());
      batch_pool_.pop_back();
      return batch;
    }
  }
  return net::RecordBatch(options_.batch_size);
}

void ParallelPipeline::wait_for_inflight_slot(util::UniqueLock& lock) {
  // Backpressure: bound the batches in flight so a fast capture or
  // generation loop cannot buffer the whole trace ahead of the workers.
  while (inflight_ >= 4 * shards_) inflight_cv_.wait(lock);
  ++inflight_;
  if (inflight_gauge_ != nullptr) {
    inflight_gauge_->set(static_cast<std::int64_t>(inflight_));
  }
}

void ParallelPipeline::release_inflight_slot() {
  util::LockGuard lock(inflight_mutex_);
  --inflight_;
  if (inflight_gauge_ != nullptr) {
    inflight_gauge_->set(static_cast<std::int64_t>(inflight_));
  }
  inflight_cv_.notify_all();
}

void ParallelPipeline::consume_batch(net::RecordBatch&& batch) {
  if (batch.empty()) {
    util::LockGuard lock(pool_mutex_);
    batch_pool_.push_back(std::move(batch));
    return;
  }
  if (packets_counter_ != nullptr) packets_counter_->add(batch.size());
  // Flush any per-packet consume() stragglers first so the record stream
  // keeps global arrival order.
  dispatch_batch();
  {
    const auto wait_start =
        backpressure_wait_us_ != nullptr ? steady_us() : 0;
    util::UniqueLock lock(inflight_mutex_);
    wait_for_inflight_slot(lock);
    if (backpressure_wait_us_ != nullptr) {
      backpressure_wait_us_->record(steady_us() - wait_start);
    }
  }
  if (batches_counter_ != nullptr) batches_counter_->add();
  if (health_ != nullptr) health_->heartbeat();
  batches_.emplace_back();
  auto* out = &batches_.back();
  auto shared = std::make_shared<net::RecordBatch>(std::move(batch));
  const auto submit_us = queue_wait_us_ != nullptr ? steady_us() : 0;
  pool_->submit([this, out, shared, submit_us](std::size_t worker) {
    if (queue_wait_us_ != nullptr) {
      queue_wait_us_->record(steady_us() - submit_us);
    }
    const auto batch_start = classify_batch_us_ != nullptr ? steady_us() : 0;
    obs::Span span(options_.base.obs.tracer, "parallel.classify_batch");
    auto& classifier = *worker_classifiers_[worker];
    out->reserve(shared->size());
    for (std::size_t i = 0; i < shared->size(); ++i) {
      const auto view = shared->view(i);
      const auto record = classifier.classify(view.timestamp, view.data);
      if (!record) continue;
      bin_hourly(*record, options_.base.window_start, hours_,
                 [this, worker](HourlySlot slot, std::size_t hour) {
                   worker_hourly_[static_cast<std::size_t>(slot)].add(worker,
                                                                      hour);
                 });
      if (!keep_for_analysis(*record)) continue;
      out->push_back(*record);
    }
    if (records_counter_ != nullptr) {
      records_counter_->add(out->size());
    }
    if (classify_batch_us_ != nullptr) {
      classify_batch_us_->record(steady_us() - batch_start);
    }
    {
      util::LockGuard lock(pool_mutex_);
      shared->clear();
      batch_pool_.push_back(std::move(*shared));
    }
    release_inflight_slot();
  });
}

void ParallelPipeline::dispatch_batch() {
  if (pending_.empty()) return;
  {
    const auto wait_start =
        backpressure_wait_us_ != nullptr ? steady_us() : 0;
    util::UniqueLock lock(inflight_mutex_);
    wait_for_inflight_slot(lock);
    if (backpressure_wait_us_ != nullptr) {
      backpressure_wait_us_->record(steady_us() - wait_start);
    }
  }
  if (batches_counter_ != nullptr) batches_counter_->add();
  if (health_ != nullptr) health_->heartbeat();
  batches_.emplace_back();
  auto* out = &batches_.back();
  auto batch =
      std::make_shared<std::vector<net::RawPacket>>(std::move(pending_));
  pending_.clear();
  pending_.reserve(options_.batch_size);
  if (pending_gauge_ != nullptr) pending_gauge_->set(0);
  const auto submit_us = queue_wait_us_ != nullptr ? steady_us() : 0;
  pool_->submit([this, out, batch, submit_us](std::size_t worker) {
    if (queue_wait_us_ != nullptr) {
      queue_wait_us_->record(steady_us() - submit_us);
    }
    const auto batch_start = classify_batch_us_ != nullptr ? steady_us() : 0;
    obs::Span span(options_.base.obs.tracer, "parallel.classify_batch");
    auto& classifier = *worker_classifiers_[worker];
    out->reserve(batch->size());
    for (const auto& packet : *batch) {
      const auto record = classifier.classify(packet);
      if (!record) continue;
      bin_hourly(*record, options_.base.window_start, hours_,
                 [this, worker](HourlySlot slot, std::size_t hour) {
                   worker_hourly_[static_cast<std::size_t>(slot)].add(worker,
                                                                      hour);
                 });
      if (!keep_for_analysis(*record)) continue;
      out->push_back(*record);
    }
    if (records_counter_ != nullptr) {
      records_counter_->add(out->size());
    }
    if (classify_batch_us_ != nullptr) {
      classify_batch_us_->record(steady_us() - batch_start);
    }
    release_inflight_slot();
  });
}

void ParallelPipeline::finish() {
  if (finished_) return;
  dispatch_batch();
  {
    obs::Span span(options_.base.obs.tracer, "parallel.ingest_drain");
    pool_->wait_idle();
  }

  obs::Span span(options_.base.obs.tracer, "parallel.merge_ingest");
  for (const auto& classifier : worker_classifiers_) {
    stats_.merge_from(classifier->stats());
  }
  for (std::size_t slot = 0; slot < kHourlySlotCount; ++slot) {
    hourly_.of(static_cast<HourlySlot>(slot)) = worker_hourly_[slot].merged();
  }
  std::size_t total = 0;
  for (const auto& batch : batches_) total += batch.size();
  records_.reserve(total);
  // Batches were dispatched in arrival order, so concatenating them
  // reproduces the serial pipeline's record stream exactly.
  for (auto& batch : batches_) {
    records_.insert(records_.end(), batch.begin(), batch.end());
  }
  batches_.clear();
  finished_ = true;
  if (auto* metrics = options_.base.obs.metrics) {
    publish_classifier_stats(stats_, *metrics);
  }
  if (health_ != nullptr) {
    health_->heartbeat();
    health_->set_idle(true);  // ingest drained and merged
  }
}

const ClassifierStats& ParallelPipeline::stats() {
  finish();
  return stats_;
}

const HourlySeries& ParallelPipeline::hourly() {
  finish();
  return hourly_;
}

std::span<const PacketRecord> ParallelPipeline::records() {
  finish();
  return records_;
}

const std::vector<std::vector<PacketRecord>>&
ParallelPipeline::shard_records() {
  finish();
  if (!sharded_) {
    obs::Span span(options_.base.obs.tracer, "parallel.shard_partition");
    // Count first so each shard vector is reserved exactly once — the
    // partition then never reallocates mid-pass.
    std::vector<std::size_t> counts(shards_, 0);
    for (const auto& record : records_) {
      ++counts[util::shard_of(record.src.value(), shards_)];
    }
    shard_records_.assign(shards_, {});
    for (std::size_t s = 0; s < shards_; ++s) {
      shard_records_[s].reserve(counts[s]);
    }
    for (const auto& record : records_) {
      shard_records_[util::shard_of(record.src.value(), shards_)].push_back(
          record);
    }
    sharded_ = true;
    if (shard_records_hist_ != nullptr) {
      for (const auto& shard : shard_records_) {
        shard_records_hist_->observe(shard.size());
      }
    }
  }
  return shard_records_;
}

std::vector<std::vector<Session>> ParallelPipeline::sharded_sessions(
    util::Duration timeout, const RecordFilter& filter) {
  const auto& shards = shard_records();
  std::vector<std::vector<Session>> parts(shards_);
  pool_->parallel_for(shards_, [&](std::size_t s, std::size_t) {
    obs::Span span(options_.base.obs.tracer,
                   "parallel.sessionize.shard" + std::to_string(s));
    const auto start = sessionize_shard_us_ != nullptr ? steady_us() : 0;
    parts[s] = build_sessions(shards[s], timeout, filter);
    if (sessionize_shard_us_ != nullptr) {
      sessionize_shard_us_->record(steady_us() - start);
    }
  });
  return parts;
}

std::vector<Session> ParallelPipeline::request_sessions(
    util::Duration timeout) {
  auto parts = sharded_sessions(timeout, quic_request_filter());
  obs::Span span(options_.base.obs.tracer, "parallel.merge_sessions");
  return merge_sessions(std::move(parts)).sessions;
}

std::vector<Session> ParallelPipeline::response_sessions(
    util::Duration timeout) {
  auto parts = sharded_sessions(timeout, quic_response_filter());
  obs::Span span(options_.base.obs.tracer, "parallel.merge_sessions");
  return merge_sessions(std::move(parts)).sessions;
}

std::vector<Session> ParallelPipeline::common_sessions(
    util::Duration timeout) {
  auto parts = sharded_sessions(timeout, common_backscatter_filter());
  obs::Span span(options_.base.obs.tracer, "parallel.merge_sessions");
  return merge_sessions(std::move(parts)).sessions;
}

std::vector<std::pair<util::Duration, std::uint64_t>>
ParallelPipeline::session_timeout_sweep(
    std::span<const util::Duration> timeouts) {
  const auto& shards = shard_records();
  const auto filter = sanitized_quic_filter();
  std::vector<GapProfile> profiles(shards_);
  pool_->parallel_for(shards_, [&](std::size_t s, std::size_t) {
    obs::Span span(options_.base.obs.tracer,
                   "parallel.gap_profile.shard" + std::to_string(s));
    profiles[s] = collect_gap_profile(shards[s], filter);
  });
  obs::Span span(options_.base.obs.tracer, "parallel.merge_gap_profiles");
  GapProfile merged;
  for (auto& profile : profiles) {
    merge_gap_profiles(merged, std::move(profile));
  }
  return sweep_counts(std::move(merged), timeouts);
}

Pipeline::AttackAnalysis ParallelPipeline::analyze_attacks() {
  return analyze_attacks(options_.base.thresholds);
}

Pipeline::AttackAnalysis ParallelPipeline::analyze_attacks(
    const DosThresholds& thresholds) {
  const auto& shards = shard_records();
  const auto timeout = options_.base.session_timeout;
  const auto response_filter = quic_response_filter();
  const auto common_filter = common_backscatter_filter();

  struct ShardAnalysis {
    std::vector<Session> response, common;
    std::vector<DetectedAttack> quic_attacks, common_attacks;
  };
  std::vector<ShardAnalysis> outs(shards_);
  pool_->parallel_for(shards_, [&](std::size_t s, std::size_t) {
    obs::Span span(options_.base.obs.tracer,
                   "parallel.analyze.shard" + std::to_string(s));
    const auto start = analyze_shard_us_ != nullptr ? steady_us() : 0;
    auto& out = outs[s];
    out.response = build_sessions(shards[s], timeout, response_filter);
    out.common = build_sessions(shards[s], timeout, common_filter);
    out.quic_attacks = detect_attacks(out.response, thresholds);
    out.common_attacks = detect_attacks(out.common, thresholds);
    if (analyze_shard_us_ != nullptr) {
      analyze_shard_us_->record(steady_us() - start);
    }
  });

  obs::Span merge_span(options_.base.obs.tracer, "parallel.merge_analysis");
  const auto merge_start_us =
      options_.base.obs.metrics != nullptr ? steady_us() : 0;

  std::vector<std::vector<Session>> response_parts(shards_);
  std::vector<std::vector<Session>> common_parts(shards_);
  std::vector<std::vector<DetectedAttack>> quic_parts(shards_);
  std::vector<std::vector<DetectedAttack>> common_attack_parts(shards_);
  for (std::size_t s = 0; s < shards_; ++s) {
    response_parts[s] = std::move(outs[s].response);
    common_parts[s] = std::move(outs[s].common);
    quic_parts[s] = std::move(outs[s].quic_attacks);
    common_attack_parts[s] = std::move(outs[s].common_attacks);
  }

  Pipeline::AttackAnalysis analysis;
  auto response_merge = merge_sessions(std::move(response_parts));
  analysis.quic_attacks =
      merge_attacks(std::move(quic_parts), response_merge.global_index);
  analysis.response_sessions = std::move(response_merge.sessions);
  auto common_merge = merge_sessions(std::move(common_parts));
  analysis.common_attacks =
      merge_attacks(std::move(common_attack_parts), common_merge.global_index);
  analysis.common_sessions = std::move(common_merge.sessions);

  if (auto* metrics = options_.base.obs.metrics) {
    metrics
        ->latency("parallel.merge_analysis_us",
                  "wall time of the final session/attack merge")
        .record(steady_us() - merge_start_us);
    metrics->gauge("pipeline.quic_attacks")
        .set(static_cast<std::int64_t>(analysis.quic_attacks.size()));
    metrics->gauge("pipeline.common_attacks")
        .set(static_cast<std::int64_t>(analysis.common_attacks.size()));
  }
  return analysis;
}

}  // namespace quicsand::core
