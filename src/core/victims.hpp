// Victim analysis (§5.2, Figures 6 and 9).
//
// Maps detected QUIC attacks to victims, counts attacks per victim,
// correlates victims with the active-scan hitlist, and aggregates the
// per-attack properties Figure 9 compares across content providers:
// packets, distinct (spoofed) client addresses, distinct client ports,
// and distinct SCIDs — the proxy for server-side state allocation.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "asdb/registry.hpp"
#include "core/correlate.hpp"
#include "core/dos.hpp"
#include "scanner/deployment.hpp"
#include "util/stats.hpp"

namespace quicsand::core {

struct VictimSummary {
  net::Ipv4Address address;
  asdb::Asn asn = 0;
  std::string as_name;
  std::uint64_t attack_count = 0;
  bool known_quic_server = false;
};

struct ProviderProfile {
  std::string name;
  std::uint64_t attacks = 0;
  util::Cdf packets_per_attack;
  util::Cdf client_ips_per_attack;
  util::Cdf client_ports_per_attack;
  util::Cdf scids_per_attack;
  std::map<std::uint32_t, std::uint64_t> version_counts;

  /// Share of this provider's attack packets seen with `version`.
  [[nodiscard]] double version_share(std::uint32_t version) const;
};

struct VictimReport {
  std::vector<VictimSummary> victims;  ///< sorted by attack count, desc
  std::uint64_t total_attacks = 0;
  std::uint64_t attacks_on_known_servers = 0;
  /// Attack share per provider ASN (Google / Facebook dominate).
  std::map<asdb::Asn, std::uint64_t> attacks_by_asn;

  [[nodiscard]] double known_server_share() const {
    return total_attacks == 0
               ? 0.0
               : static_cast<double>(attacks_on_known_servers) /
                     static_cast<double>(total_attacks);
  }
  [[nodiscard]] double single_attack_victim_share() const;
  /// Attacks-per-victim values (Figure 6 CDF).
  [[nodiscard]] std::vector<double> attacks_per_victim() const;
};

/// Build the victim report for detected QUIC attacks. `sessions` must be
/// the span the attacks' session_index fields refer to.
VictimReport analyze_victims(std::span<const DetectedAttack> attacks,
                             const asdb::AsRegistry& registry,
                             const scanner::Deployment& deployment);

/// Per-provider attack property profiles (Figure 9) for the given ASNs.
std::vector<ProviderProfile> profile_providers(
    std::span<const DetectedAttack> attacks,
    std::span<const Session> sessions, const asdb::AsRegistry& registry,
    std::span<const asdb::Asn> provider_asns);

}  // namespace quicsand::core
