// End-to-end QUICsand analysis pipeline.
//
// Feed it captured packets (from a pcap file or the telescope generator);
// it classifies them, keeps compact records for the analysis stages, and
// exposes the hourly series, sessionization, DoS detection and
// correlation helpers that the figure harnesses consume.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/classifier.hpp"
#include "core/correlate.hpp"
#include "core/dos.hpp"
#include "core/sessions.hpp"
#include "net/packet.hpp"
#include "obs/hooks.hpp"

namespace quicsand::core {

struct PipelineOptions {
  util::Timestamp window_start = util::kApril2021Start;
  int days = 30;
  std::vector<net::Ipv4Prefix> research_prefixes;
  util::Duration session_timeout = 5 * util::kMinute;
  DosThresholds thresholds;
  /// Optional metrics/tracing sinks; all-null (the default) costs one
  /// pointer check per packet.
  obs::Hooks obs;
};

/// Publish a ClassifierStats snapshot as gauges ("classifier.*") on
/// `metrics`; shared by the serial and parallel pipelines and usable
/// directly by tools that run a bare Classifier.
void publish_classifier_stats(const ClassifierStats& stats,
                              obs::MetricsRegistry& metrics);

/// The four hourly series the figures consume.
enum class HourlySlot : std::uint8_t {
  kResearchQuic,
  kOtherQuic,
  kQuicRequests,
  kQuicResponses,
};
constexpr std::size_t kHourlySlotCount = 4;

/// Per-hour packet counts over the analysis window.
struct HourlySeries {
  std::vector<std::uint64_t> research_quic;  ///< Figure 2
  std::vector<std::uint64_t> other_quic;     ///< Figure 2
  std::vector<std::uint64_t> quic_requests;  ///< Figure 3 (sanitized)
  std::vector<std::uint64_t> quic_responses; ///< Figure 3 (sanitized)

  [[nodiscard]] std::vector<std::uint64_t>& of(HourlySlot slot) {
    switch (slot) {
      case HourlySlot::kResearchQuic: return research_quic;
      case HourlySlot::kOtherQuic: return other_quic;
      case HourlySlot::kQuicRequests: return quic_requests;
      case HourlySlot::kQuicResponses: return quic_responses;
    }
    return research_quic;
  }
};

/// True when the record feeds the analysis stages: research scanners and
/// unclassified traffic are counted, then dropped.
[[nodiscard]] inline bool keep_for_analysis(const PacketRecord& record) {
  return !record.is_research && record.cls != TrafficClass::kOther;
}

/// Invoke add(slot, hour) for each hourly series the record contributes
/// to (shared by the serial and parallel ingest paths). Out-of-window
/// records contribute nothing.
template <typename AddFn>
void bin_hourly(const PacketRecord& record, util::Timestamp window_start,
                std::size_t hours, AddFn&& add) {
  if (!record.is_quic()) return;
  const auto bin = util::hour_bin(record.timestamp, window_start);
  if (bin.count() < 0 || bin.count() >= static_cast<std::int64_t>(hours)) {
    return;
  }
  const auto hour = static_cast<std::size_t>(bin.count());
  if (record.is_research) {
    add(HourlySlot::kResearchQuic, hour);
  } else {
    add(HourlySlot::kOtherQuic, hour);
    add(record.cls == TrafficClass::kQuicRequest
            ? HourlySlot::kQuicRequests
            : HourlySlot::kQuicResponses,
        hour);
  }
}

class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options);

  /// Ingest one packet (must arrive in time order).
  void consume(const net::RawPacket& packet);

  /// Zero-copy variant over a non-owning view (batched ingest, e.g. a
  /// RecordBatch PacketView); the RawPacket overload delegates here.
  void consume(util::Timestamp timestamp, std::span<const std::uint8_t> data);

  [[nodiscard]] const ClassifierStats& stats() const {
    return classifier_.stats();
  }
  [[nodiscard]] const HourlySeries& hourly() const { return hourly_; }

  /// Sanitized records (research scanners and kOther dropped).
  [[nodiscard]] std::span<const PacketRecord> records() const {
    return records_;
  }

  [[nodiscard]] std::vector<Session> request_sessions(
      util::Duration timeout) const {
    return build_sessions(records_, timeout, quic_request_filter());
  }
  [[nodiscard]] std::vector<Session> response_sessions(
      util::Duration timeout) const {
    return build_sessions(records_, timeout, quic_response_filter());
  }
  [[nodiscard]] std::vector<Session> common_sessions(
      util::Duration timeout) const {
    return build_sessions(records_, timeout, common_backscatter_filter());
  }

  /// Figure 4 sweep over the sanitized QUIC records (both directions).
  [[nodiscard]] std::vector<std::pair<util::Duration, std::uint64_t>>
  session_timeout_sweep(std::span<const util::Duration> timeouts) const;

  /// Detected QUIC and TCP/ICMP attacks at the configured thresholds,
  /// with their session lists.
  struct AttackAnalysis {
    std::vector<Session> response_sessions;
    std::vector<Session> common_sessions;
    std::vector<DetectedAttack> quic_attacks;
    std::vector<DetectedAttack> common_attacks;
  };
  [[nodiscard]] AttackAnalysis analyze_attacks() const;
  [[nodiscard]] AttackAnalysis analyze_attacks(
      const DosThresholds& thresholds) const;

  [[nodiscard]] const PipelineOptions& options() const { return options_; }

 private:
  PipelineOptions options_;
  Classifier classifier_;
  HourlySeries hourly_;
  std::vector<PacketRecord> records_;
  // Resolved once at construction; nullptr when no registry is attached.
  obs::Counter* packets_counter_ = nullptr;
  obs::Counter* records_counter_ = nullptr;
};

}  // namespace quicsand::core
