#include "lint/lint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <cstdio>
#include <sstream>

namespace quicsand::lint {

namespace {

/// Parse `lint:allow(a, b)` markers out of one comment token, recording
/// the allowed rule names against the comment's line.
void collect_allows(const Token& comment,
                    std::map<int, std::set<std::string>>* allows) {
  std::string_view text = comment.text;
  std::size_t pos = 0;
  while ((pos = text.find("lint:allow(", pos)) != std::string_view::npos) {
    pos += std::string_view("lint:allow(").size();
    const std::size_t close = text.find(')', pos);
    if (close == std::string_view::npos) return;
    std::string names(text.substr(pos, close - pos));
    std::stringstream stream(names);
    std::string name;
    while (std::getline(stream, name, ',')) {
      const auto first = name.find_first_not_of(" \t");
      const auto last = name.find_last_not_of(" \t");
      if (first == std::string::npos) continue;
      (*allows)[comment.line].insert(name.substr(first, last - first + 1));
    }
    pos = close;
  }
}

void append_json_escaped(std::string* out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

LintResult lint_source(const std::string& path, std::string_view source,
                       const RuleSet& rules) {
  const auto tokens = lex(source);

  std::map<int, std::set<std::string>> allows;
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kComment) collect_allows(token, &allows);
  }
  const auto allowed = [&](const Finding& finding) {
    for (const int line : {finding.line, finding.line - 1}) {
      const auto it = allows.find(line);
      if (it != allows.end() && it->second.contains(finding.rule)) {
        return true;
      }
    }
    return false;
  };

  LintResult result;
  std::vector<TextEdit> fixes;
  auto findings = check_tokens(path, tokens, rules, &fixes);
  for (auto& finding : findings) {
    if (allowed(finding)) {
      ++result.suppressed;
    } else {
      result.findings.push_back(std::move(finding));
    }
  }
  // Keep fixes only if the fixable findings survived suppression — a
  // suppressed finding must not be "fixed" behind the author's back.
  const bool any_fixable =
      std::any_of(result.findings.begin(), result.findings.end(),
                  [](const Finding& f) { return f.fixable; });
  if (any_fixable) result.fixes = std::move(fixes);
  return result;
}

std::string apply_edits(std::string_view source, std::vector<TextEdit> edits) {
  std::sort(edits.begin(), edits.end(),
            [](const TextEdit& a, const TextEdit& b) {
              return a.offset < b.offset;
            });
  std::string out;
  out.reserve(source.size() + edits.size() * 2);
  std::size_t cursor = 0;
  for (const TextEdit& edit : edits) {
    if (edit.offset < cursor || edit.offset + edit.length > source.size()) {
      continue;  // overlapping or out-of-range edit: skip defensively
    }
    out.append(source.substr(cursor, edit.offset - cursor));
    out.append(edit.replacement);
    cursor = edit.offset + edit.length;
  }
  out.append(source.substr(cursor));
  return out;
}

std::string findings_to_json(const std::vector<Finding>& findings,
                             std::size_t checked_files,
                             std::size_t suppressed) {
  std::string out = "{\n";
  out += "  \"checked_files\": " + std::to_string(checked_files) + ",\n";
  out += "  \"suppressed\": " + std::to_string(suppressed) + ",\n";
  out += "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": \"";
    append_json_escaped(&out, f.file);
    out += "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"";
    append_json_escaped(&out, f.rule);
    out += "\", \"fixable\": ";
    out += f.fixable ? "true" : "false";
    out += ", \"message\": \"";
    append_json_escaped(&out, f.message);
    out += "\"}";
  }
  out += findings.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string finding_to_text(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

}  // namespace quicsand::lint
