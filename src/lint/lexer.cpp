#include "lint/token.hpp"

#include <cctype>
#include <string>

namespace quicsand::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> out;
  const std::size_t n = source.size();
  std::size_t i = 0;
  int line = 1;
  const auto peek = [&](std::size_t k) -> char {
    return i + k < n ? source[i + k] : '\0';
  };
  const auto push = [&](TokenKind kind, std::size_t start, int start_line) {
    out.push_back({kind, source.substr(start, i - start), start_line, start});
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      const std::size_t start = i;
      while (i < n && source[i] != '\n') ++i;
      push(TokenKind::kComment, start, line);
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const std::size_t start = i;
      const int start_line = line;
      i += 2;
      while (i < n && !(source[i] == '*' && peek(1) == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i < n) i += 2;
      push(TokenKind::kComment, start, start_line);
      continue;
    }
    if (c == 'R' && peek(1) == '"') {
      // Raw string: R"delim( ... )delim".
      const std::size_t start = i;
      const int start_line = line;
      std::size_t d = i + 2;
      while (d < n && source[d] != '(' && d - (i + 2) < 16) ++d;
      const std::string_view delim = source.substr(i + 2, d - (i + 2));
      std::string closer = ")";
      closer.append(delim);
      closer.push_back('"');
      const std::size_t end = source.find(closer, d);
      const std::size_t stop = end == std::string_view::npos
                                   ? n
                                   : end + closer.size();
      for (std::size_t k = i; k < stop; ++k) {
        if (source[k] == '\n') ++line;
      }
      i = stop;
      push(TokenKind::kString, start, start_line);
      continue;
    }
    if (c == '"' || c == '\'') {
      const std::size_t start = i;
      const int start_line = line;
      ++i;
      while (i < n && source[i] != c) {
        if (source[i] == '\\') ++i;
        if (i < n && source[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      push(TokenKind::kString, start, start_line);
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(source[i])) ++i;
      push(TokenKind::kIdentifier, start, line);
      continue;
    }
    if (digit(c) || (c == '.' && digit(peek(1)))) {
      const std::size_t start = i;
      while (i < n) {
        const char d = source[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') && i > start &&
                   (source[i - 1] == 'e' || source[i - 1] == 'E' ||
                    source[i - 1] == 'p' || source[i - 1] == 'P')) {
          ++i;  // exponent sign
        } else {
          break;
        }
      }
      push(TokenKind::kNumber, start, line);
      continue;
    }
    if (c == ':' && peek(1) == ':') {
      const std::size_t start = i;
      i += 2;
      push(TokenKind::kPunct, start, line);
      continue;
    }
    {
      const std::size_t start = i;
      ++i;
      push(TokenKind::kPunct, start, line);
    }
  }
  return out;
}

}  // namespace quicsand::lint
