// File-level driver for the lint pass: tokenizes a source buffer, runs
// the rule set, strips findings suppressed with `// lint:allow(<rule>)`
// (same or preceding line), and renders reports.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.hpp"

namespace quicsand::lint {

struct LintResult {
  std::vector<Finding> findings;   ///< after suppression filtering
  std::size_t suppressed = 0;      ///< findings silenced by lint:allow
  std::vector<TextEdit> fixes;     ///< edits for the fixable findings
};

/// Lint one in-memory source buffer. `path` names the file in findings
/// and drives the per-rule allowlists.
[[nodiscard]] LintResult lint_source(const std::string& path,
                                     std::string_view source,
                                     const RuleSet& rules);

/// Apply text edits to `source` (offsets refer to the original buffer).
[[nodiscard]] std::string apply_edits(std::string_view source,
                                      std::vector<TextEdit> edits);

/// Render findings as a JSON report:
/// {"checked_files": N, "suppressed": M, "findings": [...]}.
[[nodiscard]] std::string findings_to_json(const std::vector<Finding>& findings,
                                           std::size_t checked_files,
                                           std::size_t suppressed);

/// One finding in compiler-style text form: "path:line: [rule] message".
[[nodiscard]] std::string finding_to_text(const Finding& finding);

}  // namespace quicsand::lint
