// Repo-specific lint rules over the token stream.
//
// Rules come in two families:
//
//  * banned calls — a data-driven table of identifiers that must not be
//    called outside an allowlisted set of paths (the blessed wrappers).
//  * structural rules — small token-pattern checks enforcing the strong
//    time/packet axis conventions that the type system alone cannot see
//    (e.g. in not-yet-migrated code or generic contexts).
//
// A finding can be suppressed with `// lint:allow(<rule>)` on the same
// or the preceding line. Rule names are stable identifiers used both in
// suppressions and in the machine-readable report.
#pragma once

#include <string>
#include <vector>

#include "lint/token.hpp"

namespace quicsand::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  bool fixable = false;

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// Identifiers that may only be called from allowlisted paths.
struct BannedCallRule {
  std::string name;
  std::vector<std::string> identifiers;
  /// Substrings of the (slash-normalized) path where use is allowed.
  std::vector<std::string> allowed_paths;
  std::string message;
  /// If true, only fires when the identifier is directly called
  /// (followed by '('); otherwise any mention fires.
  bool require_call = true;
};

/// Structural rule names (stable, used in suppressions and reports).
inline constexpr char kRuleMixedUnits[] = "time-literal-parens";
inline constexpr char kRuleInt64TimeParam[] = "naked-int64-time-param";
inline constexpr char kRuleTimestampDoubleCast[] = "timestamp-double-cast";
inline constexpr char kRuleRawStdMutex[] = "raw-std-mutex";
inline constexpr char kRuleLayering[] = "layering";
inline constexpr char kRuleMutableStatic[] = "unguarded-mutable-static";

/// One module's allowed include targets. A module may always include
/// itself and `util`; everything else must be listed here.
struct LayeringEdge {
  std::string module;             ///< e.g. "core", "net/live"
  std::vector<std::string> deps;  ///< modules it may include
};

struct RuleSet {
  std::vector<BannedCallRule> banned;

  /// Time-unit constants participating in the mixed-units rule.
  std::vector<std::string> unit_constants;
  std::vector<std::string> mixed_units_allowed_paths;

  /// Name patterns that mark an int64 parameter as carrying time.
  std::vector<std::string> time_name_substrings;
  std::vector<std::string> time_name_suffixes;
  std::vector<std::string> time_name_exact;
  std::vector<std::string> int64_param_allowed_paths;

  std::vector<std::string> double_cast_allowed_paths;

  /// std:: synchronization primitives banned outside util/sync.hpp
  /// (raw-std-mutex): the type names and the headers that provide them.
  std::vector<std::string> raw_mutex_identifiers;
  std::vector<std::string> raw_mutex_headers;
  std::vector<std::string> raw_mutex_allowed_paths;

  /// The module DAG (layering): src/<module> files may only include the
  /// listed modules (plus themselves and util). Files outside src/ are
  /// unconstrained. See DESIGN.md §9 for the diagram.
  std::vector<LayeringEdge> layering;

  /// Paths exempt from unguarded-mutable-static (signal-handler flags
  /// in the examples).
  std::vector<std::string> mutable_static_allowed_paths;
};

/// The repo's rule table (see DESIGN.md §9 for rationale).
[[nodiscard]] RuleSet default_rules();

/// True if `path` (slash-normalized) matches one of the allowlist
/// substrings.
[[nodiscard]] bool path_allowed(const std::string& path,
                                const std::vector<std::string>& allowed);

/// A mechanical fix: insert/replace `replacement` over
/// [offset, offset+length) of the original source.
struct TextEdit {
  std::size_t offset = 0;
  std::size_t length = 0;
  std::string replacement;
};

/// Run every rule over one file's tokens. `path` is used for allowlist
/// matching and as the finding's file name. Fixable findings append
/// their edits to `fixes` (offsets into the original source).
[[nodiscard]] std::vector<Finding> check_tokens(
    const std::string& path, const std::vector<Token>& tokens,
    const RuleSet& rules, std::vector<TextEdit>* fixes);

}  // namespace quicsand::lint
