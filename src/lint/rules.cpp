#include "lint/rules.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <tuple>

namespace quicsand::lint {

namespace {

std::string lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

/// Index of the next non-comment token at or after `i`, or tokens.size().
std::size_t skip_comments(const std::vector<Token>& tokens, std::size_t i) {
  while (i < tokens.size() && tokens[i].kind == TokenKind::kComment) ++i;
  return i;
}

/// Index of the previous non-comment token before `i`, or npos.
std::size_t prev_token(const std::vector<Token>& tokens, std::size_t i) {
  while (i > 0) {
    --i;
    if (tokens[i].kind != TokenKind::kComment) return i;
  }
  return static_cast<std::size_t>(-1);
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

// ---------------------------------------------------------------------
// Banned calls
// ---------------------------------------------------------------------

void check_banned(const std::string& path, const std::vector<Token>& tokens,
                  const BannedCallRule& rule, std::vector<Finding>* out) {
  if (path_allowed(path, rule.allowed_paths)) return;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (std::find(rule.identifiers.begin(), rule.identifiers.end(), t.text) ==
        rule.identifiers.end()) {
      continue;
    }
    if (rule.require_call) {
      const auto next = skip_comments(tokens, i + 1);
      if (next >= tokens.size() || !is_punct(tokens[next], "(")) continue;
    }
    const auto prev = prev_token(tokens, i);
    if (prev != static_cast<std::size_t>(-1)) {
      const Token& p = tokens[prev];
      // Member access (`x.rand()`, `x->rand()`) is someone else's method.
      if (is_punct(p, ".") || is_punct(p, ">")) continue;
      if (is_punct(p, "::")) {
        // Qualified name: only the global and std:: spellings are the
        // banned libc/std entry points.
        const auto qual = prev_token(tokens, prev);
        if (qual != static_cast<std::size_t>(-1) &&
            tokens[qual].kind == TokenKind::kIdentifier &&
            tokens[qual].text != "std" && tokens[qual].text != "chrono") {
          continue;
        }
      }
    }
    out->push_back({path, t.line, rule.name, rule.message, false});
  }
}

// ---------------------------------------------------------------------
// Mixed time-unit literals: `2 * kMinute + 30 * kSecond` must be
// `(2 * kMinute) + (30 * kSecond)`.
// ---------------------------------------------------------------------

struct Operand {
  std::size_t first = 0;       ///< token index
  std::size_t last = 0;        ///< token index (inclusive)
  int tokens = 0;              ///< non-comment token count
  std::set<std::string_view> units;
};

struct Chain {
  Operand cur;
  std::set<std::string_view> units;
  std::vector<Operand> fixable;  ///< multi-token unit-bearing operands
  int unit_operands = 0;         ///< operands carrying at least one unit
  bool any_multi = false;
  bool flagged = false;
  int flag_line = 0;
};

void close_operand(Chain* chain, int line) {
  Operand& op = chain->cur;
  if (op.tokens > 0 && !op.units.empty()) {
    chain->units.insert(op.units.begin(), op.units.end());
    ++chain->unit_operands;
    if (op.tokens > 1) {
      chain->any_multi = true;
      chain->fixable.push_back(op);
    }
    // Only additive mixing is ambiguous: a single operand such as
    // `kMinute / kSecond` already binds unambiguously.
    if (chain->units.size() >= 2 && chain->unit_operands >= 2 &&
        chain->any_multi && !chain->flagged) {
      chain->flagged = true;
      chain->flag_line = line;
    }
  }
  chain->cur = Operand{};
}

void finish_chain(const std::string& path, const std::vector<Token>& tokens,
                  Chain* chain, int line, std::vector<Finding>* out,
                  std::vector<TextEdit>* fixes) {
  close_operand(chain, line);
  if (chain->flagged) {
    out->push_back({path, chain->flag_line, kRuleMixedUnits,
                    "parenthesize each term when mixing time-unit "
                    "constants in one expression",
                    true});
    if (fixes != nullptr) {
      for (const Operand& op : chain->fixable) {
        fixes->push_back({tokens[op.first].offset, 0, "("});
        fixes->push_back(
            {tokens[op.last].offset + tokens[op.last].text.size(), 0, ")"});
      }
    }
  }
  *chain = Chain{};
}

void check_mixed_units(const std::string& path,
                       const std::vector<Token>& tokens, const RuleSet& rules,
                       std::vector<Finding>* out,
                       std::vector<TextEdit>* fixes) {
  if (path_allowed(path, rules.mixed_units_allowed_paths)) return;
  const auto is_unit = [&](std::string_view text) {
    return std::find(rules.unit_constants.begin(), rules.unit_constants.end(),
                     text) != rules.unit_constants.end();
  };

  std::vector<Chain> stack(1);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokenKind::kComment) continue;
    Chain* chain = &stack.back();
    const auto extend = [&](Chain* c) {
      if (c->cur.tokens == 0) c->cur.first = i;
      c->cur.last = i;
      ++c->cur.tokens;
    };

    if (t.kind == TokenKind::kPunct) {
      const std::string_view p = t.text;
      if (p == "(" || p == "[") {
        extend(chain);        // the paren belongs to the outer operand
        stack.emplace_back();  // inner expression gets a fresh chain
        continue;
      }
      if (p == ")" || p == "]") {
        finish_chain(path, tokens, chain, t.line, out, fixes);
        if (stack.size() > 1) stack.pop_back();
        extend(&stack.back());
        continue;
      }
      if (p == "+" || p == "-" || p == "?" || p == ":") {
        close_operand(chain, t.line);
        continue;
      }
      if (p == ";" || p == "{" || p == "}" || p == "," || p == "=" ||
          p == "<" || p == ">" || p == "!" || p == "&" || p == "|") {
        finish_chain(path, tokens, chain, t.line, out, fixes);
        continue;
      }
      extend(chain);  // "*", "/", "::", "." etc. stay inside the operand
      continue;
    }
    if (t.kind == TokenKind::kIdentifier && t.text == "return") {
      finish_chain(path, tokens, chain, t.line, out, fixes);
      continue;
    }
    extend(chain);
    if (t.kind == TokenKind::kIdentifier && is_unit(t.text)) {
      chain->cur.units.insert(t.text);
    }
  }
  const int last_line = tokens.empty() ? 1 : tokens.back().line;
  while (!stack.empty()) {
    finish_chain(path, tokens, &stack.back(), last_line, out, fixes);
    stack.pop_back();
  }
}

// ---------------------------------------------------------------------
// Naked int64 time parameters: `std::int64_t start_us,` should be a
// strong type (util::Timestamp / util::Duration).
// ---------------------------------------------------------------------

void check_int64_time_params(const std::string& path,
                             const std::vector<Token>& tokens,
                             const RuleSet& rules,
                             std::vector<Finding>* out) {
  if (path_allowed(path, rules.int64_param_allowed_paths)) return;
  const auto time_name = [&](std::string_view name) {
    const std::string l = lower(name);
    for (const auto& sub : rules.time_name_substrings) {
      if (l.find(sub) != std::string::npos) return true;
    }
    for (const auto& suffix : rules.time_name_suffixes) {
      if (ends_with(l, suffix)) return true;
    }
    for (const auto& exact : rules.time_name_exact) {
      if (l == exact) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier ||
        tokens[i].text != "int64_t") {
      continue;
    }
    const auto name_idx = skip_comments(tokens, i + 1);
    if (name_idx >= tokens.size() ||
        tokens[name_idx].kind != TokenKind::kIdentifier) {
      continue;
    }
    const auto after = skip_comments(tokens, name_idx + 1);
    if (after >= tokens.size() ||
        (!is_punct(tokens[after], ",") && !is_punct(tokens[after], ")"))) {
      continue;  // not a parameter
    }
    if (!time_name(tokens[name_idx].text)) continue;
    out->push_back({path, tokens[name_idx].line, kRuleInt64TimeParam,
                    "time-valued parameter '" +
                        std::string(tokens[name_idx].text) +
                        "' should be util::Timestamp or util::Duration, "
                        "not a naked int64_t",
                    false});
  }
}

// ---------------------------------------------------------------------
// static_cast<double> applied to a timestamp expression: the value is
// epoch microseconds and loses precision as double; go through
// util::to_seconds on a Duration instead.
// ---------------------------------------------------------------------

void check_timestamp_double_cast(const std::string& path,
                                 const std::vector<Token>& tokens,
                                 const RuleSet& rules,
                                 std::vector<Finding>* out) {
  if (path_allowed(path, rules.double_cast_allowed_paths)) return;
  for (std::size_t i = 0; i + 4 < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier ||
        tokens[i].text != "static_cast") {
      continue;
    }
    auto j = skip_comments(tokens, i + 1);
    if (j >= tokens.size() || !is_punct(tokens[j], "<")) continue;
    j = skip_comments(tokens, j + 1);
    if (j >= tokens.size() || tokens[j].text != "double") continue;
    j = skip_comments(tokens, j + 1);
    if (j >= tokens.size() || !is_punct(tokens[j], ">")) continue;
    j = skip_comments(tokens, j + 1);
    if (j >= tokens.size() || !is_punct(tokens[j], "(")) continue;
    int depth = 1;
    bool hit = false;
    for (auto k = j + 1; k < tokens.size() && depth > 0; ++k) {
      const Token& t = tokens[k];
      if (is_punct(t, "(")) ++depth;
      if (is_punct(t, ")")) --depth;
      if (t.kind == TokenKind::kIdentifier) {
        const std::string l = lower(t.text);
        if (l.find("timestamp") != std::string::npos || l == "ts") hit = true;
      }
    }
    if (hit) {
      out->push_back({path, tokens[i].line, kRuleTimestampDoubleCast,
                      "casting a timestamp to double loses microsecond "
                      "precision; subtract an origin and use "
                      "util::to_seconds",
                      false});
    }
  }
}

// ---------------------------------------------------------------------
// Raw std synchronization primitives: everything must go through the
// annotated util::Mutex/util::CondVar wrappers in util/sync.hpp, which
// carry thread-safety capabilities and a lock rank.
// ---------------------------------------------------------------------

void check_raw_std_mutex(const std::string& path,
                         const std::vector<Token>& tokens,
                         const RuleSet& rules, std::vector<Finding>* out) {
  if (rules.raw_mutex_identifiers.empty()) return;
  if (path_allowed(path, rules.raw_mutex_allowed_paths)) return;
  const auto listed = [](const std::vector<std::string>& list,
                         std::string_view text) {
    return std::find(list.begin(), list.end(), text) != list.end();
  };
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    const auto prev = prev_token(tokens, i);
    if (prev == static_cast<std::size_t>(-1)) continue;
    // std::mutex, std::lock_guard, std::condition_variable, ...
    if (listed(rules.raw_mutex_identifiers, t.text) &&
        is_punct(tokens[prev], "::")) {
      const auto qual = prev_token(tokens, prev);
      if (qual != static_cast<std::size_t>(-1) &&
          tokens[qual].kind == TokenKind::kIdentifier &&
          tokens[qual].text == "std") {
        out->push_back(
            {path, t.line, kRuleRawStdMutex,
             "use util::Mutex/LockGuard/UniqueLock/CondVar (util/sync.hpp) "
             "instead of std::" +
                 std::string(t.text) +
                 ": the wrappers carry thread-safety annotations and a "
                 "lock rank",
             false});
      }
      continue;
    }
    // #include <mutex> and friends: pulling the raw header in at all is
    // a sign the sync layer is being bypassed.
    if (listed(rules.raw_mutex_headers, t.text) &&
        is_punct(tokens[prev], "<")) {
      const auto inc = prev_token(tokens, prev);
      if (inc == static_cast<std::size_t>(-1) ||
          tokens[inc].kind != TokenKind::kIdentifier ||
          tokens[inc].text != "include") {
        continue;
      }
      const auto hash = prev_token(tokens, inc);
      if (hash != static_cast<std::size_t>(-1) &&
          is_punct(tokens[hash], "#")) {
        out->push_back({path, t.line, kRuleRawStdMutex,
                        "include util/sync.hpp instead of <" +
                            std::string(t.text) +
                            ">: raw std synchronization primitives are "
                            "banned outside the sync layer",
                        false});
      }
    }
  }
}

// ---------------------------------------------------------------------
// Layering: src/<module> files may only include the modules their edge
// in the committed DAG allows (plus themselves and util).
// ---------------------------------------------------------------------

/// Longest module prefix of `rel` (a path relative to src/) among the
/// modules named in the edge table; empty when none matches.
std::string module_of(std::string_view rel, const RuleSet& rules) {
  std::string best;
  for (const auto& edge : rules.layering) {
    const auto& m = edge.module;
    if (rel.size() > m.size() && rel.substr(0, m.size()) == m &&
        rel[m.size()] == '/' && m.size() > best.size()) {
      best = m;
    }
  }
  return best;
}

void check_layering(const std::string& path, const std::vector<Token>& tokens,
                    const RuleSet& rules, std::vector<Finding>* out) {
  if (rules.layering.empty()) return;
  std::string normalized = path;
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  const auto src = normalized.rfind("src/");
  if (src == std::string::npos) return;  // tests/tools/bench: unconstrained
  const std::string from = module_of(normalized.substr(src + 4), rules);
  if (from.empty()) return;
  const LayeringEdge* edge = nullptr;
  for (const auto& candidate : rules.layering) {
    if (candidate.module == from) edge = &candidate;
  }
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (!is_punct(tokens[i], "#")) continue;
    auto j = skip_comments(tokens, i + 1);
    if (j >= tokens.size() || tokens[j].kind != TokenKind::kIdentifier ||
        tokens[j].text != "include") {
      continue;
    }
    j = skip_comments(tokens, j + 1);
    if (j >= tokens.size() || tokens[j].kind != TokenKind::kString) {
      continue;  // <system> includes carry no module
    }
    const std::string_view quoted = tokens[j].text;
    if (quoted.size() < 2) continue;
    const auto target =
        module_of(quoted.substr(1, quoted.size() - 2), rules);
    if (target.empty() || target == from || target == "util") continue;
    if (edge != nullptr &&
        std::find(edge->deps.begin(), edge->deps.end(), target) !=
            edge->deps.end()) {
      continue;
    }
    out->push_back({path, tokens[j].line, kRuleLayering,
                    "module '" + from + "' may not include '" + target +
                        "' (layering DAG; edge table in "
                        "lint/rules.cpp, diagram in DESIGN.md)",
                    false});
  }
}

// ---------------------------------------------------------------------
// Unguarded mutable namespace-scope state: a non-const global is
// invisible to the thread-safety analysis (no mutex can guard it by
// annotation), so it is banned outside allowlisted signal-handler
// files. const/constexpr and thread_local declarations are exempt.
// ---------------------------------------------------------------------

void check_mutable_static(const std::string& path,
                          const std::vector<Token>& tokens,
                          const RuleSet& rules, std::vector<Finding>* out) {
  if (path_allowed(path, rules.mutable_static_allowed_paths)) return;
  // Keywords whose statements are not plain variable definitions (type
  // definitions, templates, aliases, declarations) or are exempt
  // (const/constexpr/thread_local, extern declarations).
  static constexpr std::string_view kSkipKeywords[] = {
      "class",     "struct",        "enum",       "union",
      "template",  "using",         "typedef",    "extern",
      "friend",    "static_assert", "const",      "constexpr",
      "thread_local", "requires",   "concept",    "operator",
      "namespace", "asm"};
  std::vector<bool> namespace_scope;  // brace stack: true = namespace
  bool pending_namespace = false;
  const std::size_t n = tokens.size();
  std::size_t i = 0;
  while (i < n) {
    const Token& t = tokens[i];
    if (t.kind == TokenKind::kComment) {
      ++i;
      continue;
    }
    if (is_punct(t, "#")) {  // preprocessor: skip the directive's line
      const int line = t.line;
      while (i < n && tokens[i].line == line) ++i;
      continue;
    }
    if (t.kind == TokenKind::kIdentifier && t.text == "namespace") {
      pending_namespace = true;
      ++i;
      continue;
    }
    if (is_punct(t, "{")) {
      namespace_scope.push_back(pending_namespace);
      pending_namespace = false;
      ++i;
      continue;
    }
    if (is_punct(t, "}")) {
      if (!namespace_scope.empty()) namespace_scope.pop_back();
      ++i;
      continue;
    }
    if (is_punct(t, ";")) {
      pending_namespace = false;
      ++i;
      continue;
    }
    if (pending_namespace) {
      ++i;  // the namespace's name / '::' path, up to its '{' or ';'
      continue;
    }
    const bool at_namespace_scope =
        std::all_of(namespace_scope.begin(), namespace_scope.end(),
                    [](bool ns) { return ns; });
    if (!at_namespace_scope) {
      ++i;
      continue;
    }
    // Start of a namespace-scope statement: classify it, then consume
    // it whole (including any function/class body or brace initializer).
    bool skip = false;
    bool saw_paren = false;
    bool seen_init = false;
    std::size_t name_idx = static_cast<std::size_t>(-1);
    int brace_depth = 0;
    int paren_depth = 0;
    std::size_t j = i;
    for (; j < n; ++j) {
      const Token& u = tokens[j];
      if (u.kind == TokenKind::kComment) continue;
      if (u.text == "namespace" && u.kind == TokenKind::kIdentifier &&
          j == i) {
        break;  // let the main loop track the namespace scope
      }
      if (brace_depth == 0 && paren_depth == 0 &&
          u.kind == TokenKind::kIdentifier) {
        for (const auto kw : kSkipKeywords) {
          if (u.text == kw) skip = true;
        }
        if (!seen_init) name_idx = j;
      }
      if (is_punct(u, "(")) {
        if (brace_depth == 0 && paren_depth == 0) saw_paren = true;
        ++paren_depth;
      } else if (is_punct(u, ")")) {
        --paren_depth;
      } else if (is_punct(u, "{") && paren_depth == 0) {
        if (brace_depth == 0) seen_init = true;
        ++brace_depth;
      } else if (is_punct(u, "}") && paren_depth == 0) {
        --brace_depth;
        // A function definition's closing brace ends the statement with
        // no ';'. Type definitions keep their trailing ';', which the
        // main loop swallows as a stray.
        if (brace_depth == 0 && (saw_paren || skip)) {
          ++j;
          break;
        }
      } else if (brace_depth == 0 && paren_depth == 0 &&
                 (is_punct(u, "=") ||
                  (is_punct(u, "[") &&
                   name_idx != static_cast<std::size_t>(-1)))) {
        // '=' starts the initializer; '[' after the declarator is an
        // array bound (a leading '[' is an attribute, not an init).
        seen_init = true;
      } else if (is_punct(u, ";") && brace_depth == 0 && paren_depth == 0) {
        ++j;
        break;
      }
    }
    if (j == i) {  // hit the `namespace` bail-out
      continue;
    }
    // Out-of-class static member definitions (`Type Class::member_ =
    // ...`) are class-scope state defined at namespace scope; the class
    // is where annotations belong, so they are not flagged here.
    if (name_idx != static_cast<std::size_t>(-1)) {
      const auto before = prev_token(tokens, name_idx);
      if (before != static_cast<std::size_t>(-1) &&
          is_punct(tokens[before], "::")) {
        skip = true;
      }
    }
    if (!skip && !saw_paren && name_idx != static_cast<std::size_t>(-1) &&
        name_idx > i) {
      out->push_back(
          {path, tokens[i].line, kRuleMutableStatic,
           "mutable namespace-scope variable '" +
               std::string(tokens[name_idx].text) +
               "' is invisible to the thread-safety analysis; guard it "
               "behind a class with a util::Mutex, or make it "
               "const/thread_local",
           false});
    }
    i = j;
  }
}

}  // namespace

bool path_allowed(const std::string& path,
                  const std::vector<std::string>& allowed) {
  std::string normalized = path;
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  for (const auto& part : allowed) {
    if (normalized.find(part) != std::string::npos) return true;
  }
  return false;
}

RuleSet default_rules() {
  RuleSet rules;
  rules.banned = {
      {"parse-functions",
       {"atoi", "atol", "atoll", "strtol", "strtoul", "strtoll", "strtoull",
        "sscanf", "vsscanf"},
       {"src/util/parse."},
       "use util::parse_* / util::require_* (util/parse.hpp): libc parsers "
       "accept partial input and report errors through errno",
       true},
      {"raw-memcpy",
       {"memcpy", "memmove"},
       {"src/util/bytes.", "src/crypto/"},
       "use util::ByteReader/ByteWriter (util/bytes.hpp): raw memcpy "
       "bypasses bounds checks and byte-order discipline",
       true},
      {"nondeterministic-source",
       {"rand", "srand", "drand48", "random_device"},
       {},
       "use util::Rng with an explicit seed: the simulation must stay "
       "deterministic",
       true},
      {"nondeterministic-source",
       {"system_clock"},
       {},
       "inject util::Timestamp through the pipeline instead of reading "
       "wall-clock time",
       false},
  };
  rules.unit_constants = {"kMicrosecond", "kMillisecond", "kSecond",
                          "kMinute",      "kHour",        "kDay"};
  rules.mixed_units_allowed_paths = {};
  rules.time_name_substrings = {"timestamp"};
  rules.time_name_suffixes = {"_us", "_micros", "_usec"};
  rules.time_name_exact = {"ts", "deadline", "time"};
  rules.int64_param_allowed_paths = {"src/util/time.", "src/util/strong."};
  rules.double_cast_allowed_paths = {"src/util/time."};
  rules.raw_mutex_identifiers = {
      "mutex",       "recursive_mutex", "timed_mutex",
      "shared_mutex", "shared_timed_mutex", "recursive_timed_mutex",
      "lock_guard",  "unique_lock",     "scoped_lock",
      "shared_lock", "condition_variable", "condition_variable_any"};
  rules.raw_mutex_headers = {"mutex", "condition_variable", "shared_mutex"};
  // util/sync.hpp wraps the std primitives; nothing else may touch them.
  rules.raw_mutex_allowed_paths = {"src/util/sync."};
  // The module DAG, matching the includes actually in the tree (obs sits
  // LOW: net/core/server all report into it). Self and util are implicit
  // for every module. Keep DESIGN.md §9's diagram in sync with this.
  rules.layering = {
      {"util", {}},
      {"crypto", {}},
      {"lint", {}},
      {"obs", {}},
      {"obs/http", {"obs"}},
      {"net", {"obs"}},
      {"net/live", {"net", "obs"}},
      {"threat", {"net"}},
      {"asdb", {"net"}},
      {"quic", {"crypto", "net"}},
      {"scanner", {"asdb", "net", "quic"}},
      {"server", {"net", "obs", "quic"}},
      {"core", {"asdb", "net", "obs", "quic", "scanner"}},
      {"telescope",
       {"asdb", "core", "net", "quic", "scanner", "threat"}},
      {"fuzz", {"net", "net/live", "quic"}},
  };
  // Signal-handler stop flags in the examples: a sig_atomic_t-style
  // global is the one legitimate namespace-scope mutable.
  rules.mutable_static_allowed_paths = {"examples/flood_lab.cpp",
                                        "examples/monitor.cpp"};
  return rules;
}

std::vector<Finding> check_tokens(const std::string& path,
                                  const std::vector<Token>& tokens,
                                  const RuleSet& rules,
                                  std::vector<TextEdit>* fixes) {
  std::vector<Finding> findings;
  for (const auto& rule : rules.banned) {
    check_banned(path, tokens, rule, &findings);
  }
  check_mixed_units(path, tokens, rules, &findings, fixes);
  check_int64_time_params(path, tokens, rules, &findings);
  check_timestamp_double_cast(path, tokens, rules, &findings);
  check_raw_std_mutex(path, tokens, rules, &findings);
  check_layering(path, tokens, rules, &findings);
  check_mutable_static(path, tokens, rules, &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return findings;
}

}  // namespace quicsand::lint
