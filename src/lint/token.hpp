// Token-level C++ scanner for the repo lint pass.
//
// This is deliberately NOT a parser: the lint rules only need to see
// identifiers, punctuation and comments with line/offset information,
// with string/char literals and comments correctly skipped so a banned
// name inside a string never fires. `::` is fused into one token so
// qualified names (`util::kMinute`) stay one expression operand.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace quicsand::lint {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,   ///< string or char literal, raw strings included
  kPunct,    ///< single punctuation char, except the fused "::"
  kComment,  ///< full comment text including the // or /* */ markers
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string_view text;    ///< view into the lexed source
  int line = 0;             ///< 1-based line of the token's first char
  std::size_t offset = 0;   ///< byte offset into the source
};

/// Scan `source` into tokens. Never throws: malformed input (unterminated
/// literals) is tokenized best-effort to the end of the buffer.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace quicsand::lint
