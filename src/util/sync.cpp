#include "util/sync.hpp"

#include <cstdio>
#include <cstdlib>

namespace quicsand::util::lock_rank {

namespace {

struct HeldLock {
  const void* addr = nullptr;
  int rank = 0;
  const char* name = nullptr;
};

// Deep enough for every legitimate chain (the longest in the repo is
// three locks) with generous headroom; overflowing it means the lock
// discipline has already gone badly wrong.
constexpr int kMaxHeld = 16;

// Per-thread held-lock stack. Fixed-size POD arrays so an acquire never
// allocates and the thread_local init is trivial.
// lint:allow(unguarded-mutable-static) — thread-local by construction.
thread_local HeldLock g_held[kMaxHeld];
thread_local int g_held_count = 0;

}  // namespace

void note_acquire(const void* addr, int rank, const char* name) noexcept {
  for (int i = 0; i < g_held_count; ++i) {
    if (rank <= g_held[i].rank) {
      std::fprintf(stderr,
                   "lock-rank violation: acquiring \"%s\" (rank %d) while "
                   "holding \"%s\" (rank %d)\n",
                   name, rank, g_held[i].name, g_held[i].rank);
      std::abort();
    }
  }
  if (g_held_count == kMaxHeld) {
    std::fprintf(stderr,
                 "lock-rank overflow: acquiring \"%s\" (rank %d) with %d "
                 "locks already held\n",
                 name, rank, g_held_count);
    std::abort();
  }
  g_held[g_held_count++] = {addr, rank, name};
}

void note_release(const void* addr) noexcept {
  // Scan from the top: locks release in (reverse) acquisition order in
  // the common case. A missing entry is tolerated rather than fatal so
  // binaries that mix translation units compiled with and without
  // QUICSAND_LOCK_RANK (e.g. a checked test linked against an unchecked
  // library) never abort on an unmatched release.
  for (int i = g_held_count; i-- > 0;) {
    if (g_held[i].addr != addr) continue;
    for (int j = i; j + 1 < g_held_count; ++j) g_held[j] = g_held[j + 1];
    --g_held_count;
    return;
  }
}

int held_count() noexcept { return g_held_count; }

}  // namespace quicsand::util::lock_rank
