#include "util/thread_pool.hpp"

namespace quicsand::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(Job job) {
  {
    LockGuard lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  UniqueLock lock(mutex_);
  while (!queue_.empty() || running_ != 0) idle_cv_.wait(lock);
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  for (std::size_t index = 0; index < count; ++index) {
    submit([&fn, index](std::size_t worker) { fn(index, worker); });
  }
  wait_idle();
}

void ThreadPool::worker_loop(std::size_t worker) {
  for (;;) {
    Job job;
    {
      UniqueLock lock(mutex_);
      while (!stop_ && queue_.empty()) work_cv_.wait(lock);
      if (queue_.empty()) return;  // stop_ set and the queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    job(worker);
    {
      LockGuard lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace quicsand::util
