// Sharding helpers for the parallel analysis pipeline.
//
// shard_of() assigns 32-bit keys (source IPs) to shards with a splitmix64
// finalizer, so the assignment is deterministic across platforms and
// independent of std::hash. ShardedCounter keeps one histogram row per
// shard/worker; rows are written without synchronization (each worker
// owns its row) and merged by summation, which is order-independent.
// StripedAdder is its free-running sibling for callers without a worker
// index: a fixed set of cache-line-padded atomic cells, one picked per
// thread, summed on read (the storage under obs:: counters/histograms).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace quicsand::util {

[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic shard for a 32-bit key.
[[nodiscard]] constexpr std::size_t shard_of(std::uint32_t key,
                                             std::size_t shards) {
  return shards <= 1 ? 0 : static_cast<std::size_t>(mix64(key) % shards);
}

class ShardedCounter {
 public:
  ShardedCounter() = default;
  ShardedCounter(std::size_t shards, std::size_t bins);

  /// Increment `bin` on `shard`'s row. Safe to call concurrently from
  /// different shards; a single shard's row must stay single-writer.
  void add(std::size_t shard, std::size_t bin, std::uint64_t n = 1) {
    rows_[shard][bin] += n;
  }

  [[nodiscard]] std::size_t shards() const { return rows_.size(); }
  [[nodiscard]] std::size_t bins() const { return bins_; }

  /// Per-bin sum across all shard rows.
  [[nodiscard]] std::vector<std::uint64_t> merged() const;

 private:
  std::size_t bins_ = 0;
  std::vector<std::vector<std::uint64_t>> rows_;
};

/// Stable per-thread stripe index in [0, stripes): threads are assigned
/// round-robin on first use, so up to `stripes` concurrent threads never
/// share a cell.
[[nodiscard]] std::size_t thread_stripe(std::size_t stripes);

/// Lock-free accumulator: add() is a relaxed fetch_add on the calling
/// thread's cache-line-padded cell; value() sums the cells. Unlike
/// ShardedCounter there is no caller-managed worker index, so it works
/// from any thread (pool workers, the capture loop, detector callbacks).
class StripedAdder {
 public:
  static constexpr std::size_t kStripes = 16;

  StripedAdder() noexcept : cells_(kStripes) {}

  void add(std::uint64_t n) noexcept {
    cells_[thread_stripe(kStripes)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& cell : cells_) {
      sum += cell.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::vector<Cell> cells_;
};

}  // namespace quicsand::util
