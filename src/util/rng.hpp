// Deterministic random number generation.
//
// Every stochastic component in the simulator draws from an explicitly
// seeded Rng so that scenarios are bit-reproducible across runs and
// platforms. We implement xoshiro256** (public domain, Blackman/Vigna)
// seeded through SplitMix64 rather than using std::mt19937 because the
// standard distributions are not portable across library implementations.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace quicsand::util {

/// SplitMix64 step; used for seed expansion and as a cheap hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mixing hash built on SplitMix64; combines a seed with a
/// stream identifier so independent substreams can be derived from one
/// scenario seed.
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2));
  return splitmix64(s);
}

/// xoshiro256** PRNG with distribution helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x51c5a4d0u) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  /// Derive an independent generator for substream `stream`.
  [[nodiscard]] Rng fork(std::uint64_t stream) const {
    Rng child(mix64(state_[0] ^ state_[2], stream));
    return child;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 is invalid.
  std::uint64_t uniform(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument("uniform: bound == 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
    for (;;) {
      std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi) {
    if (lo > hi) throw std::invalid_argument("uniform_range: lo > hi");
    return lo + uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) { return uniform01() < p; }

  /// Exponential with the given rate (events per unit time).
  double exponential(double rate) {
    if (rate <= 0) throw std::invalid_argument("exponential: rate <= 0");
    double u;
    do {
      u = uniform01();
    } while (u == 0.0);
    return -std::log(u) / rate;
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform01() - 1.0;
      v = 2.0 * uniform01() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Log-normal parameterized by the distribution median and the sigma of
  /// the underlying normal. Used for attack durations, where the paper
  /// reports medians.
  double lognormal_median(double median, double sigma) {
    return median * std::exp(sigma * normal());
  }

  /// Pareto (type I) with scale xm and shape alpha.
  double pareto(double xm, double alpha) {
    double u;
    do {
      u = uniform01();
    } while (u == 0.0);
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Poisson-distributed count (Knuth for small mean, normal approx above).
  std::uint64_t poisson(double mean) {
    if (mean <= 0) return 0;
    if (mean > 64.0) {
      double v = normal(mean, std::sqrt(mean));
      return v <= 0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
    }
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform01();
    } while (p > limit);
    return k - 1;
  }

  /// Index drawn according to non-negative weights. At least one weight
  /// must be positive.
  std::size_t weighted_index(std::span<const double> weights) {
    double total = 0;
    for (double w : weights) total += w;
    if (total <= 0) throw std::invalid_argument("weighted_index: zero total");
    double x = uniform01() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0) return i;
    }
    return weights.size() - 1;
  }

  /// Fill a buffer with random bytes.
  void fill(std::span<std::uint8_t> out) {
    std::size_t i = 0;
    while (i + 8 <= out.size()) {
      std::uint64_t v = next();
      for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(v >> (8 * b));
    }
    if (i < out.size()) {
      std::uint64_t v = next();
      for (; i < out.size(); ++i) {
        out[i] = static_cast<std::uint8_t>(v);
        v >>= 8;
      }
    }
  }

  std::vector<std::uint8_t> bytes(std::size_t n) {
    std::vector<std::uint8_t> out(n);
    fill(out);
    return out;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace quicsand::util
