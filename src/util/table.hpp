// Minimal aligned-column table renderer for bench/example output.
//
// The figure harnesses print the same rows/series the paper reports; this
// keeps that output consistent and readable without pulling in a
// formatting library.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace quicsand::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  /// Render with a header underline and two-space column gaps.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting (std::to_string prints 6 digits).
std::string fmt(double v, int precision = 2);

/// Percentage with one decimal, e.g. 0.515 -> "51.5%".
std::string pct(double fraction, int precision = 1);

/// Print a section heading used by every bench binary.
void print_heading(std::ostream& os, const std::string& title);

}  // namespace quicsand::util
