// Simulation time axis.
//
// The whole project uses a single integral time resolution: microseconds
// since the Unix epoch (UTC). `Timestamp` (a point) and `Duration` (a
// vector) are distinct strong types: Timestamp-Timestamp yields Duration,
// Timestamp+Duration yields Timestamp, and Timestamp+Timestamp or a bare
// int64 in their place is a compile error. The measurement window of the
// paper is April 1-30, 2021; helpers below express that window and the
// hour/minute binning used by the figures.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/strong.hpp"

namespace quicsand::util {

struct DurationTag {};
/// Signed duration in microseconds.
using Duration = Strong<DurationTag, std::int64_t>;

struct TimestampTag {
  using Difference = Duration;
};
/// Microseconds since the Unix epoch (UTC).
using Timestamp = Strong<TimestampTag, std::int64_t>;

struct HourBinTag {};
/// Index of a 1-hour bin relative to some origin.
using HourBin = Strong<HourBinTag, std::int64_t>;

struct MinuteBinTag {};
/// Index of a 1-minute bin relative to some origin.
using MinuteBin = Strong<MinuteBinTag, std::int64_t>;

constexpr Duration kMicrosecond{1};
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;
constexpr Duration kDay = 24 * kHour;

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d.count()) / static_cast<double>(kSecond.count());
}

/// Seconds -> Duration with floor semantics: identical to truncation for
/// s >= 0, but negative values round down instead of toward zero, so
/// from_seconds(to_seconds(d)) no longer loses a microsecond for d < 0.
constexpr Duration from_seconds(double s) {
  const double us = s * static_cast<double>(kSecond.count());
  const auto truncated = static_cast<std::int64_t>(us);
  return Duration{us < static_cast<double>(truncated) ? truncated - 1
                                                      : truncated};
}

/// 2021-04-01 00:00:00 UTC, the start of the paper's measurement window.
constexpr Timestamp kApril2021Start = Timestamp{1617235200LL * 1000000LL};
/// 2021-04-30 24:00:00 UTC (exclusive end of the window).
constexpr Timestamp kApril2021End = kApril2021Start + 30 * kDay;

namespace detail {

/// Floor division: bins of negative offsets (pre-origin timestamps) land
/// in negative bins instead of sharing bin 0 with the first hour.
constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  const std::int64_t q = a / b;
  const std::int64_t r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

constexpr std::int64_t checked_offset(Timestamp t, Timestamp origin) {
  std::int64_t diff = 0;
  if (__builtin_sub_overflow(t.count(), origin.count(), &diff)) {
    throw std::overflow_error("time bin: timestamp offset overflows");
  }
  return diff;
}

}  // namespace detail

/// Index of the 1-hour bin containing `t`, relative to `origin`.
/// Overflow-checked; pre-origin timestamps land in negative bins.
constexpr HourBin hour_bin(Timestamp t, Timestamp origin) {
  return HourBin{detail::floor_div(detail::checked_offset(t, origin),
                                   kHour.count())};
}

/// Index of the 1-minute bin containing `t`, relative to `origin`.
/// Overflow-checked; pre-origin timestamps land in negative bins.
constexpr MinuteBin minute_bin(Timestamp t, Timestamp origin) {
  return MinuteBin{detail::floor_div(detail::checked_offset(t, origin),
                                     kMinute.count())};
}

/// Seconds since UTC midnight for the day containing `t`.
constexpr std::int64_t seconds_of_day(Timestamp t) {
  std::int64_t s = (t.count() / kSecond.count()) % 86400;
  return s < 0 ? s + 86400 : s;
}

/// Hour-of-day in [0, 24).
constexpr int hour_of_day(Timestamp t) {
  return static_cast<int>(seconds_of_day(t) / 3600);
}

/// Render a timestamp as "YYYY-MM-DD hh:mm:ss" (UTC, proleptic Gregorian).
std::string format_utc(Timestamp t);

/// Render a duration compactly, e.g. "4m15s" or "36h".
std::string format_duration(Duration d);

}  // namespace quicsand::util
