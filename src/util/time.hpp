// Simulation time axis.
//
// The whole project uses a single integral time type: microseconds since
// the Unix epoch (UTC). The measurement window of the paper is April 1-30,
// 2021; helpers below express that window and the hour/minute binning used
// by the figures.
#pragma once

#include <cstdint>
#include <string>

namespace quicsand::util {

/// Microseconds since the Unix epoch (UTC).
using Timestamp = std::int64_t;
/// Signed duration in microseconds.
using Duration = std::int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;
constexpr Duration kDay = 24 * kHour;

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

/// 2021-04-01 00:00:00 UTC, the start of the paper's measurement window.
constexpr Timestamp kApril2021Start = 1617235200LL * kSecond;
/// 2021-04-30 24:00:00 UTC (exclusive end of the window).
constexpr Timestamp kApril2021End = kApril2021Start + 30 * kDay;

/// Index of the 1-hour bin containing `t`, relative to `origin`.
constexpr std::int64_t hour_bin(Timestamp t, Timestamp origin) {
  return (t - origin) / kHour;
}

/// Index of the 1-minute bin containing `t`, relative to `origin`.
constexpr std::int64_t minute_bin(Timestamp t, Timestamp origin) {
  return (t - origin) / kMinute;
}

/// Seconds since UTC midnight for the day containing `t`.
constexpr std::int64_t seconds_of_day(Timestamp t) {
  std::int64_t s = (t / kSecond) % 86400;
  return s < 0 ? s + 86400 : s;
}

/// Hour-of-day in [0, 24).
constexpr int hour_of_day(Timestamp t) {
  return static_cast<int>(seconds_of_day(t) / 3600);
}

/// Render a timestamp as "YYYY-MM-DD hh:mm:ss" (UTC, proleptic Gregorian).
std::string format_utc(Timestamp t);

/// Render a duration compactly, e.g. "4m15s" or "36h".
std::string format_duration(Duration d);

}  // namespace quicsand::util
