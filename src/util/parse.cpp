#include "util/parse.hpp"

#include <charconv>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>

namespace quicsand::util {

namespace {

template <typename T>
std::optional<T> parse_with_from_chars(std::string_view text) {
  if (text.empty()) return std::nullopt;
  T value{};
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

[[noreturn]] void die(const char* flag, std::string_view text,
                      const char* expected) {
  std::cerr << "invalid value for " << flag << ": '" << text
            << "' (expected " << expected << ")\n";
  std::exit(2);
}

}  // namespace

std::optional<std::int64_t> parse_i64(std::string_view text) {
  return parse_with_from_chars<std::int64_t>(text);
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  return parse_with_from_chars<std::uint64_t>(text);
}

std::optional<double> parse_f64(std::string_view text) {
  return parse_with_from_chars<double>(text);
}

std::optional<HostPort> parse_host_port(std::string_view text) {
  const auto colon = text.rfind(':');
  if (colon == std::string_view::npos || colon == 0) return std::nullopt;
  const auto port = parse_u64(text.substr(colon + 1));
  if (!port || *port > 65535) return std::nullopt;
  HostPort result;
  result.host = std::string(text.substr(0, colon));
  result.port = static_cast<std::uint16_t>(*port);
  return result;
}

std::optional<std::uint16_t> parse_port(std::string_view text) {
  const auto value = parse_u64(text);
  if (!value || *value > 65535) return std::nullopt;
  return static_cast<std::uint16_t>(*value);
}

std::optional<HostPort> parse_listen_address(std::string_view text) {
  if (const auto port = parse_port(text)) {
    return HostPort{"127.0.0.1", *port};
  }
  return parse_host_port(text);
}

std::int64_t require_i64(const char* flag, std::string_view text) {
  const auto value = parse_i64(text);
  if (!value) die(flag, text, "integer");
  return *value;
}

std::uint64_t require_u64(const char* flag, std::string_view text) {
  const auto value = parse_u64(text);
  if (!value) die(flag, text, "non-negative integer");
  return *value;
}

double require_f64(const char* flag, std::string_view text) {
  const auto value = parse_f64(text);
  if (!value) die(flag, text, "number");
  return *value;
}

int require_int(const char* flag, std::string_view text) {
  const auto value = parse_i64(text);
  if (!value || *value < std::numeric_limits<int>::min() ||
      *value > std::numeric_limits<int>::max()) {
    die(flag, text, "integer");
  }
  return static_cast<int>(*value);
}

HostPort require_host_port(const char* flag, std::string_view text) {
  const auto value = parse_host_port(text);
  if (!value) die(flag, text, "HOST:PORT");
  return *value;
}

std::uint16_t require_port(const char* flag, std::string_view text) {
  const auto value = parse_port(text);
  if (!value) die(flag, text, "port in [0, 65535]");
  return *value;
}

HostPort require_listen_address(const char* flag, std::string_view text) {
  const auto value = parse_listen_address(text);
  if (!value) die(flag, text, "PORT or HOST:PORT");
  return *value;
}

}  // namespace quicsand::util
