// Zero-overhead tagged scalars.
//
// `Strong<Tag, Rep>` wraps an arithmetic `Rep` so that values measured on
// different axes (microseconds, minute bins, packet counts, packets per
// second) are distinct types: construction is explicit, arithmetic is
// same-tag-only, and the wrapped value only comes back out through
// `count()`. Two algebras are supported:
//
//  * vector (default): V+V, V-V, -V, scalar multiply/divide, V/V -> Rep,
//    V%V -> V. Durations, counts and rates are vectors.
//  * point: declared by giving the tag a `Difference` member type.
//    P-P -> Difference, P±Difference -> P, and nothing else — adding two
//    points (Timestamp+Timestamp) or scaling a point is a compile error.
//
// `strong_cast<To>(v, num, den)` converts between strong types through an
// explicit exact ratio; lossy conversions are rejected at runtime.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <type_traits>

namespace quicsand::util {

template <class Tag, class Rep>
class Strong;

namespace detail {

/// Placeholder difference type for vector tags: a valid (so overload
/// declarations form) but unconstructible type no argument can match.
struct NoDifference {
  NoDifference() = delete;
  [[nodiscard]] std::int64_t count() const;  // never defined
};

template <class Tag, class = void>
struct TagDifference {
  using type = NoDifference;  // vector algebra
};

template <class Tag>
struct TagDifference<Tag, std::void_t<typename Tag::Difference>> {
  using type = typename Tag::Difference;  // point algebra
};

template <class Tag>
using difference_t = typename TagDifference<Tag>::type;

template <class Tag>
inline constexpr bool is_point_v =
    !std::is_same_v<difference_t<Tag>, NoDifference>;

// Round-to-nearest (half away from zero) for double-scaled integers, so
// that scaling a Duration by 1.25 never truncates toward zero.
constexpr std::int64_t round_to_int64(double v) {
  return static_cast<std::int64_t>(v < 0 ? v - 0.5 : v + 0.5);
}

template <class Rep>
constexpr Rep scale(Rep value, double factor) {
  if constexpr (std::is_floating_point_v<Rep>) {
    return static_cast<Rep>(static_cast<double>(value) * factor);
  } else {
    return static_cast<Rep>(round_to_int64(static_cast<double>(value) * factor));
  }
}

}  // namespace detail

template <class Tag, class Rep>
class Strong {
  static_assert(std::is_arithmetic_v<Rep>, "Strong wraps arithmetic types");

 public:
  using tag_type = Tag;
  using rep = Rep;

  constexpr Strong() = default;
  constexpr explicit Strong(Rep value) : value_(value) {}

  /// The wrapped value, in this axis' unit. The only way out.
  [[nodiscard]] constexpr Rep count() const { return value_; }

  // -- comparisons (same tag only) ------------------------------------
  friend constexpr bool operator==(Strong, Strong) = default;
  friend constexpr auto operator<=>(Strong, Strong) = default;

  // -- vector algebra -------------------------------------------------
  template <class T = Tag>
  friend constexpr auto operator+(Strong a, Strong b)
      -> std::enable_if_t<!detail::is_point_v<T>, Strong> {
    return Strong{static_cast<Rep>(a.value_ + b.value_)};
  }
  template <class T = Tag>
  friend constexpr auto operator-(Strong a, Strong b)
      -> std::enable_if_t<!detail::is_point_v<T>, Strong> {
    return Strong{static_cast<Rep>(a.value_ - b.value_)};
  }
  template <class T = Tag>
  constexpr auto operator-() const
      -> std::enable_if_t<!detail::is_point_v<T>, Strong> {
    return Strong{static_cast<Rep>(-value_)};
  }

  template <class T = Tag>
  constexpr auto operator+=(Strong other)
      -> std::enable_if_t<!detail::is_point_v<T>, Strong&> {
    value_ = static_cast<Rep>(value_ + other.value_);
    return *this;
  }
  template <class T = Tag>
  constexpr auto operator-=(Strong other)
      -> std::enable_if_t<!detail::is_point_v<T>, Strong&> {
    value_ = static_cast<Rep>(value_ - other.value_);
    return *this;
  }
  template <class T = Tag>
  constexpr auto operator++()
      -> std::enable_if_t<!detail::is_point_v<T> && std::is_integral_v<Rep>,
                          Strong&> {
    ++value_;
    return *this;
  }

  // Scaling by a dimensionless factor (int exact, double rounded).
  template <class S, class T = Tag,
            class = std::enable_if_t<std::is_arithmetic_v<S> &&
                                     !detail::is_point_v<T>>>
  friend constexpr Strong operator*(Strong v, S factor) {
    if constexpr (std::is_floating_point_v<S>) {
      return Strong{detail::scale(v.value_, static_cast<double>(factor))};
    } else {
      return Strong{static_cast<Rep>(v.value_ * static_cast<Rep>(factor))};
    }
  }
  template <class S, class T = Tag,
            class = std::enable_if_t<std::is_arithmetic_v<S> &&
                                     !detail::is_point_v<T>>>
  friend constexpr Strong operator*(S factor, Strong v) {
    return v * factor;
  }
  template <class S, class T = Tag,
            class = std::enable_if_t<std::is_arithmetic_v<S> &&
                                     !detail::is_point_v<T>>>
  friend constexpr Strong operator/(Strong v, S divisor) {
    if constexpr (std::is_floating_point_v<S>) {
      return Strong{detail::scale(v.value_, 1.0 / static_cast<double>(divisor))};
    } else {
      return Strong{static_cast<Rep>(v.value_ / static_cast<Rep>(divisor))};
    }
  }

  /// Ratio of two same-tag values (e.g. Duration / kMinute -> bin count).
  template <class T = Tag>
  friend constexpr auto operator/(Strong a, Strong b)
      -> std::enable_if_t<!detail::is_point_v<T>, Rep> {
    return static_cast<Rep>(a.value_ / b.value_);
  }
  template <class T = Tag, class R = Rep>
  friend constexpr auto operator%(Strong a, Strong b)
      -> std::enable_if_t<!detail::is_point_v<T> && std::is_integral_v<R>,
                          Strong> {
    return Strong{static_cast<Rep>(a.value_ % b.value_)};
  }

  // -- point algebra --------------------------------------------------
  template <class T = Tag>
  friend constexpr auto operator-(Strong a, Strong b)
      -> std::enable_if_t<detail::is_point_v<T>, detail::difference_t<T>> {
    using Diff = detail::difference_t<T>;
    return Diff{static_cast<typename Diff::rep>(a.value_ - b.value_)};
  }
  template <class T = Tag>
  friend constexpr auto operator+(Strong p, detail::difference_t<T> d)
      -> std::enable_if_t<detail::is_point_v<T>, Strong> {
    return Strong{static_cast<Rep>(p.value_ + d.count())};
  }
  template <class T = Tag>
  friend constexpr auto operator+(detail::difference_t<T> d, Strong p)
      -> std::enable_if_t<detail::is_point_v<T>, Strong> {
    return p + d;
  }
  template <class T = Tag>
  friend constexpr auto operator-(Strong p, detail::difference_t<T> d)
      -> std::enable_if_t<detail::is_point_v<T>, Strong> {
    return Strong{static_cast<Rep>(p.value_ - d.count())};
  }
  template <class T = Tag>
  constexpr auto operator+=(detail::difference_t<T> d)
      -> std::enable_if_t<detail::is_point_v<T>, Strong&> {
    value_ = static_cast<Rep>(value_ + d.count());
    return *this;
  }
  template <class T = Tag>
  constexpr auto operator-=(detail::difference_t<T> d)
      -> std::enable_if_t<detail::is_point_v<T>, Strong&> {
    value_ = static_cast<Rep>(value_ - d.count());
    return *this;
  }

 private:
  Rep value_{};
};

/// Convert between strong axes through an explicit exact ratio:
/// `to = from * num / den` with a divisibility check, so accidental
/// precision loss (e.g. microseconds -> minutes on a non-minute value)
/// throws instead of rounding silently.
template <class To, class FromTag, class FromRep>
constexpr To strong_cast(Strong<FromTag, FromRep> from, std::int64_t num,
                         std::int64_t den = 1) {
  const auto scaled =
      static_cast<std::int64_t>(from.count()) * num;
  if (den != 1 && scaled % den != 0) {
    throw std::domain_error("strong_cast: inexact conversion");
  }
  return To{static_cast<typename To::rep>(scaled / den)};
}

}  // namespace quicsand::util

/// Hash support so strong types can key unordered containers.
template <class Tag, class Rep>
struct std::hash<quicsand::util::Strong<Tag, Rep>> {
  std::size_t operator()(
      const quicsand::util::Strong<Tag, Rep>& v) const noexcept {
    return std::hash<Rep>{}(v.count());
  }
};
