#include "util/time.hpp"

#include <array>
#include <cstdio>

namespace quicsand::util {

namespace {

/// Civil-from-days algorithm (Howard Hinnant, public domain).
struct CivilDate {
  int year;
  unsigned month;
  unsigned day;
};

CivilDate civil_from_days(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;
  return {static_cast<int>(y + (m <= 2)), m, d};
}

}  // namespace

std::string format_utc(Timestamp t) {
  std::int64_t secs = t.count() / kSecond.count();
  std::int64_t days = secs / 86400;
  std::int64_t sod = secs % 86400;
  if (sod < 0) {
    sod += 86400;
    days -= 1;
  }
  const CivilDate cd = civil_from_days(days);
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%04d-%02u-%02u %02lld:%02lld:%02lld",
                cd.year, cd.month, cd.day,
                static_cast<long long>(sod / 3600),
                static_cast<long long>((sod / 60) % 60),
                static_cast<long long>(sod % 60));
  return buf.data();
}

std::string format_duration(Duration d) {
  if (d < Duration{}) return "-" + format_duration(-d);
  const std::int64_t secs = d / kSecond;
  std::array<char, 48> buf{};
  if (secs >= 48 * 3600) {
    std::snprintf(buf.data(), buf.size(), "%lldd%lldh",
                  static_cast<long long>(secs / 86400),
                  static_cast<long long>((secs % 86400) / 3600));
  } else if (secs >= 3600) {
    std::snprintf(buf.data(), buf.size(), "%lldh%lldm",
                  static_cast<long long>(secs / 3600),
                  static_cast<long long>((secs % 3600) / 60));
  } else if (secs >= 60) {
    std::snprintf(buf.data(), buf.size(), "%lldm%llds",
                  static_cast<long long>(secs / 60),
                  static_cast<long long>(secs % 60));
  } else {
    std::snprintf(buf.data(), buf.size(), "%llds",
                  static_cast<long long>(secs));
  }
  return buf.data();
}

}  // namespace quicsand::util
