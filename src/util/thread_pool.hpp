// Reusable fixed-size worker pool.
//
// Jobs receive the index of the worker thread executing them, so callers
// can keep per-worker accumulators (classifier stats, ShardedCounter
// rows) that need no synchronization. Jobs must not throw; ordering
// between jobs is unspecified, so deterministic callers must make their
// reductions order-independent (see DESIGN.md "Parallel execution
// model").
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace quicsand::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 is treated as 1).
  explicit ThreadPool(std::size_t threads);
  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// A job; `worker` is in [0, size()).
  using Job = std::function<void(std::size_t worker)>;

  /// Enqueue a job for any worker.
  void submit(Job job);

  /// Block until every submitted job has finished.
  void wait_idle();

  /// Run fn(index, worker) for every index in [0, count), then wait for
  /// the pool to drain (including any jobs submitted earlier).
  void parallel_for(
      std::size_t count,
      const std::function<void(std::size_t index, std::size_t worker)>& fn);

 private:
  void worker_loop(std::size_t worker);

  std::vector<std::thread> workers_;
  Mutex mutex_{LockRank::kThreadPool, "thread_pool"};
  std::deque<Job> queue_ QS_GUARDED_BY(mutex_);
  CondVar work_cv_;
  CondVar idle_cv_;
  std::size_t running_ QS_GUARDED_BY(mutex_) = 0;
  bool stop_ QS_GUARDED_BY(mutex_) = false;
};

}  // namespace quicsand::util
