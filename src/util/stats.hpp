// Descriptive statistics used by the analysis and the figure harnesses:
// empirical CDFs, percentiles, streaming mean/stddev, and fixed-width
// histograms.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace quicsand::util {

/// Empirical cumulative distribution function over double samples.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples) : samples_(std::move(samples)) {
    std::sort(samples_.begin(), samples_.end());
  }

  void add(double v) {
    samples_.insert(
        std::upper_bound(samples_.begin(), samples_.end(), v), v);
  }

  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }

  /// Fraction of samples <= x.
  [[nodiscard]] double at(double x) const {
    if (samples_.empty()) return 0.0;
    auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
  }

  /// Inverse CDF with linear interpolation; q in [0, 1].
  [[nodiscard]] double quantile(double q) const {
    if (samples_.empty()) throw std::logic_error("quantile of empty Cdf");
    if (q <= 0) return samples_.front();
    if (q >= 1) return samples_.back();
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= samples_.size()) return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
  }

  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const { return samples_.front(); }
  [[nodiscard]] double max() const { return samples_.back(); }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0;
    for (double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

  /// Sampled (x, F(x)) series with `points` evenly spaced quantiles,
  /// suitable for printing a figure.
  [[nodiscard]] std::vector<std::pair<double, double>> series(
      std::size_t points = 20) const;

 private:
  std::vector<double> samples_;
};

/// Welford's streaming mean/variance.
class RunningStats {
 public:
  void add(double v) {
    ++n_;
    const double d = v - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (v - mean_);
    min_ = n_ == 1 ? v : std::min(min_, v);
    max_ = n_ == 1 ? v : std::max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Fixed-width histogram over [lo, hi) with out-of-range clamping.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    if (bins == 0 || hi <= lo) throw std::invalid_argument("Histogram");
  }

  void add(double v, std::uint64_t weight = 1) {
    double x = std::clamp(v, lo_, std::nextafter(hi_, lo_));
    auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                        static_cast<double>(counts_.size()));
    if (idx >= counts_.size()) idx = counts_.size() - 1;
    counts_[idx] += weight;
    total_ += weight;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] double bin_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }
  [[nodiscard]] double bin_width() const {
    return (hi_ - lo_) / static_cast<double>(counts_.size());
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Median of a (not necessarily sorted) sample; empty input throws.
double median_of(std::span<const double> values);

/// Format `v` with thousands separators, e.g. 12345678 -> "12,345,678".
std::string with_commas(std::uint64_t v);

}  // namespace quicsand::util
