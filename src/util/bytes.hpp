// Byte-order aware readers/writers and hex helpers.
//
// All wire formats in this project (IPv4, UDP, TCP, ICMP, QUIC, TLS, pcap)
// are encoded and decoded through these two small classes so that bounds
// checking lives in exactly one place.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace quicsand::util {

/// Error thrown when a reader runs past the end of its buffer.
class BufferUnderflow : public std::runtime_error {
 public:
  BufferUnderflow() : std::runtime_error("buffer underflow") {}
};

/// A 16-bit integer field decoded from network (big-endian) byte order.
///
/// The reader has already assembled the bytes most-significant-first;
/// this wrapper carries no arithmetic or comparisons, so a parser cannot
/// consume a wire field without explicitly acknowledging the byte order
/// via to_host().
class NetU16 {
 public:
  constexpr NetU16() = default;
  constexpr explicit NetU16(std::uint16_t host_value) : host_(host_value) {}
  [[nodiscard]] constexpr std::uint16_t to_host() const { return host_; }

 private:
  std::uint16_t host_ = 0;
};

/// 32-bit sibling of NetU16.
class NetU32 {
 public:
  constexpr NetU32() = default;
  constexpr explicit NetU32(std::uint32_t host_value) : host_(host_value) {}
  [[nodiscard]] constexpr std::uint32_t to_host() const { return host_; }

 private:
  std::uint32_t host_ = 0;
};

/// Sequential big-endian reader over a non-owning byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }

  /// Peek one byte without consuming it.
  [[nodiscard]] std::uint8_t peek_u8() const {
    require(1);
    return data_[pos_];
  }

  std::uint8_t read_u8() {
    require(1);
    return data_[pos_++];
  }

  NetU16 read_u16() { return NetU16{static_cast<std::uint16_t>(read_be(2))}; }
  std::uint32_t read_u24() { return static_cast<std::uint32_t>(read_be(3)); }
  NetU32 read_u32() { return NetU32{static_cast<std::uint32_t>(read_be(4))}; }
  std::uint64_t read_u64() { return read_be(8); }

  /// Consume `n` bytes and return a view into the underlying buffer.
  std::span<const std::uint8_t> read_bytes(std::size_t n) {
    require(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Consume `n` bytes into an owned vector.
  std::vector<std::uint8_t> read_vector(std::size_t n) {
    auto s = read_bytes(n);
    return {s.begin(), s.end()};
  }

  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

  /// View of everything not yet consumed.
  [[nodiscard]] std::span<const std::uint8_t> rest() const {
    return data_.subspan(pos_);
  }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) throw BufferUnderflow{};
  }

  std::uint64_t read_be(std::size_t n) {
    require(n);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += n;
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Append-only big-endian writer backed by a growable vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void write_u8(std::uint8_t v) { buf_.push_back(v); }
  void write_u16(std::uint16_t v) { write_be(v, 2); }
  void write_u24(std::uint32_t v) { write_be(v, 3); }
  void write_u32(std::uint32_t v) { write_be(v, 4); }
  void write_u64(std::uint64_t v) { write_be(v, 8); }

  void write_bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void write_repeated(std::uint8_t byte, std::size_t count) {
    buf_.insert(buf_.end(), count, byte);
  }

  /// Overwrite `n` big-endian bytes at an absolute offset (for length
  /// fields that are only known after the body has been written).
  void patch_be(std::size_t offset, std::uint64_t v, std::size_t n) {
    if (offset + n > buf_.size()) throw std::out_of_range("patch_be");
    for (std::size_t i = 0; i < n; ++i) {
      buf_[offset + i] =
          static_cast<std::uint8_t>(v >> (8 * (n - 1 - i)));
    }
  }

  /// Discard contents but keep the allocated capacity, so a writer can be
  /// reused across packets without heap traffic once it has grown to the
  /// working-set size.
  void clear() { buf_.clear(); }

  /// Replace the backing store with a recycled vector (cleared, capacity
  /// kept). Pairs with take() to move buffers through a free list.
  void reset(std::vector<std::uint8_t>&& recycled) {
    buf_ = std::move(recycled);
    buf_.clear();
  }

  /// Replace the backing store with a buffer whose contents are kept
  /// (ownership transfer from a producer; pairs with take() on the other
  /// side of a hand-off).
  void adopt(std::vector<std::uint8_t>&& buf) { buf_ = std::move(buf); }

  /// Grow by `n` bytes without initialising them and return a mutable view
  /// of the new region (for bulk fills like rng.fill or checksummed copies).
  std::span<std::uint8_t> append_uninitialized(std::size_t n) {
    buf_.resize(buf_.size() + n);
    return std::span<std::uint8_t>(buf_).last(n);
  }

  /// Drop bytes from the end (undo a speculative append).
  void truncate(std::size_t new_size) {
    if (new_size > buf_.size()) throw std::out_of_range("truncate");
    buf_.resize(new_size);
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> view() const { return buf_; }
  [[nodiscard]] std::span<std::uint8_t> mutable_view() { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] const std::vector<std::uint8_t>& vec() const { return buf_; }

 private:
  void write_be(std::uint64_t v, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * (n - 1 - i))));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Lower-case hex encoding of a byte span.
std::string to_hex(std::span<const std::uint8_t> data);

/// Parse a hex string (no separators). Returns nullopt on odd length or
/// non-hex characters.
std::optional<std::vector<std::uint8_t>> from_hex(std::string_view hex);

/// Strict parse used by tests: throws std::invalid_argument on bad input.
std::vector<std::uint8_t> from_hex_strict(std::string_view hex);

}  // namespace quicsand::util
