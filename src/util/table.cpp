#include "util/table.hpp"

#include <array>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace quicsand::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("Table: row wider than header");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", precision, v);
  return buf.data();
}

std::string pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

void print_heading(std::ostream& os, const std::string& title) {
  os << '\n' << "== " << title << " ==" << '\n';
}

}  // namespace quicsand::util
