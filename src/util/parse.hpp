// Strict numeric parsing for CLI arguments.
//
// std::atoi / strtoull silently turn garbage into 0 ("monitor --days
// bogus" used to run a zero-day window); these helpers require the whole
// token to parse and return nullopt otherwise. The require_* wrappers are
// for example binaries: they print "invalid value for --days: 'bogus'
// (expected integer)" to stderr and exit(2) on bad input, which keeps
// every tool's flag loop to one line per flag.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace quicsand::util {

/// Whole-string strict parses; leading '+'/whitespace/trailing junk all
/// fail. parse_u64 also rejects a leading '-'.
[[nodiscard]] std::optional<std::int64_t> parse_i64(std::string_view text);
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view text);
[[nodiscard]] std::optional<double> parse_f64(std::string_view text);

/// A "HOST:PORT" listen address (--listen flags). Host stays a string:
/// the socket layer resolves it, so names like "localhost" pass through.
struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};

/// Parses "HOST:PORT". The split is on the *last* colon so a future
/// bracketed IPv6 host keeps its internal colons; host must be
/// non-empty, port must be a strict integer in [0, 65535] (0 means
/// "pick an ephemeral port").
[[nodiscard]] std::optional<HostPort> parse_host_port(std::string_view text);

/// A bare port number in [0, 65535] (0 means "pick an ephemeral port").
[[nodiscard]] std::optional<std::uint16_t> parse_port(std::string_view text);

/// "PORT" or "HOST:PORT"; a bare port listens on 127.0.0.1.
[[nodiscard]] std::optional<HostPort> parse_listen_address(
    std::string_view text);

/// CLI wrappers: parse or print "invalid value for <flag>: '<text>'
/// (expected ...)" and exit(2). `flag` is only used in the message.
std::int64_t require_i64(const char* flag, std::string_view text);
std::uint64_t require_u64(const char* flag, std::string_view text);
double require_f64(const char* flag, std::string_view text);
int require_int(const char* flag, std::string_view text);
HostPort require_host_port(const char* flag, std::string_view text);
std::uint16_t require_port(const char* flag, std::string_view text);
HostPort require_listen_address(const char* flag, std::string_view text);

}  // namespace quicsand::util
