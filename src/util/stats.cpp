#include "util/stats.hpp"

namespace quicsand::util {

std::vector<std::pair<double, double>> Cdf::series(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  out.reserve(points + 1);
  for (std::size_t i = 0; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

double median_of(std::span<const double> values) {
  if (values.empty()) throw std::logic_error("median of empty span");
  std::vector<double> v(values.begin(), values.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(),
                   v.begin() + static_cast<std::ptrdiff_t>(mid - 1),
                   v.begin() + static_cast<std::ptrdiff_t>(mid));
  return (v[mid - 1] + hi) / 2.0;
}

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace quicsand::util
