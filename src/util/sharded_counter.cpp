#include "util/sharded_counter.hpp"

namespace quicsand::util {

std::size_t thread_stripe(std::size_t stripes) {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t assigned =
      next.fetch_add(1, std::memory_order_relaxed);
  return assigned % stripes;
}

ShardedCounter::ShardedCounter(std::size_t shards, std::size_t bins)
    : bins_(bins),
      rows_(shards, std::vector<std::uint64_t>(bins, 0)) {}

std::vector<std::uint64_t> ShardedCounter::merged() const {
  std::vector<std::uint64_t> out(bins_, 0);
  for (const auto& row : rows_) {
    for (std::size_t bin = 0; bin < bins_; ++bin) out[bin] += row[bin];
  }
  return out;
}

}  // namespace quicsand::util
