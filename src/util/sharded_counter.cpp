#include "util/sharded_counter.hpp"

namespace quicsand::util {

ShardedCounter::ShardedCounter(std::size_t shards, std::size_t bins)
    : bins_(bins),
      rows_(shards, std::vector<std::uint64_t>(bins, 0)) {}

std::vector<std::uint64_t> ShardedCounter::merged() const {
  std::vector<std::uint64_t> out(bins_, 0);
  for (const auto& row : rows_) {
    for (std::size_t bin = 0; bin < bins_; ++bin) out[bin] += row[bin];
  }
  return out;
}

}  // namespace quicsand::util
