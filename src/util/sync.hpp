// Synchronization layer: annotated mutex/condvar wrappers plus a
// debug-build lock-rank checker.
//
// Every lock in the repo goes through this header — raw std::mutex /
// std::lock_guard / std::condition_variable are banned by the
// `raw-std-mutex` lint rule everywhere else. The wrappers buy two
// things the std primitives cannot:
//
//  * Clang thread-safety capability analysis. util::Mutex carries
//    CAPABILITY("mutex"); fields annotate which mutex guards them with
//    QS_GUARDED_BY and lock-held helpers declare QS_REQUIRES. A clang
//    build with -Werror=thread-safety (the `clang-tsa` preset) then
//    rejects any access to a guarded field without its lock at compile
//    time. Under GCC every annotation expands to nothing.
//
//  * A lock-rank (lock hierarchy) deadlock checker. Each Mutex is
//    constructed with a LockRank and a name; when QUICSAND_LOCK_RANK is
//    defined (debug/tsan/asan presets) every acquire verifies the new
//    rank is strictly greater than every rank already held by this
//    thread and aborts with both lock names otherwise. Release builds
//    compile the bookkeeping out of the lock/unlock inline paths.
//
// Picking a rank for a new mutex: see DESIGN.md "Lock discipline". In
// short — if the lock is ever held while acquiring another, it must sit
// strictly below that lock in the table; locks that never nest get a
// leaf rank (>= 900).
#pragma once

#include <chrono>
#include <condition_variable>  // the one blessed include; see raw-std-mutex
#include <mutex>

// ---------------------------------------------------------------------
// Thread-safety annotation macros (no-op outside clang).
// ---------------------------------------------------------------------

#if defined(__clang__)
#define QS_THREAD_ANNOTATION(...) __attribute__((__VA_ARGS__))
#else
#define QS_THREAD_ANNOTATION(...)
#endif

/// Marks a class as a lockable capability (mutex-like).
#define QS_CAPABILITY(x) QS_THREAD_ANNOTATION(capability(x))
/// Marks a class as an RAII scope that holds a capability.
#define QS_SCOPED_CAPABILITY QS_THREAD_ANNOTATION(scoped_lockable)
/// Field access requires holding the given mutex.
#define QS_GUARDED_BY(x) QS_THREAD_ANNOTATION(guarded_by(x))
/// Pointee access requires holding the given mutex.
#define QS_PT_GUARDED_BY(x) QS_THREAD_ANNOTATION(pt_guarded_by(x))
/// Caller must hold the listed mutexes (lock-held helper functions).
#define QS_REQUIRES(...) QS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the listed mutexes (or `this` when empty).
#define QS_ACQUIRE(...) QS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the listed mutexes (or `this` when empty).
#define QS_RELEASE(...) QS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the mutex when it returns the given value.
#define QS_TRY_ACQUIRE(...) \
  QS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must NOT hold the listed mutexes (deadlock documentation).
#define QS_EXCLUDES(...) QS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Runtime-checked assertion that the capability is held.
#define QS_ASSERT_CAPABILITY(x) QS_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the given mutex.
#define QS_RETURN_CAPABILITY(x) QS_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: disable the analysis inside one function.
#define QS_NO_THREAD_SAFETY_ANALYSIS \
  QS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace quicsand::util {

// ---------------------------------------------------------------------
// Lock ranks.
// ---------------------------------------------------------------------

/// The repo's lock hierarchy. A thread may only acquire a mutex whose
/// rank is strictly greater than every rank it already holds, so any
/// cycle (the precondition of a deadlock) trips the checker on the
/// first out-of-order acquire, on any schedule that reaches it.
///
/// Chains (a lower lock is held while the higher one is acquired):
///   kOnlineAlert -> kEventLog -> kEventSubscription
///     (ShardedOnlineDetector serializes alert callbacks; the callback
///      emits into the EventLog; emit pushes to each subscriber ring)
///   kSamplerLifecycle -> kSamplerState
///     (Sampler::start/stop serialize on the lifecycle lock, then touch
///      the state lock the run loop waits on)
/// Everything >= 900 is a leaf: never held across another acquire.
enum class LockRank : int {
  kOnlineAlert = 100,
  kEventLog = 200,
  kEventSubscription = 300,
  kSamplerLifecycle = 400,
  kSamplerState = 410,
  kThreadPool = 900,
  kPipelineInflight = 910,
  kPipelineBatchPool = 920,
  kMetrics = 930,
  kTracer = 940,
  kHealth = 950,
  kTsdb = 960,
};

namespace lock_rank {

/// Record that this thread is acquiring (rank, name); aborts with both
/// lock names if `rank` is not strictly above everything already held.
/// Always compiled (tiny, cold); call sites are gated on
/// QUICSAND_LOCK_RANK so release builds pay nothing.
void note_acquire(const void* addr, int rank, const char* name) noexcept;
/// Remove the held-lock entry recorded by note_acquire. Tolerates a
/// missing entry so binaries mixing checked and unchecked translation
/// units never abort on release.
void note_release(const void* addr) noexcept;
/// Number of lock-rank entries the calling thread currently holds
/// (checked acquires only); test hook.
[[nodiscard]] int held_count() noexcept;

}  // namespace lock_rank

#if defined(QUICSAND_LOCK_RANK)
#define QS_LOCK_RANK_ACQUIRE(mutex) \
  ::quicsand::util::lock_rank::note_acquire((mutex), (mutex)->rank_value(), \
                                            (mutex)->name())
#define QS_LOCK_RANK_RELEASE(mutex) \
  ::quicsand::util::lock_rank::note_release((mutex))
#else
#define QS_LOCK_RANK_ACQUIRE(mutex) ((void)0)
#define QS_LOCK_RANK_RELEASE(mutex) ((void)0)
#endif

// ---------------------------------------------------------------------
// Mutex.
// ---------------------------------------------------------------------

/// std::mutex carrying a capability annotation, a rank and a name.
/// Prefer LockGuard/UniqueLock over calling lock()/unlock() directly.
///
/// The three primitive bodies wrap an unannotated std::mutex the
/// analysis cannot see, so they carry QS_NO_THREAD_SAFETY_ANALYSIS —
/// the standard escape hatch for implementing a capability. Callers are
/// still checked against the QS_ACQUIRE/QS_RELEASE declarations.
class QS_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank, const char* name) noexcept
      : rank_(static_cast<int>(rank)), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QS_ACQUIRE() QS_NO_THREAD_SAFETY_ANALYSIS {
    QS_LOCK_RANK_ACQUIRE(this);
    raw_.lock();
  }
  void unlock() QS_RELEASE() QS_NO_THREAD_SAFETY_ANALYSIS {
    QS_LOCK_RANK_RELEASE(this);
    raw_.unlock();
  }
  [[nodiscard]] bool try_lock()
      QS_TRY_ACQUIRE(true) QS_NO_THREAD_SAFETY_ANALYSIS {
    if (!raw_.try_lock()) return false;
    // Even a non-blocking acquire must respect the hierarchy: the
    // discipline is about where a lock *may* be taken, not whether this
    // particular attempt could have deadlocked.
    QS_LOCK_RANK_ACQUIRE(this);
    return true;
  }

  [[nodiscard]] const char* name() const noexcept { return name_; }
  [[nodiscard]] int rank_value() const noexcept { return rank_; }

 private:
  friend class CondVar;

  std::mutex raw_;
  int rank_;
  const char* name_;
};

// ---------------------------------------------------------------------
// Scoped holders.
// ---------------------------------------------------------------------

/// RAII lock for the common "hold for the whole scope" case.
class QS_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) QS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() QS_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII lock that can be released early, re-acquired, and waited on via
/// CondVar. The rank entry stays in place across a CondVar wait: the
/// thread is blocked for the whole gap, so it cannot acquire out of
/// order while the mutex is internally dropped.
class QS_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) QS_ACQUIRE(mutex) : mutex_(&mutex) {
    mutex_->lock();
    owns_ = true;
  }
  ~UniqueLock() QS_RELEASE() {
    if (owns_) mutex_->unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() QS_ACQUIRE() {
    mutex_->lock();
    owns_ = true;
  }
  void unlock() QS_RELEASE() {
    mutex_->unlock();
    owns_ = false;
  }
  [[nodiscard]] bool owns_lock() const noexcept { return owns_; }

 private:
  friend class CondVar;

  Mutex* mutex_;
  bool owns_ = false;
};

// ---------------------------------------------------------------------
// Condition variable.
// ---------------------------------------------------------------------

/// Condition variable over util::Mutex via UniqueLock.
///
/// No predicate overloads on purpose: clang analyzes a predicate lambda
/// at its definition site, where it cannot see that the lock is held,
/// so every wait is written as an explicit loop at the call site:
///
///   util::UniqueLock lock(mutex_);
///   while (!condition_) cv_.wait(lock);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { raw_.notify_one(); }
  void notify_all() noexcept { raw_.notify_all(); }

  void wait(UniqueLock& lock) {
    auto adopted = adopt(lock);
    raw_.wait(adopted);
    adopted.release();
  }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    auto adopted = adopt(lock);
    const auto status = raw_.wait_for(adopted, d);
    adopted.release();
    return status;
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      UniqueLock& lock, const std::chrono::time_point<Clock, Duration>& tp) {
    auto adopted = adopt(lock);
    const auto status = raw_.wait_until(adopted, tp);
    adopted.release();
    return status;
  }

 private:
  /// Borrow the caller's held mutex as a std::unique_lock so the std
  /// condition variable can drop and re-take it; release() afterwards
  /// hands ownership straight back to the UniqueLock. The lock-rank
  /// entry stays in place across the wait — the thread is blocked for
  /// the whole gap, so it cannot acquire out of order meanwhile.
  static std::unique_lock<std::mutex> adopt(UniqueLock& lock) {
    return std::unique_lock<std::mutex>(lock.mutex_->raw_, std::adopt_lock);
  }

  std::condition_variable raw_;
};

}  // namespace quicsand::util
