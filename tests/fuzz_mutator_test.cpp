#include "fuzz/mutator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "util/rng.hpp"

namespace quicsand::fuzz {
namespace {

std::vector<std::uint8_t> sample_input() {
  std::vector<std::uint8_t> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  return data;
}

TEST(Mutator, PrimitiveNamesAreDistinctAndIndexAligned) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < Mutator::primitive_count(); ++i) {
    const auto name = mutation_name(i);
    EXPECT_FALSE(name.empty()) << "primitive " << i;
    names.insert(name);
  }
  EXPECT_EQ(names.size(), Mutator::primitive_count());
}

TEST(Mutator, SameSeedSameMutation) {
  for (std::uint64_t seed : {1u, 2u, 99u}) {
    Mutator a{util::Rng(seed)};
    Mutator b{util::Rng(seed)};
    auto da = sample_input();
    auto db = sample_input();
    for (int round = 0; round < 50; ++round) {
      a.mutate(da);
      b.mutate(db);
      ASSERT_EQ(da, db) << "seed " << seed << " round " << round;
    }
  }
}

TEST(Mutator, EveryPrimitiveRespectsMaxSize) {
  constexpr std::size_t kMax = 128;
  for (std::size_t p = 0; p < Mutator::primitive_count(); ++p) {
    Mutator mutator{util::Rng(7 + p), {.max_size = kMax}};
    auto data = sample_input();
    for (int round = 0; round < 200; ++round) {
      mutator.apply(p, data);
      ASSERT_LE(data.size(), kMax) << mutation_name(p);
    }
  }
}

TEST(Mutator, PrimitivesHandleEmptyInput) {
  for (std::size_t p = 0; p < Mutator::primitive_count(); ++p) {
    Mutator mutator{util::Rng(13)};
    std::vector<std::uint8_t> data;
    mutator.apply(p, data);  // must not crash
  }
  Mutator mutator{util::Rng(13)};
  std::vector<std::uint8_t> data;
  for (int round = 0; round < 100; ++round) mutator.mutate(data);
}

TEST(Mutator, MutateChangesInputEventually) {
  Mutator mutator{util::Rng(3)};
  const auto original = sample_input();
  auto data = original;
  int changed = 0;
  for (int round = 0; round < 20; ++round) {
    auto copy = original;
    mutator.mutate(copy);
    if (copy != original) ++changed;
  }
  EXPECT_GE(changed, 15);
}

TEST(Corpus, HexRoundTrip) {
  const auto data = sample_input();
  const std::string dir = ::testing::TempDir() + "mutator_corpus";
  std::filesystem::create_directories(dir);
  write_hex_corpus_file(dir + "/seed-000.hex", "round trip", data);
  const auto loaded = load_corpus_dir(dir);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].name, "seed-000.hex");
  EXPECT_EQ(loaded[0].data, data);
}

TEST(Corpus, ParseHexSkipsCommentsAndWhitespace) {
  const auto bytes = parse_hex_corpus("# crasher from fuzz_pcapng\n00 01\nff\n");
  EXPECT_EQ(bytes, (std::vector<std::uint8_t>{0x00, 0x01, 0xff}));
}

TEST(Corpus, MissingDirectoryYieldsEmptyCorpus) {
  EXPECT_TRUE(load_corpus_dir("/nonexistent/fuzz/corpus").empty());
}

TEST(Corpus, LoadIsNameSorted) {
  const std::string dir = ::testing::TempDir() + "mutator_corpus_sorted";
  std::filesystem::create_directories(dir);
  write_hex_corpus_file(dir + "/b.hex", "second", std::vector<std::uint8_t>{2});
  write_hex_corpus_file(dir + "/a.hex", "first", std::vector<std::uint8_t>{1});
  const auto loaded = load_corpus_dir(dir);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].name, "a.hex");
  EXPECT_EQ(loaded[1].name, "b.hex");
}

}  // namespace
}  // namespace quicsand::fuzz
