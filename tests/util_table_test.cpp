#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace quicsand::util {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "count"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name    count"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, PadsMissingCells) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, RejectsTooWideRow) {
  Table t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Pct, FormatsFraction) {
  EXPECT_EQ(pct(0.515), "51.5%");
  EXPECT_EQ(pct(1.0, 0), "100%");
  EXPECT_EQ(pct(0.023), "2.3%");
}

TEST(PrintHeading, EmitsTitle) {
  std::ostringstream os;
  print_heading(os, "Figure 2");
  EXPECT_NE(os.str().find("== Figure 2 =="), std::string::npos);
}

}  // namespace
}  // namespace quicsand::util
