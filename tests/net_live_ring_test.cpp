// The drop-oldest ring under the exact conditions the live receiver
// creates: one producer, one consumer, sustained overflow, and shutdown
// with elements still queued. The tsan preset runs this suite too (see
// CMakePresets.json) — the cross-thread tests are the race detectors.
#include "net/live/ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace quicsand::net::live {
namespace {

TEST(NetLiveRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(Ring<int>(0).capacity(), 2u);
  EXPECT_EQ(Ring<int>(1).capacity(), 2u);
  EXPECT_EQ(Ring<int>(2).capacity(), 2u);
  EXPECT_EQ(Ring<int>(3).capacity(), 4u);
  EXPECT_EQ(Ring<int>(64).capacity(), 64u);
  EXPECT_EQ(Ring<int>(65).capacity(), 128u);
}

TEST(NetLiveRing, FifoOrderAcrossWraparound) {
  Ring<int> ring(8);
  // Push/pop far more elements than the capacity so every cell's
  // sequence number wraps several times.
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(ring.try_push(next_in + 0));
      ++next_in;
    }
    for (int i = 0; i < 5; ++i) {
      const auto value = ring.try_pop();
      ASSERT_TRUE(value.has_value());
      EXPECT_EQ(*value, next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(ring.try_pop(), std::nullopt);
}

TEST(NetLiveRing, TryPushFailsWhenFullAndKeepsTheValue) {
  Ring<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(1)));
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(2)));
  auto extra = std::make_unique<int>(3);
  ASSERT_FALSE(ring.try_push(std::move(extra)));
  // The failed push must not have consumed the caller's object — the
  // drop-oldest retry loop re-pushes the same value.
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(*extra, 3);
}

TEST(NetLiveRing, PushDropOldestEvictsFromTheHead) {
  Ring<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i + 0));
  // Ring holds {0,1,2,3}; two overflowing pushes must evict 0 then 1.
  EXPECT_EQ(ring.push_drop_oldest(4), 1u);
  EXPECT_EQ(ring.push_drop_oldest(5), 1u);
  for (int expected : {2, 3, 4, 5}) {
    const auto value = ring.try_pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, expected);
  }
  EXPECT_EQ(ring.try_pop(), std::nullopt);
}

TEST(NetLiveRing, CloseDrainsRemainingElements) {
  Ring<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i + 0));
  ring.close();
  EXPECT_TRUE(ring.closed());
  // Shutdown-while-full: everything queued before close() is still
  // delivered, in order, and only then does the ring read as drained.
  for (int expected : {0, 1, 2, 3}) {
    const auto value = ring.try_pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, expected);
  }
  EXPECT_EQ(ring.try_pop(), std::nullopt);
  EXPECT_TRUE(ring.closed());
}

TEST(NetLiveRing, SpscStressPreservesOrderAndCount) {
  // Large enough ring that nothing is dropped: every produced value must
  // come out exactly once, in order, across real threads.
  constexpr std::uint64_t kCount = 200000;
  Ring<std::uint64_t> ring(1 << 14);
  std::vector<std::uint64_t> popped;
  popped.reserve(kCount);
  std::thread consumer([&] {
    bool draining = false;
    for (;;) {
      if (auto value = ring.try_pop()) {
        popped.push_back(*value);
        continue;
      }
      if (draining) break;
      // One more drain pass after close(): elements pushed between the
      // miss above and the close would otherwise be stranded.
      if (ring.closed()) {
        draining = true;
        continue;
      }
      std::this_thread::yield();
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!ring.try_push(i + 0)) std::this_thread::yield();
  }
  ring.close();
  consumer.join();
  ASSERT_EQ(popped.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) ASSERT_EQ(popped[i], i);
}

TEST(NetLiveRing, DropOldestStressAccountsForEveryElement) {
  // Tiny ring + deliberately slow consumer: the producer must overflow
  // and steal. Delivered values stay strictly increasing (drop-oldest
  // never reorders) and delivered + dropped == produced exactly.
  constexpr std::uint64_t kCount = 100000;
  Ring<std::uint64_t> ring(16);
  std::uint64_t dropped = 0;
  std::vector<std::uint64_t> popped;
  std::thread consumer([&] {
    int spin = 0;
    bool draining = false;
    for (;;) {
      if (auto value = ring.try_pop()) {
        popped.push_back(*value);
        // Burn a little time so the producer laps the ring.
        if ((++spin & 0x3) == 0) std::this_thread::yield();
        continue;
      }
      if (draining) break;
      // Same drain-after-close handshake as LiveReceiver::worker_loop:
      // breaking straight on closed() loses whatever was pushed between
      // the missed pop and the close (up to a full ring).
      if (ring.closed()) {
        draining = true;
        continue;
      }
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    dropped += ring.push_drop_oldest(i + 0);
  }
  ring.close();
  consumer.join();
  EXPECT_GT(dropped, 0u) << "consumer was never outrun; shrink the ring";
  ASSERT_EQ(popped.size() + dropped, kCount);
  for (std::size_t i = 1; i < popped.size(); ++i) {
    ASSERT_LT(popped[i - 1], popped[i]) << "delivery reordered at " << i;
  }
}

TEST(NetLiveRing, ShutdownWhileFullUnderConcurrency) {
  // Producer closes while the ring is saturated; the consumer must see
  // a coherent tail: whatever survives is in order, nothing duplicates.
  Ring<std::uint64_t> ring(8);
  std::vector<std::uint64_t> popped;
  std::thread consumer([&] {
    bool draining = false;
    for (;;) {
      if (auto value = ring.try_pop()) {
        popped.push_back(*value);
        continue;
      }
      if (draining) break;
      if (ring.closed()) {
        draining = true;  // drain-after-close, as in worker_loop
        continue;
      }
      std::this_thread::yield();
    }
  });
  std::uint64_t dropped = 0;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    dropped += ring.push_drop_oldest(i + 0);
  }
  ring.close();
  consumer.join();
  EXPECT_EQ(popped.size() + dropped, 5000u);
  for (std::size_t i = 1; i < popped.size(); ++i) {
    ASSERT_LT(popped[i - 1], popped[i]);
  }
}

}  // namespace
}  // namespace quicsand::net::live
