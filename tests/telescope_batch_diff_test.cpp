// Differential oracle for batched generation: TelescopeGenerator's
// next_batch() path must be bit-identical to the legacy per-record
// next() path — same packet count, same timestamps, same bytes — for
// every committed scenario shape, across seeds, and the batched
// ParallelPipeline ingest (consume_batch) must reproduce the per-record
// ingest (consume) exactly for every shard count: identical record
// streams, classifier stats, and DoS attack sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "core/parallel_pipeline.hpp"
#include "net/record_batch.hpp"
#include "scanner/deployment.hpp"
#include "telescope/generator.hpp"

namespace quicsand::telescope {
namespace {

constexpr std::uint64_t kSeeds[] = {4242, 4243, 4244, 4245, 4246};

struct NamedScenario {
  const char* name;
  ScenarioConfig config;
};

/// The repo has one committed scenario factory (april2021); the other
/// shapes in use are derived from it: the bench/live "light" variant
/// with research scanners disabled, and a full-crypto variant that
/// exercises the real AEAD path the fast-fidelity default skips. All
/// are trimmed to a 1-day window on a small telescope so the diff stays
/// in tier-1 time budget while touching every emitter kind.
std::vector<NamedScenario> committed_scenarios(std::uint64_t seed) {
  auto base = ScenarioConfig::april2021(1, seed);
  base.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 20};
  base.attacks.quic_attacks_per_day = 40;
  base.attacks.common_attacks_per_day = 120;
  base.botnet.sessions_per_day = 200;
  base.misconfig.sessions_per_day = 150;

  auto light = base;
  light.tum.passes_per_day = 0;
  light.rwth.passes_per_day = 0;

  auto full_crypto = base;
  full_crypto.fidelity = quic::CryptoFidelity::kFull;
  full_crypto.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 22};
  full_crypto.tum.passes_per_day = 0;
  full_crypto.rwth.passes_per_day = 0;
  full_crypto.attacks.quic_attacks_per_day = 12;
  full_crypto.attacks.common_attacks_per_day = 40;
  full_crypto.botnet.sessions_per_day = 60;
  full_crypto.misconfig.sessions_per_day = 50;

  return {{"april2021", base},
          {"light-no-research", light},
          {"full-crypto", full_crypto}};
}

TelescopeGenerator make_generator(const ScenarioConfig& config) {
  static const auto registry = asdb::AsRegistry::synthetic({}, 2021);
  static const auto deployment =
      scanner::Deployment::synthetic(registry, {}, 2021);
  return TelescopeGenerator(config, registry, deployment);
}

bool same_attack(const PlannedAttack& a, const PlannedAttack& b) {
  return std::tie(a.protocol, a.victim, a.victim_asn,
                  a.victim_is_known_server, a.quic_version, a.start,
                  a.duration, a.peak_pps, a.relation) ==
         std::tie(b.protocol, b.victim, b.victim_asn,
                  b.victim_is_known_server, b.quic_version, b.start,
                  b.duration, b.peak_pps, b.relation);
}

void expect_same_ground_truth(const GroundTruth& legacy,
                              const GroundTruth& batched) {
  EXPECT_EQ(legacy.total_packet_count, batched.total_packet_count);
  EXPECT_EQ(legacy.research_probe_count, batched.research_probe_count);
  EXPECT_EQ(legacy.botnet_packet_count, batched.botnet_packet_count);
  EXPECT_EQ(legacy.backscatter_packet_count,
            batched.backscatter_packet_count);
  EXPECT_EQ(legacy.common_packet_count, batched.common_packet_count);
  EXPECT_EQ(legacy.misconfig_packet_count, batched.misconfig_packet_count);
  ASSERT_EQ(legacy.attacks.size(), batched.attacks.size());
  for (std::size_t i = 0; i < legacy.attacks.size(); ++i) {
    EXPECT_TRUE(same_attack(legacy.attacks[i], batched.attacks[i]))
        << "planned attack " << i << " differs";
  }
  EXPECT_EQ(legacy.botnet_sources.size(), batched.botnet_sources.size());
}

// --- Stream-level diff: next() vs next_batch() ------------------------

TEST(TelescopeBatchDiff, BatchedStreamBitIdenticalAcrossScenariosAndSeeds) {
  for (const auto seed : kSeeds) {
    for (const auto& [name, config] : committed_scenarios(seed)) {
      SCOPED_TRACE(::testing::Message() << name << " seed " << seed);

      auto legacy = make_generator(config);
      auto batched = make_generator(config);

      // Deliberately small batch so the diff crosses many batch
      // boundaries (refill, arena reset, partial final batch).
      net::RecordBatch batch(512, 512 * 1500);
      std::uint64_t index = 0;
      bool mismatch = false;
      while (batched.next_batch(batch) > 0 && !mismatch) {
        for (std::size_t i = 0; i < batch.size(); ++i) {
          const auto view = batch.view(i);
          const auto packet = legacy.next();
          ASSERT_TRUE(packet.has_value())
              << "legacy stream ended early at packet " << index;
          ASSERT_EQ(packet->timestamp, view.timestamp)
              << "timestamp mismatch at packet " << index;
          const bool bytes_equal =
              packet->data.size() == view.data.size() &&
              std::equal(view.data.begin(), view.data.end(),
                         packet->data.begin());
          ASSERT_TRUE(bytes_equal) << "byte mismatch at packet " << index;
          ++index;
        }
      }
      EXPECT_EQ(legacy.next(), std::nullopt)
          << "batched stream ended early at packet " << index;
      EXPECT_GT(index, 1000u) << "scenario produced too few packets";
      expect_same_ground_truth(legacy.ground_truth(),
                               batched.ground_truth());
      EXPECT_EQ(legacy.ground_truth().total_packet_count, index);
    }
  }
}

// --- Pipeline-level diff: consume() vs consume_batch() ----------------

/// DetectedAttack ordering differs only by session bookkeeping across
/// paths; normalize exactly as the online/offline diff oracle does.
std::vector<core::DetectedAttack> normalized(
    std::vector<core::DetectedAttack> attacks) {
  for (auto& attack : attacks) attack.session_index = 0;
  std::sort(attacks.begin(), attacks.end(),
            [](const core::DetectedAttack& a, const core::DetectedAttack& b) {
              return std::tie(a.start, a.victim, a.end, a.packets) <
                     std::tie(b.start, b.victim, b.end, b.packets);
            });
  return attacks;
}

void expect_same_stats(const core::ClassifierStats& a,
                       const core::ClassifierStats& b) {
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.undecodable, b.undecodable);
  EXPECT_EQ(a.by_class, b.by_class);
  EXPECT_EQ(a.research, b.research);
  EXPECT_EQ(a.research_requests, b.research_requests);
  EXPECT_EQ(a.quic_port_rejects, b.quic_port_rejects);
}

TEST(TelescopeBatchDiff, BatchedIngestMatchesPerRecordAcrossShardCounts) {
  for (const auto seed : kSeeds) {
    const auto config = committed_scenarios(seed)[1].config;  // light

    // Record the legacy stream once per seed; replayed into the
    // per-record pipeline at every shard count.
    std::vector<net::RawPacket> packets;
    {
      auto generator = make_generator(config);
      while (auto packet = generator.next()) {
        packets.push_back(std::move(*packet));
      }
    }
    ASSERT_GT(packets.size(), 1000u);

    core::PipelineOptions options;
    options.window_start = config.start;
    options.days = config.days;

    for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
      SCOPED_TRACE(::testing::Message()
                   << "seed " << seed << " shards " << shards);

      core::ParallelPipeline per_record(options, shards);
      for (const auto& packet : packets) per_record.consume(packet);
      per_record.finish();

      core::ParallelPipeline batched(options, shards);
      auto generator = make_generator(config);
      auto batch = batched.acquire_batch();
      while (generator.next_batch(batch) > 0) {
        batched.consume_batch(std::move(batch));
        batch = batched.acquire_batch();
      }
      batched.finish();

      expect_same_stats(per_record.stats(), batched.stats());

      const auto lhs = per_record.records();
      const auto rhs = batched.records();
      ASSERT_EQ(lhs.size(), rhs.size());
      for (std::size_t i = 0; i < lhs.size(); ++i) {
        ASSERT_EQ(lhs[i], rhs[i]) << "record " << i << " differs";
      }

      EXPECT_EQ(normalized(per_record.analyze_attacks().quic_attacks),
                normalized(batched.analyze_attacks().quic_attacks));
      EXPECT_EQ(normalized(per_record.analyze_attacks().common_attacks),
                normalized(batched.analyze_attacks().common_attacks));
    }
  }
}

// --- Mixed ingest: interleaving consume() and consume_batch() ---------

TEST(TelescopeBatchDiff, MixedPerRecordAndBatchedIngestIsEquivalent) {
  const auto config = committed_scenarios(4242)[1].config;
  std::vector<net::RawPacket> packets;
  {
    auto generator = make_generator(config);
    while (auto packet = generator.next()) {
      packets.push_back(std::move(*packet));
    }
  }

  core::PipelineOptions options;
  options.window_start = config.start;
  options.days = config.days;

  core::ParallelPipeline reference(options, 2);
  for (const auto& packet : packets) reference.consume(packet);
  reference.finish();

  // Alternate: odd-index runs go through consume(), even-index runs
  // through a batch, preserving global time order.
  core::ParallelPipeline mixed(options, 2);
  std::size_t i = 0;
  bool use_batch = true;
  while (i < packets.size()) {
    const std::size_t run = std::min<std::size_t>(777, packets.size() - i);
    if (use_batch) {
      auto batch = mixed.acquire_batch();
      for (std::size_t j = 0; j < run; ++j) {
        const auto& packet = packets[i + j];
        ASSERT_TRUE(batch.try_append(packet.timestamp, packet.data));
      }
      mixed.consume_batch(std::move(batch));
    } else {
      for (std::size_t j = 0; j < run; ++j) mixed.consume(packets[i + j]);
    }
    i += run;
    use_batch = !use_batch;
  }
  mixed.finish();

  expect_same_stats(reference.stats(), mixed.stats());
  const auto lhs = reference.records();
  const auto rhs = mixed.records();
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t k = 0; k < lhs.size(); ++k) {
    ASSERT_EQ(lhs[k], rhs[k]) << "record " << k << " differs";
  }
}

}  // namespace
}  // namespace quicsand::telescope
