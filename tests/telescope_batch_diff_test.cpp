// Differential oracle for batched generation: TelescopeGenerator's
// next_batch() stream must be invariant under batch geometry — the
// same packets, timestamps, and bytes whether drained through a tiny
// batch (many refills, arena resets, partial final batch), the default
// batch, or the per-record generate() adapter — for every committed
// scenario shape, across seeds. The batched ParallelPipeline ingest
// (consume_batch) must likewise reproduce the per-record ingest
// (consume) exactly for every shard count: identical record streams,
// classifier stats, and DoS attack sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "core/parallel_pipeline.hpp"
#include "net/record_batch.hpp"
#include "scanner/deployment.hpp"
#include "telescope/generator.hpp"

namespace quicsand::telescope {
namespace {

constexpr std::uint64_t kSeeds[] = {4242, 4243, 4244, 4245, 4246};

struct NamedScenario {
  const char* name;
  ScenarioConfig config;
};

/// The repo has one committed scenario factory (april2021); the other
/// shapes in use are derived from it: the bench/live "light" variant
/// with research scanners disabled, and a full-crypto variant that
/// exercises the real AEAD path the fast-fidelity default skips. All
/// are trimmed to a 1-day window on a small telescope so the diff stays
/// in tier-1 time budget while touching every emitter kind.
std::vector<NamedScenario> committed_scenarios(std::uint64_t seed) {
  auto base = ScenarioConfig::april2021(1, seed);
  base.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 20};
  base.attacks.quic_attacks_per_day = 40;
  base.attacks.common_attacks_per_day = 120;
  base.botnet.sessions_per_day = 200;
  base.misconfig.sessions_per_day = 150;

  auto light = base;
  light.tum.passes_per_day = 0;
  light.rwth.passes_per_day = 0;

  auto full_crypto = base;
  full_crypto.fidelity = quic::CryptoFidelity::kFull;
  full_crypto.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 22};
  full_crypto.tum.passes_per_day = 0;
  full_crypto.rwth.passes_per_day = 0;
  full_crypto.attacks.quic_attacks_per_day = 12;
  full_crypto.attacks.common_attacks_per_day = 40;
  full_crypto.botnet.sessions_per_day = 60;
  full_crypto.misconfig.sessions_per_day = 50;

  return {{"april2021", base},
          {"light-no-research", light},
          {"full-crypto", full_crypto}};
}

TelescopeGenerator make_generator(const ScenarioConfig& config) {
  static const auto registry = asdb::AsRegistry::synthetic({}, 2021);
  static const auto deployment =
      scanner::Deployment::synthetic(registry, {}, 2021);
  return TelescopeGenerator(config, registry, deployment);
}

bool same_attack(const PlannedAttack& a, const PlannedAttack& b) {
  return std::tie(a.protocol, a.victim, a.victim_asn,
                  a.victim_is_known_server, a.quic_version, a.start,
                  a.duration, a.peak_pps, a.relation) ==
         std::tie(b.protocol, b.victim, b.victim_asn,
                  b.victim_is_known_server, b.quic_version, b.start,
                  b.duration, b.peak_pps, b.relation);
}

void expect_same_ground_truth(const GroundTruth& legacy,
                              const GroundTruth& batched) {
  EXPECT_EQ(legacy.total_packet_count, batched.total_packet_count);
  EXPECT_EQ(legacy.research_probe_count, batched.research_probe_count);
  EXPECT_EQ(legacy.botnet_packet_count, batched.botnet_packet_count);
  EXPECT_EQ(legacy.backscatter_packet_count,
            batched.backscatter_packet_count);
  EXPECT_EQ(legacy.common_packet_count, batched.common_packet_count);
  EXPECT_EQ(legacy.misconfig_packet_count, batched.misconfig_packet_count);
  ASSERT_EQ(legacy.attacks.size(), batched.attacks.size());
  for (std::size_t i = 0; i < legacy.attacks.size(); ++i) {
    EXPECT_TRUE(same_attack(legacy.attacks[i], batched.attacks[i]))
        << "planned attack " << i << " differs";
  }
  EXPECT_EQ(legacy.botnet_sources.size(), batched.botnet_sources.size());
}

// --- Stream-level diff: invariance under batch geometry ---------------

/// Flatten the generator's stream through a batch of the given shape.
std::vector<net::RawPacket> drain(TelescopeGenerator& generator,
                                  std::size_t capacity,
                                  std::size_t arena_bytes) {
  std::vector<net::RawPacket> out;
  net::RecordBatch batch(capacity, arena_bytes);
  while (generator.next_batch(batch) > 0) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto view = batch.view(i);
      out.emplace_back(
          view.timestamp,
          std::vector<std::uint8_t>(view.data.begin(), view.data.end()));
    }
  }
  return out;
}

TEST(TelescopeBatchDiff, StreamInvariantUnderBatchGeometry) {
  for (const auto seed : kSeeds) {
    for (const auto& [name, config] : committed_scenarios(seed)) {
      SCOPED_TRACE(::testing::Message() << name << " seed " << seed);

      // Deliberately small batch so the stream crosses many batch
      // boundaries (refill, arena reset, partial final batch) vs the
      // default geometry and the per-record generate() adapter.
      auto small_gen = make_generator(config);
      const auto small = drain(small_gen, 512, 512 * 1500);
      auto large_gen = make_generator(config);
      const auto large = drain(large_gen, net::RecordBatch::kDefaultCapacity,
                               net::RecordBatch::kDefaultArenaBytes);
      auto sink_gen = make_generator(config);
      std::vector<net::RawPacket> sunk;
      const auto sink_count = sink_gen.generate(
          [&](const net::RawPacket& packet) { sunk.push_back(packet); });

      ASSERT_EQ(small.size(), large.size());
      ASSERT_EQ(small.size(), sunk.size());
      EXPECT_EQ(sink_count, sunk.size());
      for (std::size_t i = 0; i < small.size(); ++i) {
        ASSERT_EQ(small[i].timestamp, large[i].timestamp)
            << "timestamp mismatch at packet " << i;
        ASSERT_EQ(small[i].data, large[i].data)
            << "byte mismatch at packet " << i;
        ASSERT_EQ(small[i].timestamp, sunk[i].timestamp)
            << "sink timestamp mismatch at packet " << i;
        ASSERT_EQ(small[i].data, sunk[i].data)
            << "sink byte mismatch at packet " << i;
      }
      EXPECT_GT(small.size(), 1000u) << "scenario produced too few packets";
      expect_same_ground_truth(small_gen.ground_truth(),
                               large_gen.ground_truth());
      expect_same_ground_truth(small_gen.ground_truth(),
                               sink_gen.ground_truth());
      EXPECT_EQ(small_gen.ground_truth().total_packet_count, small.size());
    }
  }
}

// --- Pipeline-level diff: consume() vs consume_batch() ----------------

/// DetectedAttack ordering differs only by session bookkeeping across
/// paths; normalize exactly as the online/offline diff oracle does.
std::vector<core::DetectedAttack> normalized(
    std::vector<core::DetectedAttack> attacks) {
  for (auto& attack : attacks) attack.session_index = 0;
  std::sort(attacks.begin(), attacks.end(),
            [](const core::DetectedAttack& a, const core::DetectedAttack& b) {
              return std::tie(a.start, a.victim, a.end, a.packets) <
                     std::tie(b.start, b.victim, b.end, b.packets);
            });
  return attacks;
}

void expect_same_stats(const core::ClassifierStats& a,
                       const core::ClassifierStats& b) {
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.undecodable, b.undecodable);
  EXPECT_EQ(a.by_class, b.by_class);
  EXPECT_EQ(a.research, b.research);
  EXPECT_EQ(a.research_requests, b.research_requests);
  EXPECT_EQ(a.quic_port_rejects, b.quic_port_rejects);
}

TEST(TelescopeBatchDiff, BatchedIngestMatchesPerRecordAcrossShardCounts) {
  for (const auto seed : kSeeds) {
    const auto config = committed_scenarios(seed)[1].config;  // light

    // Record the stream once per seed; replayed into the per-record
    // pipeline at every shard count.
    std::vector<net::RawPacket> packets;
    {
      auto generator = make_generator(config);
      packets = drain(generator, net::RecordBatch::kDefaultCapacity,
                      net::RecordBatch::kDefaultArenaBytes);
    }
    ASSERT_GT(packets.size(), 1000u);

    core::PipelineOptions options;
    options.window_start = config.start;
    options.days = config.days;

    for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
      SCOPED_TRACE(::testing::Message()
                   << "seed " << seed << " shards " << shards);

      core::ParallelPipeline per_record(options, shards);
      for (const auto& packet : packets) per_record.consume(packet);
      per_record.finish();

      core::ParallelPipeline batched(options, shards);
      auto generator = make_generator(config);
      auto batch = batched.acquire_batch();
      while (generator.next_batch(batch) > 0) {
        batched.consume_batch(std::move(batch));
        batch = batched.acquire_batch();
      }
      batched.finish();

      expect_same_stats(per_record.stats(), batched.stats());

      const auto lhs = per_record.records();
      const auto rhs = batched.records();
      ASSERT_EQ(lhs.size(), rhs.size());
      for (std::size_t i = 0; i < lhs.size(); ++i) {
        ASSERT_EQ(lhs[i], rhs[i]) << "record " << i << " differs";
      }

      EXPECT_EQ(normalized(per_record.analyze_attacks().quic_attacks),
                normalized(batched.analyze_attacks().quic_attacks));
      EXPECT_EQ(normalized(per_record.analyze_attacks().common_attacks),
                normalized(batched.analyze_attacks().common_attacks));
    }
  }
}

// --- Mixed ingest: interleaving consume() and consume_batch() ---------

TEST(TelescopeBatchDiff, MixedPerRecordAndBatchedIngestIsEquivalent) {
  const auto config = committed_scenarios(4242)[1].config;
  std::vector<net::RawPacket> packets;
  {
    auto generator = make_generator(config);
    packets = drain(generator, net::RecordBatch::kDefaultCapacity,
                    net::RecordBatch::kDefaultArenaBytes);
  }

  core::PipelineOptions options;
  options.window_start = config.start;
  options.days = config.days;

  core::ParallelPipeline reference(options, 2);
  for (const auto& packet : packets) reference.consume(packet);
  reference.finish();

  // Alternate: odd-index runs go through consume(), even-index runs
  // through a batch, preserving global time order.
  core::ParallelPipeline mixed(options, 2);
  std::size_t i = 0;
  bool use_batch = true;
  while (i < packets.size()) {
    const std::size_t run = std::min<std::size_t>(777, packets.size() - i);
    if (use_batch) {
      auto batch = mixed.acquire_batch();
      for (std::size_t j = 0; j < run; ++j) {
        const auto& packet = packets[i + j];
        ASSERT_TRUE(batch.try_append(packet.timestamp, packet.data));
      }
      mixed.consume_batch(std::move(batch));
    } else {
      for (std::size_t j = 0; j < run; ++j) mixed.consume(packets[i + j]);
    }
    i += run;
    use_batch = !use_batch;
  }
  mixed.finish();

  expect_same_stats(reference.stats(), mixed.stats());
  const auto lhs = reference.records();
  const auto rhs = mixed.records();
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t k = 0; k < lhs.size(); ++k) {
    ASSERT_EQ(lhs[k], rhs[k]) << "record " << k << " differs";
  }
}

}  // namespace
}  // namespace quicsand::telescope
