// Negative-compile probes for the thread-safety annotations in
// obs/events.hpp and core/parallel_pipeline.hpp.
//
// This file is NOT part of the normal build. scripts/check_tsa.sh
// compiles it with clang -fsyntax-only -Werror=thread-safety once per
// TSA_PROBE value: probe 0 (a correctly-locked control) must build,
// every probe >= 1 accesses one guarded field or lock-held helper
// without its mutex and must be rejected. If deleting any single
// QS_GUARDED_BY/QS_REQUIRES from those headers lets its probe compile,
// the script — and CI — fails. Keep the probe list in sync with the
// annotations there.
#include <cstddef>
#include <cstdint>

#include "core/parallel_pipeline.hpp"
#include "obs/events.hpp"

#ifndef TSA_PROBE
#define TSA_PROBE 0
#endif

namespace quicsand::obs {

struct TsaNegativeProbe {
#if TSA_PROBE == 0
  // Control: the same accesses, correctly locked. Must compile — this
  // proves the harness (include paths, clang, the annotations) works.
  static std::uint64_t control(EventSubscription& sub) {
    util::LockGuard lock(sub.mutex_);
    return sub.lines_.size() + sub.dropped_ +
           static_cast<std::uint64_t>(sub.closed_);
  }
#elif TSA_PROBE == 1
  static std::size_t probe(EventSubscription& sub) {
    return sub.lines_.size();  // lines_ without mutex_
  }
#elif TSA_PROBE == 2
  static std::uint64_t probe(EventSubscription& sub) {
    return sub.dropped_;  // dropped_ without mutex_
  }
#elif TSA_PROBE == 3
  static bool probe(EventSubscription& sub) {
    return sub.closed_;  // closed_ without mutex_
  }
#elif TSA_PROBE == 4
  static void probe(EventLog& log, const DetectorEvent& event) {
    log.tee_locked(event, "{}");  // REQUIRES(mutex_) helper without it
  }
#elif TSA_PROBE == 5
  static std::size_t probe(EventLog& log) {
    return log.events_.size();  // events_ without mutex_
  }
#elif TSA_PROBE == 6
  static bool probe(EventLog& log) {
    return log.stream_ != nullptr;  // stream_ without mutex_
  }
#elif TSA_PROBE == 7
  static std::size_t probe(EventLog& log) {
    return log.subscriptions_.size();  // subscriptions_ without mutex_
  }
#endif
};

}  // namespace quicsand::obs

namespace quicsand::core {

struct TsaNegativeProbe {
#if TSA_PROBE == 0
  static std::size_t control(ParallelPipeline& pipeline) {
    util::LockGuard lock(pipeline.inflight_mutex_);
    return pipeline.inflight_;
  }
#elif TSA_PROBE == 8
  static void probe(ParallelPipeline& pipeline, util::UniqueLock& lock) {
    pipeline.wait_for_inflight_slot(lock);  // REQUIRES(inflight_mutex_)
  }
#elif TSA_PROBE == 9
  static std::size_t probe(ParallelPipeline& pipeline) {
    return pipeline.inflight_;  // inflight_ without inflight_mutex_
  }
#elif TSA_PROBE == 10
  static std::size_t probe(ParallelPipeline& pipeline) {
    return pipeline.batch_pool_.size();  // batch_pool_ without pool_mutex_
  }
#endif
};

}  // namespace quicsand::core
