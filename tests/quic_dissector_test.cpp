#include "quic/dissector.hpp"

#include <gtest/gtest.h>

#include "quic/packets.hpp"
#include "quic/retry.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace quicsand::quic {
namespace {

using util::from_hex_strict;

class DissectorTest : public ::testing::TestWithParam<CryptoFidelity> {
 protected:
  util::Rng rng_{42};
};

INSTANTIATE_TEST_SUITE_P(BothFidelities, DissectorTest,
                         ::testing::Values(CryptoFidelity::kFull,
                                           CryptoFidelity::kFast),
                         [](const auto& info) {
                           return info.param == CryptoFidelity::kFull
                                      ? std::string("full")
                                      : std::string("fast");
                         });

TEST_P(DissectorTest, ClientInitialDissects) {
  const auto ctx = HandshakeContext::random(1, rng_);
  const auto datagram =
      build_client_initial(ctx, "example.org", rng_, GetParam());
  EXPECT_EQ(datagram.size(), 1200u);
  const auto result = dissect_udp_payload(datagram);
  ASSERT_TRUE(result.is_quic) << result.reject_reason;
  ASSERT_EQ(result.packets.size(), 1u);
  const auto& pkt = result.packets[0];
  EXPECT_EQ(pkt.kind, QuicPacketKind::kInitial);
  EXPECT_EQ(pkt.version, 1u);
  EXPECT_EQ(pkt.dcid, ctx.client_dcid);
  EXPECT_EQ(pkt.scid, ctx.client_scid);
  EXPECT_EQ(pkt.token_length, 0u);
  EXPECT_EQ(pkt.size, 1200u);
  EXPECT_EQ(pkt.direction, InitialDirection::kNotAttempted);
}

TEST_P(DissectorTest, ServerFlightDissectsAsCoalesced) {
  const auto ctx = HandshakeContext::random(0xff00001d, rng_);
  const auto datagram = build_server_initial_handshake(ctx, rng_, GetParam());
  const auto result = dissect_udp_payload(datagram);
  ASSERT_TRUE(result.is_quic) << result.reject_reason;
  ASSERT_EQ(result.packets.size(), 2u);
  EXPECT_EQ(result.packets[0].kind, QuicPacketKind::kInitial);
  EXPECT_EQ(result.packets[1].kind, QuicPacketKind::kHandshake);
  // The backscatter SCID is the server's connection ID (Figure 9 counts
  // these), and the DCID routes back to the spoofed client.
  EXPECT_EQ(result.packets[0].scid, ctx.server_scid);
  EXPECT_EQ(result.packets[0].dcid, ctx.client_scid);
}

TEST_P(DissectorTest, HandshakeAndPingDatagrams) {
  const auto ctx = HandshakeContext::random(0xfaceb002, rng_);
  const auto hs = build_server_handshake(ctx, rng_, GetParam());
  const auto ping = build_server_handshake_ping(ctx, rng_, GetParam());
  const auto r1 = dissect_udp_payload(hs);
  ASSERT_TRUE(r1.is_quic);
  EXPECT_EQ(r1.packets[0].kind, QuicPacketKind::kHandshake);
  EXPECT_EQ(r1.packets[0].version, 0xfaceb002u);
  const auto r2 = dissect_udp_payload(ping);
  ASSERT_TRUE(r2.is_quic);
  EXPECT_EQ(r2.packets[0].kind, QuicPacketKind::kHandshake);
  EXPECT_LT(ping.size(), 100u);
}

TEST_F(DissectorTest, VersionNegotiationDissects) {
  util::Rng rng(1);
  const std::uint32_t versions[] = {1, 0xff00001d};
  const auto vn = build_version_negotiation(
      ConnectionId(from_hex_strict("aabb")),
      ConnectionId(from_hex_strict("ccdd")), versions, rng);
  const auto result = dissect_udp_payload(vn);
  ASSERT_TRUE(result.is_quic) << result.reject_reason;
  EXPECT_EQ(result.packets[0].kind, QuicPacketKind::kVersionNegotiation);
}

TEST_F(DissectorTest, RetryDissects) {
  const auto odcid = ConnectionId(from_hex_strict("8394c8f03e515708"));
  const auto packet = build_retry_packet(
      1, ConnectionId(from_hex_strict("c0ffee")),
      ConnectionId(from_hex_strict("0011223344556677")),
      from_hex_strict("aabbccddeeff00112233"), odcid);
  const auto result = dissect_udp_payload(packet);
  ASSERT_TRUE(result.is_quic) << result.reject_reason;
  EXPECT_EQ(result.packets[0].kind, QuicPacketKind::kRetry);
  EXPECT_EQ(result.packets[0].token_length, 10u);
}

TEST_F(DissectorTest, StatelessResetLooksLikeShortHeader) {
  util::Rng rng(2);
  const auto reset = build_stateless_reset(rng);
  const auto result = dissect_udp_payload(reset);
  ASSERT_TRUE(result.is_quic) << result.reject_reason;
  EXPECT_EQ(result.packets[0].kind, QuicPacketKind::kShort);
}

TEST_F(DissectorTest, GquicVersionClassified) {
  // Long-header-looking first byte with version Q043.
  std::vector<std::uint8_t> pkt = {0xc0, 'Q', '0', '4', '3'};
  pkt.resize(40, 0xab);
  const auto result = dissect_udp_payload(pkt);
  ASSERT_TRUE(result.is_quic);
  EXPECT_EQ(result.packets[0].kind, QuicPacketKind::kGquic);
}

TEST_F(DissectorTest, RejectsEmptyPayload) {
  const auto result = dissect_udp_payload({});
  EXPECT_FALSE(result.is_quic);
  EXPECT_EQ(result.reject_reason, "empty");
}

TEST_F(DissectorTest, RejectsNonQuicDns) {
  // A plausible DNS response over UDP: no fixed bit in the first byte.
  const std::vector<std::uint8_t> dns = {0x12, 0x34, 0x81, 0x80,
                                         0x00, 0x01, 0x00, 0x01};
  const auto result = dissect_udp_payload(dns);
  EXPECT_FALSE(result.is_quic);
}

TEST_F(DissectorTest, RejectsShortHeaderRunt) {
  const std::vector<std::uint8_t> runt = {0x40, 0x01, 0x02};
  const auto result = dissect_udp_payload(runt);
  EXPECT_FALSE(result.is_quic);
  EXPECT_EQ(result.reject_reason, "short-header-too-small");
}

TEST_F(DissectorTest, RejectsUnknownVersion) {
  std::vector<std::uint8_t> pkt = {0xc0, 0xde, 0xad, 0xbe, 0xef};
  pkt.resize(1200, 0);
  const auto result = dissect_udp_payload(pkt);
  EXPECT_FALSE(result.is_quic);
  EXPECT_EQ(result.reject_reason, "unknown-version");
}

TEST_F(DissectorTest, RejectsTruncatedLongHeader) {
  util::Rng rng(3);
  const auto ctx = HandshakeContext::random(1, rng);
  auto datagram =
      build_client_initial(ctx, "example.org", rng, CryptoFidelity::kFast);
  datagram.resize(300);  // cut mid-payload; length field now overruns
  const auto result = dissect_udp_payload(datagram);
  EXPECT_FALSE(result.is_quic);
  EXPECT_EQ(result.reject_reason, "bad-length");
}

TEST_F(DissectorTest, DeepModeIdentifiesClientHello) {
  util::Rng rng(4);
  const auto ctx = HandshakeContext::random(1, rng);
  const auto datagram =
      build_client_initial(ctx, "www.google.com", rng, CryptoFidelity::kFull);
  DissectOptions opts;
  opts.decrypt_initials = true;
  const auto result = dissect_udp_payload(datagram, opts);
  ASSERT_TRUE(result.is_quic);
  EXPECT_EQ(result.packets[0].direction, InitialDirection::kClientHello);
}

TEST_F(DissectorTest, DeepModeClassifiesServerResponse) {
  util::Rng rng(5);
  const auto ctx = HandshakeContext::random(1, rng);
  const auto datagram =
      build_server_initial_handshake(ctx, rng, CryptoFidelity::kFull);
  DissectOptions opts;
  opts.decrypt_initials = true;
  const auto result = dissect_udp_payload(datagram, opts);
  ASSERT_TRUE(result.is_quic);
  ASSERT_EQ(result.packets.size(), 2u);
  // The server reply is keyed on the original client DCID, which is not
  // in this datagram: an observer cannot decrypt it. This matches the
  // paper's "Initials without unencrypted Client Hello" observation.
  EXPECT_EQ(result.packets[0].direction, InitialDirection::kUndecryptable);
}

TEST_F(DissectorTest, DeepModeOnFastFidelityIsUndecryptable) {
  util::Rng rng(6);
  const auto ctx = HandshakeContext::random(1, rng);
  const auto datagram =
      build_client_initial(ctx, "example.org", rng, CryptoFidelity::kFast);
  DissectOptions opts;
  opts.decrypt_initials = true;
  const auto result = dissect_udp_payload(datagram, opts);
  ASSERT_TRUE(result.is_quic);
  EXPECT_EQ(result.packets[0].direction, InitialDirection::kUndecryptable);
}

TEST_F(DissectorTest, CoalescedWithTrailingShortHeader) {
  util::Rng rng(7);
  const auto ctx = HandshakeContext::random(1, rng);
  auto datagram = build_server_initial_handshake(ctx, rng,
                                                 CryptoFidelity::kFast);
  const auto reset = build_stateless_reset(rng, 30);
  datagram.insert(datagram.end(), reset.begin(), reset.end());
  const auto result = dissect_udp_payload(datagram);
  ASSERT_TRUE(result.is_quic);
  ASSERT_EQ(result.packets.size(), 3u);
  EXPECT_EQ(result.packets[2].kind, QuicPacketKind::kShort);
}

TEST_F(DissectorTest, TrailingZeroPaddingAccepted) {
  util::Rng rng(8);
  const auto ctx = HandshakeContext::random(1, rng);
  auto datagram = build_server_handshake(ctx, rng, CryptoFidelity::kFast);
  datagram.resize(datagram.size() + 40, 0x00);
  const auto result = dissect_udp_payload(datagram);
  ASSERT_TRUE(result.is_quic) << result.reject_reason;
  EXPECT_EQ(result.packets.size(), 1u);
}

TEST_F(DissectorTest, KindNamesAreStable) {
  EXPECT_STREQ(quic_packet_kind_name(QuicPacketKind::kInitial), "initial");
  EXPECT_STREQ(quic_packet_kind_name(QuicPacketKind::kVersionNegotiation),
               "version-negotiation");
  EXPECT_STREQ(quic_packet_kind_name(QuicPacketKind::kGquic), "gquic");
}

}  // namespace
}  // namespace quicsand::quic
