#include <gtest/gtest.h>

#include "quic/dissector.hpp"
#include "quic/initial_aead.hpp"
#include "quic/retry.hpp"
#include "server/experiment.hpp"
#include "server/replay.hpp"
#include "server/sim.hpp"

namespace quicsand::server {
namespace {

constexpr util::Timestamp kT0 = util::kApril2021Start;

ReplayConfig replay_at(double pps, std::uint64_t packets) {
  ReplayConfig config;
  config.pps = pps;
  config.packets = packets;
  config.fidelity = quic::CryptoFidelity::kFast;
  return config;
}

ServerConfig small_server(int workers, bool retry) {
  ServerConfig config;
  config.workers = workers;
  config.connections_per_worker = 64;  // scaled-down slot pool for tests
  config.retry_enabled = retry;
  return config;
}

TEST(RecordedFlood, DeterministicAndRewindable) {
  RecordedFlood flood(replay_at(100, 5));
  std::vector<std::vector<std::uint8_t>> first;
  while (auto record = flood.next()) first.push_back(record->datagram);
  ASSERT_EQ(first.size(), 5u);
  flood.rewind();
  std::size_t i = 0;
  while (auto record = flood.next()) {
    EXPECT_EQ(record->datagram, first[i]);
    ++i;
  }
  EXPECT_EQ(i, 5u);
}

TEST(RecordedFlood, TimestampsFollowRate) {
  RecordedFlood flood(replay_at(10, 21));
  util::Timestamp first{}, last{};
  std::uint64_t count = 0;
  while (auto record = flood.next()) {
    if (count == 0) first = record->time;
    last = record->time;
    ++count;
  }
  EXPECT_EQ(count, 21u);
  EXPECT_NEAR(util::to_seconds(last - first), 2.0, 0.01);
}

TEST(RecordedFlood, PacketsAreValidClientInitials) {
  RecordedFlood flood(replay_at(10, 3));
  while (auto record = flood.next()) {
    const auto result = quic::dissect_udp_payload(record->datagram);
    ASSERT_TRUE(result.is_quic);
    EXPECT_EQ(result.packets[0].kind, quic::QuicPacketKind::kInitial);
    EXPECT_EQ(record->datagram.size(), 1200u);
  }
}

TEST(QuicServerSim, AcceptsUntilSlotsExhaust) {
  ServerConfig config = small_server(1, false);  // 64 slots
  QuicServerSim sim(config);
  RecordedFlood flood(replay_at(1000, 200));
  while (auto record = flood.next()) {
    sim.on_datagram(record->time, record->datagram);
  }
  const auto& stats = sim.finish(kT0 + util::kSecond);
  EXPECT_EQ(stats.client_requests, 200u);
  EXPECT_EQ(stats.accepted, 64u);  // exactly the slot pool
  EXPECT_EQ(stats.dropped_no_slot, 136u);
  EXPECT_EQ(stats.server_responses, 64u * 4);
  EXPECT_NEAR(stats.availability(), 0.32, 0.001);
}

TEST(QuicServerSim, SlotsRecycleAfterHold) {
  ServerConfig config = small_server(1, false);
  config.handshake_hold = 10 * util::kSecond;
  QuicServerSim sim(config);
  // 64 Initials now, 64 more after the hold expires.
  RecordedFlood flood(replay_at(64, 128));  // 2 seconds of traffic
  std::vector<RecordedFlood::Record> records;
  while (auto record = flood.next()) records.push_back(*std::move(record));
  for (std::size_t i = 0; i < 64; ++i) {
    sim.on_datagram(records[i].time, records[i].datagram);
  }
  EXPECT_EQ(sim.stats().accepted, 64u);
  for (std::size_t i = 64; i < 128; ++i) {
    sim.on_datagram(records[i].time + 15 * util::kSecond,
                    records[i].datagram);
  }
  const auto& stats = sim.finish(kT0 + util::kMinute);
  EXPECT_EQ(stats.accepted, 128u);
  EXPECT_EQ(stats.dropped_no_slot, 0u);
}

TEST(QuicServerSim, RetryAnswersEverythingStatelessly) {
  ServerConfig config = small_server(1, true);
  QuicServerSim sim(config);
  RecordedFlood flood(replay_at(10000, 2000));
  while (auto record = flood.next()) {
    sim.on_datagram(record->time, record->datagram);
  }
  const auto& stats = sim.finish(kT0 + util::kSecond);
  EXPECT_EQ(stats.retries_sent, 2000u);
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.dropped_no_slot, 0u);
  EXPECT_DOUBLE_EQ(stats.availability(), 1.0);
  EXPECT_EQ(sim.active_connections(), 0u);  // no state held
}

TEST(QuicServerSim, RxQueueDropsAboveWorkerBudget) {
  ServerConfig config = small_server(1, true);
  config.per_worker_pps = 100;  // tiny packet budget
  QuicServerSim sim(config);
  RecordedFlood flood(replay_at(1000, 1000));  // 1 second at 10x budget
  while (auto record = flood.next()) {
    sim.on_datagram(record->time, record->datagram);
  }
  const auto& stats = sim.finish(kT0 + util::kSecond);
  EXPECT_GT(stats.dropped_rx_queue, 700u);
  EXPECT_LT(stats.availability(), 0.35);
}

TEST(QuicServerSim, MalformedDatagramsCounted) {
  QuicServerSim sim(small_server(1, false));
  const std::vector<std::uint8_t> junk = {0x00, 0x01, 0x02};
  sim.on_datagram(kT0, junk);
  // A handshake packet is not an Initial: counted malformed as well.
  util::Rng rng(1);
  const auto ctx = quic::HandshakeContext::random(1, rng);
  sim.on_datagram(
      kT0, quic::build_server_handshake(ctx, rng, quic::CryptoFidelity::kFast));
  EXPECT_EQ(sim.stats().malformed, 2u);
  EXPECT_EQ(sim.stats().accepted, 0u);
}

TEST(QuicServerSim, ResponseSinkProducesRealPackets) {
  ServerConfig config = small_server(1, false);
  QuicServerSim sim(config);
  std::vector<std::vector<std::uint8_t>> responses;
  sim.set_response_sink(
      [&](util::Timestamp, std::span<const std::uint8_t> bytes) {
        responses.emplace_back(bytes.begin(), bytes.end());
      },
      quic::CryptoFidelity::kFull);
  RecordedFlood flood(replay_at(10, 1));
  ReplayConfig full = replay_at(10, 1);
  full.fidelity = quic::CryptoFidelity::kFull;
  RecordedFlood full_flood(full);
  const auto record = full_flood.next();
  ASSERT_TRUE(record.has_value());
  sim.on_datagram(record->time, record->datagram);
  ASSERT_EQ(responses.size(), 4u);
  // First response: Initial+Handshake coalesced, decryptable with server
  // initial keys derived from the client's DCID.
  const auto client_view = quic::parse_long_header(record->datagram, 0);
  ASSERT_TRUE(client_view.has_value());
  const auto view = quic::parse_long_header(responses[0], 0);
  ASSERT_TRUE(view.has_value());
  const auto keys = quic::derive_initial_keys(1, client_view->dcid,
                                              quic::Perspective::kServer);
  EXPECT_TRUE(
      quic::open_long_header_packet(keys, responses[0], *view).has_value());
}

TEST(QuicServerSim, RetrySinkEmitsVerifiableRetry) {
  ServerConfig config = small_server(1, true);
  QuicServerSim sim(config);
  std::vector<std::vector<std::uint8_t>> responses;
  sim.set_response_sink(
      [&](util::Timestamp, std::span<const std::uint8_t> bytes) {
        responses.emplace_back(bytes.begin(), bytes.end());
      },
      quic::CryptoFidelity::kFull);
  ReplayConfig one = replay_at(10, 1);
  RecordedFlood flood(one);
  const auto record = flood.next();
  ASSERT_TRUE(record.has_value());
  sim.on_datagram(record->time, record->datagram);
  ASSERT_EQ(responses.size(), 1u);
  const auto client_view = quic::parse_long_header(record->datagram, 0);
  ASSERT_TRUE(client_view.has_value());
  EXPECT_TRUE(
      quic::verify_retry_integrity(1, responses[0], client_view->dcid));
}

// Table 1 shape at reduced scale: without RETRY availability collapses
// with rate; more workers push the collapse point out; RETRY holds 100%.
class Table1ShapeTest : public ::testing::TestWithParam<double> {};

TEST_P(Table1ShapeTest, RetryAlwaysFullAvailability) {
  ServerConfig server = small_server(4, true);
  const auto result = run_replay(server, replay_at(GetParam(), 5000));
  EXPECT_DOUBLE_EQ(result.stats.availability(), 1.0);
  EXPECT_TRUE(result.extra_rtt);
}

INSTANTIATE_TEST_SUITE_P(Rates, Table1ShapeTest,
                         ::testing::Values(10.0, 1000.0, 20000.0));

TEST(Table1Shape, AvailabilityCollapsesWithoutRetry) {
  ServerConfig server = small_server(4, false);  // 256 slots
  server.handshake_hold = 60 * util::kSecond;
  const auto low = run_replay(server, replay_at(2, 600));     // 300 s
  const auto mid = run_replay(server, replay_at(20, 6000));   // 300 s
  const auto high = run_replay(server, replay_at(200, 60000));
  EXPECT_DOUBLE_EQ(low.stats.availability(), 1.0);
  EXPECT_LT(mid.stats.availability(), 0.65);
  EXPECT_LT(high.stats.availability(), 0.07);
  EXPECT_GT(high.stats.dropped_no_slot, 50000u);
}

TEST(Table1Shape, MoreWorkersRaiseTheCollapsePoint) {
  const auto few = run_replay(small_server(1, false), replay_at(20, 6000));
  const auto many = run_replay(small_server(16, false), replay_at(20, 6000));
  EXPECT_GT(many.stats.availability(), few.stats.availability() + 0.3);
}

TEST(QuicServerSim, AdaptiveRetryKicksInUnderLoad) {
  ServerConfig config = small_server(1, false);  // 64 slots
  config.retry_mode = RetryMode::kAdaptive;
  config.adaptive_retry_load = 0.5;  // retry above 32 live connections
  QuicServerSim sim(config);
  RecordedFlood flood(replay_at(1000, 200));
  while (auto record = flood.next()) {
    sim.on_datagram(record->time, record->datagram);
  }
  const auto& stats = sim.finish(kT0 + util::kSecond);
  // The first half of the table fills with full handshakes, then the
  // server flips to stateless Retries: availability stays at 100%.
  EXPECT_EQ(stats.accepted, 32u);
  EXPECT_EQ(stats.retries_sent, 168u);
  EXPECT_EQ(stats.dropped_no_slot, 0u);
  EXPECT_DOUBLE_EQ(stats.availability(), 1.0);
}

TEST(QuicServerSim, AdaptiveRetryStaysOffAtLowLoad) {
  ServerConfig config = small_server(1, false);
  config.retry_mode = RetryMode::kAdaptive;
  QuicServerSim sim(config);
  RecordedFlood flood(replay_at(10, 20));  // far below 50% of 64 slots
  while (auto record = flood.next()) {
    sim.on_datagram(record->time, record->datagram);
  }
  const auto& stats = sim.finish(kT0 + util::kMinute);
  EXPECT_EQ(stats.accepted, 20u);
  EXPECT_EQ(stats.retries_sent, 0u);  // normal clients keep 1-RTT
}

TEST(QuicServerSim, AmplificationFactorStaysBelowThree) {
  ServerConfig config = small_server(4, false);
  QuicServerSim sim(config);
  RecordedFlood flood(replay_at(100, 200));
  while (auto record = flood.next()) {
    sim.on_datagram(record->time, record->datagram);
  }
  const auto& stats = sim.finish(kT0 + util::kMinute);
  EXPECT_GT(stats.bytes_received, 0u);
  EXPECT_GT(stats.bytes_sent, stats.bytes_received);  // server amplifies
  EXPECT_LE(stats.amplification_factor(), 3.0);       // but under the cap
}

TEST(QuicServerSim, RetryModeAmplificationBelowOne) {
  ServerConfig config = small_server(1, true);
  QuicServerSim sim(config);
  RecordedFlood flood(replay_at(100, 200));
  while (auto record = flood.next()) {
    sim.on_datagram(record->time, record->datagram);
  }
  const auto& stats = sim.finish(kT0 + util::kMinute);
  // A Retry is far smaller than the padded Initial that triggered it:
  // RETRY makes the server useless as an amplifier.
  EXPECT_LT(stats.amplification_factor(), 0.2);
}

TEST(QuicServerSim, PerSourceFilterUselessAgainstSpoofedFlood) {
  // The paper's §3 observation, runnable: every flood packet carries a
  // fresh spoofed source, so a per-source rate limiter never triggers
  // and the slot pool still collapses.
  ServerConfig config = small_server(1, false);
  config.per_source_rate_limit = true;
  config.per_source_pps = 5;
  QuicServerSim sim(config);
  ReplayConfig replay = replay_at(1000, 500);
  replay.spoofed_sources = true;
  RecordedFlood flood(replay);
  while (auto record = flood.next()) {
    sim.on_datagram(record->time, record->datagram, record->source);
  }
  const auto& stats = sim.finish(kT0 + util::kSecond);
  EXPECT_EQ(stats.dropped_filtered, 0u);  // filter never fires
  EXPECT_EQ(stats.accepted, 64u);         // slots exhausted regardless
  EXPECT_GT(stats.dropped_no_slot, 400u);
}

TEST(QuicServerSim, PerSourceFilterThrottlesSingleSourceFlood) {
  ServerConfig config = small_server(1, false);
  config.per_source_rate_limit = true;
  config.per_source_pps = 5;
  QuicServerSim sim(config);
  ReplayConfig replay = replay_at(1000, 500);
  replay.spoofed_sources = false;  // honest single-source sender
  RecordedFlood flood(replay);
  while (auto record = flood.next()) {
    sim.on_datagram(record->time, record->datagram, record->source);
  }
  const auto& stats = sim.finish(kT0 + util::kSecond);
  // 0.5 seconds of traffic from one address: bucket admits ~8 packets.
  EXPECT_GT(stats.dropped_filtered, 480u);
  EXPECT_LT(stats.accepted, 15u);
  EXPECT_EQ(stats.dropped_no_slot, 0u);  // never even fills the slots
}

TEST(QuicServerSim, FilterTableEvictsUnderAddressChurn) {
  ServerConfig config = small_server(1, false);
  config.per_source_rate_limit = true;
  config.filter_table_limit = 100;  // tiny table
  QuicServerSim sim(config);
  ReplayConfig replay = replay_at(1000, 500);
  RecordedFlood flood(replay);
  while (auto record = flood.next()) {
    sim.on_datagram(record->time, record->datagram, record->source);
  }
  EXPECT_GE(sim.stats().filter_table_evictions, 3u);
}

TEST(ClientExperience, AllThreeRetryModes) {
  ClientExperienceConfig experiment;
  experiment.flood = replay_at(1000, 60000);  // 60 s of flood
  experiment.legit_rate = 2.0;

  // Without RETRY: the flood pins all 64 slots within ~64 ms; honest
  // clients arriving later find no state and fail.
  ServerConfig off = small_server(1, false);
  const auto r_off = run_client_experience(off, experiment);
  ASSERT_GT(r_off.attempts, 60u);
  EXPECT_LT(r_off.success_rate(), 0.15);

  // RETRY always: everyone completes, at two round trips.
  ServerConfig always = small_server(1, false);
  always.retry_mode = RetryMode::kAlways;
  const auto r_always = run_client_experience(always, experiment);
  EXPECT_DOUBLE_EQ(r_always.success_rate(), 1.0);
  EXPECT_DOUBLE_EQ(r_always.mean_round_trips(), 2.0);
  EXPECT_EQ(r_always.failed, 0u);

  // Adaptive: completes everyone; the pre-flood clients keep 1 RTT.
  ServerConfig adaptive = small_server(1, false);
  adaptive.retry_mode = RetryMode::kAdaptive;
  const auto r_adaptive = run_client_experience(adaptive, experiment);
  EXPECT_DOUBLE_EQ(r_adaptive.success_rate(), 1.0);
  EXPECT_LE(r_adaptive.mean_round_trips(), 2.0);
}

TEST(ClientExperience, NoFloodMeansOneRttEverywhereButAlways) {
  ClientExperienceConfig experiment;
  experiment.flood = replay_at(1000, 0);  // no attack packets
  experiment.flood.packets = 0;
  // Give the window some length so honest clients arrive.
  experiment.flood.pps = 1;
  experiment.flood.packets = 0;
  ClientExperienceConfig quiet = experiment;
  quiet.flood = replay_at(0.001, 1);  // one packet -> ~17 min window
  quiet.legit_rate = 0.05;

  ServerConfig adaptive = small_server(1, false);
  adaptive.retry_mode = RetryMode::kAdaptive;
  const auto r = run_client_experience(adaptive, quiet);
  ASSERT_GT(r.attempts, 10u);
  EXPECT_DOUBLE_EQ(r.success_rate(), 1.0);
  // No load: adaptive RETRY stays off and clients keep the fast path.
  EXPECT_DOUBLE_EQ(r.mean_round_trips(), 1.0);

  ServerConfig always = small_server(1, false);
  always.retry_mode = RetryMode::kAlways;
  const auto r2 = run_client_experience(always, quiet);
  EXPECT_DOUBLE_EQ(r2.mean_round_trips(), 2.0);
}

TEST(DumpRecording, WritesPcap) {
  const auto path = std::string("/tmp/quicsand_recording_test.pcap");
  const auto written = dump_recording_pcap(replay_at(100, 10), path, 5);
  EXPECT_EQ(written, 5u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace quicsand::server
