#include "quic/ack_tracker.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace quicsand::quic {
namespace {

TEST(AckTracker, TracksContiguousRange) {
  AckTracker tracker;
  for (std::uint64_t pn = 0; pn < 10; ++pn) {
    EXPECT_TRUE(tracker.on_packet(pn));
  }
  EXPECT_EQ(tracker.range_count(), 1u);
  EXPECT_EQ(tracker.largest(), 9u);
  EXPECT_EQ(tracker.packet_count(), 10u);
  const auto ack = tracker.build_ack(25);
  EXPECT_EQ(ack.largest_acknowledged, 9u);
  EXPECT_EQ(ack.first_range, 9u);
  EXPECT_TRUE(ack.ranges.empty());
  EXPECT_EQ(ack.ack_delay, 25u);
}

TEST(AckTracker, DetectsDuplicates) {
  AckTracker tracker;
  EXPECT_TRUE(tracker.on_packet(5));
  EXPECT_FALSE(tracker.on_packet(5));
  EXPECT_EQ(tracker.packet_count(), 1u);
}

TEST(AckTracker, GapsProduceRanges) {
  AckTracker tracker;
  for (const std::uint64_t pn : {0ull, 1ull, 2ull, 5ull, 6ull, 10ull}) {
    tracker.on_packet(pn);
  }
  EXPECT_EQ(tracker.range_count(), 3u);
  const auto ack = tracker.build_ack(0);
  EXPECT_EQ(ack.largest_acknowledged, 10u);
  EXPECT_EQ(ack.first_range, 0u);
  ASSERT_EQ(ack.ranges.size(), 2u);
  // 10, then gap to [5,6]: gap = 10-6-2 = 2, length 1.
  EXPECT_EQ(ack.ranges[0], (std::pair<std::uint64_t, std::uint64_t>{2, 1}));
  // then gap to [0,2]: gap = 5-2-2 = 1, length 2.
  EXPECT_EQ(ack.ranges[1], (std::pair<std::uint64_t, std::uint64_t>{1, 2}));
}

TEST(AckTracker, MergesWhenHoleFills) {
  AckTracker tracker;
  tracker.on_packet(0);
  tracker.on_packet(2);
  EXPECT_EQ(tracker.range_count(), 2u);
  tracker.on_packet(1);  // fills the hole
  EXPECT_EQ(tracker.range_count(), 1u);
  EXPECT_TRUE(tracker.contains(0));
  EXPECT_TRUE(tracker.contains(1));
  EXPECT_TRUE(tracker.contains(2));
  EXPECT_FALSE(tracker.contains(3));
}

TEST(AckTracker, FromAckInvertsBuildAck) {
  util::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    AckTracker original;
    std::set<std::uint64_t> pns;
    for (int i = 0; i < 60; ++i) {
      const auto pn = rng.uniform(200);
      pns.insert(pn);
      original.on_packet(pn);
    }
    EXPECT_EQ(original.packet_count(), pns.size());
    const auto ack = original.build_ack(0, /*max_ranges=*/1000);
    const auto rebuilt = AckTracker::from_ack(ack);
    EXPECT_EQ(rebuilt.packet_count(), original.packet_count());
    for (const auto pn : pns) EXPECT_TRUE(rebuilt.contains(pn)) << pn;
  }
}

TEST(AckTracker, RoundTripsThroughFrameCodec) {
  AckTracker tracker;
  for (const std::uint64_t pn : {1ull, 2ull, 3ull, 7ull, 9ull, 20ull}) {
    tracker.on_packet(pn);
  }
  util::ByteWriter w;
  write_frame(w, tracker.build_ack(12, 1000));
  const auto frames = parse_frames(w.view());
  ASSERT_TRUE(frames.has_value());
  ASSERT_EQ(frames->size(), 1u);
  const auto rebuilt =
      AckTracker::from_ack(std::get<AckFrame>((*frames)[0]));
  for (const std::uint64_t pn : {1ull, 2ull, 3ull, 7ull, 9ull, 20ull}) {
    EXPECT_TRUE(rebuilt.contains(pn));
  }
  EXPECT_FALSE(rebuilt.contains(4));
  EXPECT_FALSE(rebuilt.contains(19));
}

TEST(AckTracker, MaxRangesBoundsFrame) {
  AckTracker tracker;
  for (std::uint64_t pn = 0; pn < 100; pn += 2) tracker.on_packet(pn);
  EXPECT_EQ(tracker.range_count(), 50u);
  const auto ack = tracker.build_ack(0, 8);
  EXPECT_EQ(ack.ranges.size(), 7u);  // largest range + 7 more
}

TEST(AckTracker, EmptyTrackerThrows) {
  AckTracker tracker;
  EXPECT_THROW((void)tracker.largest(), std::logic_error);
  EXPECT_THROW((void)tracker.build_ack(0), std::logic_error);
}

TEST(AckTracker, FromAckRejectsMalformedFrames) {
  AckFrame underflow;
  underflow.largest_acknowledged = 3;
  underflow.first_range = 5;
  EXPECT_THROW(AckTracker::from_ack(underflow), std::invalid_argument);

  AckFrame bad_gap;
  bad_gap.largest_acknowledged = 10;
  bad_gap.first_range = 0;
  bad_gap.ranges = {{20, 1}};
  EXPECT_THROW(AckTracker::from_ack(bad_gap), std::invalid_argument);
}

TEST(AckTracker, RandomInsertionOrderIsCanonical) {
  util::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> pns;
    for (int i = 0; i < 40; ++i) pns.push_back(rng.uniform(120));
    AckTracker forward, backward;
    for (const auto pn : pns) forward.on_packet(pn);
    for (auto it = pns.rbegin(); it != pns.rend(); ++it) {
      backward.on_packet(*it);
    }
    EXPECT_EQ(forward.range_count(), backward.range_count());
    EXPECT_EQ(forward.packet_count(), backward.packet_count());
    for (std::uint64_t pn = 0; pn < 120; ++pn) {
      EXPECT_EQ(forward.contains(pn), backward.contains(pn));
    }
  }
}

}  // namespace
}  // namespace quicsand::quic
