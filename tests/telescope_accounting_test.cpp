// Ground-truth accounting: the generator's ledger tallies must agree
// with what a classifier actually sees on the wire, category by
// category. This pins the contract between the ledger (used to score
// the detectors) and the byte stream.
#include <gtest/gtest.h>

#include "core/classifier.hpp"
#include "scanner/deployment.hpp"
#include "telescope/generator.hpp"

namespace quicsand::telescope {
namespace {

const asdb::AsRegistry& registry() {
  static const auto reg = asdb::AsRegistry::synthetic({}, 77);
  return reg;
}

const scanner::Deployment& deployment() {
  static const auto dep = scanner::Deployment::synthetic(registry(), {}, 77);
  return dep;
}

ScenarioConfig base_scenario(std::uint64_t seed) {
  auto config = ScenarioConfig::april2021(1, seed);
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 22};
  config.tum.passes_per_day = 0;
  config.rwth.passes_per_day = 0;
  config.botnet.sessions_per_day = 0;
  config.attacks.quic_attacks_per_day = 0;
  config.attacks.common_attacks_per_day = 0;
  config.misconfig.sessions_per_day = 0;
  return config;
}

core::ClassifierStats classify_all(TelescopeGenerator& generator) {
  core::Classifier classifier({});
  generator.generate(
      [&](const net::RawPacket& packet) { classifier.classify(packet); });
  return classifier.stats();
}

TEST(Accounting, BotnetPacketsMatchLedgerExactly) {
  auto config = base_scenario(1);
  config.botnet.sessions_per_day = 400;
  TelescopeGenerator generator(config, registry(), deployment());
  const auto stats = classify_all(generator);
  const auto& truth = generator.ground_truth();
  // Every botnet packet is a QUIC request; sessions are planned up
  // front, but packets near the window edge may be clipped.
  EXPECT_LE(stats.of(core::TrafficClass::kQuicRequest),
            truth.botnet_packet_count);
  EXPECT_GT(stats.of(core::TrafficClass::kQuicRequest),
            truth.botnet_packet_count * 9 / 10);
  EXPECT_EQ(stats.of(core::TrafficClass::kQuicResponse), 0u);
  EXPECT_EQ(stats.of(core::TrafficClass::kTcpBackscatter), 0u);
}

TEST(Accounting, MisconfigPacketsAreAllResponses) {
  auto config = base_scenario(2);
  config.misconfig.sessions_per_day = 300;
  TelescopeGenerator generator(config, registry(), deployment());
  const auto stats = classify_all(generator);
  const auto& truth = generator.ground_truth();
  EXPECT_LE(stats.of(core::TrafficClass::kQuicResponse),
            truth.misconfig_packet_count);
  EXPECT_GT(stats.of(core::TrafficClass::kQuicResponse),
            truth.misconfig_packet_count * 9 / 10);
  EXPECT_EQ(stats.of(core::TrafficClass::kQuicRequest), 0u);
  // Misconfiguration noise is valid QUIC: nothing rejected at UDP/443.
  EXPECT_EQ(stats.quic_port_rejects, 0u);
}

TEST(Accounting, AttackOnlyScenarioSplitsByProtocol) {
  auto config = base_scenario(3);
  config.attacks.quic_attacks_per_day = 40;
  config.attacks.common_attacks_per_day = 40;
  TelescopeGenerator generator(config, registry(), deployment());
  const auto stats = classify_all(generator);
  EXPECT_GT(stats.of(core::TrafficClass::kQuicResponse), 1000u);
  EXPECT_GT(stats.of(core::TrafficClass::kTcpBackscatter), 500u);
  EXPECT_GT(stats.of(core::TrafficClass::kIcmpBackscatter), 50u);
  EXPECT_EQ(stats.of(core::TrafficClass::kTcpRequest), 0u);
  EXPECT_EQ(stats.undecodable, 0u);
  // Total ledger count equals classified total.
  EXPECT_EQ(stats.total, generator.ground_truth().total_packet_count);
}

TEST(Accounting, PlannedQuicAttackCountsSurviveGeneration) {
  auto config = base_scenario(4);
  config.attacks.quic_attacks_per_day = 60;
  TelescopeGenerator generator(config, registry(), deployment());
  const auto& truth = generator.ground_truth();
  const auto quic_attacks = truth.quic_attacks();
  EXPECT_EQ(quic_attacks.size(), 60u);
  for (const auto* attack : quic_attacks) {
    EXPECT_GE(attack->start, config.start);
    EXPECT_LT(attack->start, config.end());
    EXPECT_GT(attack->duration, util::Duration{});
    EXPECT_NE(attack->relation, PlannedRelation::kNotApplicable);
  }
  // Relations are only assigned to QUIC attacks.
  for (const auto& attack : truth.attacks) {
    if (attack.protocol != AttackProtocol::kQuic) {
      EXPECT_EQ(attack.relation, PlannedRelation::kNotApplicable);
    }
  }
}

TEST(Accounting, ResearchLedgerMatchesExactly) {
  auto config = base_scenario(5);
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 24};
  config.tum.passes_per_day = 2.0;  // two passes in one day
  // Short passes so both complete inside the window (the generator
  // clips packets past the window end).
  config.tum.pass_duration = 2 * util::kHour;
  TelescopeGenerator generator(config, registry(), deployment());
  const auto stats = classify_all(generator);
  const auto& truth = generator.ground_truth();
  EXPECT_EQ(truth.research_probe_count, 2u * 256u);
  EXPECT_EQ(stats.of(core::TrafficClass::kQuicRequest),
            truth.research_probe_count);
}

}  // namespace
}  // namespace quicsand::telescope
