// Strict CLI parsing: the whole token must parse (atoi's silent
// garbage-to-zero is exactly what these helpers replace), and the
// require_* wrappers exit(2) with a diagnostic.
#include <gtest/gtest.h>

#include <limits>

#include "util/parse.hpp"

namespace quicsand::util {
namespace {

TEST(UtilParse, ParsesWholeIntegers) {
  EXPECT_EQ(parse_i64("42"), 42);
  EXPECT_EQ(parse_i64("-7"), -7);
  EXPECT_EQ(parse_i64("0"), 0);
  EXPECT_EQ(parse_u64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(UtilParse, RejectsPartialAndMalformedIntegers) {
  for (const char* bad : {"", " 42", "42 ", "42x", "x42", "4 2", "+42",
                          "0x10", "12.5", "--3"}) {
    EXPECT_FALSE(parse_i64(bad).has_value()) << "input: '" << bad << "'";
    EXPECT_FALSE(parse_u64(bad).has_value()) << "input: '" << bad << "'";
  }
  EXPECT_FALSE(parse_u64("-1").has_value());
  // Overflow is rejected, not wrapped.
  EXPECT_FALSE(parse_i64("9223372036854775808").has_value());
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());
}

TEST(UtilParse, ParsesDoubles) {
  EXPECT_DOUBLE_EQ(parse_f64("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(parse_f64("-0.25").value(), -0.25);
  EXPECT_DOUBLE_EQ(parse_f64("1e3").value(), 1000.0);
  EXPECT_DOUBLE_EQ(parse_f64("10").value(), 10.0);
  for (const char* bad : {"", "abc", "1.5x", " 1.5", "1.5 "}) {
    EXPECT_FALSE(parse_f64(bad).has_value()) << "input: '" << bad << "'";
  }
}

TEST(UtilParseDeathTest, RequireExitsWithDiagnostic) {
  EXPECT_EXIT(require_i64("--days", "bogus"),
              testing::ExitedWithCode(2), "invalid value for --days");
  EXPECT_EXIT(require_u64("--seed", "-1"),
              testing::ExitedWithCode(2), "invalid value for --seed");
  EXPECT_EXIT(require_f64("--pps", "fast"),
              testing::ExitedWithCode(2), "invalid value for --pps");
}

TEST(UtilParse, RequirePassesThroughValidValues) {
  EXPECT_EQ(require_i64("--days", "30"), 30);
  EXPECT_EQ(require_u64("--seed", "2021"), 2021u);
  EXPECT_DOUBLE_EQ(require_f64("--pps", "1000.5"), 1000.5);
  EXPECT_EQ(require_int("--workers", "4"), 4);
}

TEST(UtilParse, ParsesHostPort) {
  const auto listen = parse_host_port("127.0.0.1:9100");
  ASSERT_TRUE(listen.has_value());
  EXPECT_EQ(listen->host, "127.0.0.1");
  EXPECT_EQ(listen->port, 9100);

  // Port 0 (ephemeral) and names are both valid hosts.
  EXPECT_EQ(parse_host_port("localhost:0")->host, "localhost");
  EXPECT_EQ(parse_host_port("localhost:0")->port, 0);
  EXPECT_EQ(parse_host_port("0.0.0.0:65535")->port, 65535);

  // The split is on the last colon (bracketed IPv6 hosts keep theirs).
  const auto v6 = parse_host_port("[::1]:443");
  ASSERT_TRUE(v6.has_value());
  EXPECT_EQ(v6->host, "[::1]");
  EXPECT_EQ(v6->port, 443);
}

TEST(UtilParse, RejectsMalformedHostPort) {
  for (const char* bad :
       {"", "host", "host:", ":9100", "host:65536", "host:-1", "host:9x",
        "host: 9", "host:9 "}) {
    EXPECT_FALSE(parse_host_port(bad).has_value()) << "input: '" << bad
                                                   << "'";
  }
}

TEST(UtilParse, ParsesPorts) {
  EXPECT_EQ(parse_port("0"), 0);
  EXPECT_EQ(parse_port("4433"), 4433);
  EXPECT_EQ(parse_port("65535"), 65535);
  for (const char* bad : {"", "65536", "-1", "4433x", " 4433", "0x10"}) {
    EXPECT_FALSE(parse_port(bad).has_value()) << "input: '" << bad << "'";
  }
}

TEST(UtilParse, ParsesListenAddresses) {
  // A bare port listens on loopback; HOST:PORT passes through.
  const auto bare = parse_listen_address("4433");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->host, "127.0.0.1");
  EXPECT_EQ(bare->port, 4433);
  const auto full = parse_listen_address("0.0.0.0:4433");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->host, "0.0.0.0");
  EXPECT_EQ(full->port, 4433);
  for (const char* bad : {"", "host", "host:", ":4433", "65536", "4433 "}) {
    EXPECT_FALSE(parse_listen_address(bad).has_value())
        << "input: '" << bad << "'";
  }
}

TEST(UtilParseDeathTest, RequirePortExitsWithDiagnostic) {
  EXPECT_EXIT(require_port("--port", "65536"),
              testing::ExitedWithCode(2), "invalid value for --port");
  EXPECT_EXIT(require_listen_address("--live", "not-an-endpoint"),
              testing::ExitedWithCode(2), "invalid value for --live");
}

TEST(UtilParse, RequirePortPassesThrough) {
  EXPECT_EQ(require_port("--port", "443"), 443);
  const auto live = require_listen_address("--live", "4433");
  EXPECT_EQ(live.host, "127.0.0.1");
  EXPECT_EQ(live.port, 4433);
}

TEST(UtilParseDeathTest, RequireHostPortExitsWithDiagnostic) {
  EXPECT_EXIT(require_host_port("--listen", "nope"),
              testing::ExitedWithCode(2), "invalid value for --listen");
}

TEST(UtilParse, RequireHostPortPassesThrough) {
  const auto listen = require_host_port("--listen", "127.0.0.1:0");
  EXPECT_EQ(listen.host, "127.0.0.1");
  EXPECT_EQ(listen.port, 0);
}

}  // namespace
}  // namespace quicsand::util
