#include "net/pcap.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "net/headers.hpp"

namespace quicsand::net {
namespace {

class PcapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("quicsand_pcap_test_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
              ".pcap"))
                .string();
  }

  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

RawPacket make_packet(util::Timestamp ts, std::uint16_t sport) {
  Ipv4Header ip;
  ip.src = Ipv4Address::from_octets(192, 0, 2, 1);
  ip.dst = Ipv4Address::from_octets(44, 1, 2, 3);
  return {ts, build_udp(ip, sport, 443, std::vector<std::uint8_t>{1, 2, 3})};
}

TEST_F(PcapTest, WriteThenReadRoundTrip) {
  {
    PcapWriter writer(path_);
    writer.write(make_packet(util::kApril2021Start, 1000));
    writer.write(make_packet(util::kApril2021Start + util::Duration{123456}, 1001));
    EXPECT_EQ(writer.packets_written(), 2u);
  }
  PcapReader reader(path_);
  EXPECT_EQ(reader.linktype(), kLinktypeRaw);
  auto p1 = reader.next();
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->timestamp, util::kApril2021Start);
  auto decoded = decode_ipv4(p1->data);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->udp().src_port, 1000);

  auto p2 = reader.next();
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->timestamp, util::kApril2021Start + util::Duration{123456});
  EXPECT_FALSE(reader.next().has_value());
}

TEST_F(PcapTest, MicrosecondPrecisionPreserved) {
  const util::Timestamp ts = util::kApril2021Start + util::Duration{999999};
  {
    PcapWriter writer(path_);
    writer.write(make_packet(ts, 1));
  }
  PcapReader reader(path_);
  auto p = reader.next();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->timestamp, ts);
}

TEST_F(PcapTest, ForEachCountsAllPackets) {
  {
    PcapWriter writer(path_);
    for (int i = 0; i < 10; ++i) {
      writer.write(make_packet(util::Timestamp{} + i * util::kSecond, static_cast<std::uint16_t>(i)));
    }
  }
  PcapReader reader(path_);
  std::uint64_t seen = 0;
  const auto n = reader.for_each([&](const RawPacket&) { ++seen; });
  EXPECT_EQ(n, 10u);
  EXPECT_EQ(seen, 10u);
}

TEST_F(PcapTest, EmptyFileHasNoPackets) {
  { PcapWriter writer(path_); }
  PcapReader reader(path_);
  EXPECT_FALSE(reader.next().has_value());
}

TEST_F(PcapTest, RejectsBadMagic) {
  {
    std::ofstream out(path_, std::ios::binary);
    const char junk[24] = {0};
    out.write(junk, sizeof(junk));
  }
  EXPECT_THROW(PcapReader reader(path_), std::runtime_error);
}

TEST_F(PcapTest, RejectsMissingFile) {
  EXPECT_THROW(PcapReader reader("/nonexistent/path.pcap"),
               std::runtime_error);
}

TEST_F(PcapTest, ThrowsOnTruncatedRecord) {
  {
    PcapWriter writer(path_);
    writer.write(make_packet(util::Timestamp{}, 1));
  }
  // Chop the last 2 bytes off the record body.
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 2);
  PcapReader reader(path_);
  EXPECT_THROW(reader.next(), std::runtime_error);
}

TEST_F(PcapTest, StripsEthernetHeader) {
  // Hand-craft an Ethernet-linktype capture containing one frame.
  const auto ip_packet = make_packet(util::Timestamp{}, 7).data;
  {
    std::ofstream out(path_, std::ios::binary);
    auto w32 = [&](std::uint32_t v) {
      char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                   static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
      out.write(b, 4);
    };
    auto w16 = [&](std::uint16_t v) {
      char b[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
      out.write(b, 2);
    };
    w32(kPcapMagicMicros);
    w16(2);
    w16(4);
    w32(0);
    w32(0);
    w32(65535);
    w32(kLinktypeEthernet);
    const std::uint32_t framelen =
        static_cast<std::uint32_t>(ip_packet.size()) + 14;
    w32(42);  // ts sec
    w32(0);   // ts usec
    w32(framelen);
    w32(framelen);
    const char eth[14] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                          0x08, 0x00};
    out.write(eth, sizeof(eth));
    out.write(reinterpret_cast<const char*>(ip_packet.data()),
              static_cast<std::streamsize>(ip_packet.size()));
  }
  PcapReader reader(path_);
  EXPECT_EQ(reader.linktype(), kLinktypeEthernet);
  auto p = reader.next();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->data, ip_packet);
  EXPECT_EQ(p->timestamp, util::Timestamp{} + 42 * util::kSecond);
}

}  // namespace
}  // namespace quicsand::net
