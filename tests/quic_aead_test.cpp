#include "quic/initial_aead.hpp"

#include <gtest/gtest.h>

#include "quic/frames.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace quicsand::quic {
namespace {

using util::from_hex_strict;
using util::to_hex;

const ConnectionId kRfcDcid{
    [] { return ConnectionId(from_hex_strict("8394c8f03e515708")); }()};

// RFC 9001 Appendix A.1 key values.
TEST(InitialKeys, MatchRfc9001AppendixA) {
  const auto client = derive_initial_keys(1, kRfcDcid, Perspective::kClient);
  EXPECT_EQ(to_hex(client.key), "1f369613dd76d5467730efcbe3b1a22d");
  EXPECT_EQ(to_hex(client.iv), "fa044b2f42a3fd3b46fb255c");
  EXPECT_EQ(to_hex(client.hp), "9f50449e04a0e810283a1e9933adedd2");

  const auto server = derive_initial_keys(1, kRfcDcid, Perspective::kServer);
  EXPECT_EQ(to_hex(server.key), "cf3a5331653c364c88f0f379b6067e37");
  EXPECT_EQ(to_hex(server.iv), "0ac1493ca1905853b0bba03e");
  EXPECT_EQ(to_hex(server.hp), "c206b8d9b9f0f37644430b490eeaa314");
}

TEST(InitialKeys, DependOnVersionSalt) {
  const auto v1 = derive_initial_keys(1, kRfcDcid, Perspective::kClient);
  const auto d29 =
      derive_initial_keys(0xff00001d, kRfcDcid, Perspective::kClient);
  const auto d27 =
      derive_initial_keys(0xff00001b, kRfcDcid, Perspective::kClient);
  EXPECT_NE(to_hex(v1.key), to_hex(d29.key));
  EXPECT_NE(to_hex(d29.key), to_hex(d27.key));
  // mvfst-draft-27 shares the draft-23..28 salt.
  const auto mvfst =
      derive_initial_keys(0xfaceb002, kRfcDcid, Perspective::kClient);
  EXPECT_EQ(to_hex(mvfst.key), to_hex(d27.key));
}

TEST(InitialKeys, ThrowsForGquic) {
  EXPECT_THROW(derive_initial_keys(0x51303433, kRfcDcid, Perspective::kClient),
               std::invalid_argument);
}

TEST(HandshakeKeysSimulated, DistinctFromInitialKeys) {
  const auto initial = derive_initial_keys(1, kRfcDcid, Perspective::kClient);
  const auto hs =
      derive_handshake_keys_simulated(1, kRfcDcid, Perspective::kClient);
  EXPECT_NE(to_hex(initial.key), to_hex(hs.key));
  const auto hs_server =
      derive_handshake_keys_simulated(1, kRfcDcid, Perspective::kServer);
  EXPECT_NE(to_hex(hs.key), to_hex(hs_server.key));
}

LongHeader make_header(std::uint64_t pn = 2, int pn_len = 4) {
  LongHeader hdr;
  hdr.type = PacketType::kInitial;
  hdr.version = 1;
  hdr.dcid = kRfcDcid;
  hdr.scid = ConnectionId(from_hex_strict("c0ffee"));
  hdr.packet_number = pn;
  hdr.packet_number_length = pn_len;
  return hdr;
}

TEST(SealOpen, RoundTripsAcrossPnLengths) {
  util::Rng rng(1);
  const auto keys = derive_initial_keys(1, kRfcDcid, Perspective::kClient);
  for (int pn_len = 1; pn_len <= 4; ++pn_len) {
    const auto payload = rng.bytes(120);
    const auto packet =
        seal_long_header_packet(keys, make_header(7, pn_len), payload);
    const auto view = parse_long_header(packet, 0);
    ASSERT_TRUE(view.has_value()) << "pn_len " << pn_len;
    const auto opened = open_long_header_packet(keys, packet, *view);
    ASSERT_TRUE(opened.has_value()) << "pn_len " << pn_len;
    EXPECT_EQ(opened->packet_number, 7u);
    EXPECT_EQ(opened->payload, payload);
  }
}

TEST(SealOpen, HeaderProtectionMasksFirstByteAndPn) {
  util::Rng rng(2);
  const auto keys = derive_initial_keys(1, kRfcDcid, Perspective::kClient);
  const auto payload = rng.bytes(64);
  const auto packet = seal_long_header_packet(keys, make_header(), payload);
  // The protected first byte should (almost surely) differ from the
  // plaintext encoding 0xc3 in its low bits OR the pn bytes must differ;
  // verify protection is in effect by flipping: unprotected encode.
  const auto enc = encode_long_header(make_header());
  bool differs = packet[0] != enc.bytes[0];
  for (std::size_t i = 0; i < 4 && !differs; ++i) {
    differs = packet[enc.pn_offset + i] != enc.bytes[enc.pn_offset + i];
  }
  EXPECT_TRUE(differs);
  // Reserved/type bits above the mask are untouched.
  EXPECT_EQ(packet[0] & 0xf0, 0xc0);
}

TEST(SealOpen, WrongKeysFail) {
  util::Rng rng(3);
  const auto client = derive_initial_keys(1, kRfcDcid, Perspective::kClient);
  const auto server = derive_initial_keys(1, kRfcDcid, Perspective::kServer);
  const auto packet =
      seal_long_header_packet(client, make_header(), rng.bytes(50));
  const auto view = parse_long_header(packet, 0);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(open_long_header_packet(client, packet, *view).has_value());
  EXPECT_FALSE(open_long_header_packet(server, packet, *view).has_value());
}

TEST(SealOpen, TamperedPacketFails) {
  util::Rng rng(4);
  const auto keys = derive_initial_keys(1, kRfcDcid, Perspective::kClient);
  auto packet = seal_long_header_packet(keys, make_header(), rng.bytes(50));
  packet[packet.size() / 2] ^= 0x01;
  const auto view = parse_long_header(packet, 0);
  ASSERT_TRUE(view.has_value());
  EXPECT_FALSE(open_long_header_packet(keys, packet, *view).has_value());
}

TEST(SealOpen, TamperedHeaderAadFails) {
  util::Rng rng(5);
  const auto keys = derive_initial_keys(1, kRfcDcid, Perspective::kClient);
  auto packet = seal_long_header_packet(keys, make_header(), rng.bytes(50));
  packet[6] ^= 0x01;  // inside the DCID (AAD)
  // Reparse with the altered DCID; decryption must fail (AAD mismatch)
  // even with the right traffic keys.
  const auto view = parse_long_header(packet, 0);
  ASSERT_TRUE(view.has_value());
  EXPECT_FALSE(open_long_header_packet(keys, packet, *view).has_value());
}

TEST(SealOpen, EmptyPayloadStillHasTag) {
  util::Rng rng(6);
  const auto keys = derive_initial_keys(1, kRfcDcid, Perspective::kClient);
  // A real endpoint always has >= 1 frame; sealing an empty payload is
  // still well-formed (pn + tag = 20 bytes length).
  const auto packet = seal_long_header_packet(keys, make_header(), {});
  const auto view = parse_long_header(packet, 0);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->length, 20u);
  const auto opened = open_long_header_packet(keys, packet, *view);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->payload.empty());
}

TEST(SealOpen, RejectsOversizedPayload) {
  const auto keys = derive_initial_keys(1, kRfcDcid, Perspective::kClient);
  const std::vector<std::uint8_t> huge(17000, 0);
  EXPECT_THROW(seal_long_header_packet(keys, make_header(), huge),
               std::invalid_argument);
}

TEST(SealOpen, HandshakeSpaceRoundTrip) {
  util::Rng rng(7);
  const auto keys =
      derive_handshake_keys_simulated(0xff00001d, kRfcDcid,
                                      Perspective::kServer);
  LongHeader hdr = make_header(1, 2);
  hdr.type = PacketType::kHandshake;
  hdr.version = 0xff00001d;
  const auto payload = rng.bytes(800);
  const auto packet = seal_long_header_packet(keys, hdr, payload);
  const auto view = parse_long_header(packet, 0);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->type, PacketType::kHandshake);
  const auto opened = open_long_header_packet(keys, packet, *view);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->payload, payload);
}

TEST(SealOpen, CoalescedPacketsOpenIndependently) {
  util::Rng rng(8);
  const auto ikeys = derive_initial_keys(1, kRfcDcid, Perspective::kServer);
  const auto hkeys =
      derive_handshake_keys_simulated(1, kRfcDcid, Perspective::kServer);
  const auto p1 = seal_long_header_packet(ikeys, make_header(0, 2),
                                          rng.bytes(100));
  LongHeader hs = make_header(0, 2);
  hs.type = PacketType::kHandshake;
  const auto p2 = seal_long_header_packet(hkeys, hs, rng.bytes(200));
  std::vector<std::uint8_t> datagram = p1;
  datagram.insert(datagram.end(), p2.begin(), p2.end());

  const auto v1 = parse_long_header(datagram, 0);
  ASSERT_TRUE(v1.has_value());
  const auto o1 = open_long_header_packet(ikeys, datagram, *v1);
  ASSERT_TRUE(o1.has_value());
  EXPECT_EQ(o1->payload.size(), 100u);

  const auto v2 = parse_long_header(datagram, v1->packet_end);
  ASSERT_TRUE(v2.has_value());
  const auto o2 = open_long_header_packet(hkeys, datagram, *v2);
  ASSERT_TRUE(o2.has_value());
  EXPECT_EQ(o2->payload.size(), 200u);
}

}  // namespace
}  // namespace quicsand::quic
